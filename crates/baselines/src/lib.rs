//! # tl-baselines — comparison estimators
//!
//! Two baselines the paper positions TreeLattice against:
//!
//! * [`MarkovTable`] — the Lore / Markov-table family of *path* selectivity
//!   estimators (order-m Markov model over root-to-node label paths).
//!   TreeLattice provably subsumes it on path queries (Lemma 4), which the
//!   integration tests verify numerically.
//! * [`TreeSketch`] — a reconstruction of the TreeSketches graph synopsis
//!   (Polyzotis, Garofalakis, Ioannidis): document nodes are clustered
//!   (starting from label partitions, refined under a byte budget toward
//!   count stability), and estimation multiplies *average* child
//!   cardinalities along the query tree. The original executable is closed
//!   source; this reconstruction reproduces its estimation mechanism and
//!   its budgeted-clustering construction cost — the two properties the
//!   paper's comparison turns on (see `DESIGN.md` §6).

pub mod markov;
pub mod treesketch;

pub use markov::MarkovTable;
pub use treesketch::{SketchConfig, TreeSketch};
