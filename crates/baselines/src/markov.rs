//! Order-m Markov table for XML path selectivity (Lore / Markov-table
//! family, after McHugh & Widom and Aboulnaga et al.).
//!
//! The table stores the exact occurrence count of every downward label path
//! of length ≤ m in the document. A longer path `l₁/…/lₙ` is estimated
//! under the order-(m−1) Markov assumption:
//!
//! ```text
//! ŝ = s(l₁…l_m) · Π_{i=2}^{n-m+1}  s(l_i…l_{i+m-1}) / s(l_i…l_{i+m-2})
//! ```
//!
//! Lemma 4 of the paper shows both TreeLattice decomposition estimators
//! reduce to exactly this formula on path queries when the lattice order
//! equals `m`; the workspace integration tests check the equality
//! numerically on mined documents.

use tl_xml::{Document, FxHashMap, LabelId};

/// Exact counts of all label paths up to a fixed length.
///
/// # Examples
///
/// ```
/// use tl_xml::{parse_document, ParseOptions};
/// use tl_baselines::MarkovTable;
///
/// let doc = parse_document(b"<a><b><c/></b><b/></a>", ParseOptions::default()).unwrap();
/// let table = MarkovTable::build(&doc, 2);
/// let a = doc.labels().get("a").unwrap();
/// let b = doc.labels().get("b").unwrap();
/// let c = doc.labels().get("c").unwrap();
/// assert_eq!(table.estimate_path(&[a, b]), 2.0);
/// // a/b/c is length 3 > m: estimated as s(a/b)·s(b/c)/s(b) = 2·1/2 = 1.
/// assert_eq!(table.estimate_path(&[a, b, c]), 1.0);
/// ```
#[derive(Clone, Debug)]
pub struct MarkovTable {
    m: usize,
    counts: FxHashMap<Box<[u32]>, u64>,
}

impl MarkovTable {
    /// Builds the table of all paths of length 1..=m.
    ///
    /// # Panics
    ///
    /// Panics if `m < 2` (the Markov chain needs windows and overlaps).
    pub fn build(doc: &Document, m: usize) -> Self {
        assert!(m >= 2, "markov table order must be at least 2");
        let mut counts: FxHashMap<Box<[u32]>, u64> = FxHashMap::default();
        // For each node, record the label paths of length <= m that *end*
        // at it, by walking up at most m-1 ancestors.
        let mut window: Vec<u32> = Vec::with_capacity(m);
        for v in doc.pre_order() {
            window.clear();
            window.push(doc.label(v).0);
            let mut cur = v;
            for _ in 1..m {
                match doc.parent(cur) {
                    Some(p) => {
                        window.push(doc.label(p).0);
                        cur = p;
                    }
                    None => break,
                }
            }
            // `window` is node-to-ancestor; paths are recorded root-first.
            for len in 1..=window.len() {
                let path: Vec<u32> = window[..len].iter().rev().copied().collect();
                *counts.entry(path.into_boxed_slice()).or_insert(0) += 1;
            }
        }
        Self { m, counts }
    }

    /// The table order m.
    pub fn order(&self) -> usize {
        self.m
    }

    /// Number of stored paths.
    pub fn len(&self) -> usize {
        self.counts.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.counts.is_empty()
    }

    /// Approximate heap bytes (keys + counts).
    pub fn heap_bytes(&self) -> usize {
        self.counts.keys().map(|k| k.len() * 4 + 8).sum()
    }

    /// The exact stored count of a path of length ≤ m, if present.
    pub fn lookup(&self, path: &[LabelId]) -> Option<u64> {
        if path.len() > self.m {
            return None;
        }
        let key: Vec<u32> = path.iter().map(|l| l.0).collect();
        self.counts.get(key.as_slice()).copied()
    }

    /// Estimates the selectivity of the downward path `labels`.
    pub fn estimate_path(&self, labels: &[LabelId]) -> f64 {
        if labels.is_empty() {
            return 0.0;
        }
        let key: Vec<u32> = labels.iter().map(|l| l.0).collect();
        if labels.len() <= self.m {
            return self.counts.get(key.as_slice()).copied().unwrap_or(0) as f64;
        }
        // Chain of m-windows over (m-1)-overlaps.
        let m = self.m;
        let first = self.counts.get(&key[..m]).copied().unwrap_or(0) as f64;
        if first == 0.0 {
            return 0.0;
        }
        let mut est = first;
        for i in 1..=(key.len() - m) {
            let window = self.counts.get(&key[i..i + m]).copied().unwrap_or(0) as f64;
            if window == 0.0 {
                return 0.0;
            }
            let overlap = self.counts.get(&key[i..i + m - 1]).copied().unwrap_or(0) as f64;
            if overlap == 0.0 {
                return 0.0;
            }
            est *= window / overlap;
        }
        est
    }
}

#[cfg(test)]
mod tests {
    use tl_xml::{parse_document, ParseOptions};

    use super::*;

    fn doc(s: &str) -> Document {
        parse_document(s.as_bytes(), ParseOptions::default()).unwrap()
    }

    fn ids(d: &Document, names: &[&str]) -> Vec<LabelId> {
        names.iter().map(|n| d.labels().get(n).unwrap()).collect()
    }

    #[test]
    fn short_paths_are_exact() {
        let d = doc("<a><b><c/><c/></b><b><c/></b></a>");
        let t = MarkovTable::build(&d, 3);
        assert_eq!(t.estimate_path(&ids(&d, &["a"])), 1.0);
        assert_eq!(t.estimate_path(&ids(&d, &["b"])), 2.0);
        assert_eq!(t.estimate_path(&ids(&d, &["a", "b"])), 2.0);
        assert_eq!(t.estimate_path(&ids(&d, &["b", "c"])), 3.0);
        assert_eq!(t.estimate_path(&ids(&d, &["a", "b", "c"])), 3.0);
    }

    #[test]
    fn long_paths_use_markov_chain() {
        // Chain of d's, depth 6, order 2:
        // s(d/d) = 5, s(d) = 6 => s(d^4) = 5 * (5/6)^2.
        let d = doc("<d><d><d><d><d><d/></d></d></d></d></d>");
        let t = MarkovTable::build(&d, 2);
        let dl = ids(&d, &["d"])[0];
        let est = t.estimate_path(&[dl; 4]);
        let expected = 5.0 * (5.0 / 6.0) * (5.0 / 6.0);
        assert!(
            (est - expected).abs() < 1e-9,
            "est {est} expected {expected}"
        );
    }

    #[test]
    fn missing_window_is_zero() {
        let d = doc("<a><b/><c/></a>");
        let t = MarkovTable::build(&d, 2);
        assert_eq!(t.estimate_path(&ids(&d, &["b", "c"])), 0.0);
        assert_eq!(t.estimate_path(&ids(&d, &["a", "b", "c"])), 0.0);
    }

    #[test]
    fn order_bounds_storage() {
        let d = doc("<a><b><c><d/></c></b></a>");
        let t2 = MarkovTable::build(&d, 2);
        let t3 = MarkovTable::build(&d, 3);
        assert!(t3.len() > t2.len());
        assert!(t2.lookup(&ids(&d, &["a", "b", "c"])).is_none());
        assert_eq!(t3.lookup(&ids(&d, &["a", "b", "c"])), Some(1));
    }

    #[test]
    fn markov_exactness_on_memoryless_data() {
        // Every b has exactly 2 c's; every a exactly 3 b's: chain estimate
        // of a/b/c is exact.
        let mut s = String::from("<r>");
        for _ in 0..4 {
            s.push_str("<a>");
            for _ in 0..3 {
                s.push_str("<b><c/><c/></b>");
            }
            s.push_str("</a>");
        }
        s.push_str("</r>");
        let d = doc(&s);
        let t = MarkovTable::build(&d, 2);
        let est = t.estimate_path(&ids(&d, &["r", "a", "b", "c"]));
        assert!((est - 24.0).abs() < 1e-9, "est = {est}");
    }

    #[test]
    fn empty_path_is_zero() {
        let d = doc("<a/>");
        let t = MarkovTable::build(&d, 2);
        assert_eq!(t.estimate_path(&[]), 0.0);
    }
}
