//! A TreeSketches-style graph synopsis (after Polyzotis, Garofalakis,
//! Ioannidis, SIGMOD 2004).
//!
//! The synopsis partitions document nodes into clusters and keeps, per
//! cluster pair, the *average* number of children a member of the source
//! cluster has in the target cluster. Construction follows the original's
//! bottom-up shape: first compute the **count-stable** partition (recursive
//! bisimulation by child-cluster counts — one cluster per distinct subtree
//! count-structure, a synopsis that reconstructs the document exactly),
//! then repeatedly merge the two most count-similar same-label clusters
//! (Ward-style distance over per-target average child counts) until the
//! synopsis fits the byte budget. Coarsening granularity
//! is therefore driven purely by the memory budget, as the paper describes
//! ("clusters the similar fragments of XML data together...the granularity
//! of the clustering depends on the memory budget"), and the construction
//! pays the per-merge candidate evaluation cost that makes Table 3's
//! TreeSketches column expensive.
//!
//! Estimation walks the query top-down: the expected number of matches of
//! a query subtree per member of a cluster is the product over query
//! children of the sum over outgoing edges (to clusters with the child's
//! label) of `avg-count × per-member-expectation(child, target)`. Averaging
//! across merged clusters is the variance blow-up §5.3 / Figure 11
//! analyzes.

use tl_twig::{Twig, TwigNodeId};
use tl_xml::{DocIndex, Document, FxHashMap, FxHashSet, LabelId, NodeId};

/// Construction parameters.
#[derive(Clone, Copy, Debug)]
pub struct SketchConfig {
    /// Byte budget for the synopsis; the paper's experiments allot 50 KB.
    pub budget_bytes: usize,
}

impl Default for SketchConfig {
    fn default() -> Self {
        Self {
            budget_bytes: 50 * 1024,
        }
    }
}

/// The built synopsis.
#[derive(Clone, Debug)]
pub struct TreeSketch {
    /// Per-cluster label.
    labels: Vec<LabelId>,
    /// Per-cluster member count.
    sizes: Vec<u64>,
    /// Per-cluster outgoing edges `(target cluster, average child count)`.
    edges: Vec<Vec<(u32, f64)>>,
    /// Clusters grouped by label (indexed by `LabelId::index()`).
    by_label: Vec<Vec<u32>>,
}

impl TreeSketch {
    /// Builds the synopsis for `doc` under `config.budget_bytes`.
    pub fn build(doc: &Document, config: SketchConfig) -> Self {
        Self::build_with_index(doc, &DocIndex::new(doc), config)
    }

    /// [`build`](TreeSketch::build) over a pre-built document index; the
    /// count-stable partition pass reads children from its CSR slices.
    pub fn build_with_index(doc: &Document, index: &DocIndex, config: SketchConfig) -> Self {
        Agglomerator::new(doc, index).run(config.budget_bytes)
    }

    /// [`build_with_index`](TreeSketch::build_with_index), timing the
    /// synopsis construction under the `baseline.build` span.
    pub fn build_observed(
        doc: &Document,
        index: &DocIndex,
        config: SketchConfig,
        rec: &dyn tl_obs::Recorder,
    ) -> Self {
        let _span = tl_obs::SpanGuard::start(rec, tl_obs::names::SPAN_BASELINE_BUILD);
        Self::build_with_index(doc, index, config)
    }

    /// Number of clusters.
    pub fn cluster_count(&self) -> usize {
        self.labels.len()
    }

    /// Synopsis footprint in bytes: per cluster a label + count
    /// (12 bytes), per edge a target + weight (12 bytes).
    pub fn heap_bytes(&self) -> usize {
        self.labels.len() * 12 + self.edges.iter().map(|e| e.len() * 12).sum::<usize>()
    }

    /// Estimates the selectivity of `twig`.
    pub fn estimate(&self, twig: &Twig) -> f64 {
        let root_label = twig.label(twig.root());
        let Some(clusters) = self.by_label.get(root_label.index()) else {
            return 0.0;
        };
        let mut memo: FxHashMap<(TwigNodeId, u32), f64> = FxHashMap::default();
        clusters
            .iter()
            .map(|&c| {
                self.sizes[c as usize] as f64 * self.per_member(twig, twig.root(), c, &mut memo)
            })
            .sum()
    }

    /// Expected matches of the subtree at `q` per member of cluster `c`
    /// (the member plays the role of `q`'s image).
    fn per_member(
        &self,
        twig: &Twig,
        q: TwigNodeId,
        c: u32,
        memo: &mut FxHashMap<(TwigNodeId, u32), f64>,
    ) -> f64 {
        if twig.children(q).is_empty() {
            return 1.0;
        }
        if let Some(&v) = memo.get(&(q, c)) {
            return v;
        }
        let mut product = 1.0f64;
        for &qc in twig.children(q) {
            let want = twig.label(qc);
            let mut sum = 0.0f64;
            for &(target, avg) in &self.edges[c as usize] {
                if self.labels[target as usize] == want {
                    sum += avg * self.per_member(twig, qc, target, memo);
                }
            }
            if sum == 0.0 {
                memo.insert((q, c), 0.0);
                return 0.0;
            }
            product *= sum;
        }
        memo.insert((q, c), product);
        product
    }
}

/// Bottom-up agglomerative construction state.
struct Agglomerator {
    /// Cluster label.
    label_of: Vec<LabelId>,
    /// Member count per cluster.
    size: Vec<u64>,
    /// Whether the cluster has not been merged away.
    alive: Vec<bool>,
    /// Total child-edge weight per (cluster, target cluster).
    out: Vec<FxHashMap<u32, u64>>,
    /// Source clusters with an edge into this cluster.
    incoming: Vec<FxHashSet<u32>>,
    /// Alive clusters per label, kept sorted by mean-fanout key.
    groups: FxHashMap<u32, Vec<u32>>,
}

impl Agglomerator {
    fn new(doc: &Document, index: &DocIndex) -> Self {
        // Count-stable initial partition: the cluster of a node is
        // determined by its label and the *multiset of child clusters with
        // counts*, computed in one bottom-up pass (children have larger
        // arena indices, so a reverse pre-order scan sees them first).
        let mut sig_ids: FxHashMap<(u32, Vec<(u32, u32)>), u32> = FxHashMap::default();
        let mut assignment: Vec<u32> = vec![0; doc.len()];
        let mut label_of: Vec<LabelId> = Vec::new();
        let mut size: Vec<u64> = Vec::new();
        for raw in (0..doc.len() as u32).rev() {
            let v = NodeId(raw);
            let mut counts: FxHashMap<u32, u32> = FxHashMap::default();
            for &u in index.children(v) {
                *counts.entry(assignment[u.index()]).or_insert(0) += 1;
            }
            let mut sig: Vec<(u32, u32)> = counts.into_iter().collect();
            sig.sort_unstable();
            let next = label_of.len() as u32;
            let id = *sig_ids.entry((doc.label(v).0, sig)).or_insert(next);
            if id == next {
                label_of.push(doc.label(v));
                size.push(0);
            }
            size[id as usize] += 1;
            assignment[v.index()] = id;
        }
        let n = label_of.len();
        let mut out: Vec<FxHashMap<u32, u64>> = vec![FxHashMap::default(); n];
        let mut incoming: Vec<FxHashSet<u32>> = vec![FxHashSet::default(); n];
        for v in doc.pre_order() {
            if let Some(p) = doc.parent(v) {
                let from = assignment[p.index()];
                let to = assignment[v.index()];
                *out[from as usize].entry(to).or_insert(0) += 1;
                incoming[to as usize].insert(from);
            }
        }
        let mut groups: FxHashMap<u32, Vec<u32>> = FxHashMap::default();
        for (c, l) in label_of.iter().enumerate() {
            groups.entry(l.0).or_default().push(c as u32);
        }
        let mut this = Self {
            label_of,
            size,
            alive: vec![true; n],
            out,
            incoming,
            groups,
        };
        for ids in this.groups.clone().values() {
            this.sort_group_of(ids[0]);
        }
        this
    }

    /// Mean total fanout of a cluster — the 1-D ordering key that limits
    /// merge candidates to count-adjacent clusters.
    fn key(&self, c: u32) -> f64 {
        let total: u64 = self.out[c as usize].values().sum();
        total as f64 / self.size[c as usize] as f64
    }

    fn sort_group_of(&mut self, member: u32) {
        let label = self.label_of[member as usize].0;
        let mut group = self.groups.remove(&label).unwrap_or_default();
        group.retain(|&c| self.alive[c as usize]);
        group.sort_by(|&a, &b| {
            self.key(a)
                .partial_cmp(&self.key(b))
                .expect("keys are finite")
                .then(a.cmp(&b))
        });
        self.groups.insert(label, group);
    }

    /// Ward-style distance between two same-label clusters over their
    /// per-target average child counts.
    fn distance(&self, a: u32, b: u32) -> f64 {
        let (na, nb) = (self.size[a as usize] as f64, self.size[b as usize] as f64);
        let oa = &self.out[a as usize];
        let ob = &self.out[b as usize];
        let mut sum = 0.0f64;
        for (&t, &w) in oa {
            let va = w as f64 / na;
            let vb = ob.get(&t).copied().unwrap_or(0) as f64 / nb;
            sum += (va - vb) * (va - vb);
        }
        for (&t, &w) in ob {
            if !oa.contains_key(&t) {
                let vb = w as f64 / nb;
                sum += vb * vb;
            }
        }
        (na * nb / (na + nb)) * sum
    }

    /// Current synopsis footprint under the 12-bytes-per-record model.
    fn current_bytes(&self) -> usize {
        let clusters = self.alive.iter().filter(|&&a| a).count();
        let edges: usize = self
            .out
            .iter()
            .zip(&self.alive)
            .filter(|(_, &a)| a)
            .map(|(o, _)| o.len())
            .sum();
        clusters * 12 + edges * 12
    }

    /// Merges cluster `b` into `a` (same label), rewiring edges.
    fn merge(&mut self, a: u32, b: u32) {
        debug_assert!(a != b && self.alive[a as usize] && self.alive[b as usize]);
        self.size[a as usize] += self.size[b as usize];
        // Outgoing edges of b move to a (b's self-loop becomes a's).
        let b_out = std::mem::take(&mut self.out[b as usize]);
        for (t, w) in b_out {
            let t = if t == b { a } else { t };
            *self.out[a as usize].entry(t).or_insert(0) += w;
            self.incoming[t as usize].remove(&b);
            self.incoming[t as usize].insert(a);
        }
        // Incoming edges of b re-point to a.
        let b_in = std::mem::take(&mut self.incoming[b as usize]);
        for s in b_in {
            if s == b {
                continue; // self-loop already handled above
            }
            if let Some(w) = self.out[s as usize].remove(&b) {
                *self.out[s as usize].entry(a).or_insert(0) += w;
            }
            self.incoming[a as usize].insert(s);
        }
        self.incoming[a as usize].remove(&b);
        self.alive[b as usize] = false;
        self.sort_group_of(a);
    }

    /// The agglomeration loop: merge most-similar adjacent same-label pairs
    /// until the byte budget is met or only one cluster per label remains.
    fn run(mut self, budget_bytes: usize) -> TreeSketch {
        while self.current_bytes() > budget_bytes {
            // Scan adjacent pairs in every label group for the global best.
            let mut best: Option<(f64, u32, u32)> = None;
            for group in self.groups.values() {
                for pair in group.windows(2) {
                    let d = self.distance(pair[0], pair[1]);
                    if best.is_none_or(|(bd, _, _)| d < bd) {
                        best = Some((d, pair[0], pair[1]));
                    }
                }
            }
            match best {
                Some((_, a, b)) => self.merge(a, b),
                None => break, // One cluster per label: cannot coarsen further.
            }
        }
        self.finish()
    }

    /// Reindexes alive clusters and converts edge totals into averages.
    fn finish(self) -> TreeSketch {
        let mut remap = vec![u32::MAX; self.label_of.len()];
        let mut labels = Vec::new();
        let mut sizes = Vec::new();
        for (c, &alive) in self.alive.iter().enumerate() {
            if alive {
                remap[c] = labels.len() as u32;
                labels.push(self.label_of[c]);
                sizes.push(self.size[c]);
            }
        }
        let mut edges: Vec<Vec<(u32, f64)>> = vec![Vec::new(); labels.len()];
        for (c, o) in self.out.iter().enumerate() {
            if !self.alive[c] {
                continue;
            }
            let nc = remap[c] as usize;
            let size = self.size[c] as f64;
            let mut e: Vec<(u32, f64)> = o
                .iter()
                .map(|(&t, &w)| (remap[t as usize], w as f64 / size))
                .collect();
            debug_assert!(e.iter().all(|&(t, _)| t != u32::MAX));
            e.sort_unstable_by_key(|&(t, _)| t);
            edges[nc] = e;
        }
        let n_labels = labels.iter().map(|l| l.index() + 1).max().unwrap_or(0);
        let mut by_label = vec![Vec::new(); n_labels];
        for (c, l) in labels.iter().enumerate() {
            by_label[l.index()].push(c as u32);
        }
        TreeSketch {
            labels,
            sizes,
            edges,
            by_label,
        }
    }
}

#[cfg(test)]
mod tests {
    use tl_twig::parse_twig_in;
    use tl_xml::{parse_document, ParseOptions};

    use super::*;

    fn doc(s: &str) -> Document {
        parse_document(s.as_bytes(), ParseOptions::default()).unwrap()
    }

    /// A synopsis merged all the way down to one cluster per label.
    fn label_split(d: &Document) -> TreeSketch {
        TreeSketch::build(d, SketchConfig { budget_bytes: 0 })
    }

    #[test]
    fn figure11_average_overestimates() {
        let d = tl_datagen::figure11_document();
        let sk = label_split(&d);
        let q = parse_twig_in("b[c][d]", d.labels()).unwrap();
        let est = sk.estimate(&q);
        // count(b)=3, avg c per b = 4/3, avg d per b = 2 => 8; true is 4.
        assert!((est - 8.0).abs() < 1e-9, "est = {est}");
    }

    #[test]
    fn paths_are_exact_with_label_clusters() {
        // Per-edge averages telescope exactly on pure path counts.
        let d = doc("<r><a><b/><b/></a><a><b/></a></r>");
        let sk = label_split(&d);
        let q = parse_twig_in("r/a/b", d.labels()).unwrap();
        assert!((sk.estimate(&q) - 3.0).abs() < 1e-9);
        let q2 = parse_twig_in("a/b", d.labels()).unwrap();
        assert!((sk.estimate(&q2) - 3.0).abs() < 1e-9);
    }

    #[test]
    fn missing_edges_give_zero() {
        let d = doc("<a><b/><c/></a>");
        let sk = label_split(&d);
        let q = parse_twig_in("b/c", d.labels()).unwrap();
        assert_eq!(sk.estimate(&q), 0.0);
        let q2 = parse_twig_in("a[b][c]", d.labels()).unwrap();
        assert!(sk.estimate(&q2) > 0.0);
    }

    #[test]
    fn generous_budget_keeps_the_exact_partition() {
        // With budget for the exact signature partition, no merge happens
        // and estimates of in-signature twigs are exact.
        let d = tl_datagen::figure11_document();
        let fine = TreeSketch::build(
            &d,
            SketchConfig {
                budget_bytes: 1 << 20,
            },
        );
        let coarse = label_split(&d);
        assert!(fine.cluster_count() > coarse.cluster_count());
        let q = parse_twig_in("b[c][d]", d.labels()).unwrap();
        assert!(
            (fine.estimate(&q) - 4.0).abs() < 1e-9,
            "exact partition is exact"
        );
    }

    #[test]
    fn budget_bounds_bytes() {
        let d = tl_datagen::Dataset::Xmark.generate(tl_datagen::GenConfig {
            seed: 8,
            target_elements: 5_000,
        });
        let budget = 2_000;
        let sk = TreeSketch::build(
            &d,
            SketchConfig {
                budget_bytes: budget,
            },
        );
        assert!(sk.heap_bytes() <= budget, "bytes = {}", sk.heap_bytes());
    }

    #[test]
    fn merging_is_monotone_in_budget() {
        let d = tl_datagen::Dataset::Psd.generate(tl_datagen::GenConfig {
            seed: 9,
            target_elements: 4_000,
        });
        let small = TreeSketch::build(
            &d,
            SketchConfig {
                budget_bytes: 1_000,
            },
        );
        let large = TreeSketch::build(
            &d,
            SketchConfig {
                budget_bytes: 20_000,
            },
        );
        assert!(small.cluster_count() <= large.cluster_count());
        assert!(small.heap_bytes() <= large.heap_bytes());
    }

    #[test]
    fn single_node_queries_count_cluster_sizes() {
        let d = doc("<a><b/><b/><b/></a>");
        let sk = label_split(&d);
        let q = parse_twig_in("b", d.labels()).unwrap();
        assert_eq!(sk.estimate(&q), 3.0);
    }

    #[test]
    fn fully_regular_data_has_tiny_exact_synopsis() {
        // Identical records: one signature per label, zero merges needed,
        // exact estimates.
        let mut s = String::from("<r>");
        for _ in 0..50 {
            s.push_str("<a><b/><c/></a>");
        }
        s.push_str("</r>");
        let d = doc(&s);
        let sk = TreeSketch::build(
            &d,
            SketchConfig {
                budget_bytes: 1 << 20,
            },
        );
        assert_eq!(sk.cluster_count(), 4);
        let q = parse_twig_in("a[b][c]", d.labels()).unwrap();
        assert!((sk.estimate(&q) - 50.0).abs() < 1e-9);
    }

    #[test]
    fn recursive_labels_merge_safely() {
        // Self-loop rewiring: nested same-label elements merged to one
        // cluster keep the s->s edge.
        let d = doc("<s><s><s/><s/></s><s/></s>");
        let sk = label_split(&d);
        assert_eq!(sk.cluster_count(), 1);
        let q = parse_twig_in("s/s", d.labels()).unwrap();
        // 5 nodes, 4 s->s edges; one cluster: 5 * (4/5) = 4 — exact here.
        assert!((sk.estimate(&q) - 4.0).abs() < 1e-9);
    }

    #[test]
    fn estimates_stay_finite_under_heavy_merging() {
        let d = tl_datagen::Dataset::Imdb.generate(tl_datagen::GenConfig {
            seed: 10,
            target_elements: 4_000,
        });
        let sk = TreeSketch::build(
            &d,
            SketchConfig {
                budget_bytes: 1_500,
            },
        );
        let q = parse_twig_in("movie[title][year]", d.labels()).unwrap();
        let est = sk.estimate(&q);
        assert!(est.is_finite() && est >= 0.0);
    }
}
