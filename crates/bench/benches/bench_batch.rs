//! Batched engine vs per-query estimation on an overlapping 200-query
//! workload — the acceptance benchmark for the shared cross-query
//! sub-twig cache. The interesting comparison is `per_query_loop` (fresh
//! memo per call, today's `estimate()` path) against `engine_warm_*`
//! (persistent sharded cache, batch API): on a workload with structural
//! overlap the warm engine should be at least 2x faster.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use tl_datagen::{Dataset, GenConfig};
use tl_workload::positive_workload;
use treelattice::{
    BuildConfig, EngineConfig, EstimateOptions, EstimationEngine, Estimator, TreeLattice,
};

fn bench_batch(c: &mut Criterion) {
    let doc = Dataset::Xmark.generate(GenConfig {
        seed: 5,
        target_elements: 20_000,
    });
    let lattice = TreeLattice::build(&doc, &BuildConfig::with_k(4));
    let opts = EstimateOptions::default();
    let est = Estimator::RecursiveVoting;

    // 200 positive queries drawn from four sizes over the same corpus:
    // heavy sub-twig overlap, as an optimizer's plan enumeration produces.
    let mut twigs = Vec::new();
    for (size, seed) in [(6usize, 9u64), (7, 10), (8, 11), (9, 12)] {
        twigs.extend(
            positive_workload(&doc, size, 60, seed)
                .cases
                .into_iter()
                .map(|c| c.twig),
        );
    }
    assert!(
        twigs.len() >= 200,
        "workload came up short: {}",
        twigs.len()
    );
    twigs.truncate(200);

    let mut group = c.benchmark_group("batch200");
    group.throughput(Throughput::Elements(twigs.len() as u64));

    group.bench_function("per_query_loop", |b| {
        b.iter(|| {
            let mut acc = 0.0f64;
            for t in &twigs {
                acc += lattice.estimate_with(t, est, &opts);
            }
            std::hint::black_box(acc)
        })
    });

    group.bench_function("engine_cold_t4", |b| {
        b.iter(|| {
            let engine = EstimationEngine::new(EngineConfig {
                shards: 16,
                threads: 4,
            });
            std::hint::black_box(engine.estimate_batch(&lattice, &twigs, est, &opts))
        })
    });

    for threads in [1usize, 4] {
        let engine = EstimationEngine::new(EngineConfig {
            shards: 16,
            threads,
        });
        // Warm the shared cache once; the measured loop is the warm path.
        engine.estimate_batch(&lattice, &twigs, est, &opts);
        group.bench_function(format!("engine_warm_t{threads}"), |b| {
            b.iter(|| std::hint::black_box(engine.estimate_batch(&lattice, &twigs, est, &opts)))
        });
        let stats = engine.stats();
        eprintln!(
            "engine_warm_t{threads}: hit rate {:.1}% ({} hits / {} misses, {} entries, {} KiB)",
            100.0 * stats.hit_rate(),
            stats.hits,
            stats.misses,
            stats.entries,
            stats.bytes / 1024
        );
    }

    group.finish();
}

criterion_group!(benches, bench_batch);
criterion_main!(benches);
