//! Canonicalization and key hashing of twigs.

use criterion::{criterion_group, criterion_main, Criterion};
use tl_datagen::{Dataset, GenConfig};
use tl_twig::canonical::{canonicalize, key_of};
use tl_workload::positive_workload;

fn bench_canonical(c: &mut Criterion) {
    let doc = Dataset::Imdb.generate(GenConfig {
        seed: 6,
        target_elements: 15_000,
    });
    let mut group = c.benchmark_group("canonical");
    for size in [4usize, 8] {
        let w = positive_workload(&doc, size, 30, 3);
        let twigs: Vec<_> = w.cases.into_iter().map(|c| c.twig).collect();
        assert!(!twigs.is_empty());
        group.bench_function(format!("key_of_size{size}"), |b| {
            b.iter(|| {
                let mut bytes = 0usize;
                for t in &twigs {
                    bytes += key_of(t).as_bytes().len();
                }
                std::hint::black_box(bytes)
            })
        });
        group.bench_function(format!("canonicalize_size{size}"), |b| {
            b.iter(|| {
                let mut nodes = 0usize;
                for t in &twigs {
                    nodes += canonicalize(t).len();
                }
                std::hint::black_box(nodes)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_canonical);
criterion_main!(benches);
