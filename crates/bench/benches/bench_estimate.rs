//! Estimation latency: recursive / voting / fix-sized / synopsis
//! (the microscopic counterpart of Figure 9).

use criterion::{criterion_group, criterion_main, Criterion};
use tl_baselines::{SketchConfig, TreeSketch};
use tl_datagen::{Dataset, GenConfig};
use tl_workload::positive_workload;
use treelattice::{BuildConfig, EstimateOptions, Estimator, TreeLattice};

fn bench_estimate(c: &mut Criterion) {
    let doc = Dataset::Xmark.generate(GenConfig {
        seed: 5,
        target_elements: 20_000,
    });
    let lattice = TreeLattice::build(&doc, &BuildConfig::with_k(4));
    let sketch = TreeSketch::build(&doc, SketchConfig::default());
    let opts = EstimateOptions::default();

    let mut group = c.benchmark_group("estimate");
    for size in [6usize, 8] {
        let w = positive_workload(&doc, size, 15, 9);
        assert!(!w.cases.is_empty());
        for est in Estimator::ALL {
            group.bench_function(format!("{}_size{size}", est.name()), |b| {
                b.iter(|| {
                    let mut acc = 0.0f64;
                    for case in &w.cases {
                        acc += lattice.estimate_with(&case.twig, est, &opts);
                    }
                    std::hint::black_box(acc)
                })
            });
        }
        group.bench_function(format!("treesketch_size{size}"), |b| {
            b.iter(|| {
                let mut acc = 0.0f64;
                for case in &w.cases {
                    acc += sketch.estimate(&case.twig);
                }
                std::hint::black_box(acc)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_estimate);
criterion_main!(benches);
