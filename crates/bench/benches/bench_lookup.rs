//! Summary lookup store ablation: hash table vs prefix trie (§4.2).
//!
//! The paper reports trying a prefix-tree store for the lattice statistics
//! and finding the hash table faster; this bench makes the claim
//! measurable on this implementation.

use criterion::{criterion_group, criterion_main, Criterion};
use tl_datagen::{Dataset, GenConfig};
use tl_twig::TwigKey;
use treelattice::trie::trie_of_summary;
use treelattice::{BuildConfig, TreeLattice};

fn bench_lookup(c: &mut Criterion) {
    let doc = Dataset::Nasa.generate(GenConfig {
        seed: 8,
        target_elements: 20_000,
    });
    let lattice = TreeLattice::build(&doc, &BuildConfig::with_k(4));
    let summary = lattice.summary();
    let trie = trie_of_summary(summary);
    let keys: Vec<TwigKey> = summary.iter().map(|(k, _)| k.clone()).collect();
    assert!(!keys.is_empty());

    let mut group = c.benchmark_group("summary_lookup");
    group.bench_function("hash_table", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for key in &keys {
                acc = acc.wrapping_add(summary.stored(key).unwrap_or(0));
            }
            std::hint::black_box(acc)
        })
    });
    group.bench_function("prefix_trie", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for key in &keys {
                acc = acc.wrapping_add(trie.get(key.as_bytes()).unwrap_or(0));
            }
            std::hint::black_box(acc)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_lookup);
criterion_main!(benches);
