//! Exact twig-match counting (ground-truth selectivity).
//!
//! The unsuffixed benches time the production dense CSR kernel (the names
//! predate the rewrite, so criterion's history tracks the speedup); the
//! `_reference` benches time the preserved hash-map kernel on identical
//! workloads, making the old-vs-new ratio visible inside a single run.

use criterion::{criterion_group, criterion_main, Criterion};
use tl_datagen::{Dataset, GenConfig};
use tl_twig::{MatchCounter, ReferenceMatchCounter};
use tl_workload::positive_workload_with_index;
use tl_xml::DocIndex;

fn bench_match(c: &mut Criterion) {
    let doc = Dataset::Xmark.generate(GenConfig {
        seed: 3,
        target_elements: 30_000,
    });
    let index = DocIndex::new(&doc);
    let counter = MatchCounter::with_index(&doc, &index);
    let reference = ReferenceMatchCounter::new(&doc);
    let mut group = c.benchmark_group("exact_match");
    for size in [3usize, 5, 8] {
        let w = positive_workload_with_index(&doc, &index, size, 10, 5);
        assert!(!w.cases.is_empty());
        let dense_total: u64 = w.cases.iter().map(|c| counter.count(&c.twig)).sum();
        let reference_total: u64 = w.cases.iter().map(|c| reference.count(&c.twig)).sum();
        assert_eq!(
            dense_total, reference_total,
            "kernels disagree at size {size}"
        );
        group.bench_function(format!("xmark_size{size}"), |b| {
            b.iter(|| {
                let mut total = 0u64;
                for case in &w.cases {
                    total = total.wrapping_add(counter.count(&case.twig));
                }
                std::hint::black_box(total)
            })
        });
        group.bench_function(format!("xmark_size{size}_reference"), |b| {
            b.iter(|| {
                let mut total = 0u64;
                for case in &w.cases {
                    total = total.wrapping_add(reference.count(&case.twig));
                }
                std::hint::black_box(total)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_match);
criterion_main!(benches);
