//! Exact twig-match counting (ground-truth selectivity).

use criterion::{criterion_group, criterion_main, Criterion};
use tl_datagen::{Dataset, GenConfig};
use tl_twig::MatchCounter;
use tl_workload::positive_workload;

fn bench_match(c: &mut Criterion) {
    let doc = Dataset::Xmark.generate(GenConfig {
        seed: 3,
        target_elements: 30_000,
    });
    let counter = MatchCounter::new(&doc);
    let mut group = c.benchmark_group("exact_match");
    for size in [3usize, 5, 8] {
        let w = positive_workload(&doc, size, 10, 5);
        assert!(!w.cases.is_empty());
        group.bench_function(format!("xmark_size{size}"), |b| {
            b.iter(|| {
                let mut total = 0u64;
                for case in &w.cases {
                    total = total.wrapping_add(counter.count(&case.twig));
                }
                std::hint::black_box(total)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_match);
criterion_main!(benches);
