//! Lattice construction (mining) cost per lattice order.

use criterion::{criterion_group, criterion_main, Criterion};
use tl_datagen::{Dataset, GenConfig};
use tl_miner::{mine, MineConfig};

fn bench_mine(c: &mut Criterion) {
    let mut group = c.benchmark_group("mine");
    group.sample_size(10);
    for ds in [Dataset::Xmark, Dataset::Psd] {
        let doc = ds.generate(GenConfig {
            seed: 2,
            target_elements: 20_000,
        });
        for k in [3usize, 4] {
            group.bench_function(format!("{}_k{k}", ds.name()), |b| {
                b.iter(|| {
                    let report = mine(
                        &doc,
                        MineConfig {
                            max_size: k,
                            threads: 1,
                        },
                    );
                    std::hint::black_box(report.lattice.len())
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_mine);
criterion_main!(benches);
