//! XML parsing throughput on serialized corpora.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use tl_datagen::{Dataset, GenConfig};
use tl_xml::{parse_document, writer::document_to_string, ParseOptions};

fn bench_parse(c: &mut Criterion) {
    let mut group = c.benchmark_group("parse");
    for ds in [Dataset::Xmark, Dataset::Nasa] {
        let doc = ds.generate(GenConfig {
            seed: 1,
            target_elements: 20_000,
        });
        let text = document_to_string(&doc);
        group.throughput(Throughput::Bytes(text.len() as u64));
        group.bench_function(ds.name(), |b| {
            b.iter(|| {
                let parsed =
                    parse_document(text.as_bytes(), ParseOptions::default()).expect("parses");
                std::hint::black_box(parsed.len())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_parse);
criterion_main!(benches);
