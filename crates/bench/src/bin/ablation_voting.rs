//! Experiment runner; see `tl_bench::experiments::ablation`.

fn main() {
    let cfg = tl_bench::ExpConfig::from_args();
    tl_bench::experiments::ablation::run_voting(&cfg);
}
