//! Runs the complete evaluation suite (every table and figure) in order.

fn main() {
    let cfg = tl_bench::ExpConfig::from_args();
    let start = std::time::Instant::now();
    tl_bench::experiments::run_all(&cfg);
    println!(
        "all experiments finished in {:.1}s; CSVs are under results/",
        start.elapsed().as_secs_f64()
    );
}
