//! Corpus-scale sharded mining benchmark runner; see
//! `tl_bench::experiments::corpus`.
//!
//! Mines the fixed 64-document XMark corpus (~800 000 elements, two orders
//! of magnitude over the single-document fixtures) sequentially and with
//! 2 / all-core sharding, asserts every sharded build is bit-identical to
//! the sequential one, and writes construction scaling, merged-summary
//! size, and mmap cold-lookup latency to `BENCH_corpus.json`.

fn main() {
    tl_bench::experiments::corpus::run(&tl_bench::experiments::corpus::bench_config());
}
