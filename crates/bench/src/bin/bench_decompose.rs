//! Decomposition-path comparison runner; see
//! `tl_bench::experiments::decompose`.
//!
//! Runs the fixed acceptance fixture (XMark scale 8000, seed 42, 30
//! queries per size, k 4) so the committed `BENCH_decompose.json` always
//! describes the same workload, regardless of which machine produced it.

fn main() {
    tl_bench::experiments::decompose::run(&tl_bench::experiments::decompose::bench_config());
}
