//! Kernel comparison runner; see `tl_bench::experiments::matcher`.

fn main() {
    let cfg = tl_bench::ExpConfig::from_args();
    tl_bench::experiments::matcher::run(&cfg);
}
