//! Injected-crash recovery matrix; see `tl_bench::experiments::recovery`.
//!
//! Sweeps every durability fail-point site under every injection rule,
//! comparing each recovery bit-for-bit against a never-crashed replica,
//! and writes `BENCH_recovery.json`.

use tl_bench::experiments::recovery;

fn main() {
    recovery::run(&recovery::bench_config());
}
