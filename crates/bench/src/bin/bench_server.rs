//! Closed-loop server soak; see `tl_bench::experiments::server`.
//!
//! Runs the full million-request mixed-tenant load against an in-process
//! `tl-server` and writes `BENCH_server.json`.

use tl_bench::experiments::server;

fn main() {
    server::run(&server::bench_config());
}
