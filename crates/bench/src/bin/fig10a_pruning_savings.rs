//! Experiment runner; see `tl_bench::experiments::fig10`.

fn main() {
    let cfg = tl_bench::ExpConfig::from_args();
    tl_bench::experiments::fig10::run_a(&cfg);
}
