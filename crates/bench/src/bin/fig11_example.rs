//! Experiment runner; see `tl_bench::experiments::fig11`.

fn main() {
    let cfg = tl_bench::ExpConfig::from_args();
    tl_bench::experiments::fig11::run(&cfg);
}
