//! Experiment runner; see `tl_bench::experiments::fig7`.

fn main() {
    let cfg = tl_bench::ExpConfig::from_args();
    tl_bench::experiments::fig7::run(&cfg);
}
