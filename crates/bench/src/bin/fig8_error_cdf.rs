//! Experiment runner; see `tl_bench::experiments::fig8`.

fn main() {
    let cfg = tl_bench::ExpConfig::from_args();
    tl_bench::experiments::fig8::run(&cfg);
}
