//! Experiment runner; see `tl_bench::experiments::fig9`.

fn main() {
    let cfg = tl_bench::ExpConfig::from_args();
    tl_bench::experiments::fig9::run(&cfg);
}
