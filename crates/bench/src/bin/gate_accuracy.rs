//! CI accuracy gate; thin wrapper over `tl_bench::gate_runner` (the
//! `gates` binary runs the same code path).
//!
//! ```text
//! gate_accuracy [--thresholds <path>] [--write-thresholds]
//! ```
//!
//! Measures estimator accuracy and engine cache hit rate on the fixed
//! deterministic fixture, then compares against the committed thresholds
//! (default `tests/gates/accuracy.json`). Exits 1 on any regression.
//! `--write-thresholds` regenerates the thresholds file from the current
//! build instead of checking.

use std::path::PathBuf;

use tl_bench::gate_runner::{run_gate, Gate, GateRun};

fn main() {
    let mut opts = GateRun::default();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--thresholds" => match args.next() {
                Some(p) => opts.thresholds = Some(PathBuf::from(p)),
                None => usage("--thresholds needs a value"),
            },
            "--write-thresholds" => opts.write = true,
            other => usage(&format!("unknown flag `{other}`")),
        }
    }
    std::process::exit(run_gate(Gate::Accuracy, &opts));
}

fn usage(msg: &str) -> ! {
    eprintln!("error: {msg}");
    eprintln!("usage: gate_accuracy [--thresholds <path>] [--write-thresholds]");
    std::process::exit(2);
}
