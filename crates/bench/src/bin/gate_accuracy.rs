//! CI accuracy gate; see `tl_bench::gates`.
//!
//! ```text
//! gate_accuracy [--thresholds <path>] [--write-thresholds]
//! ```
//!
//! Measures estimator accuracy and engine cache hit rate on the fixed
//! deterministic fixture, then compares against the committed thresholds
//! (default `tests/gates/accuracy.json`). Exits 1 on any regression.
//! `--write-thresholds` regenerates the thresholds file from the current
//! build instead of checking.

use std::path::PathBuf;

use tl_bench::gates;

fn main() {
    let mut thresholds: Option<PathBuf> = None;
    let mut write = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--thresholds" => match args.next() {
                Some(p) => thresholds = Some(PathBuf::from(p)),
                None => usage("--thresholds needs a value"),
            },
            "--write-thresholds" => write = true,
            other => usage(&format!("unknown flag `{other}`")),
        }
    }
    let path =
        thresholds.unwrap_or_else(|| tl_bench::workspace_root().join("tests/gates/accuracy.json"));

    let cfg = gates::accuracy_config();
    println!(
        "accuracy gate: xmark scale {} seed {} k {} ({} queries/size)",
        cfg.scale, cfg.seed, cfg.k, cfg.queries
    );
    let measured = gates::measure_accuracy(&cfg);

    if write {
        let snap = gates::accuracy_thresholds(&measured, &cfg);
        if let Some(parent) = path.parent() {
            let _ = std::fs::create_dir_all(parent);
        }
        if let Err(e) = std::fs::write(&path, snap.to_json()) {
            eprintln!("error: could not write {}: {e}", path.display());
            std::process::exit(1);
        }
        println!("wrote {}", path.display());
        return;
    }

    let snapshot = gates::load_snapshot(&path).unwrap_or_else(|e| {
        eprintln!("error: {e}");
        std::process::exit(1);
    });
    let report = gates::check_accuracy(&measured, &snapshot);
    for line in &report.lines {
        println!("{line}");
    }
    if !report.passed() {
        eprintln!("accuracy gate FAILED ({} check(s))", report.failures.len());
        std::process::exit(1);
    }
    println!("accuracy gate passed");
}

fn usage(msg: &str) -> ! {
    eprintln!("error: {msg}");
    eprintln!("usage: gate_accuracy [--thresholds <path>] [--write-thresholds]");
    std::process::exit(2);
}
