//! CI corpus mining gate; thin wrapper over `tl_bench::gate_runner` (the
//! `gates` binary runs the same code path).
//!
//! ```text
//! gate_corpus [--thresholds <path>] [--write-thresholds]
//! ```
//!
//! Mines the reduced deterministic corpus fixture sequentially and
//! sharded, then enforces the merge-monoid contract against the committed
//! thresholds (default `tests/gates/corpus.json`): every sharded build
//! must serialize bit-identically to the sequential one (always), and the
//! widest sharded build must beat sequential by the committed speedup
//! floor (on multi-core hosts; single-core hosts get an explicit waiver
//! line — they cannot measure parallelism, but they still verify
//! identity). Exits 1 on any failure. `--write-thresholds` regenerates
//! the thresholds file instead of checking.

use std::path::PathBuf;

use tl_bench::gate_runner::{run_gate, Gate, GateRun};

fn main() {
    let mut opts = GateRun::default();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--thresholds" => match args.next() {
                Some(p) => opts.thresholds = Some(PathBuf::from(p)),
                None => usage("--thresholds needs a value"),
            },
            "--write-thresholds" => opts.write = true,
            other => usage(&format!("unknown flag `{other}`")),
        }
    }
    std::process::exit(run_gate(Gate::Corpus, &opts));
}

fn usage(msg: &str) -> ! {
    eprintln!("error: {msg}");
    eprintln!("usage: gate_corpus [--thresholds <path>] [--write-thresholds]");
    std::process::exit(2);
}
