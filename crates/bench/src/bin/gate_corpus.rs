//! CI corpus mining gate; see `tl_bench::gates`.
//!
//! ```text
//! gate_corpus [--thresholds <path>] [--write-thresholds]
//! ```
//!
//! Mines the reduced deterministic corpus fixture sequentially and
//! sharded, then enforces the merge-monoid contract against the committed
//! thresholds (default `tests/gates/corpus.json`): every sharded build
//! must serialize bit-identically to the sequential one (always), and the
//! widest sharded build must beat sequential by the committed speedup
//! floor (on multi-core hosts; single-core hosts get an explicit waiver
//! line — they cannot measure parallelism, but they still verify
//! identity). Exits 1 on any failure. `--write-thresholds` regenerates
//! the thresholds file instead of checking.

use std::path::PathBuf;

use tl_bench::{experiments::corpus, gates};

fn main() {
    let mut thresholds: Option<PathBuf> = None;
    let mut write = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--thresholds" => match args.next() {
                Some(p) => thresholds = Some(PathBuf::from(p)),
                None => usage("--thresholds needs a value"),
            },
            "--write-thresholds" => write = true,
            other => usage(&format!("unknown flag `{other}`")),
        }
    }
    let path =
        thresholds.unwrap_or_else(|| tl_bench::workspace_root().join("tests/gates/corpus.json"));

    let cfg = gates::corpus_gate_config();
    println!(
        "corpus gate: xmark {} docs x {} elements, seed {}, k {}",
        cfg.docs, cfg.elements_per_doc, cfg.seed, cfg.k
    );
    // One warm-up build then the measured run, so first-touch costs (page
    // cache, lazy allocations) do not count against the gate.
    let _ = corpus::build(&cfg);
    let measured = corpus::build(&cfg);

    if write {
        let snap = gates::corpus_thresholds(&measured);
        if let Some(parent) = path.parent() {
            let _ = std::fs::create_dir_all(parent);
        }
        if let Err(e) = std::fs::write(&path, snap.to_json()) {
            eprintln!("error: could not write {}: {e}", path.display());
            std::process::exit(1);
        }
        println!("wrote {}", path.display());
        return;
    }

    let snapshot = gates::load_snapshot(&path).unwrap_or_else(|e| {
        eprintln!("error: {e}");
        std::process::exit(1);
    });
    let report = gates::check_corpus(&measured, &snapshot);
    for line in &report.lines {
        println!("{line}");
    }
    if !report.passed() {
        eprintln!("corpus gate FAILED ({} check(s))", report.failures.len());
        std::process::exit(1);
    }
    println!("corpus gate passed");
}

fn usage(msg: &str) -> ! {
    eprintln!("error: {msg}");
    eprintln!("usage: gate_corpus [--thresholds <path>] [--write-thresholds]");
    std::process::exit(2);
}
