//! CI decomposition-path perf gate; see `tl_bench::gates`.
//!
//! ```text
//! gate_decompose [--thresholds <path>] [--write-thresholds]
//! ```
//!
//! Runs the `bench_decompose` comparison (id-keyed DAG engine vs the
//! byte-keyed recursive reference) on the reduced deterministic fixture —
//! which also re-asserts the two paths are bit-identical — then compares
//! the warm-batch speedup and DAG dedup ratio against the committed floors
//! (default `tests/gates/decompose.json`). Exits 1 on any regression.
//! `--write-thresholds` regenerates the thresholds file from the current
//! build instead of checking.

use std::path::PathBuf;

use tl_bench::{experiments::decompose, gates};

fn main() {
    let mut thresholds: Option<PathBuf> = None;
    let mut write = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--thresholds" => match args.next() {
                Some(p) => thresholds = Some(PathBuf::from(p)),
                None => usage("--thresholds needs a value"),
            },
            "--write-thresholds" => write = true,
            other => usage(&format!("unknown flag `{other}`")),
        }
    }
    let path =
        thresholds.unwrap_or_else(|| tl_bench::workspace_root().join("tests/gates/decompose.json"));

    let cfg = gates::decompose_config();
    println!(
        "decompose gate: xmark scale {} seed {} k {} ({} queries/size)",
        cfg.scale, cfg.seed, cfg.k, cfg.queries
    );
    // One warm-up build then the measured run, so first-touch costs (page
    // cache, lazy allocations) do not count against the gate.
    let _ = decompose::build(&cfg);
    let measured = decompose::build(&cfg);

    if write {
        let snap = gates::decompose_thresholds(&measured, &cfg);
        if let Some(parent) = path.parent() {
            let _ = std::fs::create_dir_all(parent);
        }
        if let Err(e) = std::fs::write(&path, snap.to_json()) {
            eprintln!("error: could not write {}: {e}", path.display());
            std::process::exit(1);
        }
        println!("wrote {}", path.display());
        return;
    }

    let snapshot = gates::load_snapshot(&path).unwrap_or_else(|e| {
        eprintln!("error: {e}");
        std::process::exit(1);
    });
    let report = gates::check_decompose(&measured, &snapshot);
    for line in &report.lines {
        println!("{line}");
    }
    if !report.passed() {
        eprintln!("decompose gate FAILED ({} check(s))", report.failures.len());
        std::process::exit(1);
    }
    println!("decompose gate passed");
}

fn usage(msg: &str) -> ! {
    eprintln!("error: {msg}");
    eprintln!("usage: gate_decompose [--thresholds <path>] [--write-thresholds]");
    std::process::exit(2);
}
