//! Golden accuracy-regression gate; see `tl_bench::golden`.
//!
//! ```text
//! gate_golden [--thresholds <path>] [--write-thresholds] [--seed <N>]
//! ```
//!
//! Measures oracle-verified q-error/MRE envelopes for all four estimators
//! over the dataset × seed matrix and compares against the committed
//! thresholds (default `tests/gates/golden_accuracy.json`). Exits 1 on any
//! regression. `--seed N` restricts the run to one seed (a CI matrix
//! slot). `--write-thresholds` regenerates the thresholds file from the
//! current build over the *full* matrix; it rejects `--seed`, because a
//! partial store would silently uncover the other seeds.

use std::path::PathBuf;

use tl_bench::golden::{self, GoldenConfig};

fn main() {
    let mut thresholds: Option<PathBuf> = None;
    let mut write = false;
    let mut seed: Option<u64> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--thresholds" => match args.next() {
                Some(p) => thresholds = Some(PathBuf::from(p)),
                None => usage("--thresholds needs a value"),
            },
            "--write-thresholds" => write = true,
            "--seed" => match args.next().map(|s| s.parse::<u64>()) {
                Some(Ok(s)) => seed = Some(s),
                _ => usage("--seed needs an integer value"),
            },
            other => usage(&format!("unknown flag `{other}`")),
        }
    }
    if write && seed.is_some() {
        usage("--write-thresholds regenerates the full matrix; drop --seed");
    }
    let path = thresholds
        .unwrap_or_else(|| tl_bench::workspace_root().join("tests/gates/golden_accuracy.json"));

    let full = GoldenConfig::default();
    let cfg = match seed {
        Some(s) => full.with_seed(s),
        None => full,
    };
    println!(
        "golden gate: {} dataset(s) x seeds {:?}, scale {}, k {}, sizes {:?}, {} queries/size",
        tl_datagen::Dataset::ALL.len(),
        cfg.seeds,
        cfg.scale,
        cfg.k,
        cfg.sizes,
        cfg.queries
    );
    let measured = golden::measure_golden(&cfg);
    println!(
        "measured {} envelope cells over {} evaluations",
        measured.envelopes.len(),
        measured.evaluations
    );

    if write {
        let snap = golden::golden_thresholds(&measured, &cfg);
        if let Some(parent) = path.parent() {
            let _ = std::fs::create_dir_all(parent);
        }
        if let Err(e) = std::fs::write(&path, snap.to_json()) {
            eprintln!("error: could not write {}: {e}", path.display());
            std::process::exit(1);
        }
        println!("wrote {}", path.display());
        return;
    }

    let snapshot = tl_bench::gates::load_snapshot(&path).unwrap_or_else(|e| {
        eprintln!("error: {e}");
        std::process::exit(1);
    });
    let report = golden::check_golden(&measured, &snapshot);
    for line in &report.lines {
        println!("{line}");
    }
    if !report.passed() {
        eprintln!("golden gate FAILED ({} check(s))", report.failures.len());
        std::process::exit(1);
    }
    println!("golden gate passed");
}

fn usage(msg: &str) -> ! {
    eprintln!("error: {msg}");
    eprintln!("usage: gate_golden [--thresholds <path>] [--write-thresholds] [--seed <N>]");
    std::process::exit(2);
}
