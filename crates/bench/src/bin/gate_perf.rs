//! CI perf smoke gate; thin wrapper over `tl_bench::gate_runner` (the
//! `gates` binary runs the same code path).
//!
//! ```text
//! gate_perf [--baseline <path>] [--factor F] [--write-baseline]
//! ```
//!
//! Times the `bench matcher` comparison on a tiny fixture and fails when
//! it runs more than `F`× (default 3) slower than the committed baseline
//! (default `tests/gates/perf_baseline.json`). `--write-baseline`
//! regenerates the baseline from this machine instead of checking.

use std::path::PathBuf;

use tl_bench::gate_runner::{run_gate, Gate, GateRun};

fn main() {
    let mut opts = GateRun::default();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--baseline" => match args.next() {
                Some(p) => opts.thresholds = Some(PathBuf::from(p)),
                None => usage("--baseline needs a value"),
            },
            "--factor" => match args.next().and_then(|v| v.parse::<f64>().ok()) {
                Some(f) if f > 0.0 => opts.perf_factor = f,
                _ => usage("--factor needs a positive number"),
            },
            "--write-baseline" => opts.write = true,
            other => usage(&format!("unknown flag `{other}`")),
        }
    }
    std::process::exit(run_gate(Gate::Perf, &opts));
}

fn usage(msg: &str) -> ! {
    eprintln!("error: {msg}");
    eprintln!("usage: gate_perf [--baseline <path>] [--factor F] [--write-baseline]");
    std::process::exit(2);
}
