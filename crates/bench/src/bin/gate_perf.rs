//! CI perf smoke gate; see `tl_bench::gates`.
//!
//! ```text
//! gate_perf [--baseline <path>] [--factor F] [--write-baseline]
//! ```
//!
//! Times the `bench matcher` comparison on a tiny fixture and fails when
//! it runs more than `F`× (default 3) slower than the committed baseline
//! (default `tests/gates/perf_baseline.json`). `--write-baseline`
//! regenerates the baseline from this machine instead of checking.

use std::path::PathBuf;

use tl_bench::gates;

fn main() {
    let mut baseline: Option<PathBuf> = None;
    let mut factor = 3.0f64;
    let mut write = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--baseline" => match args.next() {
                Some(p) => baseline = Some(PathBuf::from(p)),
                None => usage("--baseline needs a value"),
            },
            "--factor" => match args.next().and_then(|v| v.parse::<f64>().ok()) {
                Some(f) if f > 0.0 => factor = f,
                _ => usage("--factor needs a positive number"),
            },
            "--write-baseline" => write = true,
            other => usage(&format!("unknown flag `{other}`")),
        }
    }
    let path = baseline
        .unwrap_or_else(|| tl_bench::workspace_root().join("tests/gates/perf_baseline.json"));

    let cfg = gates::perf_config();
    println!(
        "perf gate: matcher build at scale {} seed {} k {} ({} queries)",
        cfg.scale, cfg.seed, cfg.k, cfg.queries
    );
    // One warm-up then the measured run, so first-touch costs (page cache,
    // lazy allocations) do not count against the gate.
    let _ = gates::measure_perf(&cfg);
    let measured_ms = gates::measure_perf(&cfg);

    if write {
        let snap = gates::perf_baseline(measured_ms, &cfg);
        if let Some(parent) = path.parent() {
            let _ = std::fs::create_dir_all(parent);
        }
        if let Err(e) = std::fs::write(&path, snap.to_json()) {
            eprintln!("error: could not write {}: {e}", path.display());
            std::process::exit(1);
        }
        println!("wrote {} ({measured_ms:.1}ms)", path.display());
        return;
    }

    let snapshot = gates::load_snapshot(&path).unwrap_or_else(|e| {
        eprintln!("error: {e}");
        std::process::exit(1);
    });
    let report = gates::check_perf(measured_ms, &snapshot, factor);
    for line in &report.lines {
        println!("{line}");
    }
    if !report.passed() {
        eprintln!("perf gate FAILED");
        std::process::exit(1);
    }
    println!("perf gate passed");
}

fn usage(msg: &str) -> ! {
    eprintln!("error: {msg}");
    eprintln!("usage: gate_perf [--baseline <path>] [--factor F] [--write-baseline]");
    std::process::exit(2);
}
