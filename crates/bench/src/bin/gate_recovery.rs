//! CI crash-recovery gate; see `tl_bench::gate_runner` and `tl_bench::gates`.
//!
//! ```text
//! gate_recovery [--thresholds <path>] [--write-thresholds] [--seed <N>]
//! ```
//!
//! Sweeps the injected-crash matrix — every durability fail-point site
//! under every injection rule — recovering each crash over its own
//! directory and comparing the result bit-for-bit against a
//! never-crashed replica of the acknowledged prefix (writing
//! `BENCH_recovery.json`). Enforces the committed contract (default
//! `tests/gates/recovery.json`): full matrix coverage, bit-identity at
//! every crash point, typed mid-log corruption, a cleanly sealed torn
//! tail, and a byte-identical drain round trip. Exits 1 on any failure.
//! `--seed N` selects a CI matrix slot; `--write-thresholds` regenerates
//! the thresholds file (contract values, no sweep needed).

use std::path::PathBuf;

use tl_bench::gate_runner::{run_gate, Gate, GateRun};

fn main() {
    let mut opts = GateRun::default();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--thresholds" => match args.next() {
                Some(p) => opts.thresholds = Some(PathBuf::from(p)),
                None => usage("--thresholds needs a value"),
            },
            "--write-thresholds" => opts.write = true,
            "--seed" => match args.next().map(|s| s.parse::<u64>()) {
                Some(Ok(s)) => opts.seed = Some(s),
                _ => usage("--seed needs an integer value"),
            },
            other => usage(&format!("unknown flag `{other}`")),
        }
    }
    std::process::exit(run_gate(Gate::Recovery, &opts));
}

fn usage(msg: &str) -> ! {
    eprintln!("error: {msg}");
    eprintln!("usage: gate_recovery [--thresholds <path>] [--write-thresholds] [--seed <N>]");
    std::process::exit(2);
}
