//! CI server soak gate; see `tl_bench::gate_runner` and `tl_bench::gates`.
//!
//! ```text
//! gate_server [--thresholds <path>] [--write-thresholds] [--seed <N>]
//! ```
//!
//! Boots the estimate server over the deterministic fixture, drives a
//! closed-loop million-request mixed-tenant soak (writing
//! `BENCH_server.json`), and enforces the committed contract (default
//! `tests/gates/server.json`): soak size and tenant floors, p99 latency
//! and shed-rate ceilings, bit-identity of every exact response against
//! the in-process engine, and zero untyped errors. Exits 1 on any
//! failure. `--seed N` selects a CI matrix slot; `--write-thresholds`
//! regenerates the thresholds file (contract values, no soak needed).

use std::path::PathBuf;

use tl_bench::gate_runner::{run_gate, Gate, GateRun};

fn main() {
    let mut opts = GateRun::default();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--thresholds" => match args.next() {
                Some(p) => opts.thresholds = Some(PathBuf::from(p)),
                None => usage("--thresholds needs a value"),
            },
            "--write-thresholds" => opts.write = true,
            "--seed" => match args.next().map(|s| s.parse::<u64>()) {
                Some(Ok(s)) => opts.seed = Some(s),
                _ => usage("--seed needs an integer value"),
            },
            other => usage(&format!("unknown flag `{other}`")),
        }
    }
    std::process::exit(run_gate(Gate::Server, &opts));
}

fn usage(msg: &str) -> ! {
    eprintln!("error: {msg}");
    eprintln!("usage: gate_server [--thresholds <path>] [--write-thresholds] [--seed <N>]");
    std::process::exit(2);
}
