//! Umbrella gate runner; see `tl_bench::gate_runner`.
//!
//! ```text
//! gates [--only g1,g2,...] [--seed N] [--write-thresholds]
//!       [--thresholds <path>] [--factor F] [--list]
//! ```
//!
//! Runs every CI gate (or the `--only` subset, comma-separated) through
//! the same library code path the individual `gate_*` binaries use, so
//! `gates --only server` and `gate_server` are interchangeable. `--seed`
//! selects a matrix slot for the gates that take one (golden, server) and
//! is a usage error for the rest. `--thresholds` overrides the committed
//! file and therefore requires exactly one selected gate. Exits 1 if any
//! selected gate fails, 2 on usage.

use std::path::PathBuf;

use tl_bench::gate_runner::{run_gate, Gate, GateRun};

fn main() {
    let mut only: Option<Vec<Gate>> = None;
    let mut opts = GateRun::default();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--only" => match args.next() {
                Some(list) => {
                    let mut gates = Vec::new();
                    for name in list.split(',').filter(|s| !s.is_empty()) {
                        match Gate::parse(name) {
                            Some(g) => gates.push(g),
                            None => usage(&format!(
                                "unknown gate `{name}` (expected one of {})",
                                names().join(", ")
                            )),
                        }
                    }
                    if gates.is_empty() {
                        usage("--only needs at least one gate");
                    }
                    only = Some(gates);
                }
                None => usage("--only needs a comma-separated gate list"),
            },
            "--seed" => match args.next().map(|s| s.parse::<u64>()) {
                Some(Ok(s)) => opts.seed = Some(s),
                _ => usage("--seed needs an integer value"),
            },
            "--write-thresholds" => opts.write = true,
            "--thresholds" => match args.next() {
                Some(p) => opts.thresholds = Some(PathBuf::from(p)),
                None => usage("--thresholds needs a value"),
            },
            "--factor" => match args.next().and_then(|v| v.parse::<f64>().ok()) {
                Some(f) if f > 0.0 => opts.perf_factor = f,
                _ => usage("--factor needs a positive number"),
            },
            "--list" => {
                for gate in Gate::ALL {
                    println!("{}", gate.name());
                }
                return;
            }
            other => usage(&format!("unknown flag `{other}`")),
        }
    }
    let selected = only.unwrap_or_else(|| Gate::ALL.to_vec());
    if opts.thresholds.is_some() && selected.len() != 1 {
        usage("--thresholds overrides one file; use --only to select exactly one gate");
    }

    let mut failed = Vec::new();
    for (i, gate) in selected.iter().enumerate() {
        if i > 0 {
            println!();
        }
        println!("=== gate: {} ===", gate.name());
        match run_gate(*gate, &opts) {
            0 => {}
            2 => std::process::exit(2),
            _ => failed.push(gate.name()),
        }
    }
    if !failed.is_empty() {
        eprintln!("gates FAILED: {}", failed.join(", "));
        std::process::exit(1);
    }
    println!();
    println!("all {} selected gate(s) passed", selected.len());
}

fn names() -> Vec<&'static str> {
    Gate::ALL.iter().map(|g| g.name()).collect()
}

fn usage(msg: &str) -> ! {
    eprintln!("error: {msg}");
    eprintln!(
        "usage: gates [--only g1,g2,...] [--seed N] [--write-thresholds] [--thresholds <path>] [--factor F] [--list]"
    );
    eprintln!("gates: {}", names().join(", "));
    std::process::exit(2);
}
