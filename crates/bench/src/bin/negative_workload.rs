//! Experiment runner; see `tl_bench::experiments::negative`.

fn main() {
    let cfg = tl_bench::ExpConfig::from_args();
    tl_bench::experiments::negative::run(&cfg);
}
