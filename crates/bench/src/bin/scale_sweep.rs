//! Experiment runner; see `tl_bench::experiments::scale_sweep`.

fn main() {
    let cfg = tl_bench::ExpConfig::from_args();
    tl_bench::experiments::scale_sweep::run(&cfg);
}
