//! Experiment runner; see `tl_bench::experiments::table1`.

fn main() {
    let cfg = tl_bench::ExpConfig::from_args();
    tl_bench::experiments::table1::run(&cfg);
}
