//! Experiment runner; see `tl_bench::experiments::table2`.

fn main() {
    let cfg = tl_bench::ExpConfig::from_args();
    tl_bench::experiments::table2::run(&cfg);
}
