//! Experiment runner; see `tl_bench::experiments::table3`.

fn main() {
    let cfg = tl_bench::ExpConfig::from_args();
    tl_bench::experiments::table3::run(&cfg);
}
