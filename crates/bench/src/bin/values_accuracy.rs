//! Experiment runner; see `tl_bench::experiments::values`.

fn main() {
    let cfg = tl_bench::ExpConfig::from_args();
    tl_bench::experiments::values::run(&cfg);
}
