//! Experiment configuration and command-line parsing.

/// Shared experiment parameters.
///
/// Every experiment binary accepts:
///
/// ```text
/// --scale N      target elements per dataset   (default 100000)
/// --seed N       generator / workload seed     (default 42)
/// --queries N    queries per workload size     (default 50)
/// --k N          lattice order                 (default 4)
/// --quick        8k elements, 20 queries — a fast smoke-run
/// ```
#[derive(Clone, Copy, Debug)]
pub struct ExpConfig {
    /// Target element count per generated dataset.
    pub scale: usize,
    /// Seed for generation and workload sampling.
    pub seed: u64,
    /// Queries per (dataset, size) workload cell.
    pub queries: usize,
    /// Lattice order for TreeLattice summaries.
    pub k: usize,
    /// TreeSketches byte budget (Table 3 uses 50 KB).
    pub sketch_budget: usize,
}

impl Default for ExpConfig {
    fn default() -> Self {
        Self {
            scale: 100_000,
            seed: 42,
            queries: 50,
            k: 4,
            sketch_budget: 50 * 1024,
        }
    }
}

impl ExpConfig {
    /// The reduced configuration used by `--quick`.
    pub fn quick() -> Self {
        Self {
            scale: 8_000,
            queries: 20,
            ..Self::default()
        }
    }

    /// Parses flags from `std::env::args`, exiting with a usage message on
    /// malformed input.
    pub fn from_args() -> Self {
        Self::parse(std::env::args().skip(1)).unwrap_or_else(|msg| {
            eprintln!("error: {msg}");
            eprintln!(
                "usage: [--scale N] [--seed N] [--queries N] [--k N] \
                 [--sketch-budget BYTES] [--quick]"
            );
            std::process::exit(2);
        })
    }

    /// Parses an iterator of flags (separated from `from_args` for tests).
    pub fn parse(args: impl IntoIterator<Item = String>) -> Result<Self, String> {
        let mut cfg = Self::default();
        let mut it = args.into_iter();
        while let Some(arg) = it.next() {
            let mut numeric = |name: &str| -> Result<usize, String> {
                it.next()
                    .ok_or_else(|| format!("{name} needs a value"))?
                    .parse::<usize>()
                    .map_err(|e| format!("{name}: {e}"))
            };
            match arg.as_str() {
                "--quick" => {
                    let seed = cfg.seed;
                    cfg = Self::quick();
                    cfg.seed = seed;
                }
                "--scale" => cfg.scale = numeric("--scale")?,
                "--seed" => cfg.seed = numeric("--seed")? as u64,
                "--queries" => cfg.queries = numeric("--queries")?,
                "--k" => cfg.k = numeric("--k")?,
                "--sketch-budget" => cfg.sketch_budget = numeric("--sketch-budget")?,
                other => return Err(format!("unknown flag `{other}`")),
            }
        }
        if cfg.k < 2 {
            return Err("--k must be at least 2".into());
        }
        Ok(cfg)
    }

    /// Workload query sizes used by Figures 7–9 (4 through 8).
    pub fn query_sizes(&self) -> Vec<usize> {
        (4..=8).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<ExpConfig, String> {
        ExpConfig::parse(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn defaults() {
        let cfg = parse(&[]).unwrap();
        assert_eq!(cfg.scale, 100_000);
        assert_eq!(cfg.k, 4);
    }

    #[test]
    fn flags_override() {
        let cfg = parse(&[
            "--scale",
            "1000",
            "--seed",
            "7",
            "--queries",
            "5",
            "--k",
            "3",
        ])
        .unwrap();
        assert_eq!(cfg.scale, 1000);
        assert_eq!(cfg.seed, 7);
        assert_eq!(cfg.queries, 5);
        assert_eq!(cfg.k, 3);
    }

    #[test]
    fn quick_mode() {
        let cfg = parse(&["--seed", "9", "--quick"]).unwrap();
        assert_eq!(cfg.scale, 8_000);
        assert_eq!(cfg.seed, 9, "quick preserves an earlier seed");
    }

    #[test]
    fn rejects_unknown_and_invalid() {
        assert!(parse(&["--nope"]).is_err());
        assert!(parse(&["--scale"]).is_err());
        assert!(parse(&["--scale", "abc"]).is_err());
        assert!(parse(&["--k", "1"]).is_err());
    }
}
