//! Dataset materialization shared by all experiments.

use tl_datagen::{Dataset, GenConfig};
use tl_xml::Document;

use crate::config::ExpConfig;

/// Generates all four corpora at the configured scale.
pub fn all_datasets(cfg: &ExpConfig) -> Vec<(Dataset, Document)> {
    Dataset::ALL
        .iter()
        .map(|&ds| (ds, one_dataset(cfg, ds)))
        .collect()
}

/// Generates one corpus.
pub fn one_dataset(cfg: &ExpConfig, ds: Dataset) -> Document {
    ds.generate(GenConfig {
        seed: cfg.seed,
        target_elements: cfg.scale,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_all_four() {
        let cfg = ExpConfig {
            scale: 500,
            ..ExpConfig::default()
        };
        let ds = all_datasets(&cfg);
        assert_eq!(ds.len(), 4);
        for (d, doc) in ds {
            assert!(doc.len() >= 400, "{d}: {} nodes", doc.len());
        }
    }
}
