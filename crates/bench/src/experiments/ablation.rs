//! Ablations beyond the paper's figures, for the design choices DESIGN.md
//! calls out: voting width and lattice order.

use std::time::Instant;

use tl_datagen::Dataset;
use tl_workload::{average_relative_error_pct, positive_workload};
use treelattice::{BuildConfig, EstimateOptions, Estimator, TreeLattice};

use crate::data::one_dataset;
use crate::report::{fmt_duration, fmt_f};
use crate::{ExpConfig, Table};

/// Voting-cap sweep: how many removable pairs per recursion node are worth
/// averaging. Cap 1 is plain recursive decomposition; `usize::MAX` is full
/// voting.
pub fn build_voting(cfg: &ExpConfig) -> Table {
    let doc = one_dataset(cfg, Dataset::Nasa);
    let lattice = TreeLattice::build(&doc, &BuildConfig::with_k(cfg.k));
    let size = 8usize;
    let w = positive_workload(&doc, size, cfg.queries, cfg.seed);
    let truths = w.true_counts();
    let mut t = Table::new(
        format!("Ablation: voting cap (Nasa, query size {size})"),
        &["Cap", "Avg Error (%)", "Mean Latency"],
    );
    for cap in [1usize, 2, 4, 8, usize::MAX] {
        let opts = EstimateOptions {
            voting_cap: cap,
            ..EstimateOptions::default()
        };
        let start = Instant::now();
        let estimates: Vec<f64> = w
            .cases
            .iter()
            .map(|c| lattice.estimate_with(&c.twig, Estimator::RecursiveVoting, &opts))
            .collect();
        let elapsed = start.elapsed() / w.cases.len().max(1) as u32;
        t.row(vec![
            if cap == usize::MAX {
                "full".to_owned()
            } else {
                cap.to_string()
            },
            fmt_f(average_relative_error_pct(&truths, &estimates)),
            fmt_duration(elapsed),
        ]);
    }
    t
}

/// Runs the voting ablation.
pub fn run_voting(cfg: &ExpConfig) -> Table {
    let t = build_voting(cfg);
    t.print();
    if let Err(e) = t.write_csv("ablation_voting") {
        eprintln!("warning: could not write CSV: {e}");
    }
    t
}

/// Lattice-order sweep: accuracy / size / construction time for k ∈ 2..=5.
pub fn build_k(cfg: &ExpConfig) -> Table {
    let doc = one_dataset(cfg, Dataset::Xmark);
    let size = 7usize;
    let w = positive_workload(&doc, size, cfg.queries, cfg.seed);
    let truths = w.true_counts();
    let mut t = Table::new(
        format!("Ablation: lattice order k (XMark, query size {size})"),
        &["k", "Avg Error (%)", "Summary KB", "Build Time"],
    );
    for k in 2..=5usize {
        let start = Instant::now();
        let lattice = TreeLattice::build(&doc, &BuildConfig::with_k(k));
        let build_time = start.elapsed();
        let estimates: Vec<f64> = w
            .cases
            .iter()
            .map(|c| lattice.estimate(&c.twig, Estimator::RecursiveVoting))
            .collect();
        t.row(vec![
            k.to_string(),
            fmt_f(average_relative_error_pct(&truths, &estimates)),
            format!("{:.1}", lattice.summary_bytes() as f64 / 1024.0),
            fmt_duration(build_time),
        ]);
    }
    t
}

/// Runs the lattice-order ablation.
pub fn run_k(cfg: &ExpConfig) -> Table {
    let t = build_k(cfg);
    t.print();
    if let Err(e) = t.write_csv("ablation_k") {
        eprintln!("warning: could not write CSV: {e}");
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ExpConfig {
        ExpConfig {
            scale: 1500,
            queries: 6,
            ..ExpConfig::default()
        }
    }

    #[test]
    fn voting_sweep_has_five_rows_and_cap_one_matches_plain() {
        let t = build_voting(&tiny());
        assert_eq!(t.rows().len(), 5);
    }

    #[test]
    fn k_sweep_size_grows() {
        let t = build_k(&tiny());
        assert_eq!(t.rows().len(), 4);
        let sizes: Vec<f64> = t.rows().iter().map(|r| r[2].parse().unwrap()).collect();
        for pair in sizes.windows(2) {
            assert!(pair[1] >= pair[0], "summary must grow with k: {sizes:?}");
        }
    }
}
