//! Corpus-scale sharded mining benchmark (`bench_corpus`).
//!
//! Builds one merged summary over a generated multi-document corpus two
//! orders of magnitude larger than the single-document fixtures, three
//! times — sequentially, with 2 shards, and with one shard per host core —
//! asserts the sharded builds are **bit-identical** to the sequential one
//! (the merge-monoid contract), and records construction-time scaling,
//! merged-summary size, and the zero-copy mmap catalog's cold-lookup
//! latency in `BENCH_corpus.json`. The record uses the `tl-metrics/1`
//! snapshot schema, so `treelattice metrics report BENCH_corpus.json`
//! renders it like any other snapshot.

use std::time::Instant;

use tl_datagen::{Dataset, GenConfig};
use tl_miner::CorpusConfig;
use tl_xml::Document;
use treelattice::{MmapCatalog, PatternStore, TreeLattice};

use crate::Table;

/// Shape of the generated corpus and measurement.
#[derive(Clone, Copy, Debug)]
pub struct CorpusBenchConfig {
    /// Documents in the corpus.
    pub docs: usize,
    /// Target elements per document (each document gets its own seed).
    pub elements_per_doc: usize,
    /// Base seed; document `i` is generated with `seed + i`.
    pub seed: u64,
    /// Summary order.
    pub k: usize,
    /// Timed samples per shard count (median is reported).
    pub repeats: usize,
}

/// The fixed full-scale configuration `bench_corpus` runs with: 64 XMark
/// documents of 12 500 elements ≈ 800 000 elements, two orders of
/// magnitude over the 8 000-element accuracy fixture.
pub fn bench_config() -> CorpusBenchConfig {
    CorpusBenchConfig {
        docs: 64,
        elements_per_doc: 12_500,
        seed: 42,
        k: 4,
        repeats: 3,
    }
}

/// One shard count's construction timing.
#[derive(Clone, Debug)]
pub struct CorpusScalingRow {
    /// Worker shards used for this build.
    pub shards: usize,
    /// Median wall time of the full corpus build, ms.
    pub build_ms: f64,
    /// Sequential build time over this row's (`>= 1` shard rows only).
    pub speedup: f64,
}

/// The full corpus measurement.
#[derive(Clone, Debug)]
pub struct CorpusBench {
    /// Configuration echo.
    pub cfg: CorpusBenchConfig,
    /// `std::thread::available_parallelism()` on the measuring host —
    /// the gate waives the speedup floor on single-core hosts.
    pub host_threads: usize,
    /// One row per measured shard count (always starts with 1).
    pub rows: Vec<CorpusScalingRow>,
    /// Whether every sharded build serialized bit-identically to the
    /// sequential build. The gate fails hard when false.
    pub merge_identical: bool,
    /// Milliseconds spent in the final tree-reduction merge of the
    /// widest sharded build.
    pub merge_ms: f64,
    /// Distinct patterns in the merged summary.
    pub summary_patterns: usize,
    /// Merged summary heap footprint, bytes.
    pub summary_heap_bytes: usize,
    /// Frame bytes served zero-copy by the mmap catalog.
    pub mmap_bytes: usize,
    /// Median nanoseconds per lookup against a freshly opened mmap
    /// catalog (every probe is a first sighting — cold page cache aside,
    /// this is the no-warmup path a just-opened process pays).
    pub mmap_cold_lookup_ns: f64,
    /// Probes behind the cold-lookup median.
    pub mmap_probes: usize,
}

fn generate_corpus(cfg: &CorpusBenchConfig) -> Vec<Document> {
    (0..cfg.docs)
        .map(|i| {
            Dataset::Xmark.generate(GenConfig {
                seed: cfg.seed + i as u64,
                target_elements: cfg.elements_per_doc,
            })
        })
        .collect()
}

fn corpus_config(cfg: &CorpusBenchConfig, shards: usize) -> CorpusConfig {
    CorpusConfig {
        max_size: cfg.k,
        shards,
        // Per-document mining stays single-threaded: the bench measures
        // cross-document sharding, not intra-document candidate counting.
        threads: 1,
    }
}

fn median(mut samples: Vec<f64>) -> f64 {
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

/// Runs the measurement without printing or writing.
pub fn build(cfg: &CorpusBenchConfig) -> CorpusBench {
    let docs = generate_corpus(cfg);
    let host_threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    // Sequential reference build: its bytes are the identity every sharded
    // build must reproduce, and its time is the scaling denominator.
    let sequential = TreeLattice::build_corpus(&docs, corpus_config(cfg, 1), None);
    let reference_bytes = sequential.to_bytes();

    let mut shard_counts = vec![1usize, 2, host_threads];
    shard_counts.sort_unstable();
    shard_counts.dedup();

    let mut rows = Vec::new();
    let mut merge_identical = true;
    for &shards in &shard_counts {
        let samples: Vec<f64> = (0..cfg.repeats.max(1))
            .map(|_| {
                let t0 = Instant::now();
                let lat = TreeLattice::build_corpus(&docs, corpus_config(cfg, shards), None);
                let ms = t0.elapsed().as_secs_f64() * 1e3;
                merge_identical &= lat.to_bytes() == reference_bytes;
                ms
            })
            .collect();
        rows.push(CorpusScalingRow {
            shards,
            build_ms: median(samples),
            speedup: 0.0, // filled below once the sequential median is known
        });
    }
    let sequential_ms = rows[0].build_ms;
    for r in &mut rows {
        r.speedup = sequential_ms / r.build_ms.max(1e-9);
    }

    // Merge time of the widest build, via the observed mining path.
    let widest = *shard_counts.last().expect("at least one shard count");
    let rec = tl_obs::MetricsRecorder::new();
    let _ = TreeLattice::build_corpus_observed(&docs, corpus_config(cfg, widest), None, &rec);
    let merge_ms = rec
        .snapshot()
        .counters
        .get(tl_obs::names::MINER_MERGE_MS)
        .copied()
        .unwrap_or(0) as f64;

    // Zero-copy cold lookups: write the merged frame, open it fresh, and
    // probe real keys sampled from every level — each probe is a binary
    // search straight over the mapped bytes.
    let dir = std::env::temp_dir().join(format!("tl-bench-corpus-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create bench temp dir");
    let path = dir.join("corpus.tlat");
    std::fs::write(&path, &reference_bytes).expect("write corpus frame");
    let probes: Vec<Vec<u8>> = (1..=cfg.k)
        .flat_map(|size| {
            sequential
                .summary()
                .iter_level(size)
                .take(64)
                .map(|(key, _)| key.as_bytes().to_vec())
                .collect::<Vec<_>>()
        })
        .collect();
    let catalog = MmapCatalog::open(&path).expect("open corpus frame");
    let mmap_bytes = catalog.bytes_mapped();
    let mut lookup_ns: Vec<f64> = probes
        .iter()
        .map(|key| {
            let t0 = Instant::now();
            std::hint::black_box(catalog.lookup_bytes(key));
            t0.elapsed().as_nanos() as f64
        })
        .collect();
    lookup_ns.sort_by(f64::total_cmp);
    let mmap_cold_lookup_ns = lookup_ns[lookup_ns.len() / 2];
    drop(catalog);
    std::fs::remove_dir_all(&dir).ok();

    CorpusBench {
        cfg: *cfg,
        host_threads,
        rows,
        merge_identical,
        merge_ms,
        summary_patterns: sequential.summary().len(),
        summary_heap_bytes: sequential.summary().heap_bytes(),
        mmap_bytes,
        mmap_cold_lookup_ns,
        mmap_probes: probes.len(),
    }
}

/// Renders the result as a `tl-metrics/1` snapshot.
pub fn to_snapshot(b: &CorpusBench) -> tl_obs::Snapshot {
    let mut snap = tl_obs::Snapshot::default();
    snap.meta.insert("bench".into(), "corpus".into());
    snap.meta.insert("dataset".into(), "xmark".into());
    snap.meta.insert("docs".into(), b.cfg.docs.to_string());
    snap.meta.insert(
        "elements_per_doc".into(),
        b.cfg.elements_per_doc.to_string(),
    );
    snap.meta.insert("seed".into(), b.cfg.seed.to_string());
    snap.meta.insert("k".into(), b.cfg.k.to_string());
    snap.meta
        .insert("host_threads".into(), b.host_threads.to_string());
    for r in &b.rows {
        snap.gauges.insert(
            format!("bench.corpus.build_ms.shards_{}", r.shards),
            r.build_ms,
        );
        snap.gauges.insert(
            format!("bench.corpus.speedup.shards_{}", r.shards),
            r.speedup,
        );
    }
    snap.gauges
        .insert("bench.corpus.merge_ms".into(), b.merge_ms);
    snap.gauges.insert(
        "bench.corpus.mmap_cold_lookup_ns".into(),
        b.mmap_cold_lookup_ns,
    );
    snap.counters.insert(
        "bench.corpus.merge_identical".into(),
        u64::from(b.merge_identical),
    );
    snap.counters.insert(
        "bench.corpus.summary_patterns".into(),
        b.summary_patterns as u64,
    );
    snap.counters.insert(
        "bench.corpus.summary_heap_bytes".into(),
        b.summary_heap_bytes as u64,
    );
    snap.counters
        .insert("bench.corpus.mmap_bytes_mapped".into(), b.mmap_bytes as u64);
    snap.counters
        .insert("bench.corpus.mmap_probes".into(), b.mmap_probes as u64);
    snap
}

/// [`to_snapshot`] serialized as JSON.
pub fn to_json(b: &CorpusBench) -> String {
    to_snapshot(b).to_json()
}

/// Runs, prints, and writes `BENCH_corpus.json`.
pub fn run(cfg: &CorpusBenchConfig) -> CorpusBench {
    let b = build(cfg);
    let mut t = Table::new(
        "Corpus mining: shard scaling over the merge monoid",
        &["Shards", "Build", "Speedup"],
    );
    for r in &b.rows {
        t.row(vec![
            r.shards.to_string(),
            format!("{:.1}ms", r.build_ms),
            format!("{:.2}x", r.speedup),
        ]);
    }
    t.print();
    println!(
        "merge identical: {} | merge {:.1}ms | {} patterns, {} heap bytes | mmap {} bytes, cold lookup {:.0}ns (median of {})",
        b.merge_identical,
        b.merge_ms,
        b.summary_patterns,
        b.summary_heap_bytes,
        b.mmap_bytes,
        b.mmap_cold_lookup_ns,
        b.mmap_probes,
    );
    let path = crate::workspace_root().join("BENCH_corpus.json");
    match std::fs::write(&path, to_json(&b)) {
        Ok(()) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("warning: could not write {}: {e}", path.display()),
    }
    b
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_measurement_is_identical_and_well_formed() {
        let cfg = CorpusBenchConfig {
            docs: 4,
            elements_per_doc: 400,
            seed: 7,
            k: 3,
            repeats: 1,
        };
        let b = build(&cfg);
        assert!(b.merge_identical, "sharded builds must be bit-identical");
        assert!(!b.rows.is_empty() && b.rows[0].shards == 1);
        assert!(b.summary_patterns > 0);
        assert!(b.mmap_bytes > 0 && b.mmap_probes > 0);
        assert!(b.mmap_cold_lookup_ns >= 0.0);
        let snap = to_snapshot(&b);
        let parsed = tl_obs::Snapshot::from_json(&to_json(&b)).unwrap();
        assert_eq!(parsed, snap);
        assert_eq!(snap.counters["bench.corpus.merge_identical"], 1);
        assert!(snap.gauges.contains_key("bench.corpus.build_ms.shards_1"));
        assert!(snap.gauges.contains_key("bench.corpus.mmap_cold_lookup_ns"));
    }
}
