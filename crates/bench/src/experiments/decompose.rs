//! Decomposition-path comparison (`bench_decompose`).
//!
//! Times the interned-id, DAG-evaluating [`EstimationEngine`] against the
//! preserved byte-keyed recursive [`ReferenceEngine`] on the accuracy-gate
//! workload (XMark, sizes 4–6), cold (fresh cache, first batch) and warm
//! (repeat batch against a populated cache), verifies the two paths return
//! bit-identical estimates before any timing, and records everything —
//! including the interner occupancy and the DAG dedup ratio — in
//! `BENCH_decompose.json` at the workspace root. The record uses the
//! `tl-metrics/1` snapshot schema, so `treelattice metrics report
//! BENCH_decompose.json` renders it like any other snapshot.

use std::time::Instant;

use tl_datagen::{Dataset, GenConfig};
use tl_twig::Twig;
use tl_workload::positive_workload_with_index;
use tl_xml::DocIndex;
use treelattice::{
    BuildConfig, EngineConfig, EstimateOptions, EstimationEngine, Estimator, ReferenceEngine,
    TreeLattice,
};

use crate::{ExpConfig, Table};

/// One estimator's cold/warm comparison cell.
#[derive(Clone, Debug)]
pub struct DecomposeRow {
    /// Estimator name (`recursive` / `voting`).
    pub estimator: &'static str,
    /// Queries in the batch.
    pub queries: usize,
    /// Median wall time of the byte-keyed recursive path, cold cache, ms.
    pub reference_cold_ms: f64,
    /// Median wall time of the byte-keyed recursive path, warm cache, ms.
    pub reference_warm_ms: f64,
    /// Median wall time of the id-keyed DAG path, cold cache, ms.
    pub engine_cold_ms: f64,
    /// Median wall time of the id-keyed DAG path, warm cache, ms.
    pub engine_warm_ms: f64,
    /// `reference_cold_ms / engine_cold_ms`.
    pub cold_speedup: f64,
    /// `reference_warm_ms / engine_warm_ms` — the headline number.
    pub warm_speedup: f64,
    /// Warm id-keyed path per query, nanoseconds.
    pub warm_ns_per_query: f64,
    /// DAG references / DAG nodes over the cold batch; > 1 whenever
    /// decomposition operands are shared.
    pub dedup_ratio: f64,
    /// Distinct canonical encodings interned over the cold batch.
    pub interner_keys: usize,
    /// Distinct sub-twig DAG nodes materialized over the cold batch.
    pub dag_nodes: u64,
    /// Total sub-twig references across the cold batch's DAGs.
    pub dag_refs: u64,
}

/// The full comparison result.
#[derive(Clone, Debug)]
pub struct DecomposeBench {
    /// Configuration echo for the JSON record.
    pub scale: usize,
    /// Seed echo.
    pub seed: u64,
    /// One row per estimator.
    pub rows: Vec<DecomposeRow>,
}

/// The fixed configuration `bench_decompose` runs with: the accuracy-gate
/// fixture, so the committed record and the committed thresholds describe
/// the same workload.
pub fn bench_config() -> ExpConfig {
    ExpConfig {
        scale: 8_000,
        seed: 42,
        queries: 30,
        k: 4,
        ..ExpConfig::default()
    }
}

/// Median of `repeats` timed samples of `f`, each sample running `f`
/// `iters` times, in milliseconds per run. Warm batches finish in tens of
/// microseconds, so a sample must span many runs to out-scale timer and
/// scheduler noise.
fn median_ms(repeats: usize, iters: usize, mut f: impl FnMut()) -> f64 {
    let mut samples: Vec<f64> = (0..repeats)
        .map(|_| {
            let t0 = Instant::now();
            for _ in 0..iters {
                f();
            }
            t0.elapsed().as_secs_f64() * 1e3 / iters as f64
        })
        .collect();
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

/// One single-threaded engine: the reference is sequential, and a fair
/// cold/warm comparison must not hand the DAG path extra cores.
fn fresh_engine() -> EstimationEngine {
    EstimationEngine::new(EngineConfig {
        threads: 1,
        ..EngineConfig::default()
    })
}

/// Runs the comparison without printing or writing.
pub fn build(cfg: &ExpConfig) -> DecomposeBench {
    let doc = Dataset::Xmark.generate(GenConfig {
        seed: cfg.seed,
        target_elements: cfg.scale,
    });
    let index = DocIndex::new(&doc);
    let lattice = TreeLattice::build_with_index(
        &doc,
        &index,
        &BuildConfig {
            k: cfg.k,
            threads: 0,
            prune_delta: None,
            ..BuildConfig::default()
        },
    );
    let mut twigs: Vec<Twig> = Vec::new();
    for size in [4usize, 5, 6] {
        let w = positive_workload_with_index(
            &doc,
            &index,
            size,
            cfg.queries,
            cfg.seed.wrapping_add(size as u64),
        );
        assert!(!w.cases.is_empty(), "size {size}: empty workload");
        twigs.extend(w.cases.into_iter().map(|c| c.twig));
    }

    let opts = EstimateOptions::default();
    let mut rows = Vec::new();
    for (name, estimator) in [
        ("recursive", Estimator::Recursive),
        ("voting", Estimator::RecursiveVoting),
    ] {
        // Bit-identity before any timing: the id-keyed DAG engine, the
        // byte-keyed reference, and the engineless estimator must agree on
        // every query, bit for bit.
        let engine = fresh_engine();
        let reference = ReferenceEngine::new();
        let got = engine.estimate_batch(&lattice, &twigs, estimator, &opts);
        let want = reference.estimate_batch(&lattice, &twigs, estimator, &opts);
        for (i, (g, w)) in got.iter().zip(&want).enumerate() {
            assert_eq!(
                g.to_bits(),
                w.to_bits(),
                "{name}: engine diverged from reference on query {i}"
            );
            let direct = lattice.estimate_with(&twigs[i], estimator, &opts);
            assert_eq!(
                w.to_bits(),
                direct.to_bits(),
                "{name}: reference diverged from estimator on query {i}"
            );
        }

        // Cold: fresh cache, one batch. The fresh state is inside the
        // closure, so every sample pays first-sighting interning and the
        // full DAG expansion (or, for the reference, the full recursion).
        let reference_cold_ms = median_ms(5, 1, || {
            let r = ReferenceEngine::new();
            std::hint::black_box(r.estimate_batch(&lattice, &twigs, estimator, &opts));
        });
        let engine_cold_ms = median_ms(5, 1, || {
            let e = fresh_engine();
            std::hint::black_box(e.estimate_batch(&lattice, &twigs, estimator, &opts));
        });

        // Warm: repeat the batch against the populated caches from the
        // verification run above.
        let reference_warm_ms = median_ms(7, 20, || {
            std::hint::black_box(reference.estimate_batch(&lattice, &twigs, estimator, &opts));
        });
        let engine_warm_ms = median_ms(7, 20, || {
            std::hint::black_box(engine.estimate_batch(&lattice, &twigs, estimator, &opts));
        });

        // Structural stats from one cold batch, uncontaminated by the
        // repeated warm runs (warm root hits add no DAG nodes anyway, but
        // the cold engine's counters are the numbers worth pinning).
        let cold_engine = fresh_engine();
        let _ = cold_engine.estimate_batch(&lattice, &twigs, estimator, &opts);
        let stats = cold_engine.stats();

        rows.push(DecomposeRow {
            estimator: name,
            queries: twigs.len(),
            reference_cold_ms,
            reference_warm_ms,
            engine_cold_ms,
            engine_warm_ms,
            cold_speedup: reference_cold_ms / engine_cold_ms.max(1e-9),
            warm_speedup: reference_warm_ms / engine_warm_ms.max(1e-9),
            warm_ns_per_query: engine_warm_ms * 1e6 / twigs.len().max(1) as f64,
            dedup_ratio: stats.dedup_ratio(),
            interner_keys: stats.interner_keys,
            dag_nodes: stats.dag_nodes,
            dag_refs: stats.dag_refs,
        });
    }
    DecomposeBench {
        scale: cfg.scale,
        seed: cfg.seed,
        rows,
    }
}

/// Renders the result as a `tl-metrics/1` snapshot: timings and ratios as
/// gauges, structural counts as counters, configuration echo as meta.
pub fn to_snapshot(b: &DecomposeBench) -> tl_obs::Snapshot {
    let mut snap = tl_obs::Snapshot::default();
    snap.meta.insert("bench".into(), "decompose".into());
    snap.meta.insert("scale".into(), b.scale.to_string());
    snap.meta.insert("seed".into(), b.seed.to_string());
    for r in &b.rows {
        let p = format!("bench.decompose.{}", r.estimator);
        snap.counters
            .insert(format!("{p}.queries"), r.queries as u64);
        snap.counters
            .insert(format!("{p}.interner_keys"), r.interner_keys as u64);
        snap.counters.insert(format!("{p}.dag_nodes"), r.dag_nodes);
        snap.counters.insert(format!("{p}.dag_refs"), r.dag_refs);
        snap.gauges
            .insert(format!("{p}.reference_cold_ms"), r.reference_cold_ms);
        snap.gauges
            .insert(format!("{p}.reference_warm_ms"), r.reference_warm_ms);
        snap.gauges
            .insert(format!("{p}.engine_cold_ms"), r.engine_cold_ms);
        snap.gauges
            .insert(format!("{p}.engine_warm_ms"), r.engine_warm_ms);
        snap.gauges
            .insert(format!("{p}.cold_speedup"), r.cold_speedup);
        snap.gauges
            .insert(format!("{p}.warm_speedup"), r.warm_speedup);
        snap.gauges
            .insert(format!("{p}.warm_ns_per_query"), r.warm_ns_per_query);
        snap.gauges
            .insert(format!("{p}.dedup_ratio"), r.dedup_ratio);
    }
    snap
}

/// [`to_snapshot`] serialized as JSON.
pub fn to_json(b: &DecomposeBench) -> String {
    to_snapshot(b).to_json()
}

/// Runs, prints, and writes `BENCH_decompose.json`.
pub fn run(cfg: &ExpConfig) -> DecomposeBench {
    let b = build(cfg);
    let mut t = Table::new(
        "Decomposition path: reference (byte-keyed recursion) vs engine (id-keyed DAG)",
        &[
            "Estimator",
            "Queries",
            "Ref cold",
            "Engine cold",
            "Ref warm",
            "Engine warm",
            "Warm speedup",
            "ns/query",
            "Dedup",
        ],
    );
    for r in &b.rows {
        t.row(vec![
            r.estimator.to_owned(),
            r.queries.to_string(),
            format!("{:.2}ms", r.reference_cold_ms),
            format!("{:.2}ms", r.engine_cold_ms),
            format!("{:.3}ms", r.reference_warm_ms),
            format!("{:.3}ms", r.engine_warm_ms),
            format!("{:.2}x", r.warm_speedup),
            format!("{:.0}", r.warm_ns_per_query),
            format!("{:.2}x", r.dedup_ratio),
        ]);
    }
    t.print();
    let path = crate::workspace_root().join("BENCH_decompose.json");
    match std::fs::write(&path, to_json(&b)) {
        Ok(()) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("warning: could not write {}: {e}", path.display()),
    }
    b
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paths_agree_and_json_is_well_formed() {
        let cfg = ExpConfig {
            scale: 1200,
            queries: 4,
            ..ExpConfig::default()
        };
        let b = build(&cfg);
        assert_eq!(b.rows.len(), 2, "recursive + voting");
        for r in &b.rows {
            assert!(r.engine_cold_ms >= 0.0 && r.reference_cold_ms >= 0.0);
            assert!(r.warm_speedup.is_finite() && r.cold_speedup.is_finite());
            assert!(
                r.dedup_ratio > 1.0,
                "{}: dedup ratio {} not > 1",
                r.estimator,
                r.dedup_ratio
            );
            assert!(r.dag_refs > r.dag_nodes);
            assert!(r.interner_keys > 0);
        }
        // The record is a valid tl-metrics/1 snapshot and round-trips.
        let snap = to_snapshot(&b);
        let parsed = tl_obs::Snapshot::from_json(&to_json(&b)).unwrap();
        assert_eq!(parsed, snap);
        assert_eq!(
            snap.meta.get("bench").map(String::as_str),
            Some("decompose")
        );
        assert!(snap
            .gauges
            .contains_key("bench.decompose.recursive.warm_speedup"));
        assert!(snap
            .counters
            .contains_key("bench.decompose.voting.dag_nodes"));
    }
}
