//! Figure 10: δ-derivable pattern pruning experiments.
//!
//! * (a) 4-lattice summary size with vs without 0-derivable patterns, all
//!   datasets;
//! * (b) accuracy on NASA when the space freed by 0-pruning the 4-lattice
//!   is reinvested in the non-derivable patterns of the 5-lattice ("OPT"),
//!   vs plain voting and TreeSketches;
//! * (c) summary size vs δ ∈ {0, 10, 20, 30}% on IMDB;
//! * (d) estimation error vs δ on IMDB.

use tl_baselines::{SketchConfig, TreeSketch};
use tl_datagen::Dataset;
use tl_workload::{average_relative_error_pct, positive_workload};
use treelattice::{BuildConfig, EstimateOptions, Estimator, TreeLattice};

use crate::data::{all_datasets, one_dataset};
use crate::report::fmt_f;
use crate::{ExpConfig, Table};

/// (a) — pruning savings per dataset.
pub fn build_a(cfg: &ExpConfig) -> Table {
    let mut t = Table::new(
        "Figure 10(a): 4-Lattice Summary Size (KB), with vs without 0-derivable patterns",
        &[
            "Dataset",
            "With (KB)",
            "Without (KB)",
            "Saved (%)",
            "Patterns Pruned",
        ],
    );
    for (ds, doc) in all_datasets(cfg) {
        let mut lattice = TreeLattice::build(&doc, &BuildConfig::with_k(cfg.k));
        let before = lattice.summary_bytes();
        let report = lattice.prune(0.0);
        let after = lattice.summary_bytes();
        t.row(vec![
            ds.name().to_owned(),
            format!("{:.1}", before as f64 / 1024.0),
            format!("{:.1}", after as f64 / 1024.0),
            format!(
                "{:.1}",
                100.0 * report.bytes_saved() as f64 / before.max(1) as f64
            ),
            format!("{}/{}", report.pruned, report.examined),
        ]);
    }
    t
}

/// Runs (a), prints, writes CSV.
pub fn run_a(cfg: &ExpConfig) -> Table {
    let t = build_a(cfg);
    t.print();
    if let Err(e) = t.write_csv("fig10a_pruning_savings") {
        eprintln!("warning: could not write CSV: {e}");
    }
    t
}

/// (b) — NASA accuracy: voting on the 4-lattice, voting on the 0-pruned
/// 5-lattice (OPT), and TreeSketches, for query sizes 4..=9.
pub fn build_b(cfg: &ExpConfig) -> Table {
    let doc = one_dataset(cfg, Dataset::Nasa);
    let base = TreeLattice::build(&doc, &BuildConfig::with_k(cfg.k));
    // OPT: mine one level deeper and keep only non-derivable patterns —
    // the paper shows this fits in the space of the plain 4-lattice.
    let mut opt = TreeLattice::build(&doc, &BuildConfig::with_k(cfg.k + 1));
    opt.prune(0.0);
    let sketch = TreeSketch::build(
        &doc,
        SketchConfig {
            budget_bytes: cfg.sketch_budget,
        },
    );
    let opts = EstimateOptions::default();

    let mut t = Table::new(
        format!(
            "Figure 10(b): Average Relative Error (%) on Nasa \
             (OPT = pruned {}-lattice in {:.0} KB vs plain {}-lattice in {:.0} KB)",
            cfg.k + 1,
            opt.summary_bytes() as f64 / 1024.0,
            cfg.k,
            base.summary_bytes() as f64 / 1024.0,
        ),
        &["Query Size", "voting+OPT", "voting", "treesketch"],
    );
    for size in 4..=9 {
        let w = positive_workload(&doc, size, cfg.queries, cfg.seed.wrapping_add(size as u64));
        let truths = w.true_counts();
        let est = |f: &dyn Fn(&tl_twig::Twig) -> f64| -> f64 {
            let estimates: Vec<f64> = w.cases.iter().map(|c| f(&c.twig)).collect();
            average_relative_error_pct(&truths, &estimates)
        };
        t.row(vec![
            size.to_string(),
            fmt_f(est(&|q| {
                opt.estimate_with(q, Estimator::RecursiveVoting, &opts)
            })),
            fmt_f(est(&|q| {
                base.estimate_with(q, Estimator::RecursiveVoting, &opts)
            })),
            fmt_f(est(&|q| sketch.estimate(q))),
        ]);
    }
    t
}

/// Runs (b), prints, writes CSV.
pub fn run_b(cfg: &ExpConfig) -> Table {
    let t = build_b(cfg);
    t.print();
    if let Err(e) = t.write_csv("fig10b_pruning_accuracy") {
        eprintln!("warning: could not write CSV: {e}");
    }
    t
}

/// The δ grid of Figures 10(c)/(d).
pub const DELTAS: [f64; 4] = [0.0, 0.10, 0.20, 0.30];

/// (c) — IMDB summary size vs δ.
pub fn build_c(cfg: &ExpConfig) -> Table {
    let doc = one_dataset(cfg, Dataset::Imdb);
    let full = TreeLattice::build(&doc, &BuildConfig::with_k(cfg.k));
    let mut t = Table::new(
        "Figure 10(c): 4-Lattice Summary Size vs delta (IMDB)",
        &["Delta(%)", "Size (KB)", "Patterns"],
    );
    t.row(vec![
        "unpruned".into(),
        format!("{:.1}", full.summary_bytes() as f64 / 1024.0),
        full.summary().len().to_string(),
    ]);
    for &delta in &DELTAS {
        let mut lat = full.clone();
        lat.prune(delta);
        t.row(vec![
            format!("{:.0}", delta * 100.0),
            format!("{:.1}", lat.summary_bytes() as f64 / 1024.0),
            lat.summary().len().to_string(),
        ]);
    }
    t
}

/// Runs (c), prints, writes CSV.
pub fn run_c(cfg: &ExpConfig) -> Table {
    let t = build_c(cfg);
    t.print();
    if let Err(e) = t.write_csv("fig10c_delta_size") {
        eprintln!("warning: could not write CSV: {e}");
    }
    t
}

/// (d) — IMDB estimation error vs query size for each δ.
pub fn build_d(cfg: &ExpConfig) -> Table {
    let doc = one_dataset(cfg, Dataset::Imdb);
    let full = TreeLattice::build(&doc, &BuildConfig::with_k(cfg.k));
    let pruned: Vec<TreeLattice> = DELTAS
        .iter()
        .map(|&delta| {
            let mut lat = full.clone();
            lat.prune(delta);
            lat
        })
        .collect();
    let opts = EstimateOptions::default();
    let mut t = Table::new(
        "Figure 10(d): Average Relative Error (%) vs delta (IMDB)",
        &[
            "Query Size",
            "delta=0%",
            "delta=10%",
            "delta=20%",
            "delta=30%",
        ],
    );
    for size in cfg.query_sizes() {
        let w = positive_workload(&doc, size, cfg.queries, cfg.seed.wrapping_add(size as u64));
        let truths = w.true_counts();
        let mut row = vec![size.to_string()];
        for lat in &pruned {
            let estimates: Vec<f64> = w
                .cases
                .iter()
                .map(|c| lat.estimate_with(&c.twig, Estimator::RecursiveVoting, &opts))
                .collect();
            row.push(fmt_f(average_relative_error_pct(&truths, &estimates)));
        }
        t.row(row);
    }
    t
}

/// Runs (d), prints, writes CSV.
pub fn run_d(cfg: &ExpConfig) -> Table {
    let t = build_d(cfg);
    t.print();
    if let Err(e) = t.write_csv("fig10d_delta_accuracy") {
        eprintln!("warning: could not write CSV: {e}");
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ExpConfig {
        ExpConfig {
            scale: 1200,
            queries: 4,
            ..ExpConfig::default()
        }
    }

    #[test]
    fn pruning_saves_space_on_every_dataset() {
        let t = build_a(&tiny());
        assert_eq!(t.rows().len(), 4);
        for row in t.rows() {
            let with: f64 = row[1].parse().unwrap();
            let without: f64 = row[2].parse().unwrap();
            assert!(without <= with, "{}: {without} > {with}", row[0]);
        }
    }

    #[test]
    fn delta_monotonically_shrinks_summary() {
        let t = build_c(&tiny());
        // Rows: unpruned, then one per delta.
        let sizes: Vec<f64> = t.rows().iter().map(|r| r[1].parse().unwrap()).collect();
        for pair in sizes.windows(2) {
            assert!(pair[1] <= pair[0] + 1e-9, "sizes not monotone: {sizes:?}");
        }
    }

    #[test]
    fn fig10b_produces_six_sizes() {
        let t = build_b(&tiny());
        assert_eq!(t.rows().len(), 6);
    }
}
