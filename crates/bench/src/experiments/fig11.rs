//! Figure 11 / §5.3: the worked example where per-edge averaging
//! overestimates a branching twig and the lattice answers exactly.

use tl_baselines::{SketchConfig, TreeSketch};
use tl_datagen::figure11_document;
use tl_twig::{count_matches, parse_twig_in};
use treelattice::{BuildConfig, Estimator, TreeLattice};

use crate::{ExpConfig, Table};

/// Builds the example table.
pub fn build(_cfg: &ExpConfig) -> Table {
    let doc = figure11_document();
    let q = parse_twig_in("b[c][d]", doc.labels()).expect("example query parses");
    let truth = count_matches(&doc, &q);
    let lattice = TreeLattice::build(&doc, &BuildConfig::with_k(3));
    // A label-split synopsis (no splits) — the coarse synopsis the paper's
    // example analyzes.
    let sketch = TreeSketch::build(&doc, SketchConfig { budget_bytes: 0 });
    let mut t = Table::new(
        "Figure 11: Worked example — query b[c][d] on the anti-correlated document",
        &["Method", "Estimate", "True", "Error (%)"],
    );
    let lattice_est = lattice.estimate(&q, Estimator::Recursive);
    let sketch_est = sketch.estimate(&q);
    for (name, est) in [
        ("TreeLattice (3-lattice)", lattice_est),
        ("TreeSketches", sketch_est),
    ] {
        t.row(vec![
            name.to_owned(),
            format!("{est:.2}"),
            truth.to_string(),
            format!("{:.0}", 100.0 * (est - truth as f64).abs() / truth as f64),
        ]);
    }
    t
}

/// Runs, prints, writes CSV.
pub fn run(cfg: &ExpConfig) -> Table {
    let t = build(cfg);
    t.print();
    if let Err(e) = t.write_csv("fig11_example") {
        eprintln!("warning: could not write CSV: {e}");
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn example_reproduces_the_papers_contrast() {
        let t = build(&ExpConfig::default());
        let lattice_err: f64 = t.rows()[0][3].parse().unwrap();
        let sketch_err: f64 = t.rows()[1][3].parse().unwrap();
        assert_eq!(
            lattice_err, 0.0,
            "the lattice answers the small twig exactly"
        );
        assert!(
            sketch_err >= 99.0,
            "averaging must overestimate by ~100%, got {sketch_err}%"
        );
    }
}
