//! Figure 7: average selectivity estimation error vs query size, per
//! dataset, for all four methods.

use tl_workload::average_relative_error_pct;

use crate::data::all_datasets;
use crate::experiments::harness::{sweep, DatasetSweep, Method};
use crate::report::fmt_f;
use crate::{ExpConfig, Table};

/// Runs the sweep and projects Figure 7's series for one dataset.
pub fn build_for(sweep_data: &DatasetSweep) -> Table {
    let mut t = Table::new(
        format!(
            "Figure 7 ({}): Average Relative Error (%) vs Query Size",
            sweep_data.dataset.name()
        ),
        &[
            "Query Size",
            Method::Recursive.short(),
            Method::RecursiveVoting.short(),
            Method::FixSized.short(),
            Method::TreeSketches.short(),
        ],
    );
    for cell in &sweep_data.per_size {
        let mut row = vec![cell.size.to_string()];
        for mi in 0..4 {
            row.push(fmt_f(average_relative_error_pct(
                &cell.truths,
                &cell.estimates[mi],
            )));
        }
        t.row(row);
    }
    t
}

/// Runs, prints and writes one CSV per dataset.
pub fn run(cfg: &ExpConfig) -> Vec<Table> {
    let mut out = Vec::new();
    for (ds, doc) in all_datasets(cfg) {
        let s = sweep(cfg, ds, &doc);
        let t = build_for(&s);
        t.print();
        if let Err(e) = t.write_csv(&format!("fig7_accuracy_{}", ds.name())) {
            eprintln!("warning: could not write CSV: {e}");
        }
        out.push(t);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::one_dataset;
    use tl_datagen::Dataset;

    #[test]
    fn errors_are_percentages() {
        let cfg = ExpConfig {
            scale: 1200,
            queries: 5,
            ..ExpConfig::default()
        };
        let doc = one_dataset(&cfg, Dataset::Xmark);
        let s = sweep(&cfg, Dataset::Xmark, &doc);
        let t = build_for(&s);
        assert_eq!(t.rows().len(), cfg.query_sizes().len());
        for row in t.rows() {
            for cell in &row[1..] {
                let v: f64 = cell.parse().unwrap();
                assert!(v >= 0.0 && v.is_finite());
            }
        }
    }

    #[test]
    fn size_four_queries_have_zero_lattice_error() {
        // With k = 4, size-4 positive queries are answered exactly.
        let cfg = ExpConfig {
            scale: 1500,
            queries: 6,
            ..ExpConfig::default()
        };
        let doc = one_dataset(&cfg, Dataset::Psd);
        let s = sweep(&cfg, Dataset::Psd, &doc);
        let first = &s.per_size[0];
        assert_eq!(first.size, 4);
        for mi in 0..3 {
            let err = average_relative_error_pct(&first.truths, &first.estimates[mi]);
            assert_eq!(err, 0.0, "method {mi} not exact on in-lattice queries");
        }
    }
}
