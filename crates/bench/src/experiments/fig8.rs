//! Figure 8: cumulative distribution of relative errors, per dataset.
//!
//! Errors from all query sizes are pooled (as in the paper, which plots
//! one distribution per dataset), evaluated on the Figure 8 log grid
//! from 0.1% to 10000%.

use tl_workload::metrics::{error_cdf, fig8_grid, relative_error_pct, sanity_bound};

use crate::data::all_datasets;
use crate::experiments::harness::{sweep, DatasetSweep, Method};
use crate::{ExpConfig, Table};

/// Pools per-query errors per method across sizes.
pub fn pooled_errors(sweep_data: &DatasetSweep) -> [Vec<f64>; 4] {
    let mut pooled: [Vec<f64>; 4] = Default::default();
    for cell in &sweep_data.per_size {
        let bound = sanity_bound(&cell.truths);
        for (pool, estimates) in pooled.iter_mut().zip(&cell.estimates) {
            for (&s, &e) in cell.truths.iter().zip(estimates) {
                pool.push(relative_error_pct(s, e, bound));
            }
        }
    }
    pooled
}

/// Builds the CDF table for one dataset.
pub fn build_for(sweep_data: &DatasetSweep) -> Table {
    let grid = fig8_grid();
    let pooled = pooled_errors(sweep_data);
    let cdfs: Vec<Vec<(f64, f64)>> = pooled.iter().map(|e| error_cdf(e, &grid)).collect();
    let mut t = Table::new(
        format!(
            "Figure 8 ({}): Cumulative Error Distribution (%)",
            sweep_data.dataset.name()
        ),
        &[
            "Error<=(%)",
            Method::Recursive.short(),
            Method::RecursiveVoting.short(),
            Method::FixSized.short(),
            Method::TreeSketches.short(),
        ],
    );
    for (gi, &x) in grid.iter().enumerate() {
        t.row(vec![
            format!("{x:.2}"),
            format!("{:.1}", cdfs[0][gi].1),
            format!("{:.1}", cdfs[1][gi].1),
            format!("{:.1}", cdfs[2][gi].1),
            format!("{:.1}", cdfs[3][gi].1),
        ]);
    }
    t
}

/// Runs, prints and writes one CSV per dataset.
pub fn run(cfg: &ExpConfig) -> Vec<Table> {
    let mut out = Vec::new();
    for (ds, doc) in all_datasets(cfg) {
        let s = sweep(cfg, ds, &doc);
        let t = build_for(&s);
        t.print();
        if let Err(e) = t.write_csv(&format!("fig8_error_cdf_{}", ds.name())) {
            eprintln!("warning: could not write CSV: {e}");
        }
        out.push(t);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::one_dataset;
    use tl_datagen::Dataset;

    #[test]
    fn cdf_columns_are_monotone() {
        let cfg = ExpConfig {
            scale: 1000,
            queries: 4,
            ..ExpConfig::default()
        };
        let doc = one_dataset(&cfg, Dataset::Nasa);
        let s = sweep(&cfg, Dataset::Nasa, &doc);
        let t = build_for(&s);
        for col in 1..=4 {
            let mut prev = -1.0f64;
            for row in t.rows() {
                let v: f64 = row[col].parse().unwrap();
                assert!(v >= prev - 1e-9, "column {col} not monotone");
                prev = v;
            }
            assert!((prev - 100.0).abs() < 1e-6, "column {col} must end at 100%");
        }
    }
}
