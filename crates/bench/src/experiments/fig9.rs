//! Figure 9: average estimation response time (ms) vs query size.

use crate::data::all_datasets;
use crate::experiments::harness::{sweep, DatasetSweep, Method};
use crate::{ExpConfig, Table};

/// Builds the response-time table for one dataset.
pub fn build_for(sweep_data: &DatasetSweep) -> Table {
    let mut t = Table::new(
        format!(
            "Figure 9 ({}): Average Response Time (ms) vs Query Size",
            sweep_data.dataset.name()
        ),
        &[
            "Query Size",
            Method::Recursive.short(),
            Method::RecursiveVoting.short(),
            Method::FixSized.short(),
            Method::TreeSketches.short(),
            "cached-engine",
            "hit-rate-%",
        ],
    );
    for cell in &sweep_data.per_size {
        let mut row = vec![cell.size.to_string()];
        for mi in 0..4 {
            row.push(format!("{:.4}", cell.mean_latency_ms(mi)));
        }
        row.push(format!("{:.4}", cell.engine_latency_ms()));
        row.push(format!("{:.1}", cell.engine_hit_rate));
        t.row(row);
    }
    t
}

/// Runs, prints and writes one CSV per dataset.
pub fn run(cfg: &ExpConfig) -> Vec<Table> {
    let mut out = Vec::new();
    for (ds, doc) in all_datasets(cfg) {
        let s = sweep(cfg, ds, &doc);
        let t = build_for(&s);
        t.print();
        if let Err(e) = t.write_csv(&format!("fig9_response_time_{}", ds.name())) {
            eprintln!("warning: could not write CSV: {e}");
        }
        out.push(t);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::one_dataset;
    use tl_datagen::Dataset;

    #[test]
    fn latencies_are_positive_and_small() {
        let cfg = ExpConfig {
            scale: 1000,
            queries: 4,
            ..ExpConfig::default()
        };
        let doc = one_dataset(&cfg, Dataset::Xmark);
        let s = sweep(&cfg, Dataset::Xmark, &doc);
        let t = build_for(&s);
        for row in t.rows() {
            for cell in &row[1..] {
                let v: f64 = cell.parse().unwrap();
                assert!((0.0..10_000.0).contains(&v));
            }
        }
    }
}
