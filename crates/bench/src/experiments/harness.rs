//! Shared estimation harness for the accuracy / response-time figures.
//!
//! Builds every estimator once per dataset, runs the per-size positive
//! workloads through all of them, and records estimates and per-query
//! latencies. Figures 7, 8 and 9 are different projections of this data.

use std::time::{Duration, Instant};

use tl_baselines::{SketchConfig, TreeSketch};
use tl_datagen::Dataset;
use tl_workload::{positive_workload_with_index, Workload};
use tl_xml::{DocIndex, Document};
use treelattice::{
    BuildConfig, EngineConfig, EstimateOptions, EstimationEngine, Estimator, TreeLattice,
};

use crate::ExpConfig;

/// The four estimation methods compared in Figures 7–9.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Method {
    /// TreeLattice, recursive decomposition.
    Recursive,
    /// TreeLattice, recursive decomposition with voting.
    RecursiveVoting,
    /// TreeLattice, fix-sized decomposition.
    FixSized,
    /// The TreeSketches-style synopsis baseline.
    TreeSketches,
}

impl Method {
    /// All methods in the paper's legend order.
    pub const ALL: [Method; 4] = [
        Method::Recursive,
        Method::RecursiveVoting,
        Method::FixSized,
        Method::TreeSketches,
    ];

    /// Legend label (matches the paper's figure legends).
    pub fn name(self) -> &'static str {
        match self {
            Method::Recursive => "Recursive Decomp Estimator",
            Method::RecursiveVoting => "Recursive Decomp Estimator + Voting",
            Method::FixSized => "Fix-sized Decomp Estimator",
            Method::TreeSketches => "TreeSketches",
        }
    }

    /// Short column label.
    pub fn short(self) -> &'static str {
        match self {
            Method::Recursive => "recursive",
            Method::RecursiveVoting => "rec+voting",
            Method::FixSized => "fix-sized",
            Method::TreeSketches => "treesketch",
        }
    }
}

/// All built estimators over one document.
pub struct Estimators {
    /// The TreeLattice summary (order `cfg.k`).
    pub lattice: TreeLattice,
    /// The synopsis baseline.
    pub sketch: TreeSketch,
    /// The shared cross-query engine cache, persisted across workload
    /// cells so sub-twig overlap between sizes accumulates (Figure 9's
    /// cached-engine column).
    pub engine: EstimationEngine,
    /// The one document index shared by mining, the baseline build, and
    /// the workload ground-truth labeling.
    pub index: DocIndex,
}

impl Estimators {
    /// Builds both systems (indexing the document once for everything).
    pub fn build(cfg: &ExpConfig, doc: &Document) -> Self {
        let index = DocIndex::new(doc);
        Self {
            lattice: TreeLattice::build_with_index(doc, &index, &BuildConfig::with_k(cfg.k)),
            sketch: TreeSketch::build_with_index(
                doc,
                &index,
                SketchConfig {
                    budget_bytes: cfg.sketch_budget,
                },
            ),
            engine: EstimationEngine::new(EngineConfig::default()),
            index,
        }
    }

    /// Runs one query through one method, returning (estimate, latency).
    pub fn run(&self, method: Method, twig: &tl_twig::Twig) -> (f64, Duration) {
        let opts = EstimateOptions::default();
        let start = Instant::now();
        let est = match method {
            Method::Recursive => self
                .lattice
                .estimate_with(twig, Estimator::Recursive, &opts),
            Method::RecursiveVoting => {
                self.lattice
                    .estimate_with(twig, Estimator::RecursiveVoting, &opts)
            }
            Method::FixSized => self.lattice.estimate_with(twig, Estimator::FixSized, &opts),
            Method::TreeSketches => self.sketch.estimate(twig),
        };
        (est, start.elapsed())
    }
}

/// Results of one (dataset, query-size) workload cell.
pub struct SizeResult {
    /// Query size.
    pub size: usize,
    /// Ground-truth selectivities.
    pub truths: Vec<u64>,
    /// Per-method estimates, indexed like [`Method::ALL`].
    pub estimates: [Vec<f64>; 4],
    /// Per-method total estimation time over the workload.
    pub times: [Duration; 4],
    /// Wall time of the shared-cache engine batch over the same workload
    /// (voting estimator).
    pub engine_time: Duration,
    /// Engine cache hit rate (%) observed during this cell's batch.
    pub engine_hit_rate: f64,
}

impl SizeResult {
    /// Mean per-query latency of one method, in milliseconds.
    pub fn mean_latency_ms(&self, method_idx: usize) -> f64 {
        if self.truths.is_empty() {
            return 0.0;
        }
        self.times[method_idx].as_secs_f64() * 1e3 / self.truths.len() as f64
    }

    /// Mean per-query latency of the cached-engine batch, in milliseconds.
    pub fn engine_latency_ms(&self) -> f64 {
        if self.truths.is_empty() {
            return 0.0;
        }
        self.engine_time.as_secs_f64() * 1e3 / self.truths.len() as f64
    }
}

/// Full accuracy/latency sweep for one dataset.
pub struct DatasetSweep {
    /// Which corpus.
    pub dataset: Dataset,
    /// One entry per query size (cfg.query_sizes()).
    pub per_size: Vec<SizeResult>,
}

/// Runs the positive-workload sweep for one dataset.
pub fn sweep(cfg: &ExpConfig, dataset: Dataset, doc: &Document) -> DatasetSweep {
    let est = Estimators::build(cfg, doc);
    let per_size = cfg
        .query_sizes()
        .into_iter()
        .map(|size| run_cell(cfg, &est, doc, size))
        .collect();
    DatasetSweep { dataset, per_size }
}

fn run_cell(cfg: &ExpConfig, est: &Estimators, doc: &Document, size: usize) -> SizeResult {
    let workload: Workload = positive_workload_with_index(
        doc,
        &est.index,
        size,
        cfg.queries,
        cfg.seed.wrapping_add(size as u64),
    );
    let truths = workload.true_counts();
    let mut estimates: [Vec<f64>; 4] = Default::default();
    let mut times = [Duration::ZERO; 4];
    for case in &workload.cases {
        for (mi, &method) in Method::ALL.iter().enumerate() {
            let (e, dt) = est.run(method, &case.twig);
            estimates[mi].push(e);
            times[mi] += dt;
        }
    }

    // The same workload once more through the shared-cache engine batch.
    let twigs: Vec<tl_twig::Twig> = workload.cases.iter().map(|c| c.twig.clone()).collect();
    let opts = EstimateOptions::default();
    let before = est.engine.stats();
    let t0 = Instant::now();
    let batch = est
        .engine
        .estimate_batch(&est.lattice, &twigs, Estimator::RecursiveVoting, &opts);
    let engine_time = t0.elapsed();
    std::hint::black_box(batch);
    let after = est.engine.stats();
    let (hits, misses) = (after.hits - before.hits, after.misses - before.misses);
    let engine_hit_rate = if hits + misses == 0 {
        0.0
    } else {
        100.0 * hits as f64 / (hits + misses) as f64
    };

    SizeResult {
        size,
        truths,
        estimates,
        times,
        engine_time,
        engine_hit_rate,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::one_dataset;
    use tl_workload::positive_workload;

    #[test]
    fn sweep_produces_full_grid() {
        let cfg = ExpConfig {
            scale: 1500,
            queries: 5,
            ..ExpConfig::default()
        };
        let doc = one_dataset(&cfg, Dataset::Psd);
        let s = sweep(&cfg, Dataset::Psd, &doc);
        assert_eq!(s.per_size.len(), cfg.query_sizes().len());
        for cell in &s.per_size {
            assert_eq!(cell.truths.len(), cell.estimates[0].len());
            for est_set in &cell.estimates {
                for &e in est_set {
                    assert!(e.is_finite() && e >= 0.0);
                }
            }
        }
    }

    #[test]
    fn engine_cache_hits_during_the_sweep() {
        let cfg = ExpConfig {
            scale: 1500,
            queries: 5,
            ..ExpConfig::default()
        };
        let doc = one_dataset(&cfg, Dataset::Xmark);
        let s = sweep(&cfg, Dataset::Xmark, &doc);
        assert!(
            s.per_size.iter().any(|c| c.engine_hit_rate > 0.0),
            "the shared cache never hit across the whole sweep"
        );
        for cell in &s.per_size {
            assert!((0.0..=100.0).contains(&cell.engine_hit_rate));
        }
    }

    #[test]
    fn small_in_lattice_queries_are_exact_for_all_lattice_methods() {
        let cfg = ExpConfig {
            scale: 1200,
            queries: 8,
            ..ExpConfig::default()
        };
        let doc = one_dataset(&cfg, Dataset::Nasa);
        let est = Estimators::build(&cfg, &doc);
        let w = positive_workload(&doc, 4, 8, 3);
        for case in &w.cases {
            for method in [Method::Recursive, Method::RecursiveVoting, Method::FixSized] {
                let (e, _) = est.run(method, &case.twig);
                assert_eq!(e, case.true_count as f64, "{method:?}");
            }
        }
    }
}
