//! Old-vs-new exact-match kernel comparison (`bench matcher`).
//!
//! Times the dense CSR [`tl_twig::MatchCounter`] against the preserved
//! hash-map [`tl_twig::ReferenceMatchCounter`] on the same positive
//! workloads over the synthetic datasets, verifies the two kernels return
//! identical totals, times a full mining run at 1 and 4 threads (checking
//! the lattices are identical), and records everything in
//! `BENCH_matcher.json` at the workspace root so the repo's perf trajectory
//! is tracked in-tree, not just in criterion's local target directory.
//! The record uses the `tl-metrics/1` snapshot schema, so `treelattice
//! metrics report BENCH_matcher.json` renders it like any other snapshot.

use std::time::Instant;

use tl_datagen::{Dataset, GenConfig};
use tl_miner::{mine_with_index, MineConfig};
use tl_twig::{MatchCounter, ReferenceMatchCounter};
use tl_workload::positive_workload_with_index;
use tl_xml::DocIndex;

use crate::{ExpConfig, Table};

/// One (dataset, query-size) kernel comparison cell.
#[derive(Clone, Debug)]
pub struct KernelRow {
    /// Dataset name.
    pub dataset: &'static str,
    /// Query size (nodes).
    pub size: usize,
    /// Queries in the workload cell.
    pub queries: usize,
    /// Median wall time of the reference (hash-map) kernel, ms.
    pub reference_ms: f64,
    /// Median wall time of the dense CSR kernel, ms.
    pub dense_ms: f64,
    /// `reference_ms / dense_ms`.
    pub speedup: f64,
}

/// One mining timing row (the new index-backed path).
#[derive(Clone, Debug)]
pub struct MineRow {
    /// Dataset name.
    pub dataset: &'static str,
    /// Lattice order mined.
    pub k: usize,
    /// Worker threads.
    pub threads: usize,
    /// Median wall time, ms.
    pub ms: f64,
    /// Patterns mined (equal across thread counts by construction).
    pub patterns: usize,
}

/// The full comparison result.
#[derive(Clone, Debug)]
pub struct MatcherBench {
    /// Configuration echo for the JSON record.
    pub scale: usize,
    /// Seed echo.
    pub seed: u64,
    /// Kernel comparison cells.
    pub kernel: Vec<KernelRow>,
    /// Mining rows.
    pub mine: Vec<MineRow>,
}

/// Median of `repeats` timed runs of `f`, in milliseconds.
fn median_ms(repeats: usize, mut f: impl FnMut()) -> f64 {
    let mut samples: Vec<f64> = (0..repeats)
        .map(|_| {
            let t0 = Instant::now();
            f();
            t0.elapsed().as_secs_f64() * 1e3
        })
        .collect();
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

/// Runs the comparison without printing or writing.
pub fn build(cfg: &ExpConfig) -> MatcherBench {
    let mut kernel = Vec::new();
    let mut mine_rows = Vec::new();
    for ds in [Dataset::Xmark, Dataset::Psd] {
        let doc = ds.generate(GenConfig {
            seed: cfg.seed,
            target_elements: cfg.scale,
        });
        let index = DocIndex::new(&doc);
        let dense = MatchCounter::with_index(&doc, &index);
        let reference = ReferenceMatchCounter::new(&doc);
        for size in [3usize, 5, 8] {
            let w = positive_workload_with_index(
                &doc,
                &index,
                size,
                cfg.queries,
                cfg.seed.wrapping_add(size as u64),
            );
            assert!(
                !w.cases.is_empty(),
                "{} size {size}: empty workload",
                ds.name()
            );
            let total = |count: &dyn Fn(&tl_twig::Twig) -> u64| -> u64 {
                w.cases
                    .iter()
                    .fold(0u64, |a, c| a.wrapping_add(count(&c.twig)))
            };
            let dense_total = total(&|t| dense.count(t));
            let reference_total = total(&|t| reference.count(t));
            assert_eq!(
                dense_total,
                reference_total,
                "kernel disagreement on {} size {size}",
                ds.name()
            );
            let reference_ms = median_ms(5, || {
                std::hint::black_box(total(&|t| reference.count(t)));
            });
            let dense_ms = median_ms(5, || {
                std::hint::black_box(total(&|t| dense.count(t)));
            });
            kernel.push(KernelRow {
                dataset: ds.name(),
                size,
                queries: w.cases.len(),
                reference_ms,
                dense_ms,
                speedup: reference_ms / dense_ms.max(1e-9),
            });
        }

        // Mining at 1 and 4 threads: identical lattices, recorded times.
        let k = cfg.k.min(4);
        let serial = mine_with_index(
            &index,
            MineConfig {
                max_size: k,
                threads: 1,
            },
        );
        let parallel = mine_with_index(
            &index,
            MineConfig {
                max_size: k,
                threads: 4,
            },
        );
        assert_eq!(serial.lattice.len(), parallel.lattice.len());
        for (key, count) in serial.lattice.iter() {
            assert_eq!(
                parallel.lattice.get(key),
                Some(count),
                "parallel mining diverged on {}",
                ds.name()
            );
        }
        for threads in [1usize, 4] {
            let ms = median_ms(3, || {
                let r = mine_with_index(
                    &index,
                    MineConfig {
                        max_size: k,
                        threads,
                    },
                );
                std::hint::black_box(r.lattice.len());
            });
            mine_rows.push(MineRow {
                dataset: ds.name(),
                k,
                threads,
                ms,
                patterns: serial.lattice.len(),
            });
        }
    }
    MatcherBench {
        scale: cfg.scale,
        seed: cfg.seed,
        kernel,
        mine: mine_rows,
    }
}

/// Renders the result as a `tl-metrics/1` snapshot: timings as gauges,
/// sizes as counters, configuration echo as meta.
pub fn to_snapshot(b: &MatcherBench) -> tl_obs::Snapshot {
    let mut snap = tl_obs::Snapshot::default();
    snap.meta.insert("bench".into(), "matcher".into());
    snap.meta.insert("scale".into(), b.scale.to_string());
    snap.meta.insert("seed".into(), b.seed.to_string());
    for r in &b.kernel {
        let p = format!("bench.matcher.kernel.{}.s{}", r.dataset, r.size);
        snap.counters
            .insert(format!("{p}.queries"), r.queries as u64);
        snap.gauges
            .insert(format!("{p}.reference_ms"), r.reference_ms);
        snap.gauges.insert(format!("{p}.dense_ms"), r.dense_ms);
        snap.gauges.insert(format!("{p}.speedup"), r.speedup);
    }
    for r in &b.mine {
        let p = format!("bench.matcher.mine.{}.k{}.t{}", r.dataset, r.k, r.threads);
        snap.gauges.insert(format!("{p}.ms"), r.ms);
        snap.counters
            .insert(format!("{p}.patterns"), r.patterns as u64);
    }
    snap
}

/// [`to_snapshot`] serialized as JSON.
pub fn to_json(b: &MatcherBench) -> String {
    to_snapshot(b).to_json()
}

/// Runs, prints, and writes `BENCH_matcher.json`.
pub fn run(cfg: &ExpConfig) -> MatcherBench {
    let b = build(cfg);
    let mut t = Table::new(
        "Exact-match kernel: reference (hash-map) vs dense (CSR)",
        &[
            "Dataset",
            "Size",
            "Queries",
            "Reference",
            "Dense",
            "Speedup",
        ],
    );
    for r in &b.kernel {
        t.row(vec![
            r.dataset.to_owned(),
            r.size.to_string(),
            r.queries.to_string(),
            format!("{:.2}ms", r.reference_ms),
            format!("{:.2}ms", r.dense_ms),
            format!("{:.2}x", r.speedup),
        ]);
    }
    t.print();
    let mut m = Table::new(
        "Mining (index-backed kernel)",
        &["Dataset", "k", "Threads", "Time", "Patterns"],
    );
    for r in &b.mine {
        m.row(vec![
            r.dataset.to_owned(),
            r.k.to_string(),
            r.threads.to_string(),
            format!("{:.1}ms", r.ms),
            r.patterns.to_string(),
        ]);
    }
    m.print();
    let path = crate::workspace_root().join("BENCH_matcher.json");
    match std::fs::write(&path, to_json(&b)) {
        Ok(()) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("warning: could not write {}: {e}", path.display()),
    }
    b
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kernels_agree_and_json_is_well_formed() {
        let cfg = ExpConfig {
            scale: 1200,
            queries: 4,
            ..ExpConfig::default()
        };
        let b = build(&cfg);
        assert_eq!(b.kernel.len(), 6, "2 datasets x 3 sizes");
        assert_eq!(b.mine.len(), 4, "2 datasets x 2 thread counts");
        for r in &b.kernel {
            assert!(r.dense_ms >= 0.0 && r.reference_ms >= 0.0);
            assert!(r.speedup.is_finite());
        }
        // The record is a valid tl-metrics/1 snapshot and round-trips.
        let snap = to_snapshot(&b);
        let parsed = tl_obs::Snapshot::from_json(&to_json(&b)).unwrap();
        assert_eq!(parsed, snap);
        assert_eq!(snap.meta.get("bench").map(String::as_str), Some("matcher"));
        assert_eq!(
            snap.gauges.len(),
            6 * 3 + 4,
            "3 per kernel cell, 1 per mine row"
        );
        assert!(snap
            .gauges
            .contains_key("bench.matcher.kernel.xmark.s3.dense_ms"));
        assert!(snap
            .counters
            .contains_key("bench.matcher.mine.psd.k4.t4.patterns"));
    }
}
