//! Experiment implementations, one module per table/figure.

pub mod ablation;
pub mod corpus;
pub mod decompose;
pub mod fig10;
pub mod fig11;
pub mod fig7;
pub mod fig8;
pub mod fig9;
pub mod harness;
pub mod matcher;
pub mod negative;
pub mod recovery;
pub mod scale_sweep;
pub mod server;
pub mod table1;
pub mod table2;
pub mod table3;
pub mod values;

use crate::ExpConfig;

/// Runs the full evaluation suite in paper order.
pub fn run_all(cfg: &ExpConfig) {
    table1::run(cfg);
    table2::run(cfg);
    table3::run(cfg);
    fig7::run(cfg);
    fig8::run(cfg);
    fig9::run(cfg);
    fig10::run_a(cfg);
    fig10::run_b(cfg);
    fig10::run_c(cfg);
    fig10::run_d(cfg);
    fig11::run(cfg);
    negative::run(cfg);
    ablation::run_voting(cfg);
    ablation::run_k(cfg);
    values::run(cfg);
    scale_sweep::run(cfg);
    matcher::run(cfg);
    decompose::run(&decompose::bench_config());
    corpus::run(&corpus::bench_config());
    recovery::run(&recovery::bench_config());
    server::run(&server::bench_config());
}
