//! §5.1 negative workloads: zero-selectivity queries.
//!
//! The paper reports TreeLattice answers > 90% of negative queries with an
//! exact 0 (an error requires every sub-twig of the query to occur while
//! the query itself does not), and TreeSketches answers 100% by design.
//! This experiment measures the exact-zero rate per dataset and method.

use tl_workload::negative_workload;
use treelattice::{BuildConfig, EstimateOptions, Estimator, TreeLattice};

use crate::data::all_datasets;
use crate::experiments::harness::Estimators;
use crate::{ExpConfig, Table};

/// Builds the zero-answer-rate table.
pub fn build(cfg: &ExpConfig) -> Table {
    let mut t = Table::new(
        "Negative workloads: % of zero-selectivity queries answered exactly 0",
        &[
            "Dataset",
            "Queries",
            "recursive",
            "rec+voting",
            "fix-sized",
            "treesketch",
        ],
    );
    for (ds, doc) in all_datasets(cfg) {
        let est = Estimators::build(cfg, &doc);
        let mut cases = Vec::new();
        for size in cfg.query_sizes() {
            let w = negative_workload(&doc, size, cfg.queries, cfg.seed.wrapping_add(size as u64));
            cases.extend(w.cases);
        }
        if cases.is_empty() {
            continue;
        }
        let opts = EstimateOptions::default();
        let zero_rate = |f: &dyn Fn(&tl_twig::Twig) -> f64| -> f64 {
            let zeros = cases.iter().filter(|c| f(&c.twig) == 0.0).count();
            100.0 * zeros as f64 / cases.len() as f64
        };
        t.row(vec![
            ds.name().to_owned(),
            cases.len().to_string(),
            format!(
                "{:.1}",
                zero_rate(&|q| est.lattice.estimate_with(q, Estimator::Recursive, &opts))
            ),
            format!(
                "{:.1}",
                zero_rate(&|q| est
                    .lattice
                    .estimate_with(q, Estimator::RecursiveVoting, &opts))
            ),
            format!(
                "{:.1}",
                zero_rate(&|q| est.lattice.estimate_with(q, Estimator::FixSized, &opts))
            ),
            format!("{:.1}", zero_rate(&|q| est.sketch.estimate(q))),
        ]);
    }
    t
}

/// Runs, prints, writes CSV.
pub fn run(cfg: &ExpConfig) -> Table {
    let t = build(cfg);
    t.print();
    if let Err(e) = t.write_csv("negative_workload") {
        eprintln!("warning: could not write CSV: {e}");
    }
    t
}

/// Convenience used by the integration tests: the zero rate of the plain
/// recursive estimator on one document.
pub fn zero_rate_recursive(cfg: &ExpConfig, doc: &tl_xml::Document) -> f64 {
    let lattice = TreeLattice::build(doc, &BuildConfig::with_k(cfg.k));
    let mut total = 0usize;
    let mut zeros = 0usize;
    for size in cfg.query_sizes() {
        let w = negative_workload(doc, size, cfg.queries, cfg.seed.wrapping_add(size as u64));
        for case in &w.cases {
            total += 1;
            if lattice.estimate(&case.twig, Estimator::Recursive) == 0.0 {
                zeros += 1;
            }
        }
    }
    if total == 0 {
        100.0
    } else {
        100.0 * zeros as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::one_dataset;
    use tl_datagen::Dataset;

    #[test]
    fn most_negative_queries_answer_zero() {
        let cfg = ExpConfig {
            scale: 2500,
            queries: 8,
            ..ExpConfig::default()
        };
        let doc = one_dataset(&cfg, Dataset::Nasa);
        let rate = zero_rate_recursive(&cfg, &doc);
        assert!(rate >= 80.0, "zero rate {rate}% below the paper's ballpark");
    }
}
