//! Injected-crash recovery matrix (`bench_recovery`).
//!
//! Drives every durability fail-point site through every injection rule,
//! crashing a [`DurableLattice`] mid-update-storm (drop without drain,
//! exactly what a `kill -9` leaves on disk for the in-process write
//! path), then recovers over the same directory and compares the
//! recovered state **bit-for-bit** against a never-crashed replica fed
//! the same acknowledged prefix. The contract under test is the one the
//! server acks against: every `Ok` from `apply` survives any crash, an
//! injected append failure is never an ack, and recovery lands on
//! exactly the acknowledged sequence — no more, no less.
//!
//! Three scripted corruption rows ride along with the injection matrix:
//!
//! * **mid-log corruption**: a byte flipped inside a fully-written record
//!   must surface as a typed `CorruptSummary` fault, never a short count;
//! * **torn tail**: bytes sheared off the final record must seal as a
//!   clean end-of-log (the crash-mid-append case);
//! * **drain round trip**: flush + final snapshot + reopen must be
//!   byte-identical to the state before the drain.
//!
//! Results land in `BENCH_recovery.json` (the `tl-metrics/1` snapshot
//! schema) and gate CI through `gate_recovery` / `gates --only recovery`.

use std::path::Path;

use tl_datagen::{Dataset, GenConfig};
use tl_fault::failpoints::{self, sites};
use tl_workload::positive_workload;
use treelattice::{
    BuildConfig, DurabilityPolicy, DurableLattice, DurableOptions, FaultKind, TreeLattice,
};

use crate::Table;

/// The durability fail-point sites the crash matrix sweeps. Each guards a
/// distinct failure moment: a torn append, a short append, a failed
/// fsync, a crash before the snapshot rename, and a crash after it.
pub const CRASH_SITES: &[&str] = &[
    sites::WAL_APPEND_TORN,
    sites::WAL_APPEND_SHORT,
    sites::WAL_FSYNC,
    sites::SNAPSHOT_BEFORE_RENAME,
    sites::SNAPSHOT_AFTER_RENAME,
];

/// The injection rules each site is driven under: fail every time, fail
/// exactly once mid-storm, and fail on a deterministic seeded coin.
pub const CRASH_RULES: &[&str] = &["always", "nth:2", "1in3"];

/// Crash points the matrix covers (`sites × rules`).
pub fn matrix_size() -> usize {
    CRASH_SITES.len() * CRASH_RULES.len()
}

/// Shape of the generated fixture and per-crash-point storm.
#[derive(Clone, Copy, Debug)]
pub struct RecoveryBenchConfig {
    /// Target elements in the generated XMark document.
    pub scale: usize,
    /// Seed for document generation, workload sampling, and the
    /// fail-point coin.
    pub seed: u64,
    /// Summary order.
    pub k: usize,
    /// Updates attempted per crash point.
    pub updates: u64,
    /// Periodic-snapshot cadence during the storm (small, so the
    /// snapshot sites actually fire mid-run).
    pub snapshot_every: u64,
}

/// The fixed configuration `bench_recovery` and the recovery gate run
/// with. Changing it invalidates `tests/gates/recovery.json`; regenerate
/// with `gate_recovery --write-thresholds`.
pub fn bench_config() -> RecoveryBenchConfig {
    RecoveryBenchConfig {
        scale: 1_500,
        seed: 42,
        k: 3,
        updates: 8,
        snapshot_every: 3,
    }
}

/// One crash point: a (site, rule) pair driven to a crash and recovered.
#[derive(Clone, Debug)]
pub struct CrashRow {
    /// Fail-point site that was armed.
    pub site: &'static str,
    /// Injection rule it was armed with.
    pub rule: &'static str,
    /// Updates acknowledged (`Ok` from `apply`) before the crash.
    pub acked: u64,
    /// Highest sequence the post-crash recovery landed on.
    pub recovered_seq: u64,
    /// WAL records replayed above the newest snapshot.
    pub replayed: u64,
    /// Faults the fail-point harness injected during the storm.
    pub injected: u64,
    /// Recovered state is byte-identical to a never-crashed replica fed
    /// the acknowledged operations in order, and `recovered_seq == acked`.
    pub bit_identical: bool,
}

/// The full crash-matrix measurement.
#[derive(Clone, Debug)]
pub struct RecoveryBench {
    /// Configuration echo.
    pub cfg: RecoveryBenchConfig,
    /// One row per (site, rule) crash point.
    pub rows: Vec<CrashRow>,
    /// Crash points whose recovery was bit-identical to the replica.
    pub identical_points: u64,
    /// A flipped byte mid-log surfaced as a typed `CorruptSummary` fault.
    pub corruption_typed: bool,
    /// Bytes sheared off the final record sealed as a clean end-of-log.
    pub torn_tail_sealed: bool,
    /// Drain + reopen reproduced the pre-drain state byte-for-byte.
    pub drain_round_trip: bool,
}

impl RecoveryBench {
    /// Crash points driven.
    pub fn crash_points(&self) -> u64 {
        self.rows.len() as u64
    }

    /// Every crash point recovered bit-identically.
    pub fn all_identical(&self) -> bool {
        self.identical_points == self.crash_points()
    }
}

fn durable_options(snapshot_every: u64) -> DurableOptions {
    DurableOptions {
        policy: DurabilityPolicy::Strict,
        snapshot_every,
        ..DurableOptions::default()
    }
}

/// Deterministic count carried by storm record `seq`.
fn storm_count(seq: u64) -> u64 {
    1_000 + seq
}

/// Applies records `1..=n` of the canonical storm to `durable`, asserting
/// every one acks (used for replicas and the scripted corruption rows,
/// which run injection-free).
fn apply_prefix(durable: &mut DurableLattice, twigs: &[tl_twig::Twig], n: u64) {
    for seq in 1..=n {
        let twig = &twigs[(seq - 1) as usize % twigs.len()];
        durable
            .apply(twig, storm_count(seq), seq, &tl_obs::NOOP)
            .expect("injection-free apply acks");
    }
}

/// Drives one (site, rule) crash point: storm under the armed fail-point,
/// crash by dropping without drain, recover injection-free, and compare
/// against a never-crashed replica fed the same acknowledged prefix.
#[allow(clippy::too_many_arguments)]
fn run_crash_point(
    site: &'static str,
    rule: &'static str,
    seed: u64,
    lattice: &TreeLattice,
    twigs: &[tl_twig::Twig],
    cfg: &RecoveryBenchConfig,
    root: &Path,
    tag: usize,
) -> CrashRow {
    let dir = root.join(format!("crash-{tag}"));
    let opts = durable_options(cfg.snapshot_every);
    let before = failpoints::injected_total();
    let spec = format!("{site}={rule}");
    // The storm: every `Ok` is an acknowledgement the recovery below must
    // honor; every `Err` must leave state untouched. A failed attempt is
    // skipped, not retried, so the acked set need not be a contiguous run
    // of attempt numbers (an fsync failure repairs the log and later
    // appends succeed) — record exactly what was acknowledged, in order.
    // Dropping the handle without drain is the in-process crash — nothing
    // is flushed or snapshotted on the way out.
    let acked_ops: Vec<(usize, u64, u64)> = failpoints::with_active(&spec, seed, || {
        let (mut durable, _) = DurableLattice::open(&dir, Some(lattice), &opts, &tl_obs::NOOP)
            .expect("open on a fresh dir never faults");
        let mut acked = Vec::new();
        for attempt in 1..=cfg.updates {
            let qi = (attempt - 1) as usize % twigs.len();
            if durable
                .apply(&twigs[qi], storm_count(attempt), attempt, &tl_obs::NOOP)
                .is_ok()
            {
                acked.push((qi, storm_count(attempt), attempt));
            }
        }
        acked
    });
    let injected = failpoints::injected_total() - before;
    let acked = acked_ops.len() as u64;

    // Injection-free recovery over whatever the crash left behind.
    let (recovered, report) = DurableLattice::open(&dir, Some(lattice), &opts, &tl_obs::NOOP)
        .expect("recovery after an injected crash");

    // The never-crashed replica: same base, fed exactly the acknowledged
    // operations in order, no injection. Bit-identity of the canonical
    // state encoding is the pass condition.
    let replica_dir = root.join(format!("replica-{tag}"));
    let (mut replica, _) = DurableLattice::open(&replica_dir, Some(lattice), &opts, &tl_obs::NOOP)
        .expect("replica open");
    for &(qi, count, idem) in &acked_ops {
        replica
            .apply(&twigs[qi], count, idem, &tl_obs::NOOP)
            .expect("injection-free replica apply acks");
    }
    let bit_identical =
        report.last_seq == acked && recovered.state_bytes() == replica.state_bytes();

    CrashRow {
        site,
        rule,
        acked,
        recovered_seq: report.last_seq,
        replayed: report.replayed,
        injected,
        bit_identical,
    }
}

/// A byte flipped inside a complete mid-log record must be a typed
/// `CorruptSummary` fault on recovery — never a silently shorter replay.
fn corruption_is_typed(lattice: &TreeLattice, twigs: &[tl_twig::Twig], root: &Path) -> bool {
    let dir = root.join("corrupt");
    let opts = durable_options(0);
    {
        let (mut durable, _) = DurableLattice::open(&dir, Some(lattice), &opts, &tl_obs::NOOP)
            .expect("open corruption fixture");
        apply_prefix(&mut durable, twigs, 5);
    }
    let wal = dir.join("wal.log");
    let mut bytes = std::fs::read(&wal).expect("read wal");
    // Offset 10 lands in the first record's sequence field, past the
    // 4-byte length prefix; the four complete records behind it rule out
    // any torn-tail reading.
    bytes[10] ^= 0xff;
    std::fs::write(&wal, &bytes).expect("write corrupted wal");
    matches!(
        DurableLattice::open(&dir, Some(lattice), &opts, &tl_obs::NOOP),
        Err(fault) if fault.kind == FaultKind::CorruptSummary
    )
}

/// Bytes sheared off the final record (a crash mid-append) must seal as a
/// clean end-of-log covering every earlier record.
fn torn_tail_seals(lattice: &TreeLattice, twigs: &[tl_twig::Twig], root: &Path) -> bool {
    let dir = root.join("torn");
    let opts = durable_options(0);
    {
        let (mut durable, _) = DurableLattice::open(&dir, Some(lattice), &opts, &tl_obs::NOOP)
            .expect("open torn fixture");
        apply_prefix(&mut durable, twigs, 5);
    }
    let wal = dir.join("wal.log");
    let len = std::fs::metadata(&wal).expect("stat wal").len();
    let file = std::fs::OpenOptions::new()
        .write(true)
        .open(&wal)
        .expect("open wal for shearing");
    file.set_len(len - 3).expect("shear the final record");
    drop(file);
    match DurableLattice::open(&dir, Some(lattice), &opts, &tl_obs::NOOP) {
        Ok((_, report)) => report.last_seq == 4 && report.torn_bytes > 0,
        Err(_) => false,
    }
}

/// Drain (flush + final snapshot) then reopen must reproduce the
/// pre-drain state byte-for-byte, with the WAL fully truncated.
fn drain_round_trips(lattice: &TreeLattice, twigs: &[tl_twig::Twig], root: &Path) -> bool {
    let dir = root.join("drain");
    let opts = durable_options(0);
    let before = {
        let (mut durable, _) = DurableLattice::open(&dir, Some(lattice), &opts, &tl_obs::NOOP)
            .expect("open drain fixture");
        apply_prefix(&mut durable, twigs, 5);
        let before = durable.state_bytes();
        durable.drain(&tl_obs::NOOP).expect("clean drain");
        before
    };
    let wal_empty = std::fs::metadata(dir.join("wal.log")).is_ok_and(|m| m.len() == 0);
    match DurableLattice::open(&dir, Some(lattice), &opts, &tl_obs::NOOP) {
        Ok((reopened, report)) => {
            wal_empty
                && report.snapshot_seq == 5
                && report.replayed == 0
                && reopened.state_bytes() == before
        }
        Err(_) => false,
    }
}

/// Runs the full crash matrix without printing or writing.
pub fn build(cfg: &RecoveryBenchConfig) -> RecoveryBench {
    let doc = Dataset::Xmark.generate(GenConfig {
        seed: cfg.seed,
        target_elements: cfg.scale,
    });
    let lattice = TreeLattice::build(&doc, &BuildConfig::with_k(cfg.k));
    let twigs: Vec<tl_twig::Twig> = positive_workload(&doc, 3, 8, cfg.seed.wrapping_add(3))
        .cases
        .into_iter()
        .map(|c| c.twig)
        .collect();
    assert!(!twigs.is_empty(), "recovery bench workload is empty");

    let root = std::env::temp_dir().join(format!(
        "tl-bench-recovery-{}-{}",
        cfg.seed,
        std::process::id()
    ));
    std::fs::remove_dir_all(&root).ok();
    std::fs::create_dir_all(&root).expect("create bench temp dir");

    let mut rows = Vec::new();
    let mut tag = 0usize;
    for &site in CRASH_SITES {
        for &rule in CRASH_RULES {
            let seed = cfg.seed.wrapping_add(tag as u64);
            rows.push(run_crash_point(
                site, rule, seed, &lattice, &twigs, cfg, &root, tag,
            ));
            tag += 1;
        }
    }
    let identical_points = rows.iter().filter(|r| r.bit_identical).count() as u64;

    let corruption_typed = corruption_is_typed(&lattice, &twigs, &root);
    let torn_tail_sealed = torn_tail_seals(&lattice, &twigs, &root);
    let drain_round_trip = drain_round_trips(&lattice, &twigs, &root);
    std::fs::remove_dir_all(&root).ok();

    RecoveryBench {
        cfg: *cfg,
        rows,
        identical_points,
        corruption_typed,
        torn_tail_sealed,
        drain_round_trip,
    }
}

/// Renders the result as a `tl-metrics/1` snapshot.
pub fn to_snapshot(b: &RecoveryBench) -> tl_obs::Snapshot {
    let mut snap = tl_obs::Snapshot::default();
    snap.meta.insert("bench".into(), "recovery".into());
    snap.meta.insert("dataset".into(), "xmark".into());
    snap.meta.insert("scale".into(), b.cfg.scale.to_string());
    snap.meta.insert("seed".into(), b.cfg.seed.to_string());
    snap.meta.insert("k".into(), b.cfg.k.to_string());
    snap.meta
        .insert("updates_per_point".into(), b.cfg.updates.to_string());
    snap.meta
        .insert("snapshot_every".into(), b.cfg.snapshot_every.to_string());
    snap.counters
        .insert("bench.recovery.crash_points".into(), b.crash_points());
    snap.counters
        .insert("bench.recovery.identical_points".into(), b.identical_points);
    snap.counters.insert(
        "bench.recovery.injected_faults".into(),
        b.rows.iter().map(|r| r.injected).sum(),
    );
    snap.counters.insert(
        "bench.recovery.replayed_records".into(),
        b.rows.iter().map(|r| r.replayed).sum(),
    );
    snap.gauges.insert(
        "bench.recovery.bit_identity".into(),
        if b.all_identical() { 1.0 } else { 0.0 },
    );
    snap.gauges.insert(
        "bench.recovery.corruption_typed".into(),
        if b.corruption_typed { 1.0 } else { 0.0 },
    );
    snap.gauges.insert(
        "bench.recovery.torn_tail_sealed".into(),
        if b.torn_tail_sealed { 1.0 } else { 0.0 },
    );
    snap.gauges.insert(
        "bench.recovery.drain_round_trip".into(),
        if b.drain_round_trip { 1.0 } else { 0.0 },
    );
    snap
}

/// [`to_snapshot`] serialized as JSON.
pub fn to_json(b: &RecoveryBench) -> String {
    to_snapshot(b).to_json()
}

/// Runs, prints, and writes `BENCH_recovery.json`.
pub fn run(cfg: &RecoveryBenchConfig) -> RecoveryBench {
    let b = build(cfg);
    let mut t = Table::new(
        "Crash matrix: injected durability faults, recovery vs replica",
        &[
            "Site",
            "Rule",
            "Acked",
            "Recovered",
            "Replayed",
            "Injected",
            "Identical",
        ],
    );
    for r in &b.rows {
        t.row(vec![
            r.site.to_string(),
            r.rule.to_string(),
            r.acked.to_string(),
            r.recovered_seq.to_string(),
            r.replayed.to_string(),
            r.injected.to_string(),
            r.bit_identical.to_string(),
        ]);
    }
    t.print();
    println!(
        "crash points: {}/{} bit-identical | mid-log corruption typed: {} | torn tail sealed: {} | drain round trip: {}",
        b.identical_points,
        b.crash_points(),
        b.corruption_typed,
        b.torn_tail_sealed,
        b.drain_round_trip,
    );
    let path = crate::workspace_root().join("BENCH_recovery.json");
    match std::fs::write(&path, to_json(&b)) {
        Ok(()) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("warning: could not write {}: {e}", path.display()),
    }
    b
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crash_matrix_recovers_bit_identically_everywhere() {
        let b = build(&RecoveryBenchConfig {
            scale: 1_200,
            seed: 7,
            k: 3,
            updates: 6,
            snapshot_every: 2,
        });
        assert_eq!(b.crash_points() as usize, matrix_size());
        for r in &b.rows {
            assert!(
                r.bit_identical,
                "{}={} diverged: acked {} recovered {}",
                r.site, r.rule, r.acked, r.recovered_seq
            );
            assert!(r.recovered_seq <= b.cfg.updates);
        }
        assert!(b.all_identical());
        assert!(b.corruption_typed, "mid-log corruption must be typed");
        assert!(b.torn_tail_sealed, "torn tail must seal cleanly");
        assert!(b.drain_round_trip, "drain must round-trip the state");
        // The always-rules genuinely injected faults somewhere.
        assert!(b.rows.iter().any(|r| r.injected > 0));
        let snap = to_snapshot(&b);
        let parsed = tl_obs::Snapshot::from_json(&to_json(&b)).unwrap();
        assert_eq!(parsed, snap);
        assert_eq!(snap.gauges["bench.recovery.bit_identity"], 1.0);
    }
}
