//! Construction-cost scale sweep: the Table 3 trend.
//!
//! The paper's construction-time gap between TreeLattice mining and the
//! TreeSketches clustering synopsis is a scale phenomenon: mining is
//! near-linear in document size while budgeted agglomeration grows
//! superlinearly in the count-stable partition size. This sweep measures
//! both across corpus scales so the trend (not just one point) is on
//! record.

use std::time::Instant;

use tl_baselines::{SketchConfig, TreeSketch};
use tl_datagen::{Dataset, GenConfig};
use tl_miner::{mine, MineConfig};

use crate::report::fmt_duration;
use crate::{ExpConfig, Table};

/// Scales measured, as fractions of `cfg.scale`.
const FACTORS: [f64; 4] = [0.25, 0.5, 1.0, 1.5];

/// Builds the sweep table for one dataset.
pub fn build_for(cfg: &ExpConfig, dataset: Dataset) -> Table {
    let mut t = Table::new(
        format!(
            "Scale sweep ({}): construction time vs corpus size",
            dataset.name()
        ),
        &["Elements", "TreeLattice", "TreeSketches", "Ratio"],
    );
    for factor in FACTORS {
        let scale = ((cfg.scale as f64) * factor) as usize;
        let doc = dataset.generate(GenConfig {
            seed: cfg.seed,
            target_elements: scale,
        });
        let t0 = Instant::now();
        let report = mine(
            &doc,
            MineConfig {
                max_size: cfg.k,
                threads: 0,
            },
        );
        let lattice_time = t0.elapsed();
        std::hint::black_box(report.lattice.len());
        let t1 = Instant::now();
        let sketch = TreeSketch::build(
            &doc,
            SketchConfig {
                budget_bytes: cfg.sketch_budget,
            },
        );
        let sketch_time = t1.elapsed();
        std::hint::black_box(sketch.cluster_count());
        t.row(vec![
            doc.len().to_string(),
            fmt_duration(lattice_time),
            fmt_duration(sketch_time),
            format!(
                "{:.1}x",
                sketch_time.as_secs_f64() / lattice_time.as_secs_f64().max(1e-9)
            ),
        ]);
    }
    t
}

/// Runs the sweep for every dataset, printing and writing CSVs.
pub fn run(cfg: &ExpConfig) -> Vec<Table> {
    Dataset::ALL
        .iter()
        .map(|&ds| {
            let t = build_for(cfg, ds);
            t.print();
            if let Err(e) = t.write_csv(&format!("scale_sweep_{}", ds.name())) {
                eprintln!("warning: could not write CSV: {e}");
            }
            t
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_produces_all_rows() {
        let cfg = ExpConfig {
            scale: 2_000,
            sketch_budget: 4 * 1024,
            ..ExpConfig::default()
        };
        let t = build_for(&cfg, Dataset::Xmark);
        assert_eq!(t.rows().len(), FACTORS.len());
        // Element counts grow across the sweep.
        let sizes: Vec<usize> = t.rows().iter().map(|r| r[0].parse().unwrap()).collect();
        for pair in sizes.windows(2) {
            assert!(pair[1] > pair[0]);
        }
    }
}
