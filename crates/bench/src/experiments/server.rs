//! Closed-loop server soak (`bench_server`).
//!
//! Boots a real `tl-server` (in-process, ephemeral loopback port) over a
//! deterministic XMark summary, then drives it with closed-loop client
//! threads across four tenants of mixed weights — one of them under a
//! zero-millisecond deadline budget so the degradation ladder fires under
//! load — until at least [`ServerBenchConfig::requests`] wire requests
//! have completed. Every exact (non-degraded) estimate is compared
//! bit-for-bit against the in-process engine on the same query; any
//! transport-level error that is not a typed [`tl_fault::Fault`] counts as
//! an *untyped error* and fails the gate. Client-observed latencies are
//! recorded per request and reported as p50/p95/p99 in
//! `BENCH_server.json` (the `tl-metrics/1` snapshot schema, so
//! `treelattice metrics report BENCH_server.json` renders it like any
//! other snapshot).
//!
//! The op mix is ~85% single estimates, ~10% four-query batches, ~5%
//! truth lookups. Updates are deliberately absent from the soak: the
//! bit-identity contract compares against a frozen store, and the
//! update path has its own end-to-end coverage in the server crate.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use rand::{rngs::StdRng, Rng, SeedableRng};
use tl_datagen::{Dataset, GenConfig};
use tl_server::{serve, BudgetSpec, Client, ClientError, ServerConfig, TenantSpec};
use tl_workload::positive_workload;
use treelattice::{BuildConfig, Estimator, TreeLattice};

use crate::Table;

/// Shape of the generated fixture and soak.
#[derive(Clone, Copy, Debug)]
pub struct ServerBenchConfig {
    /// Target elements in the generated XMark document.
    pub scale: usize,
    /// Seed for document generation, workload sampling, and the op mix.
    pub seed: u64,
    /// Summary order.
    pub k: usize,
    /// Minimum wire requests to complete before the drivers stop.
    pub requests: u64,
    /// Closed-loop connections per unlimited tenant (the budgeted tenant
    /// always gets exactly one).
    pub conns_per_tenant: usize,
    /// Server worker threads.
    pub workers: usize,
}

/// The fixed full-scale configuration `bench_server` and the server gate
/// run with: a one-million-request soak across four tenants. Changing it
/// invalidates `tests/gates/server.json`; regenerate with
/// `gate_server --write-thresholds`.
pub fn bench_config() -> ServerBenchConfig {
    ServerBenchConfig {
        scale: 6_000,
        seed: 42,
        k: 4,
        requests: 1_000_000,
        conns_per_tenant: 2,
        workers: 4,
    }
}

/// What one driver thread observed.
#[derive(Default)]
struct DriverTally {
    requests: u64,
    queries: u64,
    degraded: u64,
    faults: u64,
    untyped_errors: u64,
    identity_checked: u64,
    identity_mismatches: u64,
    latency_us: Vec<u64>,
}

/// The full soak measurement.
#[derive(Clone, Debug)]
pub struct ServerBench {
    /// Configuration echo.
    pub cfg: ServerBenchConfig,
    /// Tenant names driven (the gate enforces a minimum count).
    pub tenants: Vec<String>,
    /// Wire requests completed across all drivers.
    pub requests: u64,
    /// Individual queries served (batch items counted one each).
    pub queries: u64,
    /// Soak wall time, seconds.
    pub wall_s: f64,
    /// Completed wire requests per second.
    pub throughput_rps: f64,
    /// Client-observed latency percentiles, microseconds.
    pub p50_us: f64,
    /// 95th percentile, microseconds.
    pub p95_us: f64,
    /// 99th percentile, microseconds.
    pub p99_us: f64,
    /// `server.requests.shed` from the post-soak scrape.
    pub shed: u64,
    /// Responses carrying a `Degradation` tag (budgeted-tenant traffic
    /// plus any overload sheds).
    pub degraded: u64,
    /// Typed fault responses (allowed — they are typed).
    pub faults: u64,
    /// Transport errors that were *not* a typed fault. The server's
    /// contract is that this is zero; the gate fails otherwise.
    pub untyped_errors: u64,
    /// Exact responses compared bit-for-bit against the in-process engine.
    pub identity_checked: u64,
    /// Comparisons that differed (the gate requires zero).
    pub identity_mismatches: u64,
    /// `shed / requests`.
    pub shed_rate: f64,
}

/// The four-tenant topology every soak runs: three unlimited tenants at
/// weights 4:2:1 plus one tenant pinned to an already-expired deadline so
/// a steady fraction of traffic exercises the degradation ladder.
fn tenant_specs() -> Vec<TenantSpec> {
    let mut strict = TenantSpec::new("strict", 1, 64);
    strict.budget = Some(BudgetSpec {
        time_limit_ms: Some(0),
        ..BudgetSpec::default()
    });
    vec![
        TenantSpec::new("gold", 4, 512),
        TenantSpec::new("silver", 2, 256),
        TenantSpec::new("bronze", 1, 64),
        strict,
    ]
}

/// Builds the deterministic query pool: positive workloads of sizes 2–4
/// rendered back to query-string form (skipping the rare twig whose
/// string form does not reparse), plus one never-matching label.
fn query_pool(
    lattice: &TreeLattice,
    doc: &tl_xml::Document,
    cfg: &ServerBenchConfig,
) -> Vec<String> {
    let mut queries = Vec::new();
    for size in [2usize, 3, 4] {
        let w = positive_workload(doc, size, 24, cfg.seed.wrapping_add(size as u64));
        for case in w.cases {
            let q = case.twig.to_query_string(lattice.labels());
            if lattice.parse_query(&q).is_ok() {
                queries.push(q);
            }
        }
    }
    queries.push("bench_no_such_label".to_string());
    assert!(queries.len() > 8, "server bench query pool is too small");
    queries
}

/// Expected exact-path bits for every (estimator, query) pair, computed
/// by reparsing the query string exactly as the server will.
fn expected_bits(lattice: &TreeLattice, queries: &[String]) -> Vec<Vec<u64>> {
    Estimator::ALL
        .iter()
        .map(|&est| {
            queries
                .iter()
                .map(|q| {
                    let twig = lattice.parse_query(q).expect("pool queries reparse");
                    lattice.estimate(&twig, est).to_bits()
                })
                .collect()
        })
        .collect()
}

fn driver_loop(
    addr: &str,
    tenant: &str,
    seed: u64,
    counter: &AtomicU64,
    target: u64,
    queries: &[String],
    expected: &[Vec<u64>],
) -> DriverTally {
    let mut tally = DriverTally::default();
    let mut client = match Client::connect(addr, tenant) {
        Ok(c) => c,
        Err(_) => {
            tally.untyped_errors += 1;
            return tally;
        }
    };
    let mut rng = StdRng::seed_from_u64(seed);
    loop {
        if counter.fetch_add(1, Ordering::Relaxed) >= target {
            break;
        }
        let est_idx = rng.gen_range(0..Estimator::ALL.len());
        let est = Estimator::ALL[est_idx];
        let qi = rng.gen_range(0..queries.len());
        let op = rng.gen_range(0..100u32);
        let t0 = Instant::now();
        if op < 85 {
            match client.estimate(est, &queries[qi]) {
                Ok(e) => {
                    tally.queries += 1;
                    if e.degradation.is_degraded() {
                        tally.degraded += 1;
                    } else {
                        tally.identity_checked += 1;
                        if e.value.to_bits() != expected[est_idx][qi] {
                            tally.identity_mismatches += 1;
                        }
                    }
                }
                Err(ClientError::Protocol(_)) => tally.faults += 1,
                Err(_) => tally.untyped_errors += 1,
            }
        } else if op < 95 {
            let batch: Vec<String> = (0..4)
                .map(|_| queries[rng.gen_range(0..queries.len())].clone())
                .collect();
            match client.estimate_batch(est, &batch) {
                Ok(items) => {
                    for item in items {
                        tally.queries += 1;
                        match item {
                            Ok(e) if e.degradation.is_degraded() => tally.degraded += 1,
                            Ok(_) => tally.identity_checked += 1,
                            Err(_) => tally.faults += 1,
                        }
                    }
                }
                Err(ClientError::Protocol(_)) => tally.faults += 1,
                Err(_) => tally.untyped_errors += 1,
            }
        } else {
            match client.truth(&queries[qi]) {
                Ok(_) => {}
                Err(ClientError::Protocol(_)) => tally.faults += 1,
                Err(_) => tally.untyped_errors += 1,
            }
        }
        tally.latency_us.push(t0.elapsed().as_micros() as u64);
        tally.requests += 1;
    }
    tally
}

fn percentile(sorted: &[u64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx.min(sorted.len() - 1)] as f64
}

/// Runs the soak without printing or writing.
pub fn build(cfg: &ServerBenchConfig) -> ServerBench {
    let doc = Dataset::Xmark.generate(GenConfig {
        seed: cfg.seed,
        target_elements: cfg.scale,
    });
    let lattice = TreeLattice::build(&doc, &BuildConfig::with_k(cfg.k));
    let queries = Arc::new(query_pool(&lattice, &doc, cfg));
    let expected = Arc::new(expected_bits(&lattice, &queries));

    let dir = std::env::temp_dir().join(format!("tl-bench-server-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create bench temp dir");
    let path = dir.join("soak.tlat");
    std::fs::write(&path, lattice.to_bytes()).expect("write summary frame");

    let mut config = ServerConfig::new(&path);
    config.workers = cfg.workers;
    config.tenants = tenant_specs();
    let tenants: Vec<String> = config
        .tenants
        .iter()
        .map(|t| t.config.name.clone())
        .collect();
    let handle = serve(config).expect("serve soak fixture");
    let addr = handle.addr().to_string();

    // Closed-loop drivers: `conns_per_tenant` per unlimited tenant, one
    // for the budgeted tenant (its answers are always degraded, so it
    // only needs to keep the ladder warm, not dominate the mix).
    let counter = Arc::new(AtomicU64::new(0));
    let target = cfg.requests;
    let mut drivers = Vec::new();
    let mut thread_seed = cfg.seed;
    let t0 = Instant::now();
    for tenant in &tenants {
        let conns = if tenant == "strict" {
            1
        } else {
            cfg.conns_per_tenant.max(1)
        };
        for _ in 0..conns {
            thread_seed = thread_seed.wrapping_add(1);
            let addr = addr.clone();
            let tenant = tenant.clone();
            let counter = counter.clone();
            let queries = queries.clone();
            let expected = expected.clone();
            let seed = thread_seed;
            drivers.push(std::thread::spawn(move || {
                driver_loop(&addr, &tenant, seed, &counter, target, &queries, &expected)
            }));
        }
    }
    let tallies: Vec<DriverTally> = drivers
        .into_iter()
        .map(|d| d.join().expect("driver thread"))
        .collect();
    let wall_s = t0.elapsed().as_secs_f64();

    let shed = {
        let mut client = Client::connect(&addr, "gold").expect("scrape connection");
        let snap = tl_obs::Snapshot::from_json(&client.scrape().expect("scrape"))
            .expect("scrape is a tl-metrics/1 snapshot");
        snap.counters
            .get(tl_obs::names::SERVER_SHED)
            .copied()
            .unwrap_or(0)
    };
    handle.shutdown().expect("server drain");
    std::fs::remove_dir_all(&dir).ok();

    let mut latency_us: Vec<u64> = Vec::new();
    let mut requests = 0u64;
    let mut queries_served = 0u64;
    let mut degraded = 0u64;
    let mut faults = 0u64;
    let mut untyped_errors = 0u64;
    let mut identity_checked = 0u64;
    let mut identity_mismatches = 0u64;
    for t in tallies {
        requests += t.requests;
        queries_served += t.queries;
        degraded += t.degraded;
        faults += t.faults;
        untyped_errors += t.untyped_errors;
        identity_checked += t.identity_checked;
        identity_mismatches += t.identity_mismatches;
        latency_us.extend(t.latency_us);
    }
    latency_us.sort_unstable();

    ServerBench {
        cfg: *cfg,
        tenants,
        requests,
        queries: queries_served,
        wall_s,
        throughput_rps: requests as f64 / wall_s.max(1e-9),
        p50_us: percentile(&latency_us, 0.50),
        p95_us: percentile(&latency_us, 0.95),
        p99_us: percentile(&latency_us, 0.99),
        shed,
        degraded,
        faults,
        untyped_errors,
        identity_checked,
        identity_mismatches,
        shed_rate: shed as f64 / (requests as f64).max(1.0),
    }
}

/// Renders the result as a `tl-metrics/1` snapshot.
pub fn to_snapshot(b: &ServerBench) -> tl_obs::Snapshot {
    let mut snap = tl_obs::Snapshot::default();
    snap.meta.insert("bench".into(), "server".into());
    snap.meta.insert("dataset".into(), "xmark".into());
    snap.meta.insert("scale".into(), b.cfg.scale.to_string());
    snap.meta.insert("seed".into(), b.cfg.seed.to_string());
    snap.meta.insert("k".into(), b.cfg.k.to_string());
    snap.meta
        .insert("workers".into(), b.cfg.workers.to_string());
    snap.meta.insert("tenants".into(), b.tenants.join(","));
    snap.gauges.insert("bench.server.wall_s".into(), b.wall_s);
    snap.gauges
        .insert("bench.server.throughput_rps".into(), b.throughput_rps);
    snap.gauges.insert("bench.server.p50_us".into(), b.p50_us);
    snap.gauges.insert("bench.server.p95_us".into(), b.p95_us);
    snap.gauges.insert("bench.server.p99_us".into(), b.p99_us);
    snap.gauges
        .insert("bench.server.shed_rate".into(), b.shed_rate);
    snap.counters
        .insert("bench.server.requests".into(), b.requests);
    snap.counters
        .insert("bench.server.queries".into(), b.queries);
    snap.counters
        .insert("bench.server.tenant_count".into(), b.tenants.len() as u64);
    snap.counters.insert("bench.server.shed".into(), b.shed);
    snap.counters
        .insert("bench.server.degraded".into(), b.degraded);
    snap.counters.insert("bench.server.faults".into(), b.faults);
    snap.counters
        .insert("bench.server.untyped_errors".into(), b.untyped_errors);
    snap.counters
        .insert("bench.server.identity_checked".into(), b.identity_checked);
    snap.counters.insert(
        "bench.server.identity_mismatches".into(),
        b.identity_mismatches,
    );
    snap
}

/// [`to_snapshot`] serialized as JSON.
pub fn to_json(b: &ServerBench) -> String {
    to_snapshot(b).to_json()
}

/// Runs, prints, and writes `BENCH_server.json`.
pub fn run(cfg: &ServerBenchConfig) -> ServerBench {
    let b = build(cfg);
    let mut t = Table::new(
        "Server soak: closed-loop mixed-tenant load",
        &[
            "Requests",
            "Wall",
            "Throughput",
            "p50",
            "p95",
            "p99",
            "Shed",
        ],
    );
    t.row(vec![
        b.requests.to_string(),
        format!("{:.1}s", b.wall_s),
        format!("{:.0}/s", b.throughput_rps),
        format!("{:.0}us", b.p50_us),
        format!("{:.0}us", b.p95_us),
        format!("{:.0}us", b.p99_us),
        format!("{:.4}", b.shed_rate),
    ]);
    t.print();
    println!(
        "tenants: {} | {} queries served | degraded {} | typed faults {} | untyped errors {} | identity {}/{} exact responses matched",
        b.tenants.join(","),
        b.queries,
        b.degraded,
        b.faults,
        b.untyped_errors,
        b.identity_checked - b.identity_mismatches,
        b.identity_checked,
    );
    let path = crate::workspace_root().join("BENCH_server.json");
    match std::fs::write(&path, to_json(&b)) {
        Ok(()) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("warning: could not write {}: {e}", path.display()),
    }
    b
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_soak_is_clean_and_well_formed() {
        let cfg = ServerBenchConfig {
            scale: 1_200,
            seed: 7,
            k: 3,
            requests: 2_000,
            conns_per_tenant: 1,
            workers: 2,
        };
        let b = build(&cfg);
        assert!(b.requests >= cfg.requests);
        assert!(b.queries >= b.requests / 2, "batches add queries");
        assert_eq!(b.untyped_errors, 0, "every error must be typed");
        assert_eq!(b.identity_mismatches, 0, "exact responses match engine");
        assert!(b.identity_checked > 0);
        assert!(b.degraded > 0, "the strict tenant degrades under budget");
        assert!(b.tenants.len() >= 3);
        assert!(b.p50_us <= b.p95_us && b.p95_us <= b.p99_us);
        let snap = to_snapshot(&b);
        let parsed = tl_obs::Snapshot::from_json(&to_json(&b)).unwrap();
        assert_eq!(parsed, snap);
        assert_eq!(snap.counters["bench.server.untyped_errors"], 0);
        assert!(snap.gauges.contains_key("bench.server.p99_us"));
    }
}
