//! Table 1: dataset characteristics.

use tl_xml::DocStats;

use crate::data::all_datasets;
use crate::report::fmt_f;
use crate::{ExpConfig, Table};

/// Builds the table without printing (used by tests).
pub fn build(cfg: &ExpConfig) -> Table {
    let mut t = Table::new(
        "Table 1: Dataset Characteristics",
        &[
            "Dataset",
            "Elements",
            "File Size(MB)",
            "Labels",
            "Max Depth",
            "Mean Fanout",
            "Fanout Var",
        ],
    );
    for (ds, doc) in all_datasets(cfg) {
        let s = DocStats::compute(&doc);
        t.row(vec![
            ds.name().to_owned(),
            s.elements.to_string(),
            format!("{:.2}", s.serialized_mb()),
            s.distinct_labels.to_string(),
            s.max_depth.to_string(),
            fmt_f(s.mean_fanout),
            fmt_f(s.fanout_variance),
        ]);
    }
    t
}

/// Runs, prints, and writes `results/table1_datasets.csv`.
pub fn run(cfg: &ExpConfig) -> Table {
    let t = build(cfg);
    t.print();
    if let Err(e) = t.write_csv("table1_datasets") {
        eprintln!("warning: could not write CSV: {e}");
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn four_rows_with_plausible_values() {
        let cfg = ExpConfig {
            scale: 1000,
            ..ExpConfig::default()
        };
        let t = build(&cfg);
        assert_eq!(t.rows().len(), 4);
        for row in t.rows() {
            let elements: usize = row[1].parse().unwrap();
            assert!(elements >= 800);
        }
    }
}
