//! Table 2: number of distinct subtree patterns per lattice level (1–5).

use tl_miner::{mine, MineConfig};

use crate::data::all_datasets;
use crate::{ExpConfig, Table};

/// Builds the table without printing.
pub fn build(cfg: &ExpConfig) -> Table {
    let mut t = Table::new(
        "Table 2: No. of Subtree Patterns",
        &["Level", "Nasa", "IMDB", "PSD", "XMark"],
    );
    // Mine each dataset to level 5 (the paper reports levels 1..5).
    let per_dataset: Vec<Vec<usize>> = all_datasets(cfg)
        .iter()
        .map(|(_, doc)| {
            let report = mine(
                doc,
                MineConfig {
                    max_size: 5,
                    threads: 0,
                },
            );
            (1..=5).map(|s| report.lattice.patterns_at(s)).collect()
        })
        .collect();
    // all_datasets yields [Nasa, Imdb, Psd, Xmark]; the paper's column
    // order is Nasa, IMDB, PSD, XMark — identical.
    for (level, counts) in
        (1..=5).zip((0..5).map(|l| per_dataset.iter().map(|d| d[l]).collect::<Vec<_>>()))
    {
        t.row(vec![
            level.to_string(),
            counts[0].to_string(),
            counts[1].to_string(),
            counts[2].to_string(),
            counts[3].to_string(),
        ]);
    }
    t
}

/// Runs, prints, and writes `results/table2_patterns.csv`.
pub fn run(cfg: &ExpConfig) -> Table {
    let t = build(cfg);
    t.print();
    if let Err(e) = t.write_csv("table2_patterns") {
        eprintln!("warning: could not write CSV: {e}");
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pattern_counts_grow_with_level() {
        let cfg = ExpConfig {
            scale: 1500,
            ..ExpConfig::default()
        };
        let t = build(&cfg);
        assert_eq!(t.rows().len(), 5);
        // For every dataset, level-5 counts exceed level-1 counts.
        for col in 1..=4 {
            let l1: usize = t.rows()[0][col].parse().unwrap();
            let l5: usize = t.rows()[4][col].parse().unwrap();
            assert!(l5 > l1, "column {col}: {l1} -> {l5}");
        }
    }
}
