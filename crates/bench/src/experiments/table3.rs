//! Table 3: summary construction time and memory utilization,
//! TreeLattice vs TreeSketches.

use std::time::Instant;

use tl_baselines::{SketchConfig, TreeSketch};
use treelattice::{BuildConfig, TreeLattice};

use crate::data::all_datasets;
use crate::report::fmt_duration;
use crate::{ExpConfig, Table};

/// Raw measurements for one dataset.
#[derive(Clone, Debug)]
pub struct ConstructionRow {
    /// Dataset name.
    pub dataset: String,
    /// TreeLattice mining time.
    pub lattice_time: std::time::Duration,
    /// TreeSketches clustering time.
    pub sketch_time: std::time::Duration,
    /// TreeLattice summary bytes.
    pub lattice_bytes: usize,
    /// TreeSketches synopsis bytes.
    pub sketch_bytes: usize,
}

/// Measures construction for all datasets.
pub fn measure(cfg: &ExpConfig) -> Vec<ConstructionRow> {
    all_datasets(cfg)
        .into_iter()
        .map(|(ds, doc)| {
            let t0 = Instant::now();
            let lattice = TreeLattice::build(&doc, &BuildConfig::with_k(cfg.k));
            let lattice_time = t0.elapsed();
            let t1 = Instant::now();
            let sketch = TreeSketch::build(
                &doc,
                SketchConfig {
                    budget_bytes: cfg.sketch_budget,
                },
            );
            let sketch_time = t1.elapsed();
            ConstructionRow {
                dataset: ds.name().to_owned(),
                lattice_time,
                sketch_time,
                lattice_bytes: lattice.summary_bytes(),
                sketch_bytes: sketch.heap_bytes(),
            }
        })
        .collect()
}

/// Builds the table without printing.
pub fn build(cfg: &ExpConfig) -> Table {
    let mut t = Table::new(
        "Table 3: Summary Construction Time and Memory Utilization",
        &[
            "Dataset",
            "TreeLattice Time",
            "TreeSketches Time",
            "Speedup",
            "TreeLattice KB",
            "TreeSketches KB",
        ],
    );
    for row in measure(cfg) {
        let speedup = row.sketch_time.as_secs_f64() / row.lattice_time.as_secs_f64().max(1e-9);
        t.row(vec![
            row.dataset,
            fmt_duration(row.lattice_time),
            fmt_duration(row.sketch_time),
            format!("{speedup:.0}x"),
            format!("{:.0}", row.lattice_bytes as f64 / 1024.0),
            format!("{:.0}", row.sketch_bytes as f64 / 1024.0),
        ]);
    }
    t
}

/// Runs, prints, and writes `results/table3_construction.csv`.
pub fn run(cfg: &ExpConfig) -> Table {
    let t = build(cfg);
    t.print();
    if let Err(e) = t.write_csv("table3_construction") {
        eprintln!("warning: could not write CSV: {e}");
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measurements_are_sane() {
        let cfg = ExpConfig {
            scale: 4_000,
            sketch_budget: 8 * 1024,
            ..ExpConfig::default()
        };
        let rows = measure(&cfg);
        assert_eq!(rows.len(), 4);
        for r in &rows {
            assert!(r.lattice_time.as_nanos() > 0 && r.sketch_time.as_nanos() > 0);
            assert!(r.lattice_bytes > 0);
            assert!(
                r.sketch_bytes <= cfg.sketch_budget,
                "{}: synopsis over budget",
                r.dataset
            );
        }
    }

    /// The paper's construction-time gap is a *scale* phenomenon: the
    /// synopsis merge loop is superlinear in the count-stable partition
    /// size while mining is near-linear. Asserted at a realistic scale, so
    /// run under `--release` only:
    /// `cargo test -p tl-bench --release -- --ignored`.
    #[test]
    #[ignore = "release-scale measurement; run with --release -- --ignored"]
    fn lattice_builds_faster_than_sketch_at_scale() {
        let cfg = ExpConfig {
            scale: 150_000,
            ..ExpConfig::default()
        };
        let rows = measure(&cfg);
        let faster = rows
            .iter()
            .filter(|r| r.lattice_time < r.sketch_time)
            .count();
        assert!(faster >= 3, "lattice faster on only {faster}/4 datasets");
    }
}
