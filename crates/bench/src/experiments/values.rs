//! Value-predicate estimation accuracy vs bucket width (extension
//! experiment for the §6 value-predicate future work).
//!
//! Ground truth comes from the exact (`AsLabels`) value encoding; each
//! bucketed lattice answers the same equality-predicate workload and we
//! report the average relative error per bucket width. Narrow bucket
//! widths merge distinct values and overestimate.

use tl_datagen::{Dataset, GenConfig};
use tl_twig::{count_matches, parse_twig_valued};
use tl_xml::ValueMode;
use treelattice::{BuildConfig, Estimator, TreeLattice};

use crate::report::fmt_f;
use crate::{ExpConfig, Table};

/// Bucket widths evaluated.
const WIDTHS: [u32; 4] = [16, 64, 256, 4096];

/// Builds the value-accuracy table (XMark stand-in, which carries values).
pub fn build(cfg: &ExpConfig) -> Table {
    let gen_cfg = GenConfig {
        seed: cfg.seed,
        target_elements: cfg.scale,
    };
    let exact_doc = Dataset::Xmark.generate_valued(gen_cfg, ValueMode::AsLabels);
    let mut exact_labels = exact_doc.labels().clone();

    // Equality-predicate workload over the category domain (Zipf-ish).
    let queries: Vec<String> = (0..15)
        .map(|i| format!("item[incategory=\"category{i}\"]"))
        .chain((0..5).map(|i| format!("item[name][incategory=\"category{i}\"]")))
        .collect();
    let truths: Vec<u64> = queries
        .iter()
        .map(|q| {
            let twig = parse_twig_valued(q, &mut exact_labels, ValueMode::AsLabels)
                .expect("workload query parses");
            count_matches(&exact_doc, &twig)
        })
        .collect();

    let mut t = Table::new(
        "Value predicates: average relative error (%) vs bucket width (XMark)",
        &["Encoding", "Labels", "Summary KB", "Avg Error (%)"],
    );
    let mut eval = |mode: ValueMode, name: &str| {
        let doc = Dataset::Xmark.generate_valued(gen_cfg, mode);
        let lattice = TreeLattice::build(&doc, &BuildConfig::with_k(cfg.k.min(3)));
        let estimates: Vec<f64> = queries
            .iter()
            .map(|q| {
                lattice
                    .estimate_query_valued(q, mode, Estimator::RecursiveVoting)
                    .expect("workload query parses")
            })
            .collect();
        let err = tl_workload::average_relative_error_pct(&truths, &estimates);
        t.row(vec![
            name.to_owned(),
            doc.labels().len().to_string(),
            format!("{:.1}", lattice.summary_bytes() as f64 / 1024.0),
            fmt_f(err),
        ]);
    };
    eval(ValueMode::AsLabels, "exact");
    for width in WIDTHS {
        eval(ValueMode::Bucketed(width), &format!("buckets={width}"));
    }
    t
}

/// Runs, prints, writes CSV.
pub fn run(cfg: &ExpConfig) -> Table {
    let t = build(cfg);
    t.print();
    if let Err(e) = t.write_csv("values_accuracy") {
        eprintln!("warning: could not write CSV: {e}");
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_encoding_has_zero_error_and_wider_buckets_help() {
        let cfg = ExpConfig {
            scale: 4_000,
            ..ExpConfig::default()
        };
        let t = build(&cfg);
        assert_eq!(t.rows().len(), 1 + WIDTHS.len());
        let exact_err: f64 = t.rows()[0][3].parse().unwrap();
        assert_eq!(exact_err, 0.0, "size-3 valued twigs are stored exactly");
        let narrow: f64 = t.rows()[1][3].parse().unwrap();
        let wide: f64 = t.rows()[t.rows().len() - 1][3].parse().unwrap();
        assert!(
            wide <= narrow,
            "wider buckets must not be less accurate: {narrow} -> {wide}"
        );
    }
}
