//! One entry point for every CI gate.
//!
//! Each gate used to carry its own ~80-line binary duplicating the same
//! flag parsing, threshold loading, and report printing. This module owns
//! that skeleton once: [`run_gate`] measures, writes-or-checks, prints,
//! and returns the process exit code, and every `gate_*` binary — plus
//! the umbrella `gates` binary with its `--only` filter — is a thin
//! wrapper around it. CI and local runs therefore invoke gates through
//! the identical code path; a gate cannot behave differently under `gates
//! --only server` than under `gate_server`.

use std::path::PathBuf;

use crate::experiments::{corpus, decompose, recovery, server};
use crate::gates::{self, GateReport};
use crate::golden::{self, GoldenConfig};

/// Every gate the repo ships, in the order the umbrella runner executes
/// them.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Gate {
    /// Oracle-verified q-error/MRE envelopes over the dataset × seed matrix.
    Golden,
    /// Estimator accuracy and engine cache hit rate on the fixed fixture.
    Accuracy,
    /// Matcher-build wall-clock smoke against a committed baseline.
    Perf,
    /// Id-keyed DAG engine speedup and dedup floors.
    Decompose,
    /// Sharded-mining bit-identity and parallel speedup.
    Corpus,
    /// Injected-crash matrix: recovery bit-identity at every fail point.
    Recovery,
    /// Million-request mixed-tenant soak of the estimate server.
    Server,
}

impl Gate {
    /// All gates, in canonical execution order (cheap smokes first, the
    /// long soaks last).
    pub const ALL: [Gate; 7] = [
        Gate::Accuracy,
        Gate::Perf,
        Gate::Decompose,
        Gate::Corpus,
        Gate::Recovery,
        Gate::Golden,
        Gate::Server,
    ];

    /// The name used by `--only` and in log lines.
    pub fn name(self) -> &'static str {
        match self {
            Gate::Golden => "golden",
            Gate::Accuracy => "accuracy",
            Gate::Perf => "perf",
            Gate::Decompose => "decompose",
            Gate::Corpus => "corpus",
            Gate::Recovery => "recovery",
            Gate::Server => "server",
        }
    }

    /// Parses a `--only` item.
    pub fn parse(s: &str) -> Option<Gate> {
        Gate::ALL.into_iter().find(|g| g.name() == s)
    }

    /// The committed thresholds/baseline file this gate checks against by
    /// default.
    pub fn default_thresholds(self) -> PathBuf {
        crate::workspace_root()
            .join("tests/gates")
            .join(match self {
                Gate::Golden => "golden_accuracy.json",
                Gate::Accuracy => "accuracy.json",
                Gate::Perf => "perf_baseline.json",
                Gate::Decompose => "decompose.json",
                Gate::Corpus => "corpus.json",
                Gate::Recovery => "recovery.json",
                Gate::Server => "server.json",
            })
    }

    /// Whether `--seed` selects a run variant for this gate (a CI matrix
    /// slot). The other gates run one fixed fixture; passing them a seed
    /// is a usage error, not a silent no-op.
    pub fn accepts_seed(self) -> bool {
        matches!(self, Gate::Golden | Gate::Recovery | Gate::Server)
    }
}

/// How to run a gate: check against `thresholds` (default: the committed
/// file) or regenerate it with `write`.
#[derive(Clone, Debug)]
pub struct GateRun {
    /// Thresholds/baseline file; `None` means the gate's committed default.
    pub thresholds: Option<PathBuf>,
    /// Regenerate the thresholds file instead of checking.
    pub write: bool,
    /// Matrix seed, for the gates that accept one.
    pub seed: Option<u64>,
    /// Headroom factor for the perf smoke.
    pub perf_factor: f64,
}

impl Default for GateRun {
    fn default() -> Self {
        GateRun {
            thresholds: None,
            write: false,
            seed: None,
            perf_factor: 3.0,
        }
    }
}

fn write_snapshot(path: &PathBuf, snap: &tl_obs::Snapshot) -> i32 {
    if let Some(parent) = path.parent() {
        let _ = std::fs::create_dir_all(parent);
    }
    if let Err(e) = std::fs::write(path, snap.to_json()) {
        eprintln!("error: could not write {}: {e}", path.display());
        return 1;
    }
    println!("wrote {}", path.display());
    0
}

fn finish(gate: Gate, report: &GateReport) -> i32 {
    for line in &report.lines {
        println!("{line}");
    }
    if !report.passed() {
        eprintln!(
            "{} gate FAILED ({} check(s))",
            gate.name(),
            report.failures.len()
        );
        return 1;
    }
    println!("{} gate passed", gate.name());
    0
}

/// Runs one gate end to end: measure, then write the thresholds file or
/// check against it, printing every comparison. Returns the process exit
/// code — 0 pass/wrote, 1 regression or I/O failure, 2 usage.
pub fn run_gate(gate: Gate, opts: &GateRun) -> i32 {
    if opts.seed.is_some() && !gate.accepts_seed() {
        eprintln!(
            "error: the {} gate runs a fixed fixture and takes no --seed",
            gate.name()
        );
        return 2;
    }
    if gate == Gate::Golden && opts.write && opts.seed.is_some() {
        eprintln!("error: --write-thresholds regenerates the full matrix; drop --seed");
        return 2;
    }
    let path = opts
        .thresholds
        .clone()
        .unwrap_or_else(|| gate.default_thresholds());

    match gate {
        Gate::Golden => {
            let full = GoldenConfig::default();
            let cfg = match opts.seed {
                Some(s) => full.with_seed(s),
                None => full,
            };
            println!(
                "golden gate: {} dataset(s) x seeds {:?}, scale {}, k {}, sizes {:?}, {} queries/size",
                tl_datagen::Dataset::ALL.len(),
                cfg.seeds,
                cfg.scale,
                cfg.k,
                cfg.sizes,
                cfg.queries
            );
            let measured = golden::measure_golden(&cfg);
            println!(
                "measured {} envelope cells over {} evaluations",
                measured.envelopes.len(),
                measured.evaluations
            );
            if opts.write {
                return write_snapshot(&path, &golden::golden_thresholds(&measured, &cfg));
            }
            let snapshot = match gates::load_snapshot(&path) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("error: {e}");
                    return 1;
                }
            };
            finish(gate, &golden::check_golden(&measured, &snapshot))
        }
        Gate::Accuracy => {
            let cfg = gates::accuracy_config();
            println!(
                "accuracy gate: xmark scale {} seed {} k {} ({} queries/size)",
                cfg.scale, cfg.seed, cfg.k, cfg.queries
            );
            let measured = gates::measure_accuracy(&cfg);
            if opts.write {
                return write_snapshot(&path, &gates::accuracy_thresholds(&measured, &cfg));
            }
            let snapshot = match gates::load_snapshot(&path) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("error: {e}");
                    return 1;
                }
            };
            finish(gate, &gates::check_accuracy(&measured, &snapshot))
        }
        Gate::Perf => {
            let cfg = gates::perf_config();
            println!(
                "perf gate: matcher build at scale {} seed {} k {} ({} queries)",
                cfg.scale, cfg.seed, cfg.k, cfg.queries
            );
            // One warm-up then the measured run, so first-touch costs
            // (page cache, lazy allocations) do not count against the gate.
            let _ = gates::measure_perf(&cfg);
            let measured_ms = gates::measure_perf(&cfg);
            if opts.write {
                let code = write_snapshot(&path, &gates::perf_baseline(measured_ms, &cfg));
                if code == 0 {
                    println!("baseline {measured_ms:.1}ms");
                }
                return code;
            }
            let snapshot = match gates::load_snapshot(&path) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("error: {e}");
                    return 1;
                }
            };
            finish(
                gate,
                &gates::check_perf(measured_ms, &snapshot, opts.perf_factor),
            )
        }
        Gate::Decompose => {
            let cfg = gates::decompose_config();
            println!(
                "decompose gate: xmark scale {} seed {} k {} ({} queries/size)",
                cfg.scale, cfg.seed, cfg.k, cfg.queries
            );
            let _ = decompose::build(&cfg);
            let measured = decompose::build(&cfg);
            if opts.write {
                return write_snapshot(&path, &gates::decompose_thresholds(&measured, &cfg));
            }
            let snapshot = match gates::load_snapshot(&path) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("error: {e}");
                    return 1;
                }
            };
            finish(gate, &gates::check_decompose(&measured, &snapshot))
        }
        Gate::Corpus => {
            let cfg = gates::corpus_gate_config();
            println!(
                "corpus gate: xmark {} docs x {} elements, seed {}, k {}",
                cfg.docs, cfg.elements_per_doc, cfg.seed, cfg.k
            );
            let _ = corpus::build(&cfg);
            let measured = corpus::build(&cfg);
            if opts.write {
                return write_snapshot(&path, &gates::corpus_thresholds(&measured));
            }
            let snapshot = match gates::load_snapshot(&path) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("error: {e}");
                    return 1;
                }
            };
            finish(gate, &gates::check_corpus(&measured, &snapshot))
        }
        Gate::Recovery => {
            let cfg = gates::recovery_gate_config(opts.seed.unwrap_or(42));
            if opts.write {
                // The recovery thresholds are contract values, not measured
                // fractions: writing them does not need a sweep.
                return write_snapshot(&path, &gates::recovery_thresholds(&cfg));
            }
            println!(
                "recovery gate: {} crash points ({} sites x {} rules), seed {}, {} updates/point",
                recovery::matrix_size(),
                recovery::CRASH_SITES.len(),
                recovery::CRASH_RULES.len(),
                cfg.seed,
                cfg.updates
            );
            // `recovery::run` also prints the crash matrix and writes
            // BENCH_recovery.json, which CI uploads as an artifact.
            let measured = recovery::run(&cfg);
            let snapshot = match gates::load_snapshot(&path) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("error: {e}");
                    return 1;
                }
            };
            finish(gate, &gates::check_recovery(&measured, &snapshot))
        }
        Gate::Server => {
            let cfg = gates::server_gate_config(opts.seed.unwrap_or(42));
            if opts.write {
                // The server thresholds are contract values, not measured
                // fractions: writing them does not need a soak.
                return write_snapshot(&path, &gates::server_thresholds(&cfg));
            }
            println!(
                "server gate: xmark scale {} seed {} k {}, {} workers, {} request soak",
                cfg.scale, cfg.seed, cfg.k, cfg.workers, cfg.requests
            );
            // `server::run` also prints the soak table and writes
            // BENCH_server.json, which CI uploads as an artifact.
            let measured = server::run(&cfg);
            let snapshot = match gates::load_snapshot(&path) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("error: {e}");
                    return 1;
                }
            };
            finish(gate, &gates::check_server(&measured, &snapshot))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gate_names_round_trip_and_paths_are_committed() {
        for gate in Gate::ALL {
            assert_eq!(Gate::parse(gate.name()), Some(gate));
            let path = gate.default_thresholds();
            assert!(
                path.exists(),
                "{} thresholds missing at {}",
                gate.name(),
                path.display()
            );
        }
        assert_eq!(Gate::parse("nope"), None);
    }

    #[test]
    fn seed_rules_are_enforced() {
        let seeded = GateRun {
            seed: Some(7),
            ..GateRun::default()
        };
        // Fixed-fixture gates reject a seed outright (usage, exit 2).
        assert_eq!(run_gate(Gate::Accuracy, &seeded), 2);
        assert_eq!(run_gate(Gate::Perf, &seeded), 2);
        assert_eq!(run_gate(Gate::Decompose, &seeded), 2);
        assert_eq!(run_gate(Gate::Corpus, &seeded), 2);
        // Golden rejects the write+seed combination.
        let write_seeded = GateRun {
            write: true,
            seed: Some(7),
            ..GateRun::default()
        };
        assert_eq!(run_gate(Gate::Golden, &write_seeded), 2);
    }

    #[test]
    fn recovery_threshold_write_round_trips_through_the_committed_file() {
        let cfg = gates::recovery_gate_config(42);
        let snap = gates::recovery_thresholds(&cfg);
        let committed = gates::load_snapshot(&Gate::Recovery.default_thresholds())
            .expect("committed recovery thresholds load");
        assert_eq!(
            committed, snap,
            "tests/gates/recovery.json is stale; regenerate with gate_recovery --write-thresholds"
        );
    }

    #[test]
    fn server_threshold_write_round_trips_through_the_committed_file() {
        let cfg = gates::server_gate_config(42);
        let snap = gates::server_thresholds(&cfg);
        let committed = gates::load_snapshot(&Gate::Server.default_thresholds())
            .expect("committed server thresholds load");
        assert_eq!(
            committed, snap,
            "tests/gates/server.json is stale; regenerate with gate_server --write-thresholds"
        );
    }
}
