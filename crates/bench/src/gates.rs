//! CI regression gates (accuracy and perf smoke).
//!
//! Both gates compare a fresh, fully deterministic measurement against
//! thresholds committed under `tests/gates/` in the `tl-metrics/1`
//! snapshot schema, so the same tooling (`treelattice metrics report`)
//! renders thresholds, baselines, and live metrics alike.
//!
//! * **Accuracy** ([`measure_accuracy`] / [`check_accuracy`]): mines a
//!   fixed synthetic XMark document, estimates a canned positive workload
//!   with both recursive estimators, and fails when the mean relative
//!   error exceeds `gate.accuracy.max_mean_error_pct.<estimator>` or the
//!   shared-cache engine's hit rate falls below `gate.engine.min_hit_rate`.
//! * **Perf smoke** ([`measure_perf`] / [`check_perf`]): times the
//!   `bench matcher` comparison on a tiny fixture and fails when it runs
//!   more than `factor`× slower than `gate.perf.matcher_build_ms`.
//! * **Decompose** ([`check_decompose`]): runs the `bench_decompose`
//!   comparison on a reduced fixture and fails when the id-keyed DAG
//!   engine's warm-batch speedup over the byte-keyed recursive reference
//!   falls below `gate.decompose.min_warm_speedup`, its cold-batch
//!   speedup below `gate.decompose.min_cold_speedup`, or the DAG dedup
//!   ratio below `gate.decompose.min_dedup_ratio`. Fail-closed: a
//!   missing threshold gauge is itself a failure.
//! * **Corpus** ([`check_corpus`]): mines the reduced corpus fixture
//!   sequentially and sharded, and fails unless every sharded build is
//!   bit-identical to the sequential one and (on multi-core hosts) the
//!   sharded build clears `gate.corpus.min_parallel_speedup`.
//! * **Server** ([`check_server`]): drives the closed-loop
//!   million-request mixed-tenant soak (`experiments::server`) and fails
//!   unless it clears the committed contract — soak size and tenant
//!   floors, `gate.server.max_p99_us` / `gate.server.max_shed_rate`
//!   ceilings, bit-identity of every exact response against the
//!   in-process engine, and zero untyped errors.
//! * **Recovery** ([`check_recovery`]): sweeps the injected-crash matrix
//!   (`experiments::recovery`) — every durability fail-point site under
//!   every rule — and fails unless each crash point recovers bit-identical
//!   to a never-crashed replica of the acknowledged prefix, mid-log
//!   corruption surfaces as a typed fault, a torn tail seals cleanly, and
//!   a drain round-trips the state byte-for-byte.
//!
//! Every gate runs through the one shared runner in [`crate::gate_runner`]
//! — the `gates` umbrella binary and the per-gate `gate_*` wrappers are
//! the same code path.
//!
//! Every quantity the gates measure is seeded and single-threaded, so the
//! committed thresholds can be tight: reruns of the same build produce the
//! same workload, the same estimates, and the same hit counts.

use std::collections::BTreeMap;
use std::path::Path;
use std::time::Instant;

use tl_datagen::{Dataset, GenConfig};
use tl_obs::Snapshot;
use tl_workload::{average_relative_error_pct, positive_workload_with_index};
use tl_xml::DocIndex;
use treelattice::{
    BuildConfig, EngineConfig, EstimateOptions, EstimationEngine, Estimator, TreeLattice,
};

use crate::{
    experiments::{corpus, decompose, matcher, recovery, server},
    ExpConfig,
};

/// Threshold gauge name prefix for per-estimator mean error ceilings.
pub const MAX_MEAN_ERROR_PCT: &str = "gate.accuracy.max_mean_error_pct";
/// Threshold gauge name for the engine hit-rate floor.
pub const MIN_HIT_RATE: &str = "gate.engine.min_hit_rate";
/// Baseline gauge name for the perf smoke wall-clock.
pub const MATCHER_BUILD_MS: &str = "gate.perf.matcher_build_ms";
/// Threshold gauge name for the decompose warm-batch speedup floor.
pub const MIN_WARM_SPEEDUP: &str = "gate.decompose.min_warm_speedup";
/// Threshold gauge name for the decompose DAG dedup-ratio floor.
pub const MIN_DEDUP_RATIO: &str = "gate.decompose.min_dedup_ratio";
/// Threshold gauge name for the decompose cold-batch speedup floor.
pub const MIN_COLD_SPEEDUP: &str = "gate.decompose.min_cold_speedup";
/// Threshold gauge name for the corpus parallel-construction speedup floor.
pub const MIN_PARALLEL_SPEEDUP: &str = "gate.corpus.min_parallel_speedup";
/// Threshold gauge marking the shard-merge bit-identity check as required
/// (`1.0`). Carried in the thresholds file so the identity check is
/// fail-closed like every other comparison: an empty file fails.
pub const REQUIRE_MERGE_IDENTITY: &str = "gate.corpus.require_merge_identity";
/// Threshold gauge name for the server soak's p99 latency ceiling (µs).
pub const MAX_P99_US: &str = "gate.server.max_p99_us";
/// Threshold gauge name for the server soak's shed-rate ceiling.
pub const MAX_SHED_RATE: &str = "gate.server.max_shed_rate";
/// Threshold gauge name for the soak's minimum completed wire requests.
pub const MIN_REQUESTS: &str = "gate.server.min_requests";
/// Threshold gauge name for the soak's minimum driven tenant count.
pub const MIN_TENANTS: &str = "gate.server.min_tenants";
/// Threshold gauge marking the server-vs-engine bit-identity check as
/// required (`1.0`), fail-closed like [`REQUIRE_MERGE_IDENTITY`].
pub const REQUIRE_SERVER_IDENTITY: &str = "gate.server.require_bit_identity";
/// Threshold gauge marking the zero-untyped-errors check as required
/// (`1.0`): every soak response must be an estimate, a degraded estimate
/// with provenance, or a typed fault — never a bare transport error.
pub const REQUIRE_ZERO_UNTYPED: &str = "gate.server.require_zero_untyped";
/// Threshold gauge marking crash-recovery bit-identity as required
/// (`1.0`): every injected crash point must recover byte-identical to a
/// never-crashed replica of the acknowledged prefix. Fail-closed.
pub const REQUIRE_RECOVERY_IDENTITY: &str = "gate.recovery.require_bit_identity";
/// Threshold gauge for the minimum crash points the matrix must sweep.
pub const MIN_CRASH_POINTS: &str = "gate.recovery.min_crash_points";
/// Threshold gauge marking the typed-corruption check as required
/// (`1.0`): a byte flipped mid-log must surface as a typed fault.
pub const REQUIRE_TYPED_CORRUPTION: &str = "gate.recovery.require_typed_corruption";
/// Threshold gauge marking the torn-tail seal check as required (`1.0`).
pub const REQUIRE_TORN_TAIL_SEAL: &str = "gate.recovery.require_torn_tail_seal";
/// Threshold gauge marking the drain round-trip check as required (`1.0`).
pub const REQUIRE_DRAIN_ROUND_TRIP: &str = "gate.recovery.require_drain_round_trip";

/// The fixed configuration the accuracy gate runs with. Changing it
/// invalidates `tests/gates/accuracy.json`; regenerate with
/// `gate_accuracy --write-thresholds`.
pub fn accuracy_config() -> ExpConfig {
    ExpConfig {
        scale: 8_000,
        seed: 42,
        queries: 30,
        k: 4,
        ..ExpConfig::default()
    }
}

/// The tiny fixture the perf smoke gate times. Small enough that the gate
/// adds seconds, not minutes, to CI.
pub fn perf_config() -> ExpConfig {
    ExpConfig {
        scale: 1_500,
        seed: 42,
        queries: 5,
        k: 3,
        ..ExpConfig::default()
    }
}

/// What the accuracy gate measured on this build.
#[derive(Clone, Debug)]
pub struct AccuracyMeasurement {
    /// Mean relative error (percent) keyed by estimator name.
    pub mean_error_pct: BTreeMap<&'static str, f64>,
    /// Shared-cache engine hit rate over the whole workload, in [0, 1].
    pub hit_rate: f64,
    /// Total queries in the canned workload.
    pub queries: usize,
}

/// Runs the deterministic accuracy measurement: XMark at `cfg.scale`,
/// positive workloads of sizes 4–6, both recursive estimators, and one
/// single-threaded engine batch for the cache hit rate.
pub fn measure_accuracy(cfg: &ExpConfig) -> AccuracyMeasurement {
    let doc = Dataset::Xmark.generate(GenConfig {
        seed: cfg.seed,
        target_elements: cfg.scale,
    });
    let index = DocIndex::new(&doc);
    let lattice = TreeLattice::build_with_index(
        &doc,
        &index,
        &BuildConfig {
            k: cfg.k,
            threads: 0,
            prune_delta: None,
            ..BuildConfig::default()
        },
    );

    let mut twigs = Vec::new();
    let mut truths = Vec::new();
    for size in [4usize, 5, 6] {
        let w = positive_workload_with_index(
            &doc,
            &index,
            size,
            cfg.queries,
            cfg.seed.wrapping_add(size as u64),
        );
        for case in w.cases {
            truths.push(case.true_count);
            twigs.push(case.twig);
        }
    }
    assert!(!twigs.is_empty(), "accuracy gate workload is empty");

    let opts = EstimateOptions::default();
    let mut mean_error_pct = BTreeMap::new();
    for (name, estimator) in [
        ("recursive", Estimator::Recursive),
        ("voting", Estimator::RecursiveVoting),
    ] {
        let estimates: Vec<f64> = twigs
            .iter()
            .map(|t| lattice.estimate_with(t, estimator, &opts))
            .collect();
        mean_error_pct.insert(name, average_relative_error_pct(&truths, &estimates));
    }

    // One worker: concurrent workers can race to the same uncached key and
    // double-count misses, and a gate must measure the same value every run.
    let engine = EstimationEngine::new(EngineConfig {
        threads: 1,
        ..EngineConfig::default()
    });
    let _ = engine.estimate_batch(&lattice, &twigs, Estimator::RecursiveVoting, &opts);
    let stats = engine.stats();

    AccuracyMeasurement {
        mean_error_pct,
        hit_rate: stats.hit_rate(),
        queries: twigs.len(),
    }
}

/// Renders the measurement as a thresholds snapshot with headroom:
/// error ceilings at `1.15×` measured (floored at 1pp above), hit-rate
/// floor at measured `− 0.05`.
pub fn accuracy_thresholds(m: &AccuracyMeasurement, cfg: &ExpConfig) -> Snapshot {
    let mut snap = Snapshot::default();
    snap.meta.insert("gate".into(), "accuracy".into());
    snap.meta.insert("dataset".into(), "xmark".into());
    snap.meta.insert("scale".into(), cfg.scale.to_string());
    snap.meta.insert("seed".into(), cfg.seed.to_string());
    snap.meta.insert("k".into(), cfg.k.to_string());
    snap.meta
        .insert("queries_per_size".into(), cfg.queries.to_string());
    for (name, &err) in &m.mean_error_pct {
        snap.gauges.insert(
            format!("{MAX_MEAN_ERROR_PCT}.{name}"),
            (err * 1.15).max(err + 1.0),
        );
    }
    snap.gauges
        .insert(MIN_HIT_RATE.into(), (m.hit_rate - 0.05).max(0.0));
    snap
}

/// The outcome of one gate check: human-readable lines for every
/// comparison, plus the subset that failed.
#[derive(Clone, Debug, Default)]
pub struct GateReport {
    /// One line per comparison, pass or fail.
    pub lines: Vec<String>,
    /// Failure messages (empty means the gate passed).
    pub failures: Vec<String>,
}

impl GateReport {
    /// Whether every comparison passed.
    pub fn passed(&self) -> bool {
        self.failures.is_empty()
    }

    pub(crate) fn check(&mut self, ok: bool, line: String) {
        self.lines
            .push(format!("{} {line}", if ok { "PASS" } else { "FAIL" }));
        if !ok {
            self.failures.push(line);
        }
    }
}

/// Compares a measurement against a thresholds snapshot. A threshold the
/// snapshot does not carry is itself a failure: a gate that silently
/// checks nothing is worse than a missing gate.
pub fn check_accuracy(m: &AccuracyMeasurement, thresholds: &Snapshot) -> GateReport {
    let mut report = GateReport::default();
    for (name, &err) in &m.mean_error_pct {
        let key = format!("{MAX_MEAN_ERROR_PCT}.{name}");
        match thresholds.gauges.get(&key) {
            Some(&max) => report.check(
                err <= max,
                format!("{name}: mean error {err:.2}% (max {max:.2}%)"),
            ),
            None => report.check(false, format!("thresholds missing gauge `{key}`")),
        }
    }
    match thresholds.gauges.get(MIN_HIT_RATE) {
        Some(&min) => report.check(
            m.hit_rate >= min,
            format!(
                "engine: cache hit rate {:.3} over {} queries (min {min:.3})",
                m.hit_rate, m.queries
            ),
        ),
        None => report.check(false, format!("thresholds missing gauge `{MIN_HIT_RATE}`")),
    }
    report
}

/// Times one `bench matcher` comparison run (generation, workloads, both
/// kernels, mining) in milliseconds.
pub fn measure_perf(cfg: &ExpConfig) -> f64 {
    let start = Instant::now();
    let b = matcher::build(cfg);
    std::hint::black_box(b.kernel.len());
    start.elapsed().as_secs_f64() * 1e3
}

/// Renders a measured perf run as a baseline snapshot (raw, no headroom:
/// the slack lives in the comparison factor, not the stored number).
pub fn perf_baseline(measured_ms: f64, cfg: &ExpConfig) -> Snapshot {
    let mut snap = Snapshot::default();
    snap.meta.insert("gate".into(), "perf".into());
    snap.meta.insert("scale".into(), cfg.scale.to_string());
    snap.meta.insert("seed".into(), cfg.seed.to_string());
    snap.meta.insert("k".into(), cfg.k.to_string());
    snap.meta.insert("queries".into(), cfg.queries.to_string());
    snap.gauges.insert(MATCHER_BUILD_MS.into(), measured_ms);
    snap
}

/// Compares a measured wall-clock against the committed baseline, allowing
/// `factor`× headroom for shared-runner noise.
pub fn check_perf(measured_ms: f64, baseline: &Snapshot, factor: f64) -> GateReport {
    let mut report = GateReport::default();
    match baseline.gauges.get(MATCHER_BUILD_MS) {
        Some(&base) => report.check(
            measured_ms <= base * factor,
            format!(
                "matcher build {measured_ms:.1}ms vs baseline {base:.1}ms (allowed {:.1}ms = {factor}x)",
                base * factor
            ),
        ),
        None => report.check(
            false,
            format!("baseline missing gauge `{MATCHER_BUILD_MS}`"),
        ),
    }
    report
}

/// The reduced configuration the decompose gate runs with: small enough
/// for CI, large enough that the workloads exercise multi-level
/// decomposition. Changing it invalidates `tests/gates/decompose.json`;
/// regenerate with `gate_decompose --write-thresholds`.
pub fn decompose_config() -> ExpConfig {
    ExpConfig {
        scale: 2_000,
        seed: 42,
        queries: 10,
        k: 4,
        ..ExpConfig::default()
    }
}

/// Renders a measured decompose run as a thresholds snapshot with
/// headroom: the warm and cold speedup floors at half the worst measured
/// row (timing ratios are same-machine and noise-robust, but CI runners
/// throttle), the dedup floor at `0.9×` the worst measured row. All
/// floors are clamped to at least 1: the gate's contract is that the DAG
/// path is never slower than the recursion it replaced — cold or warm —
/// and always shares at least some operands.
pub fn decompose_thresholds(b: &decompose::DecomposeBench, cfg: &ExpConfig) -> Snapshot {
    let worst_speedup = b
        .rows
        .iter()
        .map(|r| r.warm_speedup)
        .fold(f64::INFINITY, f64::min);
    let worst_cold = b
        .rows
        .iter()
        .map(|r| r.cold_speedup)
        .fold(f64::INFINITY, f64::min);
    let worst_dedup = b
        .rows
        .iter()
        .map(|r| r.dedup_ratio)
        .fold(f64::INFINITY, f64::min);
    let mut snap = Snapshot::default();
    snap.meta.insert("gate".into(), "decompose".into());
    snap.meta.insert("dataset".into(), "xmark".into());
    snap.meta.insert("scale".into(), cfg.scale.to_string());
    snap.meta.insert("seed".into(), cfg.seed.to_string());
    snap.meta.insert("k".into(), cfg.k.to_string());
    snap.meta
        .insert("queries_per_size".into(), cfg.queries.to_string());
    snap.gauges
        .insert(MIN_WARM_SPEEDUP.into(), (worst_speedup * 0.5).max(1.0));
    snap.gauges
        .insert(MIN_COLD_SPEEDUP.into(), (worst_cold * 0.5).max(1.0));
    snap.gauges
        .insert(MIN_DEDUP_RATIO.into(), (worst_dedup * 0.9).max(1.0));
    snap
}

/// Compares a decompose measurement against a thresholds snapshot. Every
/// estimator row must clear both floors; a missing gauge is a failure.
pub fn check_decompose(b: &decompose::DecomposeBench, thresholds: &Snapshot) -> GateReport {
    let mut report = GateReport::default();
    match thresholds.gauges.get(MIN_WARM_SPEEDUP) {
        Some(&min) => {
            for r in &b.rows {
                report.check(
                    r.warm_speedup >= min,
                    format!(
                        "{}: warm speedup {:.2}x over byte-keyed recursion (min {min:.2}x)",
                        r.estimator, r.warm_speedup
                    ),
                );
            }
        }
        None => report.check(
            false,
            format!("thresholds missing gauge `{MIN_WARM_SPEEDUP}`"),
        ),
    }
    match thresholds.gauges.get(MIN_COLD_SPEEDUP) {
        Some(&min) => {
            for r in &b.rows {
                report.check(
                    r.cold_speedup >= min,
                    format!(
                        "{}: cold speedup {:.2}x over byte-keyed recursion (min {min:.2}x)",
                        r.estimator, r.cold_speedup
                    ),
                );
            }
        }
        None => report.check(
            false,
            format!("thresholds missing gauge `{MIN_COLD_SPEEDUP}`"),
        ),
    }
    match thresholds.gauges.get(MIN_DEDUP_RATIO) {
        Some(&min) => {
            for r in &b.rows {
                report.check(
                    r.dedup_ratio >= min,
                    format!(
                        "{}: DAG dedup ratio {:.2}x (min {min:.2}x)",
                        r.estimator, r.dedup_ratio
                    ),
                );
            }
        }
        None => report.check(
            false,
            format!("thresholds missing gauge `{MIN_DEDUP_RATIO}`"),
        ),
    }
    report
}

/// The reduced corpus the corpus gate mines: small enough for CI seconds,
/// sharded enough to exercise the tree-reduction merge. Changing it
/// invalidates `tests/gates/corpus.json`; regenerate with
/// `gate_corpus --write-thresholds`.
pub fn corpus_gate_config() -> corpus::CorpusBenchConfig {
    corpus::CorpusBenchConfig {
        docs: 8,
        elements_per_doc: 1_200,
        seed: 42,
        k: 3,
        repeats: 3,
    }
}

/// Renders corpus-gate thresholds. The parallel speedup floor is a fixed
/// contract (`2.0`) rather than a measured fraction: the merge monoid's
/// whole point is that N shards cut construction time, and on a
/// multi-core runner 2 of N cores must at least halve it. The bit-identity
/// requirement is carried as a `1.0` gauge so an empty thresholds file
/// fails closed.
pub fn corpus_thresholds(b: &corpus::CorpusBench) -> Snapshot {
    let cfg = &b.cfg;
    let mut snap = Snapshot::default();
    snap.meta.insert("gate".into(), "corpus".into());
    snap.meta.insert("dataset".into(), "xmark".into());
    snap.meta.insert("docs".into(), cfg.docs.to_string());
    snap.meta
        .insert("elements_per_doc".into(), cfg.elements_per_doc.to_string());
    snap.meta.insert("seed".into(), cfg.seed.to_string());
    snap.meta.insert("k".into(), cfg.k.to_string());
    snap.gauges.insert(MIN_PARALLEL_SPEEDUP.into(), 2.0);
    snap.gauges.insert(REQUIRE_MERGE_IDENTITY.into(), 1.0);
    snap
}

/// Compares a corpus measurement against a thresholds snapshot.
///
/// * **Bit-identity** (always enforced): every sharded build must
///   serialize byte-for-byte equal to the sequential one.
/// * **Parallel speedup** (enforced on multi-core hosts): the widest
///   sharded build must beat sequential by the committed floor. A
///   single-core host cannot measure parallel speedup at all, so the
///   check passes there with an explicit waiver line — the *identity*
///   half of the contract still runs everywhere.
///
/// A missing threshold gauge is a failure either way.
pub fn check_corpus(b: &corpus::CorpusBench, thresholds: &Snapshot) -> GateReport {
    let mut report = GateReport::default();
    match thresholds.gauges.get(REQUIRE_MERGE_IDENTITY) {
        Some(&req) if req > 0.0 => report.check(
            b.merge_identical,
            format!(
                "merge: sharded builds ({} shard configs) bit-identical to sequential: {}",
                b.rows.len(),
                b.merge_identical
            ),
        ),
        Some(_) => report.check(false, "merge identity requirement disabled".into()),
        None => report.check(
            false,
            format!("thresholds missing gauge `{REQUIRE_MERGE_IDENTITY}`"),
        ),
    }
    match thresholds.gauges.get(MIN_PARALLEL_SPEEDUP) {
        Some(&min) => {
            let best = b
                .rows
                .iter()
                .filter(|r| r.shards > 1)
                .map(|r| r.speedup)
                .fold(0.0, f64::max);
            if b.host_threads < 2 {
                report.check(
                    true,
                    format!(
                        "parallel: speedup floor {min:.2}x waived (host has {} core)",
                        b.host_threads
                    ),
                );
            } else {
                report.check(
                    best >= min,
                    format!(
                        "parallel: best sharded speedup {best:.2}x over sequential (min {min:.2}x, {} cores)",
                        b.host_threads
                    ),
                );
            }
        }
        None => report.check(
            false,
            format!("thresholds missing gauge `{MIN_PARALLEL_SPEEDUP}`"),
        ),
    }
    report
}

/// The configuration the server gate soaks with: the full one-million
/// request mixed-tenant load at a CI-matrix seed. Changing anything but
/// the seed invalidates `tests/gates/server.json`; regenerate with
/// `gate_server --write-thresholds`.
pub fn server_gate_config(seed: u64) -> server::ServerBenchConfig {
    server::ServerBenchConfig {
        seed,
        ..server::bench_config()
    }
}

/// Renders server-gate thresholds. Like the corpus gate, most of these
/// are fixed contract values rather than measured fractions: the soak
/// size and tenant floor restate the gate's definition, the identity and
/// typed-error requirements are carried as `1.0` gauges so an empty
/// thresholds file fails closed, and only the latency/shed ceilings are
/// judgement calls — generous enough for throttled shared runners, tight
/// enough that a pathological server (lock convoy, queue leak, busy
/// retry loop) cannot pass.
pub fn server_thresholds(cfg: &server::ServerBenchConfig) -> Snapshot {
    let mut snap = Snapshot::default();
    snap.meta.insert("gate".into(), "server".into());
    snap.meta.insert("dataset".into(), "xmark".into());
    snap.meta.insert("scale".into(), cfg.scale.to_string());
    snap.meta.insert("k".into(), cfg.k.to_string());
    snap.meta.insert("workers".into(), cfg.workers.to_string());
    snap.gauges.insert(MAX_P99_US.into(), 50_000.0);
    snap.gauges.insert(MAX_SHED_RATE.into(), 0.25);
    snap.gauges.insert(MIN_REQUESTS.into(), cfg.requests as f64);
    snap.gauges.insert(MIN_TENANTS.into(), 3.0);
    snap.gauges.insert(REQUIRE_SERVER_IDENTITY.into(), 1.0);
    snap.gauges.insert(REQUIRE_ZERO_UNTYPED.into(), 1.0);
    snap
}

/// Compares a server soak against a thresholds snapshot. A missing
/// threshold gauge is a failure.
pub fn check_server(b: &server::ServerBench, thresholds: &Snapshot) -> GateReport {
    let mut report = GateReport::default();
    match thresholds.gauges.get(MIN_REQUESTS) {
        Some(&min) => report.check(
            b.requests as f64 >= min,
            format!(
                "soak: {} wire requests completed (min {min:.0})",
                b.requests
            ),
        ),
        None => report.check(false, format!("thresholds missing gauge `{MIN_REQUESTS}`")),
    }
    match thresholds.gauges.get(MIN_TENANTS) {
        Some(&min) => report.check(
            b.tenants.len() as f64 >= min,
            format!(
                "tenants: {} driven [{}] (min {min:.0})",
                b.tenants.len(),
                b.tenants.join(",")
            ),
        ),
        None => report.check(false, format!("thresholds missing gauge `{MIN_TENANTS}`")),
    }
    match thresholds.gauges.get(MAX_P99_US) {
        Some(&max) => report.check(
            b.p99_us <= max,
            format!(
                "latency: p50 {:.0}µs p95 {:.0}µs p99 {:.0}µs (p99 max {max:.0}µs)",
                b.p50_us, b.p95_us, b.p99_us
            ),
        ),
        None => report.check(false, format!("thresholds missing gauge `{MAX_P99_US}`")),
    }
    match thresholds.gauges.get(MAX_SHED_RATE) {
        Some(&max) => report.check(
            b.shed_rate <= max,
            format!(
                "overload: {} sheds over {} requests = rate {:.4} (max {max:.2})",
                b.shed, b.requests, b.shed_rate
            ),
        ),
        None => report.check(false, format!("thresholds missing gauge `{MAX_SHED_RATE}`")),
    }
    match thresholds.gauges.get(REQUIRE_SERVER_IDENTITY) {
        Some(&req) if req > 0.0 => report.check(
            b.identity_checked > 0 && b.identity_mismatches == 0,
            format!(
                "identity: {}/{} exact responses bit-identical to the in-process engine",
                b.identity_checked - b.identity_mismatches,
                b.identity_checked
            ),
        ),
        Some(_) => report.check(false, "server identity requirement disabled".into()),
        None => report.check(
            false,
            format!("thresholds missing gauge `{REQUIRE_SERVER_IDENTITY}`"),
        ),
    }
    match thresholds.gauges.get(REQUIRE_ZERO_UNTYPED) {
        Some(&req) if req > 0.0 => report.check(
            b.untyped_errors == 0,
            format!(
                "contract: {} untyped errors ({} typed faults, {} degraded-with-provenance)",
                b.untyped_errors, b.faults, b.degraded
            ),
        ),
        Some(_) => report.check(false, "zero-untyped requirement disabled".into()),
        None => report.check(
            false,
            format!("thresholds missing gauge `{REQUIRE_ZERO_UNTYPED}`"),
        ),
    }
    report
}

/// The configuration the recovery gate sweeps with: the full crash
/// matrix at a CI-matrix seed (the seed varies the workload, the
/// fail-point coin, and the crash timing — the contract does not).
/// Changing anything but the seed invalidates `tests/gates/recovery.json`;
/// regenerate with `gate_recovery --write-thresholds`.
pub fn recovery_gate_config(seed: u64) -> recovery::RecoveryBenchConfig {
    recovery::RecoveryBenchConfig {
        seed,
        ..recovery::bench_config()
    }
}

/// Renders recovery-gate thresholds. All contract values: the crash-point
/// floor restates the matrix the sweep drives, and the four requirement
/// gauges are carried as `1.0` so an empty thresholds file fails closed.
pub fn recovery_thresholds(cfg: &recovery::RecoveryBenchConfig) -> Snapshot {
    let mut snap = Snapshot::default();
    snap.meta.insert("gate".into(), "recovery".into());
    snap.meta.insert("dataset".into(), "xmark".into());
    snap.meta.insert("scale".into(), cfg.scale.to_string());
    snap.meta.insert("k".into(), cfg.k.to_string());
    snap.meta
        .insert("updates_per_point".into(), cfg.updates.to_string());
    snap.gauges
        .insert(MIN_CRASH_POINTS.into(), recovery::matrix_size() as f64);
    snap.gauges.insert(REQUIRE_RECOVERY_IDENTITY.into(), 1.0);
    snap.gauges.insert(REQUIRE_TYPED_CORRUPTION.into(), 1.0);
    snap.gauges.insert(REQUIRE_TORN_TAIL_SEAL.into(), 1.0);
    snap.gauges.insert(REQUIRE_DRAIN_ROUND_TRIP.into(), 1.0);
    snap
}

/// Compares a crash-matrix sweep against a thresholds snapshot. A missing
/// threshold gauge is a failure.
pub fn check_recovery(b: &recovery::RecoveryBench, thresholds: &Snapshot) -> GateReport {
    let mut report = GateReport::default();
    match thresholds.gauges.get(MIN_CRASH_POINTS) {
        Some(&min) => report.check(
            b.crash_points() as f64 >= min,
            format!(
                "matrix: {} crash points swept ({} sites x {} rules, min {min:.0})",
                b.crash_points(),
                recovery::CRASH_SITES.len(),
                recovery::CRASH_RULES.len()
            ),
        ),
        None => report.check(
            false,
            format!("thresholds missing gauge `{MIN_CRASH_POINTS}`"),
        ),
    }
    match thresholds.gauges.get(REQUIRE_RECOVERY_IDENTITY) {
        Some(&req) if req > 0.0 => {
            let diverged: Vec<String> = b
                .rows
                .iter()
                .filter(|r| !r.bit_identical)
                .map(|r| format!("{}={}", r.site, r.rule))
                .collect();
            report.check(
                b.crash_points() > 0 && diverged.is_empty(),
                format!(
                    "identity: {}/{} crash points recovered bit-identical to the replica{}",
                    b.identical_points,
                    b.crash_points(),
                    if diverged.is_empty() {
                        String::new()
                    } else {
                        format!(" (diverged: {})", diverged.join(", "))
                    }
                ),
            );
        }
        Some(_) => report.check(false, "recovery identity requirement disabled".into()),
        None => report.check(
            false,
            format!("thresholds missing gauge `{REQUIRE_RECOVERY_IDENTITY}`"),
        ),
    }
    match thresholds.gauges.get(REQUIRE_TYPED_CORRUPTION) {
        Some(&req) if req > 0.0 => report.check(
            b.corruption_typed,
            format!(
                "corruption: mid-log byte flip surfaced as a typed fault: {}",
                b.corruption_typed
            ),
        ),
        Some(_) => report.check(false, "typed-corruption requirement disabled".into()),
        None => report.check(
            false,
            format!("thresholds missing gauge `{REQUIRE_TYPED_CORRUPTION}`"),
        ),
    }
    match thresholds.gauges.get(REQUIRE_TORN_TAIL_SEAL) {
        Some(&req) if req > 0.0 => report.check(
            b.torn_tail_sealed,
            format!(
                "torn tail: sheared final record sealed as clean end-of-log: {}",
                b.torn_tail_sealed
            ),
        ),
        Some(_) => report.check(false, "torn-tail requirement disabled".into()),
        None => report.check(
            false,
            format!("thresholds missing gauge `{REQUIRE_TORN_TAIL_SEAL}`"),
        ),
    }
    match thresholds.gauges.get(REQUIRE_DRAIN_ROUND_TRIP) {
        Some(&req) if req > 0.0 => report.check(
            b.drain_round_trip,
            format!(
                "drain: flush + snapshot + reopen reproduced the state byte-for-byte: {}",
                b.drain_round_trip
            ),
        ),
        Some(_) => report.check(false, "drain round-trip requirement disabled".into()),
        None => report.check(
            false,
            format!("thresholds missing gauge `{REQUIRE_DRAIN_ROUND_TRIP}`"),
        ),
    }
    report
}

/// Loads a thresholds/baseline snapshot from disk.
pub fn load_snapshot(path: &Path) -> Result<Snapshot, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
    Snapshot::from_json(&text).map_err(|e| format!("{}: {e}", path.display()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_config() -> ExpConfig {
        ExpConfig {
            scale: 1_500,
            seed: 42,
            queries: 5,
            k: 3,
            ..ExpConfig::default()
        }
    }

    #[test]
    fn accuracy_measurement_is_deterministic() {
        let cfg = tiny_config();
        let a = measure_accuracy(&cfg);
        let b = measure_accuracy(&cfg);
        assert_eq!(a.mean_error_pct, b.mean_error_pct);
        assert_eq!(a.hit_rate, b.hit_rate);
        assert_eq!(a.queries, b.queries);
        assert!(a.queries > 0);
        assert!(a.hit_rate > 0.0, "repeated sub-twigs should hit the cache");
    }

    #[test]
    fn generated_thresholds_pass_their_own_measurement() {
        let cfg = tiny_config();
        let m = measure_accuracy(&cfg);
        let thresholds = accuracy_thresholds(&m, &cfg);
        let report = check_accuracy(&m, &thresholds);
        assert!(report.passed(), "{:?}", report.failures);
        assert_eq!(report.lines.len(), 3, "two estimators + hit rate");
    }

    #[test]
    fn tightened_thresholds_fail() {
        let cfg = tiny_config();
        let m = measure_accuracy(&cfg);
        let mut thresholds = accuracy_thresholds(&m, &cfg);
        for v in thresholds.gauges.values_mut() {
            *v = match *v {
                // Error ceilings shrink below measurement...
                x if x > 1.0 => x / 100.0,
                // ...and the hit-rate floor rises above it.
                _ => 1.01,
            };
        }
        let report = check_accuracy(&m, &thresholds);
        assert!(!report.passed());
        assert_eq!(report.failures.len(), 3);
    }

    #[test]
    fn missing_threshold_gauges_fail_closed() {
        let cfg = tiny_config();
        let m = measure_accuracy(&cfg);
        let report = check_accuracy(&m, &Snapshot::default());
        assert!(!report.passed());
        assert!(report.failures.iter().all(|f| f.contains("missing gauge")));
    }

    #[test]
    fn perf_gate_passes_against_own_baseline_and_fails_tightened() {
        let baseline = perf_baseline(100.0, &tiny_config());
        assert!(check_perf(100.0, &baseline, 3.0).passed());
        assert!(check_perf(299.0, &baseline, 3.0).passed());
        assert!(!check_perf(301.0, &baseline, 3.0).passed());
        assert!(!check_perf(100.0, &Snapshot::default(), 3.0).passed());
    }

    #[test]
    fn decompose_gate_checks_synthetic_rows() {
        let row = |speedup: f64, dedup: f64| decompose::DecomposeRow {
            estimator: "recursive",
            queries: 10,
            reference_cold_ms: 2.0,
            reference_warm_ms: 1.0,
            engine_cold_ms: 1.0,
            engine_warm_ms: 1.0 / speedup,
            cold_speedup: 2.0,
            warm_speedup: speedup,
            warm_ns_per_query: 100.0,
            dedup_ratio: dedup,
            interner_keys: 10,
            dag_nodes: 10,
            dag_refs: (10.0 * dedup) as u64,
        };
        let bench = |speedup: f64, dedup: f64| decompose::DecomposeBench {
            scale: 2_000,
            seed: 42,
            rows: vec![row(speedup, dedup)],
        };
        let cfg = decompose_config();
        let good = bench(4.0, 2.0);
        let thresholds = decompose_thresholds(&good, &cfg);
        // Floors: half the measured speedups, 0.9x the measured dedup.
        assert_eq!(thresholds.gauges[MIN_WARM_SPEEDUP], 2.0);
        assert_eq!(thresholds.gauges[MIN_COLD_SPEEDUP], 1.0);
        assert_eq!(thresholds.gauges[MIN_DEDUP_RATIO], 1.8);
        assert!(check_decompose(&good, &thresholds).passed());
        // A slower or less-shared build fails...
        assert!(!check_decompose(&bench(1.5, 2.0), &thresholds).passed());
        assert!(!check_decompose(&bench(4.0, 1.2), &thresholds).passed());
        // ...and so does an empty thresholds file (fail-closed).
        let report = check_decompose(&good, &Snapshot::default());
        assert!(!report.passed());
        assert!(report.failures.iter().all(|f| f.contains("missing gauge")));
        // Floors never drop below 1 even for a barely-faster measurement.
        let weak = decompose_thresholds(&bench(1.1, 1.05), &cfg);
        assert_eq!(weak.gauges[MIN_WARM_SPEEDUP], 1.0);
        assert_eq!(weak.gauges[MIN_COLD_SPEEDUP], 1.0);
        assert_eq!(weak.gauges[MIN_DEDUP_RATIO], 1.0);
    }

    #[test]
    fn decompose_gate_fails_a_cold_regression() {
        // A row that is fast warm but *slower than the reference cold* —
        // the regression this floor exists to catch — must fail against
        // thresholds demanding cold parity.
        let slow_cold = decompose::DecomposeBench {
            scale: 2_000,
            seed: 42,
            rows: vec![decompose::DecomposeRow {
                estimator: "recursive",
                queries: 10,
                reference_cold_ms: 1.0,
                reference_warm_ms: 1.0,
                engine_cold_ms: 1.3,
                engine_warm_ms: 0.2,
                cold_speedup: 0.79,
                warm_speedup: 5.0,
                warm_ns_per_query: 100.0,
                dedup_ratio: 2.0,
                interner_keys: 10,
                dag_nodes: 10,
                dag_refs: 20,
            }],
        };
        let mut thresholds = Snapshot::default();
        thresholds.gauges.insert(MIN_WARM_SPEEDUP.into(), 1.0);
        thresholds.gauges.insert(MIN_COLD_SPEEDUP.into(), 1.0);
        thresholds.gauges.insert(MIN_DEDUP_RATIO.into(), 1.0);
        let report = check_decompose(&slow_cold, &thresholds);
        assert!(!report.passed());
        assert!(report.failures.iter().any(|f| f.contains("cold speedup")));
    }

    #[test]
    fn corpus_gate_checks_identity_and_speedup() {
        let bench = |identical: bool, speedup: f64, host: usize| corpus::CorpusBench {
            cfg: corpus_gate_config(),
            host_threads: host,
            rows: vec![
                corpus::CorpusScalingRow {
                    shards: 1,
                    build_ms: 100.0,
                    speedup: 1.0,
                },
                corpus::CorpusScalingRow {
                    shards: 4,
                    build_ms: 100.0 / speedup,
                    speedup,
                },
            ],
            merge_identical: identical,
            merge_ms: 1.0,
            summary_patterns: 500,
            summary_heap_bytes: 40_000,
            mmap_bytes: 20_000,
            mmap_cold_lookup_ns: 300.0,
            mmap_probes: 128,
        };
        let good = bench(true, 3.0, 4);
        let thresholds = corpus_thresholds(&good);
        assert_eq!(thresholds.gauges[MIN_PARALLEL_SPEEDUP], 2.0);
        assert!(check_corpus(&good, &thresholds).passed());
        // Bit-identity failures are fatal regardless of speed or cores.
        assert!(!check_corpus(&bench(false, 3.0, 4), &thresholds).passed());
        assert!(!check_corpus(&bench(false, 3.0, 1), &thresholds).passed());
        // Slow scaling fails on a multi-core host...
        assert!(!check_corpus(&bench(true, 1.1, 4), &thresholds).passed());
        // ...but is waived (with identity still required) on one core.
        let waived = check_corpus(&bench(true, 1.0, 1), &thresholds);
        assert!(waived.passed());
        assert!(waived.lines.iter().any(|l| l.contains("waived")));
        // Fail-closed on an empty thresholds file.
        let report = check_corpus(&good, &Snapshot::default());
        assert!(!report.passed());
        assert!(report.failures.iter().all(|f| f.contains("missing gauge")));
    }

    #[test]
    fn server_gate_checks_contract_and_ceilings() {
        let bench = |p99: f64, shed: u64, untyped: u64, mismatches: u64| {
            let requests = 1_000_000u64;
            crate::experiments::server::ServerBench {
                cfg: server_gate_config(42),
                tenants: vec![
                    "gold".into(),
                    "silver".into(),
                    "bronze".into(),
                    "strict".into(),
                ],
                requests,
                queries: requests + 50_000,
                wall_s: 10.0,
                throughput_rps: requests as f64 / 10.0,
                p50_us: 100.0,
                p95_us: 500.0,
                p99_us: p99,
                shed,
                degraded: 10_000,
                faults: 0,
                untyped_errors: untyped,
                identity_checked: 800_000 - mismatches,
                identity_mismatches: mismatches,
                shed_rate: shed as f64 / requests as f64,
            }
        };
        let good = bench(2_000.0, 100, 0, 0);
        let thresholds = server_thresholds(&good.cfg);
        assert_eq!(thresholds.gauges[MIN_REQUESTS], 1_000_000.0);
        assert!(check_server(&good, &thresholds).passed());
        // Each ceiling and contract fails independently...
        assert!(!check_server(&bench(60_000.0, 100, 0, 0), &thresholds).passed());
        assert!(!check_server(&bench(2_000.0, 300_000, 0, 0), &thresholds).passed());
        assert!(!check_server(&bench(2_000.0, 100, 1, 0), &thresholds).passed());
        assert!(!check_server(&bench(2_000.0, 100, 0, 1), &thresholds).passed());
        // ...a too-small soak fails...
        let mut short = bench(2_000.0, 100, 0, 0);
        short.requests = 999;
        assert!(!check_server(&short, &thresholds).passed());
        // ...too few tenants fails...
        let mut narrow = bench(2_000.0, 100, 0, 0);
        narrow.tenants.truncate(2);
        assert!(!check_server(&narrow, &thresholds).passed());
        // ...and an empty thresholds file fails closed.
        let report = check_server(&good, &Snapshot::default());
        assert!(!report.passed());
        assert!(report.failures.iter().all(|f| f.contains("missing gauge")));
    }

    #[test]
    fn recovery_gate_checks_contract() {
        let row = |identical: bool| recovery::CrashRow {
            site: "wal.append.torn",
            rule: "always",
            acked: 0,
            recovered_seq: 0,
            replayed: 0,
            injected: 6,
            bit_identical: identical,
        };
        let bench = |identical: bool, corrupt: bool, torn: bool, drain: bool| {
            let rows: Vec<recovery::CrashRow> = (0..recovery::matrix_size())
                .map(|_| row(identical))
                .collect();
            let identical_points = rows.iter().filter(|r| r.bit_identical).count() as u64;
            recovery::RecoveryBench {
                cfg: recovery_gate_config(42),
                rows,
                identical_points,
                corruption_typed: corrupt,
                torn_tail_sealed: torn,
                drain_round_trip: drain,
            }
        };
        let good = bench(true, true, true, true);
        let thresholds = recovery_thresholds(&good.cfg);
        assert_eq!(
            thresholds.gauges[MIN_CRASH_POINTS],
            recovery::matrix_size() as f64
        );
        assert!(check_recovery(&good, &thresholds).passed());
        // Each contract fails independently...
        assert!(!check_recovery(&bench(false, true, true, true), &thresholds).passed());
        assert!(!check_recovery(&bench(true, false, true, true), &thresholds).passed());
        assert!(!check_recovery(&bench(true, true, false, true), &thresholds).passed());
        assert!(!check_recovery(&bench(true, true, true, false), &thresholds).passed());
        // ...a diverged point is named in the failure line...
        let report = check_recovery(&bench(false, true, true, true), &thresholds);
        assert!(report.failures.iter().any(|f| f.contains("diverged")));
        // ...a too-small matrix fails...
        let mut narrow = bench(true, true, true, true);
        narrow.rows.truncate(2);
        narrow.identical_points = 2;
        assert!(!check_recovery(&narrow, &thresholds).passed());
        // ...and an empty thresholds file fails closed.
        let empty = check_recovery(&good, &Snapshot::default());
        assert!(!empty.passed());
        assert!(empty.failures.iter().all(|f| f.contains("missing gauge")));
    }

    #[test]
    fn thresholds_round_trip_through_snapshot_json() {
        let cfg = tiny_config();
        let m = measure_accuracy(&cfg);
        let thresholds = accuracy_thresholds(&m, &cfg);
        let parsed = Snapshot::from_json(&thresholds.to_json()).unwrap();
        assert_eq!(parsed, thresholds);
        assert_eq!(
            parsed.meta.get("gate").map(String::as_str),
            Some("accuracy")
        );
    }
}
