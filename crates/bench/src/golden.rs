//! Golden accuracy store: oracle-verified q-error / MRE envelopes per
//! (dataset, seed, estimator), committed under `tests/gates/` and enforced
//! in CI.
//!
//! Where the plain accuracy gate ([`crate::gates`]) watches two estimators
//! on one fixture, the golden store records an *envelope per corpus* for
//! all four estimators over the full dataset × seed matrix, with every
//! workload truth re-verified against the independent `tl-oracle` counter
//! before it is trusted — a drifting kernel can therefore never silently
//! re-baseline the gate. Regenerate with
//! `cargo run --release -p tl-bench --bin gate_golden -- --write-thresholds`
//! after an intentional accuracy change, and justify the diff in review.

use std::collections::BTreeMap;

use tl_datagen::{Dataset, GenConfig};
use tl_obs::Snapshot;
use tl_oracle::Oracle;
use tl_workload::{average_relative_error_pct, max_q_error, positive_workload};
use treelattice::{BuildConfig, EstimateOptions, Estimator, TreeLattice};

use crate::gates::GateReport;

/// Gauge name prefix: `gate.golden.<dataset>.s<seed>.<estimator>.max_qerror`
/// and `….mre_pct`.
pub const GOLDEN_PREFIX: &str = "gate.golden";

/// The deterministic corpus matrix the golden gate runs on. Changing any
/// field invalidates `tests/gates/golden_accuracy.json`.
#[derive(Clone, Debug)]
pub struct GoldenConfig {
    /// Generation/workload seeds — one golden envelope per seed.
    pub seeds: Vec<u64>,
    /// Target elements per generated document.
    pub scale: usize,
    /// Lattice order.
    pub k: usize,
    /// Workload twig sizes.
    pub sizes: Vec<usize>,
    /// Queries per (dataset, seed, size) cell.
    pub queries: usize,
}

impl Default for GoldenConfig {
    fn default() -> Self {
        Self {
            seeds: vec![1, 7, 42],
            scale: 3_000,
            k: 3,
            sizes: vec![4, 5],
            queries: 20,
        }
    }
}

impl GoldenConfig {
    /// This config restricted to a single seed (one CI matrix slot).
    pub fn with_seed(&self, seed: u64) -> Self {
        Self {
            seeds: vec![seed],
            ..self.clone()
        }
    }
}

/// One corpus cell's accuracy envelope.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Envelope {
    /// Largest q-error over the cell's workload (≥ 1).
    pub max_qerror: f64,
    /// Mean relative error, percent, under the paper's sanity bound.
    pub mre_pct: f64,
}

/// What the golden gate measured: envelopes keyed
/// `<dataset>.s<seed>.<estimator>`, plus the workload size behind them.
#[derive(Clone, Debug)]
pub struct GoldenMeasurement {
    /// Envelope per corpus cell.
    pub envelopes: BTreeMap<String, Envelope>,
    /// Total (query, estimator) evaluations.
    pub evaluations: usize,
}

/// Runs the golden measurement over `cfg`'s dataset × seed matrix.
///
/// # Panics
///
/// Panics when a workload truth disagrees with the oracle — the gate's
/// ground truth is not allowed to be wrong, so this is a hard stop rather
/// than a gate failure.
pub fn measure_golden(cfg: &GoldenConfig) -> GoldenMeasurement {
    let mut envelopes = BTreeMap::new();
    let mut evaluations = 0usize;
    for ds in Dataset::ALL {
        for &seed in &cfg.seeds {
            let doc = ds.generate(GenConfig {
                seed,
                target_elements: cfg.scale,
            });
            let lattice = TreeLattice::build(&doc, &BuildConfig::with_k(cfg.k));
            let oracle = Oracle::new(&doc);
            let mut twigs = Vec::new();
            let mut truths = Vec::new();
            for &size in &cfg.sizes {
                let w = positive_workload(&doc, size, cfg.queries, seed.wrapping_add(size as u64));
                for case in w.cases {
                    let oracle_count = oracle.count(&case.twig);
                    assert_eq!(
                        case.true_count,
                        oracle_count,
                        "workload truth disagrees with the oracle on {} seed {seed}: \
                         kernel {} vs oracle {oracle_count}",
                        ds.name(),
                        case.true_count,
                    );
                    truths.push(case.true_count);
                    twigs.push(case.twig);
                }
            }
            assert!(
                !twigs.is_empty(),
                "{} seed {seed}: empty workload",
                ds.name()
            );
            let opts = EstimateOptions::default();
            for est in Estimator::ALL {
                let estimates: Vec<f64> = twigs
                    .iter()
                    .map(|t| lattice.estimate_with(t, est, &opts))
                    .collect();
                evaluations += estimates.len();
                envelopes.insert(
                    cell_key(ds, seed, est),
                    Envelope {
                        max_qerror: max_q_error(&truths, &estimates),
                        mre_pct: average_relative_error_pct(&truths, &estimates),
                    },
                );
            }
        }
    }
    GoldenMeasurement {
        envelopes,
        evaluations,
    }
}

fn cell_key(ds: Dataset, seed: u64, est: Estimator) -> String {
    format!("{}.s{seed}.{}", ds.name(), est.name())
}

/// Renders a measurement as a committed-thresholds snapshot with headroom:
/// q-error ceilings at `1.25×` measured (floored at `+0.1`), MRE ceilings
/// at `1.15×` (floored at 1pp above) — tight enough to catch a real
/// regression, loose enough to survive float-order changes.
pub fn golden_thresholds(m: &GoldenMeasurement, cfg: &GoldenConfig) -> Snapshot {
    let mut snap = Snapshot::default();
    snap.meta.insert("gate".into(), "golden-accuracy".into());
    snap.meta.insert(
        "seeds".into(),
        cfg.seeds
            .iter()
            .map(u64::to_string)
            .collect::<Vec<_>>()
            .join(","),
    );
    snap.meta.insert("scale".into(), cfg.scale.to_string());
    snap.meta.insert("k".into(), cfg.k.to_string());
    snap.meta.insert(
        "sizes".into(),
        cfg.sizes
            .iter()
            .map(usize::to_string)
            .collect::<Vec<_>>()
            .join(","),
    );
    snap.meta
        .insert("queries_per_size".into(), cfg.queries.to_string());
    for (cell, env) in &m.envelopes {
        snap.gauges.insert(
            format!("{GOLDEN_PREFIX}.{cell}.max_qerror"),
            (env.max_qerror * 1.25).max(env.max_qerror + 0.1),
        );
        snap.gauges.insert(
            format!("{GOLDEN_PREFIX}.{cell}.mre_pct"),
            (env.mre_pct * 1.15).max(env.mre_pct + 1.0),
        );
    }
    snap
}

/// Compares a measurement against the committed thresholds. Fail-closed:
/// a measured cell whose gauges the snapshot lacks is a failure (the gate
/// must never silently check nothing). Cells in the snapshot but not in
/// the measurement are fine — a single-seed CI slot checks its subset.
pub fn check_golden(m: &GoldenMeasurement, thresholds: &Snapshot) -> GateReport {
    let mut report = GateReport::default();
    for (cell, env) in &m.envelopes {
        for (metric, value, fmt) in [
            ("max_qerror", env.max_qerror, "q-error"),
            ("mre_pct", env.mre_pct, "MRE%"),
        ] {
            let key = format!("{GOLDEN_PREFIX}.{cell}.{metric}");
            match thresholds.gauges.get(&key) {
                Some(&max) => report.check(
                    value <= max,
                    format!("{cell}: {fmt} {value:.3} (max {max:.3})"),
                ),
                None => report.check(false, format!("thresholds missing gauge `{key}`")),
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fake_measurement() -> GoldenMeasurement {
        let mut envelopes = BTreeMap::new();
        for ds in Dataset::ALL {
            for est in Estimator::ALL {
                envelopes.insert(
                    cell_key(ds, 42, est),
                    Envelope {
                        max_qerror: 2.0,
                        mre_pct: 15.0,
                    },
                );
            }
        }
        GoldenMeasurement {
            envelopes,
            evaluations: 160,
        }
    }

    #[test]
    fn thresholds_pass_their_own_measurement_and_round_trip() {
        let m = fake_measurement();
        let thresholds = golden_thresholds(&m, &GoldenConfig::default());
        let report = check_golden(&m, &thresholds);
        assert!(report.passed(), "{:?}", report.failures);
        // 4 datasets × 4 estimators × 2 metrics.
        assert_eq!(report.lines.len(), 32);
        let parsed = Snapshot::from_json(&thresholds.to_json()).unwrap();
        assert_eq!(parsed, thresholds);
    }

    #[test]
    fn regressions_and_missing_gauges_fail() {
        let m = fake_measurement();
        let mut thresholds = golden_thresholds(&m, &GoldenConfig::default());
        for v in thresholds.gauges.values_mut() {
            *v /= 100.0;
        }
        assert_eq!(check_golden(&m, &thresholds).failures.len(), 32);
        let report = check_golden(&m, &Snapshot::default());
        assert!(!report.passed());
        assert!(report.failures.iter().all(|f| f.contains("missing gauge")));
    }

    #[test]
    fn subset_measurement_checks_only_its_cells() {
        let full = fake_measurement();
        let thresholds = golden_thresholds(&full, &GoldenConfig::default());
        let mut subset = full.clone();
        subset
            .envelopes
            .retain(|cell, _| cell.starts_with("xmark."));
        let report = check_golden(&subset, &thresholds);
        assert!(report.passed());
        assert_eq!(report.lines.len(), 8, "4 estimators × 2 metrics");
    }
}
