//! # tl-bench — the experiment harness
//!
//! One runner per table and figure of the paper's evaluation (§5). Every
//! experiment is a library function returning structured rows, wrapped by a
//! thin binary (`src/bin/<experiment>.rs`) that prints an aligned table and
//! writes a CSV under `results/`. `cargo run --release -p tl-bench --bin
//! all_experiments` reproduces the full evaluation.
//!
//! | Runner | Paper artifact |
//! |--------|----------------|
//! | `table1_datasets` | Table 1 — dataset characteristics |
//! | `table2_patterns` | Table 2 — subtree patterns per level |
//! | `table3_construction` | Table 3 — construction time & memory |
//! | `fig7_accuracy` | Fig. 7(a–d) — error vs query size |
//! | `fig8_error_cdf` | Fig. 8(a–d) — error distribution |
//! | `fig9_response_time` | Fig. 9(a–d) — response time |
//! | `fig10a_pruning_savings` | Fig. 10(a) — 0-derivable pruning |
//! | `fig10b_pruning_accuracy` | Fig. 10(b) — pruned 5-lattice accuracy |
//! | `fig10c_delta_size` | Fig. 10(c) — size vs δ |
//! | `fig10d_delta_accuracy` | Fig. 10(d) — error vs δ |
//! | `fig11_example` | Fig. 11 — worked synopsis-vs-lattice example |
//! | `negative_workload` | §5.1 — zero-selectivity query accuracy |

pub mod config;
pub mod data;
pub mod experiments;
pub mod gate_runner;
pub mod gates;
pub mod golden;
pub mod report;

pub use config::ExpConfig;
pub use report::{write_csv, Table};

/// The workspace root, resolved from this crate's manifest directory
/// (`crates/bench` → two levels up). In-tree artifacts (`BENCH_*.json`,
/// `tests/gates/*.json`) live there.
pub fn workspace_root() -> std::path::PathBuf {
    if let Ok(manifest) = std::env::var("CARGO_MANIFEST_DIR") {
        if let Some(ws) = std::path::Path::new(&manifest).ancestors().nth(2) {
            return ws.to_path_buf();
        }
    }
    std::path::PathBuf::from(".")
}
