//! Aligned-table printing and CSV output for experiment results.

use std::fmt::Write as _;
use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};

/// A simple column-aligned text table.
#[derive(Clone, Debug)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with a title and column headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Self {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row; the cell count must match the headers.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(cells);
    }

    /// The accumulated rows.
    pub fn rows(&self) -> &[Vec<String>] {
        &self.rows
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "== {} ==", self.title);
        let line = |cells: &[String], widths: &[usize], out: &mut String| {
            for (i, cell) in cells.iter().enumerate() {
                let pad = widths[i] - cell.len();
                let _ = write!(out, "{}{}  ", cell, " ".repeat(pad));
            }
            let _ = writeln!(out);
        };
        line(&self.headers, &widths, &mut out);
        let total: usize = widths.iter().sum::<usize>() + widths.len() * 2;
        let _ = writeln!(out, "{}", "-".repeat(total));
        for row in &self.rows {
            line(row, &widths, &mut out);
        }
        out
    }

    /// Prints the rendered table to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
        println!();
    }

    /// Writes the table as CSV to `results/<name>.csv` (relative to the
    /// workspace root when run via cargo, else the current directory).
    pub fn write_csv(&self, name: &str) -> std::io::Result<PathBuf> {
        let dir = results_dir();
        fs::create_dir_all(&dir)?;
        let path = dir.join(format!("{name}.csv"));
        let mut f = fs::File::create(&path)?;
        writeln!(f, "{}", csv_line(&self.headers))?;
        for row in &self.rows {
            writeln!(f, "{}", csv_line(row))?;
        }
        Ok(path)
    }
}

/// Writes arbitrary rows as CSV under `results/`.
pub fn write_csv(name: &str, headers: &[&str], rows: &[Vec<String>]) -> std::io::Result<PathBuf> {
    let mut t = Table::new(name, headers);
    for r in rows {
        t.row(r.clone());
    }
    t.write_csv(name)
}

/// The output directory: `$CARGO_WORKSPACE_DIR/results` if detectable,
/// else `./results`.
fn results_dir() -> PathBuf {
    // CARGO_MANIFEST_DIR points at crates/bench when run through cargo.
    if let Ok(manifest) = std::env::var("CARGO_MANIFEST_DIR") {
        let p = Path::new(&manifest);
        if let Some(ws) = p.ancestors().nth(2) {
            return ws.join("results");
        }
    }
    PathBuf::from("results")
}

/// Escapes one CSV record.
fn csv_line(cells: &[String]) -> String {
    cells
        .iter()
        .map(|c| {
            if c.contains([',', '"', '\n']) {
                format!("\"{}\"", c.replace('"', "\"\""))
            } else {
                c.clone()
            }
        })
        .collect::<Vec<_>>()
        .join(",")
}

/// Formats a float with sensible precision for tables.
pub fn fmt_f(x: f64) -> String {
    if x == 0.0 {
        "0".to_owned()
    } else if x.abs() >= 1000.0 {
        format!("{x:.0}")
    } else if x.abs() >= 10.0 {
        format!("{x:.1}")
    } else {
        format!("{x:.3}")
    }
}

/// Formats a duration in adaptive units.
pub fn fmt_duration(d: std::time::Duration) -> String {
    let s = d.as_secs_f64();
    if s >= 1.0 {
        format!("{s:.2}s")
    } else if s >= 1e-3 {
        format!("{:.2}ms", s * 1e3)
    } else {
        format!("{:.1}us", s * 1e6)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new("demo", &["name", "value"]);
        t.row(vec!["x".into(), "1".into()]);
        t.row(vec!["longer".into(), "22".into()]);
        let s = t.render();
        assert!(s.contains("== demo =="));
        assert!(s.contains("longer"));
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 5);
    }

    #[test]
    #[should_panic(expected = "row arity mismatch")]
    fn arity_checked() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.row(vec!["only-one".into()]);
    }

    #[test]
    fn csv_escaping() {
        assert_eq!(csv_line(&["plain".into()]), "plain");
        assert_eq!(csv_line(&["a,b".into()]), "\"a,b\"");
        assert_eq!(csv_line(&["say \"hi\"".into()]), "\"say \"\"hi\"\"\"");
    }

    #[test]
    fn float_formatting() {
        assert_eq!(fmt_f(0.0), "0");
        assert_eq!(fmt_f(1.23456), "1.235");
        assert_eq!(fmt_f(42.5), "42.5");
        assert_eq!(fmt_f(12345.6), "12346");
    }

    #[test]
    fn duration_formatting() {
        use std::time::Duration;
        assert_eq!(fmt_duration(Duration::from_secs(2)), "2.00s");
        assert_eq!(fmt_duration(Duration::from_millis(5)), "5.00ms");
        assert_eq!(fmt_duration(Duration::from_micros(7)), "7.0us");
    }

    #[test]
    fn csv_written_to_results() {
        let mut t = Table::new("unit-test", &["a"]);
        t.row(vec!["1".into()]);
        let path = t.write_csv("unit_test_tmp").unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        assert_eq!(content, "a\n1\n");
        let _ = std::fs::remove_file(path);
    }
}
