//! # tl-cli — the `treelattice` command-line tool
//!
//! A thin, dependency-free front end over the workspace:
//!
//! ```text
//! treelattice build <input.xml> -o <summary.tlat> [--k N] [--delta D] [--threads N] [--values MODE]
//! treelattice estimate <summary.tlat> <query> [--estimator recursive|voting|fixed] [--values MODE] [--engine-cache] [--threads N]
//! treelattice workload <summary.tlat> <queries.txt> [--estimator ...] [--values MODE] [--engine-cache] [--threads N]
//! treelattice explain <summary.tlat> <query>
//! treelattice truth <input.xml> <query> [--values MODE]
//! treelattice inspect <summary.tlat>
//! treelattice prune <summary.tlat> -o <out.tlat> --delta D
//! treelattice gen <nasa|imdb|psd|xmark> -o <out.xml> [--scale N] [--seed N] [--values MODE]
//! treelattice metrics report <metrics.json>
//! ```
//!
//! `workload` estimates one query per line of `<queries.txt>` (blank lines
//! and `#` comments skipped). `--engine-cache` routes estimation through
//! the shared cross-query sub-twig cache ([`treelattice::EstimationEngine`])
//! and reports its hit rate; `--threads` sets the batch worker count
//! (0 = available parallelism).
//!
//! `MODE` is `ignore` (default), `exact`, or `bucket:<N>`; pass the same
//! mode to `build`, `estimate`, and `truth` so value predicates
//! (`item[incategory="category3"]`) resolve to the labels the summary was
//! built with.
//!
//! Every command accepts a global `--metrics <path>` flag that records the
//! invocation in a [`tl_obs::MetricsRecorder`] and writes a `tl-metrics/1`
//! JSON snapshot to `<path>` on success; `metrics report` renders such a
//! snapshot as a table. `estimate` also accepts an `.xml` file in place of
//! a summary: it builds a throwaway in-memory lattice (`--k`, default 4)
//! and reports the exact match count alongside the estimate, so one
//! invocation exercises — and with `--metrics`, measures — the whole
//! pipeline.
//!
//! ## Resource budgets and fault injection
//!
//! `build`, `estimate`, and `workload` take resource-budget flags:
//! `--budget-ms <N>` (wall-clock deadline), `--budget-mem <BYTES>`
//! (memoization/lattice memory cap), and `--budget-k <N>` (decomposition
//! order cap). Under a budget the estimator *degrades* instead of failing
//! — it falls back to a smaller fix-sized order, then to a first-order
//! Markov model — and a degraded run still exits `0`, with a note on
//! stderr naming the rung taken. The global `--chaos <spec>` /
//! `--chaos-seed <N>` flags (or `TL_CHAOS` / `TL_CHAOS_SEED` in the
//! environment) activate the deterministic fail-point harness in
//! [`tl_fault::failpoints`] for the invocation.
//!
//! Exit codes: `0` success (including degraded estimates), `2` usage
//! error, `3` fault (missing/corrupt input, parse failure, injected or
//! real pipeline fault).
//!
//! All command logic lives in [`run`], which writes stdout and stderr text
//! to injected sinks so the test suite can drive the full tool without
//! spawning processes.

use std::fmt::Write as _;
use std::path::Path;
use std::sync::Arc;
use std::time::Duration;

use tl_datagen::{Dataset, GenConfig};
use tl_fault::failpoints;
use tl_twig::parse_twig;
use tl_xml::{parse_document_observed, DocIndex, ParseOptions, ValueMode};
use treelattice::{
    exit_code, Budget, BuildConfig, Catalog as _, CorpusConfig, EngineConfig, EstimateOptions,
    EstimationEngine, Estimator, Fault, MmapCatalog, Outcome, ResilientEstimate, TreeLattice,
};

/// A CLI failure: message plus suggested exit code.
#[derive(Debug)]
pub struct CliError {
    /// Human-readable message.
    pub message: String,
    /// Process exit code (2 = usage, 3 = fault).
    pub code: i32,
}

impl CliError {
    fn usage(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
            code: exit_code(Outcome::UsageError),
        }
    }

    /// A pipeline fault: missing or corrupt input, a parse failure, or an
    /// injected/real fault surfaced by the estimation stack. Exit code 3,
    /// distinct from usage errors (2) and degraded-but-successful runs (0).
    /// The numbers come from the one shared table in
    /// [`tl_fault::exit_code`], which the server's request-level status
    /// codes use too.
    fn fault(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
            code: exit_code(Outcome::Fault),
        }
    }
}

impl From<Fault> for CliError {
    fn from(fault: Fault) -> Self {
        CliError::fault(fault.to_string())
    }
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for CliError {}

/// The tool's usage text.
pub const USAGE: &str = "\
treelattice — twig selectivity estimation over XML documents

USAGE:
  treelattice build <input.xml> -o <summary.tlat> [--k N] [--delta D] [--threads N] [--values MODE]
  treelattice mine <corpus-dir> -o <summary.tlat> [--k N] [--shards N] [--threads N] [--delta D] [--values MODE]
  treelattice summary merge <a.tlat> <b.tlat> [more.tlat ...] -o <out.tlat> [--delta D]
  treelattice summary recover <wal-dir> -o <out.tlat> [--base <base.tlat>] [--online-budget N]
  treelattice summary snapshot <wal-dir> [--base <base.tlat>] [--online-budget N]
  treelattice estimate <summary.tlat|input.xml> <query> [--estimator recursive|voting|fixed] [--values MODE] [--engine-cache] [--mmap] [--threads N] [--k N]
  treelattice workload <summary.tlat> <queries.txt> [--estimator recursive|voting|fixed] [--values MODE] [--engine-cache] [--threads N]
  treelattice explain <summary.tlat> <query>
  treelattice truth <input.xml> <query> [--values MODE]
  treelattice inspect <summary.tlat>
  treelattice prune <summary.tlat> -o <out.tlat> --delta D
  treelattice gen <nasa|imdb|psd|xmark> -o <out.xml> [--scale N] [--seed N] [--values MODE]
  treelattice metrics report <metrics.json>

Queries use the twig syntax: a/b/c, //laptop[brand][price], a[b[d]][c/e];
with --values, equality predicates like item[incategory=\"category3\"].
MODE is ignore (default), exact, or bucket:<N>.
`workload` reads one query per line; --engine-cache shares sub-twig
estimates across the whole batch and reports the cache hit rate.
Any command also takes --metrics <path>: on success a tl-metrics/1 JSON
snapshot (parse/index/mine/match/cache/latency metrics) is written there;
render one with `metrics report`. Passing an .xml file to `estimate`
builds a throwaway in-memory lattice (--k, default 4) and reports the
exact match count alongside the estimate.
build/estimate/workload take resource budgets: --budget-ms N (deadline),
--budget-mem BYTES (memory cap), --budget-k N (decomposition order cap).
Budgeted estimates degrade (smaller fix-sized order, then a first-order
Markov model) instead of failing, exit 0, and note the rung on stderr.
The global --chaos <spec> / --chaos-seed <N> flags (or TL_CHAOS /
TL_CHAOS_SEED) activate the deterministic fail-point harness.
`mine` builds one merged summary over every .xml file in a directory
(lexicographic order), sharding documents across --shards workers
(0 = all cores); results are bit-identical for every shard count.
`summary merge` folds existing summaries into one: counts add, label
universes union. With --delta, pruning runs once after the final merge
(delta-pruning does not commute with merging). `summary recover` runs
tl-server's startup recovery offline over a --wal-dir durability
directory (newest valid snapshot + write-ahead-log tail; a torn final
record is a clean end-of-log, mid-log corruption exits 3) and writes the
recovered state as a plain summary; `summary snapshot` additionally
publishes an atomic snapshot there and truncates the WAL.
`estimate --mmap` serves
pattern lookups zero-copy from the on-disk frame through a
checksum-validated memory map instead of loading the summary.
Exit codes: 0 = success or degraded, 2 = usage error, 3 = fault.
Catalog-open faults exit 3 like any other fault: a missing file, a
truncated frame, or a checksum mismatch (CorruptSummary) — whether from
`estimate`, `estimate --mmap`, `summary merge`, or `inspect`.
";

/// Per-invocation observability: holds a live [`tl_obs::MetricsRecorder`]
/// when `--metrics <path>` was given, and the no-op recorder otherwise.
struct Obs {
    recorder: Option<Arc<tl_obs::MetricsRecorder>>,
    path: Option<String>,
}

impl Obs {
    /// The recorder to thread through `*_observed` APIs.
    fn rec(&self) -> &dyn tl_obs::Recorder {
        match &self.recorder {
            Some(r) => r.as_ref(),
            None => &tl_obs::NOOP,
        }
    }

    /// A shared handle for the estimation engine's worker threads.
    fn shared(&self) -> Arc<dyn tl_obs::Recorder> {
        match &self.recorder {
            Some(r) => r.clone(),
            None => Arc::new(tl_obs::Noop),
        }
    }

    /// Writes the snapshot to the requested path, if any.
    fn write(&self) -> Result<(), CliError> {
        if let (Some(rec), Some(path)) = (&self.recorder, &self.path) {
            write_file(path, rec.snapshot().to_json().as_bytes())?;
        }
        Ok(())
    }
}

/// The global flags shared by every command: `--metrics <path>`,
/// `--chaos <spec>`, and `--chaos-seed <N>`.
struct Globals {
    obs: Obs,
    chaos_spec: Option<String>,
    chaos_seed: u64,
}

/// Extracts the global flags from anywhere in the argument list, returning
/// the remaining arguments and the global context.
fn strip_globals(args: &[String]) -> Result<(Vec<String>, Globals), CliError> {
    let mut rest = Vec::with_capacity(args.len());
    let mut path = None;
    let mut chaos_spec = None;
    let mut chaos_seed = 0u64;
    let mut i = 0;
    let take_value = |args: &[String], i: usize, name: &str| -> Result<String, CliError> {
        args.get(i + 1)
            .cloned()
            .ok_or_else(|| CliError::usage(format!("{name} needs a value")))
    };
    while i < args.len() {
        match args[i].as_str() {
            "--metrics" => {
                path = Some(take_value(args, i, "--metrics")?);
                i += 2;
            }
            "--chaos" => {
                chaos_spec = Some(take_value(args, i, "--chaos")?);
                i += 2;
            }
            "--chaos-seed" => {
                chaos_seed = take_value(args, i, "--chaos-seed")?
                    .parse()
                    .map_err(|e| CliError::usage(format!("--chaos-seed: {e}")))?;
                i += 2;
            }
            _ => {
                rest.push(args[i].clone());
                i += 1;
            }
        }
    }
    let recorder = path
        .as_ref()
        .map(|_| Arc::new(tl_obs::MetricsRecorder::with_schema()));
    Ok((
        rest,
        Globals {
            obs: Obs { recorder, path },
            chaos_spec,
            chaos_seed,
        },
    ))
}

/// Deactivates the fail-point harness when the invocation ends, even if a
/// command errors out mid-way.
struct ChaosGuard {
    active: bool,
}

impl Drop for ChaosGuard {
    fn drop(&mut self) {
        if self.active {
            failpoints::deactivate();
        }
    }
}

/// Activates the fail-point harness for this invocation from `--chaos` /
/// `--chaos-seed`, falling back to the `TL_CHAOS` / `TL_CHAOS_SEED`
/// environment variables when the flags are absent.
fn activate_chaos(globals: &Globals) -> Result<ChaosGuard, CliError> {
    match &globals.chaos_spec {
        Some(spec) => {
            failpoints::activate(spec, globals.chaos_seed)
                .map_err(|e| CliError::usage(format!("--chaos: {e}")))?;
            Ok(ChaosGuard { active: true })
        }
        None => {
            let active = failpoints::activate_from_env()
                .map_err(|e| CliError::usage(format!("TL_CHAOS: {e}")))?;
            Ok(ChaosGuard { active })
        }
    }
}

/// Runs one invocation; `args` excludes the program name. Normal output
/// goes to `out`; advisory notes (degradation provenance, early-stop
/// notices) go to `err`, which the binary prints to stderr. A run that
/// only degraded — never failed — returns `Ok` with a note in `err`.
pub fn run(args: &[String], out: &mut String, err: &mut String) -> Result<(), CliError> {
    let (args, globals) = strip_globals(args)?;
    let chaos = activate_chaos(&globals)?;
    let injected_before = failpoints::injected_total();
    let obs = &globals.obs;
    let Some(command) = args.first() else {
        return Err(CliError::usage(USAGE));
    };
    if let Some(rec) = &obs.recorder {
        rec.set_meta("command", command.as_str());
    }
    let rest = &args[1..];
    let result = match command.as_str() {
        "build" => cmd_build(rest, out, err, obs),
        "mine" => cmd_mine(rest, out, obs),
        "summary" => cmd_summary(rest, out),
        "estimate" => cmd_estimate(rest, out, err, obs),
        "workload" => cmd_workload(rest, out, err, obs),
        "explain" => cmd_explain(rest, out),
        "truth" => cmd_truth(rest, out, obs),
        "inspect" => cmd_inspect(rest, out),
        "prune" => cmd_prune(rest, out),
        "gen" => cmd_gen(rest, out, obs),
        "metrics" => cmd_metrics(rest, out),
        "help" | "--help" | "-h" => {
            out.push_str(USAGE);
            Ok(())
        }
        other => Err(CliError::usage(format!(
            "unknown command `{other}`\n\n{USAGE}"
        ))),
    };
    if chaos.active {
        let injected = failpoints::injected_total().saturating_sub(injected_before);
        obs.rec().add(tl_obs::names::FAULT_INJECTED, injected);
    }
    result?;
    obs.write()
}

/// Consumes the `--budget-ms` / `--budget-mem` / `--budget-k` flags,
/// returning the assembled [`Budget`] and whether any limit was set.
fn parse_budget(args: &mut Args<'_>) -> Result<(Budget, bool), CliError> {
    let ms: Option<u64> = args.numeric("--budget-ms")?;
    let mem: Option<u64> = args.numeric("--budget-mem")?;
    let max_k: Option<usize> = args.numeric("--budget-k")?;
    let mut budget = Budget::unlimited();
    if let Some(ms) = ms {
        budget = budget.with_time_limit(Duration::from_millis(ms));
    }
    if let Some(bytes) = mem {
        budget = budget.with_max_mem_bytes(bytes);
    }
    if let Some(k) = max_k {
        if k < 2 {
            return Err(CliError::usage("--budget-k must be at least 2"));
        }
        budget = budget.with_max_k(k);
    }
    Ok((budget, ms.is_some() || mem.is_some() || max_k.is_some()))
}

/// Appends the stderr note for a degraded estimate.
fn note_degraded(err: &mut String, what: &str, est: &ResilientEstimate) {
    if est.degradation.is_degraded() {
        let _ = write!(err, "note: {what} degraded to {}", est.degradation);
        match &est.cause {
            Some(cause) => {
                let _ = writeln!(err, " ({cause})");
            }
            None => err.push('\n'),
        }
    }
}

/// Minimal flag cursor: positionals in order, flags anywhere.
struct Args<'a> {
    items: &'a [String],
    used: Vec<bool>,
}

impl<'a> Args<'a> {
    fn new(items: &'a [String]) -> Self {
        Self {
            items,
            used: vec![false; items.len()],
        }
    }

    /// Consumes a boolean flag, returning whether it was present.
    fn flag(&mut self, name: &str) -> bool {
        for i in 0..self.items.len() {
            if !self.used[i] && self.items[i] == name {
                self.used[i] = true;
                return true;
            }
        }
        false
    }

    fn flag_value(&mut self, name: &str) -> Result<Option<&'a str>, CliError> {
        for i in 0..self.items.len() {
            if !self.used[i] && self.items[i] == name {
                self.used[i] = true;
                let v = self
                    .items
                    .get(i + 1)
                    .ok_or_else(|| CliError::usage(format!("{name} needs a value")))?;
                self.used[i + 1] = true;
                return Ok(Some(v));
            }
        }
        Ok(None)
    }

    fn numeric<T: std::str::FromStr>(&mut self, name: &str) -> Result<Option<T>, CliError>
    where
        T::Err: std::fmt::Display,
    {
        match self.flag_value(name)? {
            None => Ok(None),
            Some(v) => v
                .parse::<T>()
                .map(Some)
                .map_err(|e| CliError::usage(format!("{name}: {e}"))),
        }
    }

    fn positional(&mut self, what: &str) -> Result<&'a str, CliError> {
        for i in 0..self.items.len() {
            if !self.used[i] && !self.items[i].starts_with("--") && self.items[i] != "-o" {
                self.used[i] = true;
                return Ok(&self.items[i]);
            }
        }
        Err(CliError::usage(format!("missing <{what}>")))
    }

    fn finish(self) -> Result<(), CliError> {
        for (i, used) in self.used.iter().enumerate() {
            if !used {
                return Err(CliError::usage(format!(
                    "unexpected argument `{}`",
                    self.items[i]
                )));
            }
        }
        Ok(())
    }
}

fn read_file(path: &str) -> Result<Vec<u8>, CliError> {
    std::fs::read(path).map_err(|e| CliError::fault(format!("{path}: {e}")))
}

fn write_file(path: &str, bytes: &[u8]) -> Result<(), CliError> {
    if let Some(parent) = Path::new(path).parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent).map_err(|e| CliError::fault(format!("{path}: {e}")))?;
        }
    }
    std::fs::write(path, bytes).map_err(|e| CliError::fault(format!("{path}: {e}")))
}

fn load_document_with(
    path: &str,
    values: ValueMode,
    rec: &dyn tl_obs::Recorder,
) -> Result<tl_xml::Document, CliError> {
    let bytes = read_file(path)?;
    parse_document_observed(
        &bytes,
        ParseOptions {
            values,
            ..Default::default()
        },
        rec,
    )
    .map_err(|e| CliError::fault(format!("{path}: XML parse error at {e}")))
}

fn load_summary(path: &str) -> Result<TreeLattice, CliError> {
    let bytes = read_file(path)?;
    TreeLattice::from_bytes(&bytes).map_err(|e| CliError::fault(format!("{path}: {e}")))
}

fn parse_value_mode(name: Option<&str>) -> Result<ValueMode, CliError> {
    match name.unwrap_or("ignore") {
        "ignore" => Ok(ValueMode::Ignore),
        "exact" => Ok(ValueMode::AsLabels),
        other => {
            if let Some(n) = other.strip_prefix("bucket:") {
                let buckets: u32 = n
                    .parse()
                    .map_err(|e| CliError::usage(format!("--values bucket: {e}")))?;
                Ok(ValueMode::Bucketed(buckets))
            } else {
                Err(CliError::usage(format!(
                    "unknown value mode `{other}` (expected ignore|exact|bucket:<N>)"
                )))
            }
        }
    }
}

fn parse_estimator(name: Option<&str>) -> Result<Estimator, CliError> {
    match name.unwrap_or("voting") {
        "recursive" | "rec" => Ok(Estimator::Recursive),
        "voting" | "vote" => Ok(Estimator::RecursiveVoting),
        "fixed" | "fix" | "fix-sized" => Ok(Estimator::FixSized),
        other => Err(CliError::usage(format!(
            "unknown estimator `{other}` (expected recursive|voting|fixed)"
        ))),
    }
}

fn cmd_build(
    rest: &[String],
    out: &mut String,
    err: &mut String,
    obs: &Obs,
) -> Result<(), CliError> {
    let mut args = Args::new(rest);
    let output = args
        .flag_value("-o")?
        .ok_or_else(|| CliError::usage("build needs -o <summary.tlat>"))?
        .to_owned();
    let k: usize = args.numeric("--k")?.unwrap_or(4);
    let delta: Option<f64> = args.numeric("--delta")?;
    let threads: usize = args.numeric("--threads")?.unwrap_or(0);
    let values = {
        let raw = args.flag_value("--values")?.map(str::to_owned);
        parse_value_mode(raw.as_deref())?
    };
    let (budget, _) = parse_budget(&mut args)?;
    let input = args.positional("input.xml")?.to_owned();
    args.finish()?;
    if k < 2 {
        return Err(CliError::usage("--k must be at least 2"));
    }

    let doc = load_document_with(&input, values, obs.rec())?;
    let start = std::time::Instant::now();
    let index = DocIndex::new_observed(&doc, obs.rec());
    let (lattice, stopped_early) = TreeLattice::build_with_report(
        &doc,
        &index,
        &BuildConfig {
            k,
            threads,
            prune_delta: delta,
            budget,
        },
        obs.rec(),
    );
    if let Some(fault) = stopped_early {
        // The lower-order lattice is still exact and usable; the budget
        // trip is advisory, not fatal.
        obs.rec().add(tl_obs::names::FAULT_TOTAL, 1);
        let _ = writeln!(
            err,
            "note: mining stopped early at order {} ({fault})",
            lattice.k()
        );
    }
    let elapsed = start.elapsed();
    write_file(&output, &lattice.to_bytes())?;
    let _ = writeln!(
        out,
        "built {}-lattice over {} elements in {:.2?}: {} patterns, {} bytes -> {output}",
        lattice.k(),
        doc.len(),
        elapsed,
        lattice.summary().len(),
        lattice.summary_bytes(),
    );
    Ok(())
}

/// `mine <corpus-dir>`: builds one merged summary over every `.xml` file
/// in a directory, sharding documents across workers (the merge-monoid
/// path — bit-identical to mining the concatenated corpus sequentially).
fn cmd_mine(rest: &[String], out: &mut String, obs: &Obs) -> Result<(), CliError> {
    let mut args = Args::new(rest);
    let output = args
        .flag_value("-o")?
        .ok_or_else(|| CliError::usage("mine needs -o <summary.tlat>"))?
        .to_owned();
    let k: usize = args.numeric("--k")?.unwrap_or(4);
    let shards: usize = args.numeric("--shards")?.unwrap_or(0);
    let threads: usize = args.numeric("--threads")?.unwrap_or(1);
    let delta: Option<f64> = args.numeric("--delta")?;
    let values = {
        let raw = args.flag_value("--values")?.map(str::to_owned);
        parse_value_mode(raw.as_deref())?
    };
    let input = args.positional("corpus-dir")?.to_owned();
    args.finish()?;
    if k < 2 {
        return Err(CliError::usage("--k must be at least 2"));
    }
    if let Some(d) = delta {
        if !(0.0..=1.0).contains(&d) {
            return Err(CliError::usage("--delta must be in [0, 1]"));
        }
    }

    let entries =
        std::fs::read_dir(&input).map_err(|e| CliError::fault(format!("{input}: {e}")))?;
    let mut files: Vec<std::path::PathBuf> = entries
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|ext| ext == "xml"))
        .collect();
    // Lexicographic order keeps the corpus — and hence the merged summary
    // bytes — independent of directory-enumeration order.
    files.sort();
    if files.is_empty() {
        return Err(CliError::fault(format!("{input}: no .xml files")));
    }
    let docs: Vec<tl_xml::Document> = files
        .iter()
        .map(|p| load_document_with(&p.to_string_lossy(), values, obs.rec()))
        .collect::<Result<_, _>>()?;

    let start = std::time::Instant::now();
    let lattice = TreeLattice::build_corpus_observed(
        &docs,
        CorpusConfig {
            max_size: k,
            shards,
            threads,
        },
        delta,
        obs.rec(),
    );
    let elapsed = start.elapsed();
    write_file(&output, &lattice.to_bytes())?;
    let elements: usize = docs.iter().map(tl_xml::Document::len).sum();
    let _ = writeln!(
        out,
        "mined {} documents ({} elements) into a {}-lattice in {:.2?}: {} patterns, {} bytes -> {output}",
        docs.len(),
        elements,
        lattice.k(),
        elapsed,
        lattice.summary().len(),
        lattice.summary_bytes(),
    );
    Ok(())
}

/// `summary merge`: folds stored summaries into one over the union of
/// their label universes, with counts added and δ-pruning (if requested)
/// applied once after the final merge.
fn cmd_summary(rest: &[String], out: &mut String) -> Result<(), CliError> {
    let mut args = Args::new(rest);
    let action = args.positional("merge")?.to_owned();
    match action.as_str() {
        "merge" => {}
        "recover" => return cmd_summary_recover(args, out),
        "snapshot" => return cmd_summary_snapshot(args, out),
        other => {
            return Err(CliError::usage(format!(
                "unknown summary action `{other}` (expected merge|recover|snapshot)"
            )))
        }
    }
    let output = args
        .flag_value("-o")?
        .ok_or_else(|| CliError::usage("summary merge needs -o <out.tlat>"))?
        .to_owned();
    let delta: Option<f64> = args.numeric("--delta")?;
    let mut inputs = Vec::new();
    while let Ok(path) = args.positional("summary.tlat") {
        inputs.push(path.to_owned());
    }
    args.finish()?;
    if inputs.len() < 2 {
        return Err(CliError::usage(
            "summary merge needs at least two input summaries",
        ));
    }
    if let Some(d) = delta {
        if !(0.0..=1.0).contains(&d) {
            return Err(CliError::usage("--delta must be in [0, 1]"));
        }
    }

    let mut merged = load_summary(&inputs[0])?;
    for path in &inputs[1..] {
        let other = load_summary(path)?;
        merged.merge(&other);
    }
    if let Some(d) = delta {
        merged.prune(d);
    }
    write_file(&output, &merged.to_bytes())?;
    let _ = writeln!(
        out,
        "merged {} summaries: k = {}, {} labels, {} patterns, {} bytes -> {output}",
        inputs.len(),
        merged.k(),
        merged.labels().len(),
        merged.summary().len(),
        merged.summary_bytes(),
    );
    Ok(())
}

/// `summary recover <wal-dir> --base <base.tlat> -o <out.tlat>`: offline
/// recovery — newest valid snapshot plus WAL-tail replay — materialized
/// as a plain summary frame. The durability directory is not modified.
fn cmd_summary_recover(mut args: Args<'_>, out: &mut String) -> Result<(), CliError> {
    let wal_dir = args.positional("wal-dir")?.to_owned();
    let base = args.flag_value("--base")?.map(str::to_owned);
    let output = args
        .flag_value("-o")?
        .ok_or_else(|| CliError::usage("summary recover needs -o <out.tlat>"))?
        .to_owned();
    let online_budget: Option<usize> = args.numeric("--online-budget")?;
    args.finish()?;

    let base_lattice = base.as_deref().map(load_summary).transpose()?;
    let opts = treelattice::DurableOptions {
        online_budget: online_budget.unwrap_or(1 << 20),
        ..treelattice::DurableOptions::default()
    };
    let recovered = treelattice::recover(
        std::path::Path::new(&wal_dir),
        base_lattice.as_ref(),
        &opts,
        &tl_obs::NOOP,
    )?;
    write_file(&output, &recovered.tuned.lattice().to_bytes())?;
    let _ = writeln!(out, "{} -> {output}", recovered.report);
    Ok(())
}

/// `summary snapshot <wal-dir> --base <base.tlat>`: recover, then force
/// an atomic snapshot into the durability directory and truncate the
/// WAL — the operator-driven compaction path.
fn cmd_summary_snapshot(mut args: Args<'_>, out: &mut String) -> Result<(), CliError> {
    let wal_dir = args.positional("wal-dir")?.to_owned();
    let base = args.flag_value("--base")?.map(str::to_owned);
    let online_budget: Option<usize> = args.numeric("--online-budget")?;
    args.finish()?;

    let base_lattice = base.as_deref().map(load_summary).transpose()?;
    let opts = treelattice::DurableOptions {
        online_budget: online_budget.unwrap_or(1 << 20),
        ..treelattice::DurableOptions::default()
    };
    let (mut durable, report) = treelattice::DurableLattice::open(
        std::path::Path::new(&wal_dir),
        base_lattice.as_ref(),
        &opts,
        &tl_obs::NOOP,
    )?;
    let _ = writeln!(out, "{report}");
    let seq = durable.snapshot(&tl_obs::NOOP)?;
    let _ = writeln!(out, "snapshot published at seq {seq}, wal truncated");
    Ok(())
}

fn cmd_estimate(
    rest: &[String],
    out: &mut String,
    err: &mut String,
    obs: &Obs,
) -> Result<(), CliError> {
    let mut args = Args::new(rest);
    let estimator = {
        let value = args.flag_value("--estimator")?.map(str::to_owned);
        parse_estimator(value.as_deref())?
    };
    let values = {
        let raw = args.flag_value("--values")?.map(str::to_owned);
        parse_value_mode(raw.as_deref())?
    };
    let engine_cache = args.flag("--engine-cache");
    let use_mmap = args.flag("--mmap");
    let threads: usize = args.numeric("--threads")?.unwrap_or(0);
    let k: usize = args.numeric("--k")?.unwrap_or(4);
    let (budget, budgeted) = parse_budget(&mut args)?;
    let summary_path = args.positional("summary.tlat|input.xml")?.to_owned();
    let query = args.positional("query")?.to_owned();
    args.finish()?;
    if k < 2 {
        return Err(CliError::usage("--k must be at least 2"));
    }

    // Zero-copy mode: validate the frame once, then serve every pattern
    // lookup straight from the mapped bytes — nothing is deserialized.
    if use_mmap {
        if summary_path.ends_with(".xml") {
            return Err(CliError::usage("--mmap needs a stored <summary.tlat>"));
        }
        if budgeted {
            return Err(CliError::usage(
                "--mmap does not combine with --budget-* (the degradation ladder is in-memory only)",
            ));
        }
        let catalog = MmapCatalog::open_observed(Path::new(&summary_path), obs.rec())
            .map_err(|e| CliError::fault(format!("{summary_path}: {e}")))?;
        let twig = parse_query_in(catalog.labels(), &query, values)?;
        let opts = EstimateOptions::default();
        let est = if engine_cache {
            let engine = EstimationEngine::with_recorder(
                EngineConfig {
                    threads,
                    ..EngineConfig::default()
                },
                obs.shared(),
            );
            engine.estimate_catalog(&catalog, &twig, estimator, &opts)
        } else {
            treelattice::estimate_catalog(&catalog, &twig, estimator, &opts)
        };
        catalog.flush_lookups(obs.rec());
        let _ = writeln!(out, "{est:.3}");
        return Ok(());
    }

    // One-shot mode: given raw XML, build a throwaway lattice in memory and
    // keep the document around to report the exact count as well.
    let one_shot = summary_path.ends_with(".xml");
    let (lattice, source) = if one_shot {
        let doc = load_document_with(&summary_path, values, obs.rec())?;
        let index = DocIndex::new_observed(&doc, obs.rec());
        let lattice = TreeLattice::build_with_index_observed(
            &doc,
            &index,
            &BuildConfig {
                k,
                threads,
                prune_delta: None,
                budget: Budget::unlimited(),
            },
            obs.rec(),
        );
        (lattice, Some((doc, index)))
    } else {
        (load_summary(&summary_path)?, None)
    };

    let twig = parse_query_for(&lattice, &query, values)?;
    let opts = EstimateOptions {
        budget,
        ..EstimateOptions::default()
    };
    let est = if engine_cache {
        let engine = EstimationEngine::with_recorder(
            EngineConfig {
                threads,
                ..EngineConfig::default()
            },
            obs.shared(),
        );
        if budgeted {
            let resilient = engine.estimate_resilient(&lattice, &twig, estimator, &opts)?;
            note_degraded(err, "estimate", &resilient);
            resilient.value
        } else {
            engine.estimate(&lattice, &twig, estimator, &opts)
        }
    } else if budgeted {
        let resilient = lattice.estimate_resilient(&twig, estimator, &opts);
        note_degraded(err, "estimate", &resilient);
        resilient.value
    } else {
        lattice.estimate_with_observed(&twig, estimator, &opts, obs.rec())
    };
    let _ = writeln!(out, "{est:.3}");

    if let Some((doc, index)) = &source {
        // In-document labels only; the exact kernel may still reject hostile
        // queries, in which case the estimate stands alone.
        let in_alphabet = twig
            .nodes()
            .all(|n| twig.label(n).index() < doc.labels().len());
        let exact = if in_alphabet {
            tl_twig::MatchCounter::with_index(doc, index)
                .observed(obs.rec())
                .try_count(&twig)
                .ok()
        } else {
            Some(0)
        };
        if let Some(count) = exact {
            let _ = writeln!(out, "# exact: {count}");
        }
    }
    Ok(())
}

/// Parses one query against a lattice's label table, honoring the value
/// mode (unknown labels map to fresh ids that estimate to zero).
fn parse_query_for(
    lattice: &TreeLattice,
    query: &str,
    values: ValueMode,
) -> Result<tl_twig::Twig, CliError> {
    parse_query_in(lattice.labels(), query, values)
}

/// [`parse_query_for`] against a bare label table — what catalog backends
/// expose without materializing a lattice.
fn parse_query_in(
    labels: &tl_xml::LabelInterner,
    query: &str,
    values: ValueMode,
) -> Result<tl_twig::Twig, CliError> {
    let mut labels = labels.clone();
    match values {
        ValueMode::Ignore => parse_twig(query, &mut labels),
        mode => tl_twig::parse_twig_valued(query, &mut labels, mode),
    }
    .map_err(|e| CliError::usage(format!("query `{query}`: {e}")))
}

fn cmd_workload(
    rest: &[String],
    out: &mut String,
    err: &mut String,
    obs: &Obs,
) -> Result<(), CliError> {
    let mut args = Args::new(rest);
    let estimator = {
        let value = args.flag_value("--estimator")?.map(str::to_owned);
        parse_estimator(value.as_deref())?
    };
    let values = {
        let raw = args.flag_value("--values")?.map(str::to_owned);
        parse_value_mode(raw.as_deref())?
    };
    let engine_cache = args.flag("--engine-cache");
    let threads: usize = args.numeric("--threads")?.unwrap_or(0);
    let (budget, budgeted) = parse_budget(&mut args)?;
    let summary_path = args.positional("summary.tlat")?.to_owned();
    let queries_path = args.positional("queries.txt")?.to_owned();
    args.finish()?;

    let lattice = load_summary(&summary_path)?;
    let text = String::from_utf8(read_file(&queries_path)?)
        .map_err(|_| CliError::fault(format!("{queries_path}: not valid UTF-8")))?;
    let mut queries: Vec<String> = Vec::new();
    let mut twigs: Vec<tl_twig::Twig> = Vec::new();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        twigs.push(parse_query_for(&lattice, line, values)?);
        queries.push(line.to_owned());
    }
    if twigs.is_empty() {
        return Err(CliError::usage(format!("{queries_path}: no queries")));
    }

    let opts = EstimateOptions {
        budget,
        ..EstimateOptions::default()
    };
    let start = std::time::Instant::now();
    // Budgeted (or chaos-exposed) runs go through the resilient paths: each
    // query comes back as an estimate, possibly degraded, or a typed fault.
    let resilient = budgeted || failpoints::is_active();
    let (results, stats): (Vec<Result<ResilientEstimate, Fault>>, _) = if engine_cache {
        let engine = EstimationEngine::with_recorder(
            EngineConfig {
                threads,
                ..EngineConfig::default()
            },
            obs.shared(),
        );
        let results = if resilient {
            engine.estimate_batch_resilient(&lattice, &twigs, estimator, &opts)
        } else {
            engine
                .estimate_batch(&lattice, &twigs, estimator, &opts)
                .into_iter()
                .map(|v| Ok(ResilientEstimate::exact(v)))
                .collect()
        };
        (results, Some(engine.stats()))
    } else {
        (
            twigs
                .iter()
                .map(|t| {
                    if resilient {
                        Ok(lattice.estimate_resilient(t, estimator, &opts))
                    } else {
                        Ok(ResilientEstimate::exact(lattice.estimate_with_observed(
                            t,
                            estimator,
                            &opts,
                            obs.rec(),
                        )))
                    }
                })
                .collect(),
            None,
        )
    };
    let elapsed = start.elapsed();

    let mut degraded = 0usize;
    let mut faulted = 0usize;
    for (query, result) in queries.iter().zip(&results) {
        match result {
            Ok(est) => {
                if est.degradation.is_degraded() {
                    degraded += 1;
                }
                let _ = writeln!(out, "{:.3}\t{query}", est.value);
            }
            Err(fault) => {
                faulted += 1;
                let _ = writeln!(out, "fault:{}\t{query}", fault.kind.as_str());
            }
        }
    }
    if degraded > 0 {
        let _ = writeln!(
            err,
            "note: {degraded} of {} estimates degraded under the budget",
            results.len()
        );
    }
    if faulted > 0 {
        // The engine already counted these under fault.total; the note is
        // the user-facing side of the same signal.
        let _ = writeln!(err, "note: {faulted} of {} queries faulted", results.len());
    }
    let _ = writeln!(out, "# {} queries in {:.2?}", twigs.len(), elapsed);
    if faulted == results.len() {
        return Err(CliError::fault(format!(
            "{queries_path}: all {faulted} queries faulted"
        )));
    }
    if let Some(stats) = stats {
        let _ = writeln!(
            out,
            "# engine cache: {} hits / {} misses ({:.1}% hit rate), {} entries, {} bytes",
            stats.hits,
            stats.misses,
            100.0 * stats.hit_rate(),
            stats.entries,
            stats.bytes
        );
        let _ = writeln!(
            out,
            "# engine interner: {} keys, {} key bytes cloned; dag: {} nodes / {} refs ({:.2}x dedup)",
            stats.interner_keys,
            stats.key_clone_bytes,
            stats.dag_nodes,
            stats.dag_refs,
            stats.dedup_ratio()
        );
    }
    Ok(())
}

fn cmd_explain(rest: &[String], out: &mut String) -> Result<(), CliError> {
    let mut args = Args::new(rest);
    let summary_path = args.positional("summary.tlat")?.to_owned();
    let query = args.positional("query")?.to_owned();
    args.finish()?;
    let lattice = load_summary(&summary_path)?;
    let text = lattice
        .explain_query(&query)
        .map_err(|e| CliError::usage(format!("query: {e}")))?;
    out.push_str(&text);
    Ok(())
}

fn cmd_truth(rest: &[String], out: &mut String, obs: &Obs) -> Result<(), CliError> {
    let mut args = Args::new(rest);
    let values = {
        let raw = args.flag_value("--values")?.map(str::to_owned);
        parse_value_mode(raw.as_deref())?
    };
    let input = args.positional("input.xml")?.to_owned();
    let query = args.positional("query")?.to_owned();
    args.finish()?;

    let doc = load_document_with(&input, values, obs.rec())?;
    let mut labels = doc.labels().clone();
    let twig = match values {
        ValueMode::Ignore => parse_twig(&query, &mut labels),
        mode => tl_twig::parse_twig_valued(&query, &mut labels, mode),
    }
    .map_err(|e| CliError::usage(format!("query: {e}")))?;
    // Labels unknown to the document cannot match.
    let count = if twig
        .nodes()
        .any(|n| twig.label(n).index() >= doc.labels().len())
    {
        0
    } else {
        // The exact kernel rejects hostile queries (an oversized same-label
        // sibling group makes the injective subset-DP exponential); surface
        // that as a usage error instead of a count.
        let index = DocIndex::new_observed(&doc, obs.rec());
        tl_twig::MatchCounter::with_index(&doc, &index)
            .observed(obs.rec())
            .try_count(&twig)
            .map_err(|e| CliError::usage(format!("query: {e}")))?
    };
    let _ = writeln!(out, "{count}");
    Ok(())
}

fn cmd_inspect(rest: &[String], out: &mut String) -> Result<(), CliError> {
    let mut args = Args::new(rest);
    let summary_path = args.positional("summary.tlat")?.to_owned();
    args.finish()?;

    let lattice = load_summary(&summary_path)?;
    let _ = writeln!(
        out,
        "k = {}, labels = {}, patterns = {}, bytes = {}",
        lattice.k(),
        lattice.labels().len(),
        lattice.summary().len(),
        lattice.summary_bytes()
    );
    for (size, (stored, pruned)) in lattice.summary().level_info().iter().enumerate() {
        let _ = writeln!(
            out,
            "  level {}: {} patterns{}",
            size + 1,
            stored,
            if *pruned { " (pruned)" } else { "" }
        );
    }
    // The five highest-count patterns, as queries.
    let mut top: Vec<(u64, String)> = lattice
        .summary()
        .iter()
        .map(|(key, count)| (count, key.decode().to_query_string(lattice.labels())))
        .collect();
    top.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
    let _ = writeln!(out, "top patterns:");
    for (count, query) in top.into_iter().take(5) {
        let _ = writeln!(out, "  {count:>10}  {query}");
    }
    Ok(())
}

fn cmd_prune(rest: &[String], out: &mut String) -> Result<(), CliError> {
    let mut args = Args::new(rest);
    let output = args
        .flag_value("-o")?
        .ok_or_else(|| CliError::usage("prune needs -o <out.tlat>"))?
        .to_owned();
    let delta: f64 = args
        .numeric("--delta")?
        .ok_or_else(|| CliError::usage("prune needs --delta D"))?;
    let summary_path = args.positional("summary.tlat")?.to_owned();
    args.finish()?;
    if !(0.0..=1.0).contains(&delta) {
        return Err(CliError::usage("--delta must be in [0, 1]"));
    }

    let mut lattice = load_summary(&summary_path)?;
    let report = lattice.prune(delta);
    write_file(&output, &lattice.to_bytes())?;
    let _ = writeln!(
        out,
        "pruned {}/{} patterns ({} -> {} bytes) -> {output}",
        report.pruned, report.examined, report.bytes_before, report.bytes_after
    );
    Ok(())
}

fn cmd_gen(rest: &[String], out: &mut String, obs: &Obs) -> Result<(), CliError> {
    let mut args = Args::new(rest);
    let output = args
        .flag_value("-o")?
        .ok_or_else(|| CliError::usage("gen needs -o <out.xml>"))?
        .to_owned();
    let scale: usize = args.numeric("--scale")?.unwrap_or(50_000);
    let seed: u64 = args.numeric("--seed")?.unwrap_or(42);
    let values = {
        let raw = args.flag_value("--values")?.map(str::to_owned);
        parse_value_mode(raw.as_deref())?
    };
    let name = args.positional("dataset")?.to_owned();
    args.finish()?;

    let dataset: Dataset = name.parse().map_err(CliError::usage)?;
    let doc = dataset.generate_valued_observed(
        GenConfig {
            seed,
            target_elements: scale,
        },
        values,
        obs.rec(),
    );
    let mut buf = Vec::new();
    tl_xml::write_document(&doc, &mut buf)
        .map_err(|e| CliError::fault(format!("serialize: {e}")))?;
    write_file(&output, &buf)?;
    let _ = writeln!(
        out,
        "generated {} ({} elements, {} labels) -> {output}",
        dataset,
        doc.len(),
        doc.labels().len()
    );
    Ok(())
}

fn cmd_metrics(rest: &[String], out: &mut String) -> Result<(), CliError> {
    let mut args = Args::new(rest);
    let action = args.positional("report")?.to_owned();
    let path = args.positional("metrics.json")?.to_owned();
    args.finish()?;
    if action != "report" {
        return Err(CliError::usage(format!(
            "unknown metrics action `{action}` (expected report)"
        )));
    }
    let text = String::from_utf8(read_file(&path)?)
        .map_err(|_| CliError::fault(format!("{path}: not valid UTF-8")))?;
    let snapshot =
        tl_obs::Snapshot::from_json(&text).map_err(|e| CliError::fault(format!("{path}: {e}")))?;
    out.push_str(&snapshot.render_report());
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::RwLock;

    /// Fail-point plans are process-global: tests that activate chaos take
    /// the write side, everything else the read side, so an active plan
    /// can never leak into an unrelated concurrently-running test.
    static CHAOS_LOCK: RwLock<()> = RwLock::new(());

    fn call(args: &[&str]) -> Result<String, CliError> {
        let _shared = CHAOS_LOCK.read().unwrap_or_else(|e| e.into_inner());
        let owned: Vec<String> = args.iter().map(|s| s.to_string()).collect();
        let mut out = String::new();
        let mut err = String::new();
        run(&owned, &mut out, &mut err)?;
        Ok(out)
    }

    /// Like [`call`] but exclusive (for `--chaos` invocations) and
    /// returning the stderr notes alongside stdout.
    fn call_chaos(args: &[&str]) -> (Result<(), CliError>, String, String) {
        let _exclusive = CHAOS_LOCK.write().unwrap_or_else(|e| e.into_inner());
        let owned: Vec<String> = args.iter().map(|s| s.to_string()).collect();
        let mut out = String::new();
        let mut err = String::new();
        let result = run(&owned, &mut out, &mut err);
        (result, out, err)
    }

    fn tempdir() -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "tl-cli-test-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn help_prints_usage() {
        let out = call(&["help"]).unwrap();
        assert!(out.contains("USAGE"));
    }

    #[test]
    fn unknown_command_is_usage_error() {
        let err = call(&["frobnicate"]).unwrap_err();
        assert_eq!(err.code, 2);
    }

    #[test]
    fn full_pipeline_gen_build_estimate_truth() {
        let dir = tempdir();
        let xml = dir.join("corpus.xml");
        let tlat = dir.join("corpus.tlat");
        let out = call(&[
            "gen",
            "xmark",
            "-o",
            xml.to_str().unwrap(),
            "--scale",
            "2000",
            "--seed",
            "7",
        ])
        .unwrap();
        assert!(out.contains("generated xmark"));

        let out = call(&[
            "build",
            xml.to_str().unwrap(),
            "-o",
            tlat.to_str().unwrap(),
            "--k",
            "3",
        ])
        .unwrap();
        assert!(out.contains("built 3-lattice"), "{out}");

        let est: f64 = call(&[
            "estimate",
            tlat.to_str().unwrap(),
            "item/mailbox",
            "--estimator",
            "recursive",
        ])
        .unwrap()
        .trim()
        .parse()
        .unwrap();
        let truth: f64 = call(&["truth", xml.to_str().unwrap(), "item/mailbox"])
            .unwrap()
            .trim()
            .parse()
            .unwrap();
        assert_eq!(est, truth, "size-2 query is exact");

        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn truth_rejects_oversized_sibling_groups_as_usage_error() {
        let dir = tempdir();
        let xml = dir.join("hostile.xml");
        std::fs::write(&xml, "<a><b/><b/></a>").unwrap();
        // One more same-label step than the kernel's subset-DP bound.
        let mut query = String::from("a");
        for _ in 0..=tl_twig::MAX_SIBLING_GROUP {
            query.push_str("[b]");
        }
        let err = call(&["truth", xml.to_str().unwrap(), &query]).unwrap_err();
        assert_eq!(err.code, 2, "usage error, not a panic");
        assert!(
            err.message.contains("same-label sibling"),
            "{}",
            err.message
        );
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn workload_runs_batch_with_and_without_engine_cache() {
        let dir = tempdir();
        let xml = dir.join("w.xml");
        let tlat = dir.join("w.tlat");
        let queries = dir.join("w.txt");
        call(&[
            "gen",
            "xmark",
            "-o",
            xml.to_str().unwrap(),
            "--scale",
            "2000",
            "--seed",
            "7",
        ])
        .unwrap();
        call(&[
            "build",
            xml.to_str().unwrap(),
            "-o",
            tlat.to_str().unwrap(),
            "--k",
            "3",
        ])
        .unwrap();
        std::fs::write(
            &queries,
            "# a comment\nitem/mailbox\n\nitem[mailbox][payment]\nsite/regions\n",
        )
        .unwrap();

        let plain = call(&[
            "workload",
            tlat.to_str().unwrap(),
            queries.to_str().unwrap(),
        ])
        .unwrap();
        assert!(plain.contains("# 3 queries in"), "{plain}");
        assert!(!plain.contains("engine cache"), "{plain}");

        let cached = call(&[
            "workload",
            tlat.to_str().unwrap(),
            queries.to_str().unwrap(),
            "--engine-cache",
            "--threads",
            "2",
        ])
        .unwrap();
        assert!(cached.contains("# engine cache:"), "{cached}");
        assert!(cached.contains("hit rate"), "{cached}");

        // Same estimates either way, line for line.
        let ests = |s: &str| -> Vec<String> {
            s.lines()
                .filter(|l| !l.starts_with('#'))
                .map(str::to_owned)
                .collect()
        };
        assert_eq!(ests(&plain), ests(&cached));

        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn estimate_engine_cache_matches_plain_estimate() {
        let dir = tempdir();
        let xml = dir.join("ec.xml");
        let tlat = dir.join("ec.tlat");
        std::fs::write(&xml, "<r><a><b/><c/></a><a><b/><c/></a><a><b/></a></r>").unwrap();
        call(&[
            "build",
            xml.to_str().unwrap(),
            "-o",
            tlat.to_str().unwrap(),
            "--k",
            "3",
        ])
        .unwrap();
        let plain = call(&["estimate", tlat.to_str().unwrap(), "a[b][c]"]).unwrap();
        let cached = call(&[
            "estimate",
            tlat.to_str().unwrap(),
            "a[b][c]",
            "--engine-cache",
        ])
        .unwrap();
        assert_eq!(plain, cached);
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn workload_rejects_empty_query_file() {
        let dir = tempdir();
        let tlat = dir.join("e.tlat");
        let xml = dir.join("e.xml");
        let queries = dir.join("empty.txt");
        std::fs::write(&xml, "<a><b/></a>").unwrap();
        call(&[
            "build",
            xml.to_str().unwrap(),
            "-o",
            tlat.to_str().unwrap(),
            "--k",
            "2",
        ])
        .unwrap();
        std::fs::write(&queries, "# only comments\n\n").unwrap();
        let err = call(&[
            "workload",
            tlat.to_str().unwrap(),
            queries.to_str().unwrap(),
        ])
        .unwrap_err();
        assert_eq!(err.code, 2);
        assert!(err.message.contains("no queries"));
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn inspect_reports_levels() {
        let dir = tempdir();
        let xml = dir.join("c.xml");
        let tlat = dir.join("c.tlat");
        std::fs::write(&xml, "<a><b><c/></b><b/></a>").unwrap();
        call(&[
            "build",
            xml.to_str().unwrap(),
            "-o",
            tlat.to_str().unwrap(),
            "--k",
            "3",
        ])
        .unwrap();
        let out = call(&["inspect", tlat.to_str().unwrap()]).unwrap();
        assert!(out.contains("k = 3"), "{out}");
        assert!(out.contains("level 1: 3 patterns"), "{out}");
        assert!(out.contains("top patterns:"), "{out}");
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn prune_shrinks_summary() {
        let dir = tempdir();
        let xml = dir.join("p.xml");
        let tlat = dir.join("p.tlat");
        let pruned = dir.join("p0.tlat");
        let mut body = String::from("<r>");
        for _ in 0..10 {
            body.push_str("<a><b/><c/></a>");
        }
        body.push_str("</r>");
        std::fs::write(&xml, body).unwrap();
        call(&[
            "build",
            xml.to_str().unwrap(),
            "-o",
            tlat.to_str().unwrap(),
            "--k",
            "3",
        ])
        .unwrap();
        let out = call(&[
            "prune",
            tlat.to_str().unwrap(),
            "-o",
            pruned.to_str().unwrap(),
            "--delta",
            "0",
        ])
        .unwrap();
        assert!(out.contains("pruned"), "{out}");
        assert!(
            std::fs::metadata(&pruned).unwrap().len() < std::fs::metadata(&tlat).unwrap().len()
        );
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn explain_shows_trace() {
        let dir = tempdir();
        let xml = dir.join("e.xml");
        let tlat = dir.join("e.tlat");
        std::fs::write(&xml, "<r><a><b/><c/></a><a><b/></a><a><b/><c/></a></r>").unwrap();
        call(&[
            "build",
            xml.to_str().unwrap(),
            "-o",
            tlat.to_str().unwrap(),
            "--k",
            "2",
        ])
        .unwrap();
        let out = call(&["explain", tlat.to_str().unwrap(), "a[b][c]"]).unwrap();
        assert!(out.contains("recursive = "), "{out}");
        assert!(out.contains("s(T1)*s(T2)/s(T12)"), "{out}");
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn estimate_rejects_bad_estimator() {
        let err = call(&["estimate", "x.tlat", "a/b", "--estimator", "wild"]).unwrap_err();
        assert_eq!(err.code, 2);
        assert!(err.message.contains("unknown estimator"));
    }

    #[test]
    fn missing_files_are_faults() {
        let err = call(&["inspect", "/nonexistent/summary.tlat"]).unwrap_err();
        assert_eq!(err.code, 3);
    }

    #[test]
    fn truncated_summary_is_a_fault() {
        let dir = tempdir();
        let xml = dir.join("t.xml");
        let tlat = dir.join("t.tlat");
        std::fs::write(&xml, "<a><b/></a>").unwrap();
        call(&[
            "build",
            xml.to_str().unwrap(),
            "-o",
            tlat.to_str().unwrap(),
            "--k",
            "2",
        ])
        .unwrap();
        let bytes = std::fs::read(&tlat).unwrap();
        std::fs::write(&tlat, &bytes[..bytes.len() - 3]).unwrap();
        let err = call(&["inspect", tlat.to_str().unwrap()]).unwrap_err();
        assert_eq!(err.code, 3);
        assert!(err.message.contains("truncated"), "{}", err.message);
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn budgeted_estimate_degrades_and_exits_zero() {
        let dir = tempdir();
        let xml = dir.join("bud.xml");
        let tlat = dir.join("bud.tlat");
        call(&[
            "gen",
            "xmark",
            "-o",
            xml.to_str().unwrap(),
            "--scale",
            "2000",
            "--seed",
            "7",
        ])
        .unwrap();
        call(&[
            "build",
            xml.to_str().unwrap(),
            "-o",
            tlat.to_str().unwrap(),
            "--k",
            "4",
        ])
        .unwrap();
        // --budget-k 2 forces the reduced-k rung on a size-3 query.
        let (result, out, note) = call_chaos(&[
            "estimate",
            tlat.to_str().unwrap(),
            "item/mailbox/mail",
            "--budget-k",
            "2",
        ]);
        result.unwrap();
        let est: f64 = out.trim().parse().unwrap();
        assert!(est.is_finite() && est > 0.0, "{out}");
        assert!(note.contains("degraded to reduced-k"), "{note}");
        // Unbudgeted, the same query is exact-path and note-free.
        let (result, _, clean_note) =
            call_chaos(&["estimate", tlat.to_str().unwrap(), "item/mailbox/mail"]);
        result.unwrap();
        assert!(clean_note.is_empty(), "{clean_note}");
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn build_under_expired_deadline_stops_early_but_succeeds() {
        let dir = tempdir();
        let xml = dir.join("dl.xml");
        let tlat = dir.join("dl.tlat");
        std::fs::write(&xml, "<r><a><b/><c/></a><a><b/></a></r>").unwrap();
        let (result, out, note) = call_chaos(&[
            "build",
            xml.to_str().unwrap(),
            "-o",
            tlat.to_str().unwrap(),
            "--k",
            "4",
            "--budget-ms",
            "0",
        ]);
        result.unwrap();
        assert!(note.contains("mining stopped early"), "{note}");
        assert!(out.contains("built 1-lattice"), "{out}");
        // The lower-order summary is still valid and loadable.
        let inspect = call(&["inspect", tlat.to_str().unwrap()]).unwrap();
        assert!(inspect.contains("k = 1"), "{inspect}");
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn chaos_bad_spec_is_usage_error() {
        let (result, _, _) = call_chaos(&["help", "--chaos", "xml.parse=sometimes"]);
        let err = result.unwrap_err();
        assert_eq!(err.code, 2);
        assert!(err.message.contains("--chaos"), "{}", err.message);
    }

    #[test]
    fn chaos_injected_parse_fault_exits_3() {
        let dir = tempdir();
        let xml = dir.join("chaos.xml");
        std::fs::write(&xml, "<a><b/></a>").unwrap();
        let (result, _, _) = call_chaos(&[
            "truth",
            xml.to_str().unwrap(),
            "a/b",
            "--chaos",
            "xml.parse=always",
        ]);
        let err = result.unwrap_err();
        assert_eq!(err.code, 3);
        assert!(err.message.contains("injected"), "{}", err.message);
        // The plan is deactivated once the invocation ends.
        assert!(!failpoints::is_active());
        let truth = call(&["truth", xml.to_str().unwrap(), "a/b"]).unwrap();
        assert_eq!(truth.trim(), "1");
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn chaos_worker_panic_in_workload_is_contained() {
        let dir = tempdir();
        let xml = dir.join("cw.xml");
        let tlat = dir.join("cw.tlat");
        let queries = dir.join("cw.txt");
        std::fs::write(&xml, "<r><a><b/><c/></a><a><b/><c/></a><a><b/></a></r>").unwrap();
        {
            let _shared = CHAOS_LOCK.read().unwrap_or_else(|e| e.into_inner());
            let owned: Vec<String> = [
                "build",
                xml.to_str().unwrap(),
                "-o",
                tlat.to_str().unwrap(),
                "--k",
                "3",
            ]
            .iter()
            .map(|s| s.to_string())
            .collect();
            let (mut out, mut err) = (String::new(), String::new());
            run(&owned, &mut out, &mut err).unwrap();
        }
        std::fs::write(&queries, "a/b\na[b][c]\na/c\n").unwrap();
        let (result, out, note) = call_chaos(&[
            "workload",
            tlat.to_str().unwrap(),
            queries.to_str().unwrap(),
            "--engine-cache",
            "--threads",
            "1",
            "--chaos",
            "engine.worker=nth:2",
        ]);
        result.unwrap();
        let lines: Vec<&str> = out.lines().filter(|l| !l.starts_with('#')).collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[1].starts_with("fault:worker-panic"), "{out}");
        assert!(
            lines[0].contains("a/b") && lines[2].contains("a/c"),
            "{out}"
        );
        assert!(note.contains("1 of 3 queries faulted"), "{note}");
        // Without chaos the same workload is clean and fault-free.
        let clean = call(&[
            "workload",
            tlat.to_str().unwrap(),
            queries.to_str().unwrap(),
            "--engine-cache",
            "--threads",
            "1",
        ])
        .unwrap();
        assert!(!clean.contains("fault:"), "{clean}");
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn build_rejects_k1() {
        let err = call(&["build", "in.xml", "-o", "out.tlat", "--k", "1"]).unwrap_err();
        assert_eq!(err.code, 2);
    }

    #[test]
    fn unexpected_arguments_rejected() {
        let err = call(&["truth", "a.xml", "a/b", "extra"]).unwrap_err();
        assert_eq!(err.code, 2);
        assert!(err.message.contains("unexpected argument"));
    }

    #[test]
    fn valued_pipeline_end_to_end() {
        let dir = tempdir();
        let xml = dir.join("v.xml");
        let tlat = dir.join("v.tlat");
        call(&[
            "gen",
            "xmark",
            "-o",
            xml.to_str().unwrap(),
            "--scale",
            "3000",
            "--seed",
            "5",
            "--values",
            "exact",
        ])
        .unwrap();
        let content = std::fs::read_to_string(&xml).unwrap();
        assert!(content.contains("category"), "values serialized as text");
        call(&[
            "build",
            xml.to_str().unwrap(),
            "-o",
            tlat.to_str().unwrap(),
            "--k",
            "3",
            "--values",
            "exact",
        ])
        .unwrap();
        let q = "item[incategory=\"category0\"]";
        let est: f64 = call(&[
            "estimate",
            tlat.to_str().unwrap(),
            q,
            "--values",
            "exact",
            "--estimator",
            "recursive",
        ])
        .unwrap()
        .trim()
        .parse()
        .unwrap();
        let truth: f64 = call(&["truth", xml.to_str().unwrap(), q, "--values", "exact"])
            .unwrap()
            .trim()
            .parse()
            .unwrap();
        assert!(truth > 0.0);
        assert_eq!(est, truth, "in-lattice valued query is exact");
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn bad_value_mode_rejected() {
        let err = call(&["estimate", "x.tlat", "a", "--values", "fuzzy"]).unwrap_err();
        assert_eq!(err.code, 2);
        assert!(err.message.contains("value mode"));
    }

    #[test]
    fn gen_rejects_unknown_dataset() {
        let err = call(&["gen", "unknown", "-o", "x.xml"]).unwrap_err();
        assert_eq!(err.code, 2);
    }

    #[test]
    fn metrics_flag_requires_value() {
        let err = call(&["inspect", "x.tlat", "--metrics"]).unwrap_err();
        assert_eq!(err.code, 2);
        assert!(err.message.contains("--metrics needs a value"));
    }

    #[test]
    fn estimate_oneshot_xml_emits_full_metrics_snapshot() {
        let dir = tempdir();
        let xml = dir.join("one.xml");
        let metrics = dir.join("one.json");
        call(&[
            "gen",
            "xmark",
            "-o",
            xml.to_str().unwrap(),
            "--scale",
            "2000",
            "--seed",
            "7",
        ])
        .unwrap();
        let out = call(&[
            "estimate",
            xml.to_str().unwrap(),
            "item/mailbox",
            "--k",
            "3",
            "--engine-cache",
            "--metrics",
            metrics.to_str().unwrap(),
        ])
        .unwrap();
        assert!(out.contains("# exact:"), "{out}");

        let text = std::fs::read_to_string(&metrics).unwrap();
        let snap = tl_obs::Snapshot::from_json(&text).unwrap();
        use tl_obs::names;
        for name in [
            names::XML_PARSE_DOCS,
            names::XML_INDEX_BUILDS,
            names::MINER_RUNS,
            names::TWIG_MATCH_CALLS,
            names::ENGINE_QUERIES,
        ] {
            assert!(
                snap.counters.get(name).copied().unwrap_or(0) >= 1,
                "counter {name} not populated: {text}"
            );
        }
        // Cache counters are present (schema-preregistered) even when the
        // single query produced no hits.
        assert!(snap.counters.contains_key(names::ENGINE_CACHE_HITS));
        assert!(snap.counters.contains_key(names::ENGINE_CACHE_MISSES));
        // Per-level miner stats were recorded dynamically.
        assert!(
            snap.counters.keys().any(|k| k.starts_with("miner.level1.")),
            "no per-level miner counters: {text}"
        );
        let latency = snap.histograms.get(names::QUERY_LATENCY_US).unwrap();
        assert!(latency.count >= 1, "no query latency recorded");
        assert!(snap.spans.get(names::SPAN_PARSE).unwrap().count >= 1);
        assert!(snap.spans.get(names::SPAN_MINE).unwrap().count >= 1);
        assert_eq!(
            snap.meta.get("command").map(String::as_str),
            Some("estimate")
        );

        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn metrics_do_not_change_estimates() {
        let dir = tempdir();
        let xml = dir.join("par.xml");
        let tlat = dir.join("par.tlat");
        let metrics = dir.join("par.json");
        std::fs::write(&xml, "<r><a><b/><c/></a><a><b/><c/></a><a><b/></a></r>").unwrap();
        call(&[
            "build",
            xml.to_str().unwrap(),
            "-o",
            tlat.to_str().unwrap(),
            "--k",
            "3",
        ])
        .unwrap();
        let plain = call(&["estimate", tlat.to_str().unwrap(), "a[b][c]"]).unwrap();
        let observed = call(&[
            "estimate",
            tlat.to_str().unwrap(),
            "a[b][c]",
            "--metrics",
            metrics.to_str().unwrap(),
        ])
        .unwrap();
        assert_eq!(plain, observed);
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn workload_with_metrics_records_cache_traffic() {
        let dir = tempdir();
        let xml = dir.join("wm.xml");
        let tlat = dir.join("wm.tlat");
        let queries = dir.join("wm.txt");
        let metrics = dir.join("wm.json");
        call(&[
            "gen",
            "xmark",
            "-o",
            xml.to_str().unwrap(),
            "--scale",
            "2000",
            "--seed",
            "7",
        ])
        .unwrap();
        call(&[
            "build",
            xml.to_str().unwrap(),
            "-o",
            tlat.to_str().unwrap(),
            "--k",
            "3",
        ])
        .unwrap();
        std::fs::write(
            &queries,
            "item/mailbox\nitem[mailbox][payment]\nsite/regions\n",
        )
        .unwrap();
        let out = call(&[
            "workload",
            tlat.to_str().unwrap(),
            queries.to_str().unwrap(),
            "--engine-cache",
            "--metrics",
            metrics.to_str().unwrap(),
        ])
        .unwrap();
        assert!(out.contains("# engine cache:"), "{out}");

        let snap =
            tl_obs::Snapshot::from_json(&std::fs::read_to_string(&metrics).unwrap()).unwrap();
        use tl_obs::names;
        // Unknown-label queries short-circuit to 0.0 before recording, so
        // the count is a lower bound, not exactly the workload size.
        let queries_run = snap.counters.get(names::ENGINE_QUERIES).copied().unwrap();
        assert!((2..=3).contains(&queries_run), "{queries_run} queries");
        let hits = snap
            .counters
            .get(names::ENGINE_CACHE_HITS)
            .copied()
            .unwrap();
        let misses = snap
            .counters
            .get(names::ENGINE_CACHE_MISSES)
            .copied()
            .unwrap();
        assert!(hits + misses > 0, "no cache traffic recorded");
        assert!(snap.spans.get(names::SPAN_BATCH).unwrap().count >= 1);
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn metrics_report_renders_snapshot_table() {
        let dir = tempdir();
        let xml = dir.join("rep.xml");
        let metrics = dir.join("rep.json");
        std::fs::write(&xml, "<r><a><b/></a></r>").unwrap();
        call(&[
            "estimate",
            xml.to_str().unwrap(),
            "a/b",
            "--k",
            "2",
            "--metrics",
            metrics.to_str().unwrap(),
        ])
        .unwrap();
        let out = call(&["metrics", "report", metrics.to_str().unwrap()]).unwrap();
        assert!(out.contains("engine.queries"), "{out}");
        assert!(out.contains("xml.parse"), "{out}");

        let err = call(&["metrics", "frobnicate", metrics.to_str().unwrap()]).unwrap_err();
        assert_eq!(err.code, 2);
        let _ = std::fs::remove_dir_all(dir);
    }

    /// Writes a small corpus of generated XMark documents into
    /// `dir/corpus/` and returns that directory.
    fn gen_corpus(dir: &std::path::Path, docs: usize) -> std::path::PathBuf {
        let corpus = dir.join("corpus");
        std::fs::create_dir_all(&corpus).unwrap();
        for i in 0..docs {
            let xml = corpus.join(format!("doc{i}.xml"));
            call(&[
                "gen",
                "xmark",
                "-o",
                xml.to_str().unwrap(),
                "--scale",
                "400",
                "--seed",
                &(10 + i).to_string(),
            ])
            .unwrap();
        }
        corpus
    }

    #[test]
    fn mine_shards_a_corpus_directory_bit_identically() {
        let dir = tempdir();
        let corpus = gen_corpus(&dir, 3);
        // A stray non-XML file must be ignored, not parsed.
        std::fs::write(corpus.join("README.txt"), "not xml").unwrap();

        let serial = dir.join("serial.tlat");
        let sharded = dir.join("sharded.tlat");
        let out = call(&[
            "mine",
            corpus.to_str().unwrap(),
            "-o",
            serial.to_str().unwrap(),
            "--k",
            "3",
            "--shards",
            "1",
        ])
        .unwrap();
        assert!(out.contains("mined 3 documents"), "{out}");

        let out = call(&[
            "mine",
            corpus.to_str().unwrap(),
            "-o",
            sharded.to_str().unwrap(),
            "--k",
            "3",
            "--shards",
            "3",
            "--threads",
            "2",
        ])
        .unwrap();
        assert!(out.contains("mined 3 documents"), "{out}");
        assert_eq!(
            std::fs::read(&serial).unwrap(),
            std::fs::read(&sharded).unwrap(),
            "sharded mining must serialize bit-identically to sequential"
        );

        // The mined summary answers queries like any built one.
        let est = call(&["estimate", serial.to_str().unwrap(), "item/mailbox"]).unwrap();
        let _: f64 = est.trim().parse().unwrap();
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn mine_rejects_empty_and_missing_corpus_as_fault() {
        let dir = tempdir();
        let empty = dir.join("empty");
        std::fs::create_dir_all(&empty).unwrap();
        let out = dir.join("x.tlat");
        let err =
            call(&["mine", empty.to_str().unwrap(), "-o", out.to_str().unwrap()]).unwrap_err();
        assert_eq!(err.code, 3, "{}", err.message);
        assert!(err.message.contains("no .xml files"), "{}", err.message);

        let missing = dir.join("nope");
        let err = call(&[
            "mine",
            missing.to_str().unwrap(),
            "-o",
            out.to_str().unwrap(),
        ])
        .unwrap_err();
        assert_eq!(err.code, 3);

        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn summary_merge_matches_mining_the_union() {
        let dir = tempdir();
        let corpus = gen_corpus(&dir, 2);
        let files: Vec<std::path::PathBuf> = {
            let mut v: Vec<_> = std::fs::read_dir(&corpus)
                .unwrap()
                .map(|e| e.unwrap().path())
                .collect();
            v.sort();
            v
        };
        // Build each document alone, then merge the stored summaries.
        let mut parts = Vec::new();
        for (i, xml) in files.iter().enumerate() {
            let tlat = dir.join(format!("part{i}.tlat"));
            call(&[
                "build",
                xml.to_str().unwrap(),
                "-o",
                tlat.to_str().unwrap(),
                "--k",
                "3",
            ])
            .unwrap();
            parts.push(tlat);
        }
        let merged = dir.join("merged.tlat");
        let out = call(&[
            "summary",
            "merge",
            parts[0].to_str().unwrap(),
            parts[1].to_str().unwrap(),
            "-o",
            merged.to_str().unwrap(),
        ])
        .unwrap();
        assert!(out.contains("merged 2 summaries"), "{out}");

        // Mining the same two documents as one corpus must give the same
        // bytes: merge is exactly "mine the union".
        let mined = dir.join("mined.tlat");
        call(&[
            "mine",
            corpus.to_str().unwrap(),
            "-o",
            mined.to_str().unwrap(),
            "--k",
            "3",
        ])
        .unwrap();
        assert_eq!(
            std::fs::read(&merged).unwrap(),
            std::fs::read(&mined).unwrap(),
            "summary merge must agree with corpus mining"
        );

        // Fewer than two inputs is a usage error, as is an unknown action.
        let err = call(&[
            "summary",
            "merge",
            parts[0].to_str().unwrap(),
            "-o",
            merged.to_str().unwrap(),
        ])
        .unwrap_err();
        assert_eq!(err.code, 2);
        let err = call(&["summary", "split", parts[0].to_str().unwrap()]).unwrap_err();
        assert_eq!(err.code, 2);

        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn summary_recover_and_snapshot_round_trip_a_wal_dir() {
        let dir = tempdir();
        let xml = dir.join("r.xml");
        let tlat = dir.join("r.tlat");
        call(&[
            "gen",
            "xmark",
            "-o",
            xml.to_str().unwrap(),
            "--scale",
            "1500",
            "--seed",
            "3",
        ])
        .unwrap();
        call(&[
            "build",
            xml.to_str().unwrap(),
            "-o",
            tlat.to_str().unwrap(),
            "--k",
            "3",
        ])
        .unwrap();

        // Seed a durability directory the way a crashed server would
        // leave it: WAL records, no final snapshot.
        let base = load_summary(tlat.to_str().unwrap()).unwrap();
        let wal_dir = dir.join("wal");
        let query = {
            let mut labels = base.labels().clone();
            tl_twig::parse_twig("site/regions", &mut labels).unwrap()
        };
        {
            let opts = treelattice::DurableOptions::default();
            let (mut durable, _) =
                treelattice::DurableLattice::open(&wal_dir, Some(&base), &opts, &tl_obs::NOOP)
                    .unwrap();
            for (i, count) in [3u64, 9, 27].iter().enumerate() {
                durable
                    .apply(&query, *count, i as u64 + 1, &tl_obs::NOOP)
                    .unwrap();
            }
            // No drain: the WAL alone carries the observations.
        }
        assert!(std::fs::metadata(wal_dir.join("wal.log")).unwrap().len() > 0);

        let recovered_path = dir.join("recovered.tlat");
        let out = call(&[
            "summary",
            "recover",
            wal_dir.to_str().unwrap(),
            "--base",
            tlat.to_str().unwrap(),
            "-o",
            recovered_path.to_str().unwrap(),
        ])
        .unwrap();
        assert!(out.contains("replayed 3"), "{out}");
        let recovered = load_summary(recovered_path.to_str().unwrap()).unwrap();
        use tl_twig::canonical::key_of;
        assert_eq!(
            recovered.summary().stored(&key_of(&query)),
            Some(27),
            "recovery must land on the last applied count"
        );

        // Snapshot compacts: WAL truncated, snapshot file published, and
        // offline recovery still produces the same summary bytes.
        let out = call(&[
            "summary",
            "snapshot",
            wal_dir.to_str().unwrap(),
            "--base",
            tlat.to_str().unwrap(),
        ])
        .unwrap();
        assert!(out.contains("snapshot published at seq 3"), "{out}");
        assert_eq!(std::fs::metadata(wal_dir.join("wal.log")).unwrap().len(), 0);
        let again = dir.join("again.tlat");
        call(&[
            "summary",
            "recover",
            wal_dir.to_str().unwrap(),
            "-o",
            again.to_str().unwrap(),
        ])
        .unwrap();
        assert_eq!(
            std::fs::read(&recovered_path).unwrap(),
            std::fs::read(&again).unwrap(),
            "snapshot-then-recover must be bit-identical to wal-replay recovery"
        );

        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn estimate_mmap_agrees_with_in_memory_catalog() {
        let dir = tempdir();
        let xml = dir.join("m.xml");
        let tlat = dir.join("m.tlat");
        call(&[
            "gen",
            "xmark",
            "-o",
            xml.to_str().unwrap(),
            "--scale",
            "2000",
            "--seed",
            "7",
        ])
        .unwrap();
        call(&[
            "build",
            xml.to_str().unwrap(),
            "-o",
            tlat.to_str().unwrap(),
            "--k",
            "3",
        ])
        .unwrap();

        for query in ["item/mailbox", "item[mailbox][payment]", "site/regions"] {
            let memory = call(&["estimate", tlat.to_str().unwrap(), query]).unwrap();
            let mapped = call(&["estimate", tlat.to_str().unwrap(), query, "--mmap"]).unwrap();
            assert_eq!(memory, mapped, "{query}");
        }

        // The mmap path feeds the same metrics pipeline, including the
        // zero-copy catalog counters.
        let metrics = dir.join("m.json");
        call(&[
            "estimate",
            tlat.to_str().unwrap(),
            "item/mailbox",
            "--mmap",
            "--metrics",
            metrics.to_str().unwrap(),
        ])
        .unwrap();
        let report = call(&["metrics", "report", metrics.to_str().unwrap()]).unwrap();
        assert!(report.contains("catalog.mmap.opens"), "{report}");
        assert!(report.contains("catalog.mmap.lookups"), "{report}");

        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn estimate_mmap_guards_inputs_and_corruption() {
        let dir = tempdir();
        // `--mmap` needs a stored frame, not raw XML.
        let xml = dir.join("g.xml");
        std::fs::write(&xml, "<r><a><b/></a></r>").unwrap();
        let err = call(&["estimate", xml.to_str().unwrap(), "a/b", "--mmap"]).unwrap_err();
        assert_eq!(err.code, 2, "{}", err.message);

        // A checksum-corrupted frame is a catalog-open fault: exit 3.
        let tlat = dir.join("g.tlat");
        call(&[
            "build",
            xml.to_str().unwrap(),
            "-o",
            tlat.to_str().unwrap(),
            "--k",
            "2",
        ])
        .unwrap();
        let mut bytes = std::fs::read(&tlat).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xff;
        std::fs::write(&tlat, &bytes).unwrap();
        let err = call(&["estimate", tlat.to_str().unwrap(), "a/b", "--mmap"]).unwrap_err();
        assert_eq!(err.code, 3, "{}", err.message);

        let _ = std::fs::remove_dir_all(dir);
    }
}
