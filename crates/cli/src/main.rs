//! Binary entry point; all logic lives in [`tl_cli::run`].
//!
//! Exit codes: 0 = success (including degraded estimates, which leave a
//! note on stderr), 2 = usage error, 3 = fault.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut out = String::new();
    let mut err = String::new();
    let result = tl_cli::run(&args, &mut out, &mut err);
    if !err.is_empty() {
        eprint!("{err}");
    }
    match result {
        Ok(()) => print!("{out}"),
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(e.code);
        }
    }
}
