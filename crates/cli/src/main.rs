//! Binary entry point; all logic lives in [`tl_cli::run`].

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut out = String::new();
    match tl_cli::run(&args, &mut out) {
        Ok(()) => print!("{out}"),
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(e.code);
        }
    }
}
