//! Catalog backends: where pattern-count lookups come from.
//!
//! The estimator only ever asks two things of its statistics store: "what is
//! the count behind these canonical key bytes" and "how large may a stored
//! pattern be". [`PatternStore`] captures exactly that, which lets the same
//! decomposition DAG run against three backends:
//!
//! * **in-memory** — [`Summary`] / [`TreeLattice`], the mined hash tables;
//! * **file** — [`FileCatalog`], the checksummed binary frame loaded eagerly
//!   back into hash tables (one validation + one deserialization at open);
//! * **mmap** — [`MmapCatalog`], the same frame served *in place*: the file
//!   is mapped read-only, the CRC-32 and structure are validated once at
//!   open, and every lookup afterwards is a binary search over the mapped
//!   record bytes — zero copies, zero allocations, cold-start proportional
//!   to one checksum pass instead of a full hash-table build.
//!
//! The mmap reader leans on two properties the PR-4 frame was designed
//! around: records are length-prefixed with a *fixed* per-level stride
//! (`2 + 6·size + 8` bytes — canonical keys are exactly 6 bytes per node),
//! and each level's records are sorted by key bytes, so a lookup is
//! `O(log n)` pointer arithmetic over the mapping.
//!
//! [`Catalog`] extends [`PatternStore`] with the label table and content
//! generation the estimation engine needs to key its shared cache.

use std::fmt;
use std::fs::File;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};

use tl_twig::{Twig, TwigParseError};
use tl_xml::{LabelId, LabelInterner};

use crate::estimator::{EstimateOptions, Estimator};
use crate::serialize::{crc32, ReadError, HEADER_LEN, MAGIC, VERSION};
use crate::summary::{Lookup, Summary};
use crate::{dag, next_generation, TreeLattice};

/// A source of pattern-count lookups keyed by canonical twig encoding —
/// the minimal store interface the decomposition DAG evaluates against.
pub trait PatternStore {
    /// Looks up the canonical encoding `bytes` (6 bytes per node); the
    /// result distinguishes exact counts, pruned-level misses, and
    /// beyond-`k` patterns exactly like [`Summary::lookup_bytes`].
    fn lookup_bytes(&self, bytes: &[u8]) -> Lookup;

    /// The store's order `k` (largest pattern size stored).
    fn max_size(&self) -> usize;
}

impl PatternStore for Summary {
    #[inline]
    fn lookup_bytes(&self, bytes: &[u8]) -> Lookup {
        Summary::lookup_bytes(self, bytes)
    }

    #[inline]
    fn max_size(&self) -> usize {
        Summary::max_size(self)
    }
}

impl PatternStore for TreeLattice {
    #[inline]
    fn lookup_bytes(&self, bytes: &[u8]) -> Lookup {
        self.summary().lookup_bytes(bytes)
    }

    #[inline]
    fn max_size(&self) -> usize {
        self.summary().max_size()
    }
}

/// A pattern store with the label table and content version the estimation
/// engine needs: labels gate unknown-label queries to zero, the generation
/// keys shared-cache entries so two backends serving the same summary
/// content can share warm estimates only when they really are the same.
pub trait Catalog: PatternStore {
    /// The label universe the stored keys are encoded against.
    fn labels(&self) -> &LabelInterner;

    /// Content version; equal values imply interchangeable summaries.
    fn generation(&self) -> u64;

    /// Backend probes served so far, for backends that count them. The
    /// in-memory backends return 0 (hash-map probes are not metered);
    /// [`MmapCatalog`] reports its lookup counter, which the engine folds
    /// into [`EngineStats::catalog_lookups`](crate::EngineStats).
    fn served_lookups(&self) -> u64 {
        0
    }
}

impl Catalog for TreeLattice {
    #[inline]
    fn labels(&self) -> &LabelInterner {
        TreeLattice::labels(self)
    }

    #[inline]
    fn generation(&self) -> u64 {
        TreeLattice::generation(self)
    }
}

/// Failure to open a catalog file: the I/O layer or the frame itself.
#[derive(Debug)]
pub enum CatalogError {
    /// The file could not be read or mapped.
    Io(std::io::Error),
    /// The frame or payload failed validation (see [`ReadError`]).
    Corrupt(ReadError),
}

impl fmt::Display for CatalogError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CatalogError::Io(e) => write!(f, "cannot open catalog: {e}"),
            CatalogError::Corrupt(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for CatalogError {}

impl From<ReadError> for CatalogError {
    fn from(e: ReadError) -> Self {
        CatalogError::Corrupt(e)
    }
}

impl From<std::io::Error> for CatalogError {
    fn from(e: std::io::Error) -> Self {
        CatalogError::Io(e)
    }
}

/// The eager file backend: reads the checksummed frame, validates it, and
/// materializes the summary back into in-memory hash tables. Exactly
/// [`TreeLattice::from_bytes`] with the I/O folded in — the baseline the
/// mmap backend is measured against.
pub struct FileCatalog {
    lattice: TreeLattice,
}

impl FileCatalog {
    /// Reads and deserializes `path`.
    pub fn open(path: &Path) -> Result<Self, CatalogError> {
        let bytes = std::fs::read(path)?;
        Ok(Self {
            lattice: TreeLattice::from_bytes(&bytes)?,
        })
    }

    /// The deserialized lattice.
    pub fn lattice(&self) -> &TreeLattice {
        &self.lattice
    }

    /// Unwraps into the deserialized lattice.
    pub fn into_lattice(self) -> TreeLattice {
        self.lattice
    }
}

impl PatternStore for FileCatalog {
    #[inline]
    fn lookup_bytes(&self, bytes: &[u8]) -> Lookup {
        self.lattice.summary().lookup_bytes(bytes)
    }

    #[inline]
    fn max_size(&self) -> usize {
        self.lattice.summary().max_size()
    }
}

impl Catalog for FileCatalog {
    #[inline]
    fn labels(&self) -> &LabelInterner {
        self.lattice.labels()
    }

    #[inline]
    fn generation(&self) -> u64 {
        self.lattice.generation()
    }
}

/// Read-only memory mapping with a plain-read fallback for platforms (or
/// mount options) where `mmap` is unavailable. Lookups only ever see
/// `&[u8]`, so the two variants are interchangeable.
enum Backing {
    #[cfg(unix)]
    Mapped(Mapping),
    Owned(Vec<u8>),
}

impl Backing {
    #[inline]
    fn bytes(&self) -> &[u8] {
        match self {
            #[cfg(unix)]
            Backing::Mapped(m) => m.as_slice(),
            Backing::Owned(v) => v,
        }
    }
}

/// An owned `PROT_READ`/`MAP_PRIVATE` mapping. Declared against raw libc
/// symbols so the vendored dependency set stays unchanged.
#[cfg(unix)]
struct Mapping {
    ptr: *mut u8,
    len: usize,
}

#[cfg(unix)]
mod mmap_ffi {
    use std::os::raw::{c_int, c_void};

    pub const PROT_READ: c_int = 1;
    pub const MAP_PRIVATE: c_int = 2;

    extern "C" {
        pub fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: c_int,
            flags: c_int,
            fd: c_int,
            offset: i64,
        ) -> *mut c_void;
        pub fn munmap(addr: *mut c_void, len: usize) -> c_int;
    }
}

#[cfg(unix)]
impl Mapping {
    /// Maps `len` bytes of `file` read-only. `len` must be non-zero (a
    /// zero-length mmap is EINVAL; callers reject short files first).
    fn new(file: &File, len: usize) -> std::io::Result<Self> {
        use std::os::unix::io::AsRawFd;
        let ptr = unsafe {
            mmap_ffi::mmap(
                std::ptr::null_mut(),
                len,
                mmap_ffi::PROT_READ,
                mmap_ffi::MAP_PRIVATE,
                file.as_raw_fd(),
                0,
            )
        };
        if ptr.is_null() || ptr as isize == -1 {
            return Err(std::io::Error::last_os_error());
        }
        Ok(Self {
            ptr: ptr.cast(),
            len,
        })
    }

    #[inline]
    fn as_slice(&self) -> &[u8] {
        unsafe { std::slice::from_raw_parts(self.ptr, self.len) }
    }
}

#[cfg(unix)]
impl Drop for Mapping {
    fn drop(&mut self) {
        unsafe {
            mmap_ffi::munmap(self.ptr.cast(), self.len);
        }
    }
}

// SAFETY: the mapping is PROT_READ and never written through `ptr`; sharing
// immutable views across threads is sound.
#[cfg(unix)]
unsafe impl Send for Mapping {}
#[cfg(unix)]
unsafe impl Sync for Mapping {}

/// Directory entry for one level of the mapped frame: where its records
/// start, how many there are, and their fixed stride.
#[derive(Clone, Copy, Debug)]
struct LevelDir {
    /// Byte offset of the first record, relative to the full file bytes.
    start: usize,
    /// Record count.
    entries: usize,
    /// `2 + 6·size + 8`: length prefix, key bytes, count.
    stride: usize,
    /// δ-pruning flag: misses derive instead of meaning zero.
    pruned: bool,
}

/// The zero-copy mmap backend: pattern counts are served straight from the
/// serialized frame bytes.
///
/// Opening validates everything once — magic, version, payload length,
/// CRC-32, label table, and a full strided pass over every record (length
/// prefix, strictly ascending canonical order, decodable keys, in-range
/// labels). After that, [`PatternStore::lookup_bytes`] is a binary search
/// over the mapping: no hash tables are ever built, no key is ever boxed,
/// and the hot path allocates nothing (asserted by a counting-allocator
/// test). Lookups are counted internally so observed runs can surface
/// `catalog.mmap.lookups` without threading a recorder through the
/// estimator.
pub struct MmapCatalog {
    backing: Backing,
    labels: LabelInterner,
    levels: Vec<LevelDir>,
    generation: u64,
    lookups: AtomicU64,
}

impl MmapCatalog {
    /// Maps and validates `path`.
    pub fn open(path: &Path) -> Result<Self, CatalogError> {
        Self::open_observed(path, &tl_obs::NOOP)
    }

    /// [`open`](Self::open), recording `catalog.mmap.opens` and
    /// `catalog.mmap.bytes_mapped` to `rec`.
    pub fn open_observed(path: &Path, rec: &dyn tl_obs::Recorder) -> Result<Self, CatalogError> {
        let file = File::open(path)?;
        let len = usize::try_from(file.metadata()?.len()).map_err(|_| {
            CatalogError::Io(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                "file too large to map",
            ))
        })?;
        if len < HEADER_LEN {
            // Too short to map meaningfully (an empty file is not mappable
            // at all); read it and let `validate` produce the precise error.
            Self::validate(Backing::Owned(std::fs::read(path)?))?;
            unreachable!("a short frame never validates");
        }
        #[cfg(unix)]
        let backing = match Mapping::new(&file, len) {
            Ok(m) => Backing::Mapped(m),
            // Some filesystems refuse mmap; fall back to a plain read.
            Err(_) => Backing::Owned(std::fs::read(path)?),
        };
        #[cfg(not(unix))]
        let backing = Backing::Owned(std::fs::read(path)?);
        let catalog = Self::validate(backing)?;
        rec.add(tl_obs::names::CATALOG_MMAP_OPENS, 1);
        rec.add(
            tl_obs::names::CATALOG_MMAP_BYTES_MAPPED,
            catalog.backing.bytes().len() as u64,
        );
        Ok(catalog)
    }

    /// One-time frame + structural validation; builds the level directory.
    fn validate(backing: Backing) -> Result<Self, CatalogError> {
        let bytes = backing.bytes();
        if bytes.len() < 4 || bytes[..4] != MAGIC[..] {
            return Err(ReadError::BadMagic.into());
        }
        if bytes.len() < HEADER_LEN {
            return Err(ReadError::Truncated("integrity frame").into());
        }
        if bytes[4] != VERSION {
            return Err(ReadError::BadVersion(bytes[4]).into());
        }
        let expected_crc = u32::from_le_bytes(bytes[5..9].try_into().expect("4 bytes"));
        let expected_len = u64::from_le_bytes(bytes[9..HEADER_LEN].try_into().expect("8 bytes"));
        let payload = &bytes[HEADER_LEN..];
        if (payload.len() as u64) < expected_len {
            return Err(ReadError::Truncated("payload").into());
        }
        if payload.len() as u64 > expected_len {
            return Err(ReadError::Corrupt("trailing bytes after payload").into());
        }
        if crc32(payload) != expected_crc {
            return Err(ReadError::Corrupt("checksum mismatch").into());
        }

        // Label table (the only part materialized into owned memory).
        let mut pos = HEADER_LEN;
        let take = |pos: &mut usize, n: usize, what: &'static str| -> Result<usize, ReadError> {
            let start = *pos;
            let end = start.checked_add(n).ok_or(ReadError::Truncated(what))?;
            if end > bytes.len() {
                return Err(ReadError::Truncated(what));
            }
            *pos = end;
            Ok(start)
        };
        let at = take(&mut pos, 4, "label count")?;
        let n_labels = u32::from_le_bytes(bytes[at..at + 4].try_into().expect("4 bytes")) as usize;
        let mut labels = LabelInterner::new();
        for _ in 0..n_labels {
            let at = take(&mut pos, 2, "label length")?;
            let n = u16::from_le_bytes(bytes[at..at + 2].try_into().expect("2 bytes")) as usize;
            let at = take(&mut pos, n, "label bytes")?;
            let name = std::str::from_utf8(&bytes[at..at + n]).map_err(|_| ReadError::BadLabel)?;
            labels.intern(name);
        }

        // Level directory: one strided validation pass per level. Every
        // record's length prefix must equal the level's fixed key width,
        // keys must be strictly ascending (canonical sorted order — what
        // makes the lookup a binary search) and structurally valid.
        let at = take(&mut pos, 1, "summary order")?;
        let k = bytes[at] as usize;
        let mut levels = Vec::with_capacity(k);
        let mut scratch = Twig::single(LabelId(0));
        for size in 1..=k {
            let at = take(&mut pos, 1, "level header")?;
            let pruned = bytes[at] != 0;
            let at = take(&mut pos, 4, "level header")?;
            let entries =
                u32::from_le_bytes(bytes[at..at + 4].try_into().expect("4 bytes")) as usize;
            let key_len = size * 6;
            let stride = 2 + key_len + 8;
            let total = entries
                .checked_mul(stride)
                .ok_or(ReadError::Truncated("level records"))?;
            let start = take(&mut pos, total, "level records")?;
            let mut prev: Option<&[u8]> = None;
            for i in 0..entries {
                let rec_at = start + i * stride;
                let len = u16::from_le_bytes(bytes[rec_at..rec_at + 2].try_into().expect("2 bytes"))
                    as usize;
                if len != key_len {
                    return Err(ReadError::BadKey.into());
                }
                let key = &bytes[rec_at + 2..rec_at + 2 + key_len];
                if prev.is_some_and(|p| p >= key) {
                    return Err(ReadError::Corrupt("records out of canonical order").into());
                }
                prev = Some(key);
                if !decode_bytes_into_checked(key, &mut scratch, size, labels.len()) {
                    return Err(ReadError::BadKey.into());
                }
            }
            levels.push(LevelDir {
                start,
                entries,
                stride,
                pruned,
            });
        }
        if pos != bytes.len() {
            return Err(ReadError::Corrupt("trailing bytes after payload").into());
        }
        Ok(Self {
            backing,
            labels,
            levels,
            generation: next_generation(),
            lookups: AtomicU64::new(0),
        })
    }

    /// Bytes served by this catalog (the whole mapped or read file).
    pub fn bytes_mapped(&self) -> usize {
        self.backing.bytes().len()
    }

    /// Whether the file is actually memory-mapped (`false` on the plain-read
    /// fallback).
    pub fn is_mapped(&self) -> bool {
        match self.backing {
            #[cfg(unix)]
            Backing::Mapped(_) => true,
            Backing::Owned(_) => false,
        }
    }

    /// Lookups served since open (or since the last
    /// [`take_lookups`](Self::take_lookups)).
    pub fn lookups(&self) -> u64 {
        self.lookups.load(Ordering::Relaxed)
    }

    /// Drains the lookup counter into `rec` as `catalog.mmap.lookups`.
    pub fn flush_lookups(&self, rec: &dyn tl_obs::Recorder) {
        let n = self.lookups.swap(0, Ordering::Relaxed);
        if n > 0 {
            rec.add(tl_obs::names::CATALOG_MMAP_LOOKUPS, n);
        }
    }

    /// Total stored patterns (directory metadata, no scan).
    pub fn len(&self) -> usize {
        self.levels.iter().map(|l| l.entries).sum()
    }

    /// Whether the catalog stores nothing.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Materializes the mapped content back into an in-memory lattice
    /// (for tooling that needs to mutate; estimation does not use this).
    pub fn to_lattice(&self) -> Result<TreeLattice, ReadError> {
        crate::serialize::from_bytes(self.backing.bytes())
    }
}

/// Strict decode for validation: size and label range checked.
fn decode_bytes_into_checked(
    bytes: &[u8],
    scratch: &mut Twig,
    expected_size: usize,
    n_labels: usize,
) -> bool {
    let key = tl_twig::TwigKey::from_raw(bytes.to_vec().into_boxed_slice());
    let Some(twig) = key.try_decode() else {
        return false;
    };
    if twig.len() != expected_size {
        return false;
    }
    if twig.nodes().any(|n| twig.label(n).index() >= n_labels) {
        return false;
    }
    *scratch = twig;
    true
}

impl PatternStore for MmapCatalog {
    fn lookup_bytes(&self, probe: &[u8]) -> Lookup {
        self.lookups.fetch_add(1, Ordering::Relaxed);
        let size = probe.len() / 6;
        if size == 0 || size > self.levels.len() {
            return Lookup::TooLarge;
        }
        let dir = self.levels[size - 1];
        let bytes = self.backing.bytes();
        let key_len = size * 6;
        // Binary search over the fixed-stride sorted records.
        let (mut lo, mut hi) = (0usize, dir.entries);
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            let at = dir.start + mid * dir.stride + 2;
            let key = &bytes[at..at + key_len];
            match key.cmp(probe) {
                std::cmp::Ordering::Less => lo = mid + 1,
                std::cmp::Ordering::Greater => hi = mid,
                std::cmp::Ordering::Equal => {
                    let count_at = at + key_len;
                    let count = u64::from_le_bytes(
                        bytes[count_at..count_at + 8].try_into().expect("8 bytes"),
                    );
                    return Lookup::Exact(count);
                }
            }
        }
        if dir.pruned {
            Lookup::Derivable
        } else {
            Lookup::Exact(0)
        }
    }

    #[inline]
    fn max_size(&self) -> usize {
        self.levels.len()
    }
}

impl Catalog for MmapCatalog {
    #[inline]
    fn labels(&self) -> &LabelInterner {
        &self.labels
    }

    #[inline]
    fn generation(&self) -> u64 {
        self.generation
    }

    #[inline]
    fn served_lookups(&self) -> u64 {
        self.lookups()
    }
}

/// Engineless estimation against any catalog backend: the decomposition DAG
/// with a per-call cache, plus the unknown-label guard every estimation
/// entry point applies. Equivalent to [`TreeLattice::estimate_with`] when
/// the catalog is a `TreeLattice`.
pub fn estimate_catalog<C: Catalog + ?Sized>(
    catalog: &C,
    twig: &Twig,
    estimator: Estimator,
    opts: &EstimateOptions,
) -> f64 {
    if twig
        .nodes()
        .any(|n| twig.label(n).index() >= catalog.labels().len())
    {
        return 0.0;
    }
    let mut cache = dag::LocalIdCache::default();
    dag::estimate_dag(catalog, twig, estimator, opts, &mut cache).0
}

/// Parses a query against a catalog's label table and estimates it (new
/// labels map to fresh ids, which estimate to zero) — the catalog-backend
/// sibling of [`TreeLattice::estimate_query`].
pub fn estimate_catalog_query<C: Catalog + ?Sized>(
    catalog: &C,
    query: &str,
    estimator: Estimator,
) -> Result<f64, TwigParseError> {
    let mut scratch = catalog.labels().clone();
    let twig = tl_twig::parse_twig(query, &mut scratch)?;
    Ok(estimate_catalog(
        catalog,
        &twig,
        estimator,
        &EstimateOptions::default(),
    ))
}

#[cfg(test)]
mod tests {
    use tl_xml::{parse_document, ParseOptions};

    use super::*;
    use crate::{BuildConfig, Estimator};

    fn sample_lattice() -> TreeLattice {
        let doc = parse_document(
            b"<r><a><b/><c/></a><a><b/></a><d><a><c/></a></d></r>",
            ParseOptions::default(),
        )
        .unwrap();
        TreeLattice::build(&doc, &BuildConfig::with_k(3))
    }

    fn write_lattice(lat: &TreeLattice, name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "tl-catalog-test-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(name);
        std::fs::write(&path, lat.to_bytes()).unwrap();
        path
    }

    #[test]
    fn mmap_lookups_match_in_memory_summary() {
        let lat = sample_lattice();
        let path = write_lattice(&lat, "lookups.tlat");
        let mmap = MmapCatalog::open(&path).unwrap();
        assert_eq!(mmap.max_size(), lat.k());
        assert_eq!(mmap.len(), lat.summary().len());
        let mut enc = tl_twig::canonical::KeyEncoder::new();
        let mut buf = Vec::new();
        for size in 1..=lat.k() {
            for (key, _) in lat.summary().iter_level(size) {
                let twig = key.decode();
                enc.encode_into(&twig, &mut buf);
                assert_eq!(
                    mmap.lookup_bytes(&buf),
                    lat.summary().lookup_bytes(&buf),
                    "stored key must match"
                );
            }
        }
        // Misses agree too (complete level ⇒ exact zero).
        let mut it = lat.labels().clone();
        let absent = tl_twig::parse_twig("b/d", &mut it).unwrap();
        enc.encode_into(&absent, &mut buf);
        assert_eq!(mmap.lookup_bytes(&buf), Lookup::Exact(0));
        assert_eq!(lat.summary().lookup_bytes(&buf), Lookup::Exact(0));
        assert!(mmap.lookups() > 0, "lookup counter advances");
    }

    #[test]
    fn mmap_preserves_pruned_semantics() {
        let mut lat = sample_lattice();
        lat.prune(0.0);
        let path = write_lattice(&lat, "pruned.tlat");
        let mmap = MmapCatalog::open(&path).unwrap();
        let mut enc = tl_twig::canonical::KeyEncoder::new();
        let mut buf = Vec::new();
        let mut it = lat.labels().clone();
        // A pattern the pruning dropped: derivable on both backends.
        let mut derivable_checked = false;
        for size in 3..=lat.k() {
            if !lat.summary().is_pruned(size) {
                continue;
            }
            // Probe an absent key on a pruned level: a/a/... chains never
            // occur in the sample document.
            let chain = "a/".repeat(size - 1) + "a";
            let t = tl_twig::parse_twig(&chain, &mut it).unwrap();
            enc.encode_into(&t, &mut buf);
            assert_eq!(mmap.lookup_bytes(&buf), Lookup::Derivable);
            derivable_checked = true;
        }
        assert!(derivable_checked, "sample summary must have a pruned level");
    }

    #[test]
    fn estimates_agree_across_all_backends() {
        let lat = sample_lattice();
        let path = write_lattice(&lat, "backends.tlat");
        let file = FileCatalog::open(&path).unwrap();
        let mmap = MmapCatalog::open(&path).unwrap();
        for q in ["a", "a/b", "a[b][c]", "r/a/b", "d/a/c", "r[a[b]][d]"] {
            for est in Estimator::ALL {
                let want = lat.estimate_query(q, est).unwrap();
                let from_file = estimate_catalog_query(&file, q, est).unwrap();
                let from_mmap = estimate_catalog_query(&mmap, q, est).unwrap();
                assert_eq!(want.to_bits(), from_file.to_bits(), "{est} {q} (file)");
                assert_eq!(want.to_bits(), from_mmap.to_bits(), "{est} {q} (mmap)");
            }
        }
    }

    #[test]
    fn unknown_labels_estimate_zero_via_catalog() {
        let lat = sample_lattice();
        let path = write_lattice(&lat, "unknown.tlat");
        let mmap = MmapCatalog::open(&path).unwrap();
        let v = estimate_catalog_query(&mmap, "nosuchtag/a", Estimator::Recursive).unwrap();
        assert_eq!(v, 0.0);
    }

    #[test]
    fn corrupt_files_are_rejected_at_open() {
        let lat = sample_lattice();
        let path = write_lattice(&lat, "corrupt.tlat");
        let good = std::fs::read(&path).unwrap();

        // Truncation.
        std::fs::write(&path, &good[..good.len() - 3]).unwrap();
        assert!(matches!(
            MmapCatalog::open(&path),
            Err(CatalogError::Corrupt(ReadError::Truncated(_)))
        ));

        // Payload bit flip.
        let mut flipped = good.clone();
        let last = flipped.len() - 1;
        flipped[last] ^= 0x10;
        std::fs::write(&path, &flipped).unwrap();
        assert!(matches!(
            MmapCatalog::open(&path),
            Err(CatalogError::Corrupt(ReadError::Corrupt(
                "checksum mismatch"
            )))
        ));

        // Bad magic / empty file.
        std::fs::write(&path, b"NOPE").unwrap();
        assert!(matches!(
            MmapCatalog::open(&path),
            Err(CatalogError::Corrupt(ReadError::BadMagic))
        ));
        std::fs::write(&path, b"").unwrap();
        assert!(matches!(
            MmapCatalog::open(&path),
            Err(CatalogError::Corrupt(ReadError::BadMagic))
        ));

        // Missing file.
        assert!(matches!(
            MmapCatalog::open(&path.with_extension("missing")),
            Err(CatalogError::Io(_))
        ));
    }

    #[test]
    fn every_single_byte_flip_is_rejected_by_mmap_open() {
        let lat = sample_lattice();
        let path = write_lattice(&lat, "flips.tlat");
        let good = std::fs::read(&path).unwrap();
        for i in 0..good.len() {
            let mut corrupt = good.clone();
            corrupt[i] ^= 0x01;
            std::fs::write(&path, &corrupt).unwrap();
            assert!(
                MmapCatalog::open(&path).is_err(),
                "flip at byte {i} must not open"
            );
        }
    }

    #[test]
    fn out_of_order_records_with_valid_checksum_rejected() {
        // Craft a file whose checksum is valid but whose level-1 records
        // are swapped out of canonical order; the strided validation pass
        // must refuse it (the binary search depends on the order).
        let lat = sample_lattice();
        let path = write_lattice(&lat, "order.tlat");
        let mut bytes = std::fs::read(&path).unwrap();
        let mut idx = HEADER_LEN + 4;
        for _ in 0..lat.labels().len() {
            let len = u16::from_le_bytes([bytes[idx], bytes[idx + 1]]) as usize;
            idx += 2 + len;
        }
        idx += 1; // k
        idx += 1; // level-1 pruned flag
        let n = u32::from_le_bytes(bytes[idx..idx + 4].try_into().unwrap()) as usize;
        assert!(n >= 2, "need two level-1 records to swap");
        idx += 4;
        let stride = 2 + 6 + 8;
        let (a, b) = (idx, idx + stride);
        let mut tmp = vec![0u8; stride];
        tmp.copy_from_slice(&bytes[a..a + stride]);
        bytes.copy_within(b..b + stride, a);
        bytes[b..b + stride].copy_from_slice(&tmp);
        let crc = crc32(&bytes[HEADER_LEN..]);
        bytes[5..9].copy_from_slice(&crc.to_le_bytes());
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            MmapCatalog::open(&path),
            Err(CatalogError::Corrupt(ReadError::Corrupt(
                "records out of canonical order"
            )))
        ));
    }

    #[test]
    fn observed_open_records_counters() {
        let lat = sample_lattice();
        let path = write_lattice(&lat, "observed.tlat");
        let rec = tl_obs::MetricsRecorder::new();
        let mmap = MmapCatalog::open_observed(&path, &rec).unwrap();
        estimate_catalog_query(&mmap, "a/b", Estimator::Recursive).unwrap();
        mmap.flush_lookups(&rec);
        let snap = rec.snapshot();
        assert_eq!(snap.counters[tl_obs::names::CATALOG_MMAP_OPENS], 1);
        assert_eq!(
            snap.counters[tl_obs::names::CATALOG_MMAP_BYTES_MAPPED],
            mmap.bytes_mapped() as u64
        );
        assert!(snap.counters[tl_obs::names::CATALOG_MMAP_LOOKUPS] > 0);
        // Flushing drained the internal counter.
        assert_eq!(mmap.lookups(), 0);
    }

    #[test]
    fn generations_are_fresh_per_open() {
        let lat = sample_lattice();
        let path = write_lattice(&lat, "gen.tlat");
        let a = MmapCatalog::open(&path).unwrap();
        let b = MmapCatalog::open(&path).unwrap();
        assert_ne!(Catalog::generation(&a), Catalog::generation(&b));
    }
}
