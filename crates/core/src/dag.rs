//! The iterative decomposition-DAG evaluator — the allocation-free,
//! id-addressed replacement for the recursive estimator's hot path.
//!
//! The recursive scheme (Figure 4) re-derives the same sub-twigs constantly:
//! the three operands of neighboring removable pairs overlap in all but one
//! or two nodes, so one voting step over `p` pairs references `3p` operands
//! of which typically far fewer are distinct. The recursive implementation
//! hides that sharing inside a byte-keyed memo probed with freshly encoded,
//! freshly boxed keys. This module makes the sharing explicit:
//!
//! 1. every sub-twig is interned to a dense [`TwigId`] once (the
//!    [`IdCache`]'s interner), after which all bookkeeping is `u32`s;
//! 2. a query is expanded — iteratively, with an explicit stack — into a
//!    *decomposition DAG* held in flat arenas (`nodes`, `pairs`): one node
//!    per distinct sub-twig, one `[t1, t2, t12]` id triple per taken
//!    removable pair, structural dedup via an id-to-node index;
//! 3. unresolved nodes are evaluated bottom-up in one pass, ordered by
//!    (size, creation index) — a valid topological order because every
//!    operand is strictly smaller than the twig it decomposes — and each
//!    unique node is evaluated exactly once, its value stored back to the
//!    shared cache so later queries in the batch resolve it on sight.
//!
//! The arithmetic per node replicates the recursive `decompose` loop
//! verbatim (same pair enumeration order, same `<= 0` short-circuit
//! structure, same summation order), so results are bit-identical to the
//! recursive path; the only observable difference is *eagerness* — operands
//! the recursion skipped past a zero factor still get evaluated and cached,
//! which can only add cache entries, never change a value (every sub-twig's
//! estimate is a pure function of the summary and the voting class).
//!
//! Two cold-path economies keep single-query latency below the reference
//! engine's (the `gate.decompose.min_cold_speedup` floor): the arena
//! buffers live in a thread-local [`DagScratch`] pool, so a cold query
//! reuses the previous query's capacity instead of growing fresh vectors;
//! and roots the pattern store can answer directly (within-`k` patterns —
//! exact counts or trivially-zero levels) return after one store probe
//! without touching the arenas at all.
//!
//! The evaluator is generic over [`PatternStore`], so the same DAG runs
//! against the in-memory summary, the eager file catalog, or the zero-copy
//! mmap catalog (see [`crate::catalog`]).

use tl_twig::canonical::{decode_bytes_into, key_of, KeyEncoder};
use tl_twig::ops::{decompose_pair_into, fixed_cover_with, removable_pairs_into, CoverStrategy};
use tl_twig::{Twig, TwigId, TwigInterner, TwigNodeId};
use tl_xml::{FxHashMap, LabelId};

use crate::catalog::PatternStore;
use crate::estimator::{EstimateOptions, Estimator};
use crate::summary::Lookup;

/// Where interned ids and resolved sub-twig estimates live during DAG
/// evaluation. The id-keyed sibling of the byte-keyed `SubtwigCache`: the
/// per-query implementation is [`LocalIdCache`]; the engine substitutes its
/// sharded cross-query cache.
pub(crate) trait IdCache {
    /// Interns a canonical encoding, returning its dense id.
    fn intern(&mut self, bytes: &[u8]) -> TwigId;

    /// Returns the cached estimate for an interned id, if present.
    fn lookup(&mut self, id: TwigId) -> Option<f64>;

    /// Records the estimate for an interned id.
    fn store(&mut self, id: TwigId, value: f64);
}

/// Per-query id cache: a private interner plus a dense value table. Ids are
/// dense and first-sighting ordered, so the values live in a flat vector —
/// no hashing after the intern.
#[derive(Debug, Default)]
pub(crate) struct LocalIdCache {
    interner: TwigInterner,
    values: Vec<Option<f64>>,
}

impl IdCache for LocalIdCache {
    fn intern(&mut self, bytes: &[u8]) -> TwigId {
        self.interner.intern_bytes(bytes).0
    }

    fn lookup(&mut self, id: TwigId) -> Option<f64> {
        self.values.get(id as usize).copied().flatten()
    }

    fn store(&mut self, id: TwigId, value: f64) {
        let ix = id as usize;
        if self.values.len() <= ix {
            self.values.resize(ix + 1, None);
        }
        self.values[ix] = Some(value);
    }
}

/// Evaluation statistics for one DAG build: `nodes` distinct sub-twigs
/// materialized, `refs` total references to them. `refs / nodes` is the
/// shared-sub-twig dedup ratio — strictly greater than 1 whenever
/// decomposition operands overlap.
#[derive(Clone, Copy, Debug, Default)]
pub(crate) struct DagStats {
    pub nodes: u64,
    pub refs: u64,
}

enum State {
    Resolved(f64),
    /// Awaiting bottom-up evaluation; the fields slice this node's operand
    /// triples out of the shared pair arena.
    Pending {
        first_pair: u32,
        n_pairs: u32,
    },
}

/// One distinct sub-twig: its interned id, node count, and resolution state.
struct DagNode {
    id: TwigId,
    size: u32,
    state: State,
}

/// The pooled arena storage behind a [`DagEvaluator`]: node and pair
/// arenas, the dedup index, worklists, and the encode/decode scratch
/// buffers. One instance lives per thread (see [`with_dag_scratch`]) and is
/// reset — clearing lengths, keeping capacities — at the start of every
/// evaluation, so cold queries stop paying the arena's allocation ramp-up
/// after the thread's first query.
#[derive(Default)]
pub(crate) struct DagScratch {
    /// Node arena, in first-reference order.
    nodes: Vec<DagNode>,
    /// Pair arena: `[t1, t2, t12]` node indices per taken removable pair.
    pairs: Vec<[u32; 3]>,
    /// Structural dedup: interned id → node index.
    index: FxHashMap<TwigId, u32>,
    /// Node indices awaiting evaluation this round.
    pending: Vec<u32>,
    /// Expansion worklist: (node index, expansion depth, decoded twig).
    build_stack: Vec<(u32, usize, Twig)>,
    encoder: KeyEncoder,
    twig_pool: Vec<Twig>,
    byte_pool: Vec<Vec<u8>>,
    rm_nodes: Vec<TwigNodeId>,
    rm_pairs: Vec<(TwigNodeId, TwigNodeId)>,
    /// Evaluation order scratch for `evaluate`.
    order: Vec<u32>,
}

impl DagScratch {
    /// Clears per-evaluation state; pools and capacities survive.
    fn reset(&mut self) {
        // Pending build twigs would leak out of the pool otherwise (a
        // previous evaluation can only leave these empty, but reset must
        // hold unconditionally).
        for (_, _, twig) in self.build_stack.drain(..) {
            self.twig_pool.push(twig);
        }
        self.nodes.clear();
        self.pairs.clear();
        self.index.clear();
        self.pending.clear();
        self.order.clear();
    }
}

thread_local! {
    /// One arena pool per thread: DAG evaluation never nests (no callback
    /// re-enters the estimator), so a single borrow is always available.
    static DAG_SCRATCH: std::cell::RefCell<DagScratch> =
        std::cell::RefCell::new(DagScratch::default());
}

/// Runs `f` with the thread's pooled [`DagScratch`].
fn with_dag_scratch<R>(f: impl FnOnce(&mut DagScratch) -> R) -> R {
    DAG_SCRATCH.with(|s| f(&mut s.borrow_mut()))
}

/// The explicit decomposition DAG of one query (or one batch of fix-sized
/// windows), built and evaluated without recursion against any
/// [`PatternStore`] backend.
pub(crate) struct DagEvaluator<'a, 's, 'c, C: IdCache, S: PatternStore + ?Sized> {
    store: &'s S,
    cache: &'c mut C,
    voting: bool,
    cap: usize,
    scratch: &'a mut DagScratch,
    /// Deepest expansion reached — mirrors the recursion's depth counter:
    /// the root of each `eval_twig` expands at depth 1, its operands at 2, …
    max_depth: usize,
    refs: u64,
}

impl<'a, 's, 'c, C: IdCache, S: PatternStore + ?Sized> DagEvaluator<'a, 's, 'c, C, S> {
    pub(crate) fn new(
        store: &'s S,
        cache: &'c mut C,
        voting: bool,
        cap: usize,
        scratch: &'a mut DagScratch,
    ) -> Self {
        scratch.reset();
        Self {
            store,
            cache,
            voting,
            cap,
            scratch,
            max_depth: 0,
            refs: 0,
        }
    }

    pub(crate) fn stats(&self) -> DagStats {
        DagStats {
            nodes: self.scratch.nodes.len() as u64,
            refs: self.refs,
        }
    }

    pub(crate) fn max_depth(&self) -> usize {
        self.max_depth
    }

    /// Evaluates one twig: interns it, expands everything reachable, runs
    /// one bottom-up pass, returns the root's estimate. Callable repeatedly
    /// on the same evaluator — fix-sized windows share the node table.
    pub(crate) fn eval_twig(&mut self, twig: &Twig) -> f64 {
        let mut buf = self.scratch.byte_pool.pop().unwrap_or_default();
        self.scratch.encoder.encode_into(twig, &mut buf);
        let root = self.ensure(&buf, 1);
        self.scratch.byte_pool.push(buf);
        self.build();
        self.evaluate();
        self.resolved(root)
    }

    /// [`eval_twig`](Self::eval_twig) for a root whose canonical `bytes`
    /// were already encoded, interned to `id`, and looked up (missing) by
    /// the caller's fast-path probe — the cache must see exactly one probe
    /// per root either way.
    fn eval_probed_root(&mut self, bytes: &[u8], id: TwigId) -> f64 {
        self.refs += 1;
        let root = self.admit(bytes, 1, id, None);
        self.build();
        self.evaluate();
        self.resolved(root)
    }

    /// Interns `bytes` and returns its node index, creating the node if this
    /// is its first reference: resolved straight from the cache or store
    /// where possible, queued for expansion otherwise. `depth` is the
    /// expansion depth the node gets *if* it needs decomposing.
    fn ensure(&mut self, bytes: &[u8], depth: usize) -> u32 {
        self.refs += 1;
        let id = self.cache.intern(bytes);
        if let Some(&ix) = self.scratch.index.get(&id) {
            return ix;
        }
        let cached = self.cache.lookup(id);
        self.admit(bytes, depth, id, cached)
    }

    /// Materializes the node for a first-referenced id, given the result of
    /// its (already counted) cache lookup.
    fn admit(&mut self, bytes: &[u8], depth: usize, id: TwigId, cached: Option<f64>) -> u32 {
        let ix = u32::try_from(self.scratch.nodes.len()).expect("DAG node arena overflow");
        let size = (bytes.len() / 6) as u32;
        let state = if let Some(v) = cached {
            State::Resolved(v)
        } else {
            match self.store.lookup_bytes(bytes) {
                Lookup::Exact(c) => {
                    let v = c as f64;
                    self.cache.store(id, v);
                    State::Resolved(v)
                }
                Lookup::Derivable | Lookup::TooLarge => {
                    if size <= 2 {
                        // Levels 1–2 are never pruned; reaching here means
                        // the store genuinely lacks the pattern.
                        self.cache.store(id, 0.0);
                        State::Resolved(0.0)
                    } else {
                        let mut twig = self
                            .scratch
                            .twig_pool
                            .pop()
                            .unwrap_or_else(|| Twig::single(LabelId(0)));
                        decode_bytes_into(bytes, &mut twig);
                        self.scratch.build_stack.push((ix, depth, twig));
                        self.scratch.pending.push(ix);
                        // Placeholder; `expand` fills the pair slice in.
                        State::Pending {
                            first_pair: 0,
                            n_pairs: 0,
                        }
                    }
                }
            }
        };
        self.scratch.nodes.push(DagNode { id, size, state });
        self.scratch.index.insert(id, ix);
        ix
    }

    /// Drains the expansion worklist depth-first.
    fn build(&mut self) {
        while let Some((ix, depth, twig)) = self.scratch.build_stack.pop() {
            self.max_depth = self.max_depth.max(depth);
            self.expand(ix, depth, &twig);
            self.scratch.twig_pool.push(twig);
        }
    }

    /// Materializes one node's removable-pair operands into the arenas.
    fn expand(&mut self, ix: u32, depth: usize, twig: &Twig) {
        let mut rm_nodes = std::mem::take(&mut self.scratch.rm_nodes);
        let mut rm_pairs = std::mem::take(&mut self.scratch.rm_pairs);
        removable_pairs_into(twig, &mut rm_nodes, &mut rm_pairs);
        debug_assert!(!rm_pairs.is_empty(), "size >= 3 twigs always decompose");
        let take = if self.voting { self.cap } else { 1 };
        let n = take.min(rm_pairs.len());
        let first_pair = u32::try_from(self.scratch.pairs.len()).expect("DAG pair arena overflow");
        let mut t1 = self.pooled_twig();
        let mut t2 = self.pooled_twig();
        let mut t12 = self.pooled_twig();
        for &(u, v) in rm_pairs.iter().take(n) {
            decompose_pair_into(twig, u, v, &mut t1, &mut t2, &mut t12);
            let a = self.ensure_twig(&t1, depth + 1);
            let b = self.ensure_twig(&t2, depth + 1);
            let c = self.ensure_twig(&t12, depth + 1);
            self.scratch.pairs.push([a, b, c]);
        }
        self.scratch.twig_pool.push(t1);
        self.scratch.twig_pool.push(t2);
        self.scratch.twig_pool.push(t12);
        self.scratch.rm_nodes = rm_nodes;
        self.scratch.rm_pairs = rm_pairs;
        self.scratch.nodes[ix as usize].state = State::Pending {
            first_pair,
            n_pairs: n as u32,
        };
    }

    fn pooled_twig(&mut self) -> Twig {
        self.scratch
            .twig_pool
            .pop()
            .unwrap_or_else(|| Twig::single(LabelId(0)))
    }

    fn ensure_twig(&mut self, twig: &Twig, depth: usize) -> u32 {
        let mut buf = self.scratch.byte_pool.pop().unwrap_or_default();
        self.scratch.encoder.encode_into(twig, &mut buf);
        let ix = self.ensure(&buf, depth);
        self.scratch.byte_pool.push(buf);
        ix
    }

    /// One bottom-up pass over this round's pending nodes, smallest first.
    /// Every operand of a pending node is strictly smaller, so by the time a
    /// node is reached all its operands are resolved — either earlier this
    /// round or in a previous one. Each node's value replicates the
    /// recursive `decompose` average over its taken pairs exactly.
    fn evaluate(&mut self) {
        if self.scratch.pending.is_empty() {
            return;
        }
        std::mem::swap(&mut self.scratch.pending, &mut self.scratch.order);
        self.scratch.pending.clear();
        let order = std::mem::take(&mut self.scratch.order);
        {
            let nodes = &self.scratch.nodes;
            let mut order = order;
            order.sort_unstable_by_key(|&ix| (nodes[ix as usize].size, ix));
            self.scratch.order = order;
        }
        for i in 0..self.scratch.order.len() {
            let ix = self.scratch.order[i];
            let (first, n) = match self.scratch.nodes[ix as usize].state {
                State::Pending {
                    first_pair,
                    n_pairs,
                } => (first_pair as usize, n_pairs as usize),
                State::Resolved(_) => unreachable!("pending list holds only pending nodes"),
            };
            let mut sum = 0.0;
            let mut cnt = 0usize;
            for p in first..first + n {
                let [a, b, c] = self.scratch.pairs[p];
                let e1 = self.resolved(a);
                if e1 <= 0.0 {
                    cnt += 1;
                    continue;
                }
                let e2 = self.resolved(b);
                if e2 <= 0.0 {
                    cnt += 1;
                    continue;
                }
                let e12 = self.resolved(c);
                if e12 > 0.0 {
                    sum += e1 * e2 / e12;
                }
                cnt += 1;
            }
            let value = if cnt == 0 { 0.0 } else { sum / cnt as f64 };
            self.scratch.nodes[ix as usize].state = State::Resolved(value);
            self.cache.store(self.scratch.nodes[ix as usize].id, value);
        }
        self.scratch.order.clear();
    }

    fn resolved(&self, ix: u32) -> f64 {
        match self.scratch.nodes[ix as usize].state {
            State::Resolved(v) => v,
            State::Pending { .. } => unreachable!("operand evaluated before its dependent"),
        }
    }
}

thread_local! {
    /// Scratch for the root-probe fast path: one pooled encoder and key
    /// buffer reused across queries on this thread, so a repeat (or
    /// store-answered) query is handled with zero allocations.
    static PROBE_SCRATCH: std::cell::RefCell<(KeyEncoder, Vec<u8>)> =
        std::cell::RefCell::new((KeyEncoder::new(), Vec::new()));
}

/// The DAG-backed equivalent of the recursive
/// `estimate_with_cache_depth`: same estimator dispatch, same
/// canonicalize-first handling for the fix-sized covers, bit-identical
/// values. Generic over the pattern-store backend. Returns
/// `(estimate, max expansion depth, dag statistics)`.
pub(crate) fn estimate_dag<C: IdCache, S: PatternStore + ?Sized>(
    store: &S,
    twig: &Twig,
    estimator: Estimator,
    opts: &EstimateOptions,
    cache: &mut C,
) -> (f64, usize, DagStats) {
    let voting = matches!(estimator, Estimator::RecursiveVoting);
    let cap = match estimator {
        Estimator::RecursiveVoting => opts.voting_cap.max(1),
        _ => 1,
    };
    let k = store.max_size();
    match estimator {
        Estimator::Recursive | Estimator::RecursiveVoting => PROBE_SCRATCH.with(|s| {
            // Probe the root before building anything: on a warm cache the
            // whole query resolves to one intern and one lookup, with no
            // arena, no expansion, and no allocation.
            let (enc, buf) = &mut *s.borrow_mut();
            enc.encode_into(twig, buf);
            let id = cache.intern(buf);
            if let Some(v) = cache.lookup(id) {
                // One reference, no node materialized: warm repeats raise
                // the cross-query dedup ratio instead of diluting it.
                return (v, 0, DagStats { nodes: 0, refs: 1 });
            }
            // Cold direct probe, mirroring `admit`'s resolution rules:
            // roots the store can answer (within-k exact counts, trivially
            // absent size ≤ 2 patterns) skip the arena machinery entirely.
            match store.lookup_bytes(buf) {
                Lookup::Exact(c) => {
                    let v = c as f64;
                    cache.store(id, v);
                    return (v, 0, DagStats { nodes: 0, refs: 1 });
                }
                Lookup::Derivable | Lookup::TooLarge if buf.len() / 6 <= 2 => {
                    cache.store(id, 0.0);
                    return (0.0, 0, DagStats { nodes: 0, refs: 1 });
                }
                Lookup::Derivable | Lookup::TooLarge => {}
            }
            with_dag_scratch(|scratch| {
                let mut ev = DagEvaluator::new(store, cache, voting, cap, scratch);
                let value = ev.eval_probed_root(buf, id);
                (value, ev.max_depth(), ev.stats())
            })
        }),
        // Canonicalize first so the pre-order cover (and hence the result)
        // is identical for isomorphic queries.
        Estimator::FixSized => with_dag_scratch(|scratch| {
            let mut ev = DagEvaluator::new(store, cache, voting, cap, scratch);
            let value = eval_fixed(
                &mut ev,
                &key_of(twig).decode(),
                CoverStrategy::AncestorsFirst,
                k,
            );
            (value, ev.max_depth(), ev.stats())
        }),
        Estimator::FixSizedVoting => with_dag_scratch(|scratch| {
            let mut ev = DagEvaluator::new(store, cache, voting, cap, scratch);
            let canonical = key_of(twig).decode();
            let strategies = [CoverStrategy::AncestorsFirst, CoverStrategy::ChildrenFirst];
            let mut sum = 0.0f64;
            for &st in &strategies {
                sum += eval_fixed(&mut ev, &canonical, st, k);
            }
            let value = sum / strategies.len() as f64;
            (value, ev.max_depth(), ev.stats())
        }),
    }
}

/// The fix-sized telescoping product (Lemma 3) over DAG-evaluated windows.
/// Windows are evaluated lazily in cover order with the same early-zero
/// return as the recursive variant, so both the value and the set of
/// evaluated windows match it exactly.
fn eval_fixed<C: IdCache, S: PatternStore + ?Sized>(
    ev: &mut DagEvaluator<'_, '_, '_, C, S>,
    twig: &Twig,
    strategy: CoverStrategy,
    k: usize,
) -> f64 {
    if twig.len() <= k {
        return ev.eval_twig(twig);
    }
    assert!(
        k >= 2,
        "fix-sized estimation requires a summary of order >= 2"
    );
    let mut numerator = 1.0f64;
    let mut denominator = 1.0f64;
    for step in fixed_cover_with(twig, k, strategy) {
        let s_sub = ev.eval_twig(&step.subtree);
        if s_sub <= 0.0 {
            return 0.0;
        }
        numerator *= s_sub;
        if let Some(overlap) = &step.overlap {
            let s_ov = ev.eval_twig(overlap);
            if s_ov <= 0.0 {
                return 0.0;
            }
            denominator *= s_ov;
        }
    }
    numerator / denominator
}

#[cfg(test)]
mod tests {
    use tl_twig::canonical::key_of;
    use tl_xml::LabelInterner;

    use super::*;
    use crate::estimator::{estimate_with_cache_depth, EstimateOptions, Estimator};
    use crate::summary::Summary;

    fn summary_of(patterns: &[(&str, u64)], k: usize) -> (Summary, LabelInterner) {
        let mut it = LabelInterner::new();
        let mut levels = vec![FxHashMap::default(); k];
        for (q, c) in patterns {
            let t = tl_twig::parse_twig(q, &mut it).unwrap();
            assert!(t.len() <= k, "pattern {q} larger than k");
            levels[t.len() - 1].insert(key_of(&t), *c);
        }
        (Summary::from_parts(levels, vec![false; k]), it)
    }

    fn q(it: &mut LabelInterner, s: &str) -> Twig {
        tl_twig::parse_twig(s, it).unwrap()
    }

    /// The DAG path must agree bit-for-bit with the recursive path on every
    /// estimator, including the reported decomposition depth for queries
    /// with no zero short-circuits.
    #[test]
    fn dag_matches_recursive_path_bitwise() {
        let (s, mut it) = summary_of(
            &[
                ("a", 2),
                ("b", 4),
                ("c", 8),
                ("d", 16),
                ("a/b", 6),
                ("b/c", 12),
                ("c/d", 24),
                ("a/c", 3),
                ("a/d", 5),
                ("b/d", 7),
            ],
            2,
        );
        let queries = [
            "a/b/c/d",
            "a[b][c]",
            "a[b][c][d]",
            "a[b[c]][d]",
            "a/b[c][d]",
        ];
        let opts = EstimateOptions::default();
        for qs in queries {
            let t = q(&mut it, qs);
            for e in Estimator::ALL {
                let mut memo: FxHashMap<tl_twig::TwigKey, f64> = FxHashMap::default();
                let (rec_v, rec_d) = estimate_with_cache_depth(&s, &t, e, &opts, &mut memo);
                let mut cache = LocalIdCache::default();
                let (dag_v, dag_d, stats) = estimate_dag(&s, &t, e, &opts, &mut cache);
                assert_eq!(rec_v.to_bits(), dag_v.to_bits(), "{e} on {qs}");
                assert!(
                    dag_d >= rec_d,
                    "DAG depth can only grow (eagerness): {e} on {qs}"
                );
                assert!(stats.refs >= stats.nodes);
            }
        }
    }

    /// Pinned DAG shape for a known query: the Markov chain `a/b/c/d` over
    /// an order-2 summary expands root → {b/c/d, a/b/c} → shared operands.
    /// Distinct sub-twigs: abcd, bcd, abc, bc, cd, c, ab, b = 8 nodes;
    /// references: 1 (root) + 3 per expansion × 3 expansions = 10, so the
    /// dedup ratio is 10/8 — the `b/c` operand is shared between branches.
    #[test]
    fn dag_node_count_is_pinned_for_markov_chain() {
        let (s, mut it) = summary_of(
            &[
                ("a", 2),
                ("b", 4),
                ("c", 8),
                ("d", 16),
                ("a/b", 6),
                ("b/c", 12),
                ("c/d", 24),
            ],
            2,
        );
        let t = q(&mut it, "a/b/c/d");
        let mut cache = LocalIdCache::default();
        let (value, depth, stats) = estimate_dag(
            &s,
            &t,
            Estimator::Recursive,
            &EstimateOptions::default(),
            &mut cache,
        );
        let expected = 6.0 * 12.0 * 24.0 / (4.0 * 8.0);
        assert!((value - expected).abs() < 1e-9);
        assert_eq!(stats.nodes, 8, "distinct sub-twigs");
        assert_eq!(stats.refs, 10, "total references");
        assert!(stats.refs > stats.nodes, "dedup ratio > 1");
        assert_eq!(depth, 2, "root at 1, b/c/d and a/b/c at 2");
    }

    /// A warm shared cache resolves repeat queries without re-expansion.
    #[test]
    fn warm_cache_resolves_without_expansion() {
        let (s, mut it) = summary_of(&[("a", 2), ("b", 4), ("c", 8), ("a/b", 6), ("b/c", 12)], 2);
        let t = q(&mut it, "a/b/c");
        let opts = EstimateOptions::default();
        let mut cache = LocalIdCache::default();
        let (cold, _, cold_stats) = estimate_dag(&s, &t, Estimator::Recursive, &opts, &mut cache);
        let (warm, warm_depth, warm_stats) =
            estimate_dag(&s, &t, Estimator::Recursive, &opts, &mut cache);
        assert_eq!(cold.to_bits(), warm.to_bits());
        assert!(cold_stats.nodes > 1);
        assert_eq!(warm_stats.nodes, 0, "no node materialized on a warm root");
        assert_eq!(warm_stats.refs, 1, "the repeat query is one reference");
        assert_eq!(warm_depth, 0, "no expansion on a warm cache");
    }

    /// A root the summary answers directly (size ≤ k) must not build a DAG
    /// even on a stone-cold cache — the cold-path economy behind the
    /// decompose gate's cold-speedup floor.
    #[test]
    fn within_k_roots_skip_the_arena_when_cold() {
        let (s, mut it) = summary_of(&[("a", 2), ("b", 4), ("a/b", 6)], 2);
        let opts = EstimateOptions::default();
        // Stored pattern: answered exactly.
        let t = q(&mut it, "a/b");
        let mut cache = LocalIdCache::default();
        let (v, depth, stats) = estimate_dag(&s, &t, Estimator::Recursive, &opts, &mut cache);
        assert_eq!(v, 6.0);
        assert_eq!(stats.nodes, 0, "no node materialized");
        assert_eq!(stats.refs, 1);
        assert_eq!(depth, 0);
        // Absent small pattern: exact zero, same shape.
        let t0 = q(&mut it, "b/a");
        let (v0, _, stats0) = estimate_dag(&s, &t0, Estimator::Recursive, &opts, &mut cache);
        assert_eq!(v0, 0.0);
        assert_eq!(stats0.nodes, 0);
        // Both roots are cached now: a repeat is a pure cache hit.
        let (v1, _, _) = estimate_dag(&s, &t, Estimator::Recursive, &opts, &mut cache);
        assert_eq!(v1.to_bits(), v.to_bits());
    }

    /// Voting over capped pairs only expands the taken pairs, like the
    /// recursion's `pairs.iter().take(cap)`.
    #[test]
    fn voting_cap_limits_expansion() {
        let (s, mut it) = summary_of(
            &[
                ("a", 2),
                ("a/b", 4),
                ("a/c", 6),
                ("a/d", 8),
                ("a[b][c]", 10),
                ("a[b][d]", 20),
                ("a[c][d]", 30),
            ],
            3,
        );
        let t = q(&mut it, "a[b][c][d]");
        let full_opts = EstimateOptions::default();
        let mut cache = LocalIdCache::default();
        let (_, _, full) = estimate_dag(&s, &t, Estimator::RecursiveVoting, &full_opts, &mut cache);
        let capped_opts = EstimateOptions {
            voting_cap: 1,
            ..EstimateOptions::default()
        };
        let mut cache2 = LocalIdCache::default();
        let (capped_v, _, capped) = estimate_dag(
            &s,
            &t,
            Estimator::RecursiveVoting,
            &capped_opts,
            &mut cache2,
        );
        assert!(capped.refs < full.refs, "cap must shrink the DAG");
        let plain = crate::estimator::estimate(&s, &t, Estimator::Recursive, &full_opts);
        assert_eq!(capped_v.to_bits(), plain.to_bits());
    }

    /// Back-to-back evaluations on one thread reuse the pooled scratch and
    /// stay bit-identical to fresh-arena evaluation (the pool only recycles
    /// capacity, never state).
    #[test]
    fn pooled_scratch_is_reset_between_queries() {
        let (s, mut it) = summary_of(
            &[
                ("a", 2),
                ("b", 4),
                ("c", 8),
                ("d", 16),
                ("a/b", 6),
                ("b/c", 12),
                ("c/d", 24),
            ],
            2,
        );
        let opts = EstimateOptions::default();
        let queries = ["a/b/c/d", "a/b/c", "b/c/d", "a/b/c/d"];
        let mut first_pass: Vec<u64> = Vec::new();
        for qs in queries {
            let t = q(&mut it, qs);
            // Fresh cache every time: every evaluation is fully cold and
            // reuses the thread's scratch left dirty by the previous one.
            let mut cache = LocalIdCache::default();
            let (v, _, _) = estimate_dag(&s, &t, Estimator::Recursive, &opts, &mut cache);
            first_pass.push(v.to_bits());
        }
        assert_eq!(first_pass[0], first_pass[3], "same query, same bits");
        // And against the recursive reference, still bit-identical.
        for (qs, bits) in queries.iter().zip(&first_pass) {
            let t = q(&mut it, qs);
            let mut memo: FxHashMap<tl_twig::TwigKey, f64> = FxHashMap::default();
            let (rec_v, _) =
                estimate_with_cache_depth(&s, &t, Estimator::Recursive, &opts, &mut memo);
            assert_eq!(rec_v.to_bits(), *bits, "{qs}");
        }
    }
}
