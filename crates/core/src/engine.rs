//! Batched estimation with a shared cross-query sub-twig cache.
//!
//! The per-query estimators in [`crate::estimator`] memoize sub-twig
//! estimates only for the duration of one query. Realistic workloads
//! (Figure 9's query sets, the online tuner's feedback loop) estimate many
//! structurally overlapping twigs against the same summary, recomputing the
//! same decompositions query after query. [`EstimationEngine`] keeps those
//! sub-twig estimates in a hash-sharded cache that persists across queries
//! and is shared by the worker threads of [`EstimationEngine::estimate_batch`].
//!
//! ## Correctness
//!
//! A cached value is a pure function of three inputs: the summary content,
//! the canonical sub-twig key, and the *effective voting width* (the number
//! of removable pairs averaged per recursion node — 1 for
//! [`Estimator::Recursive`] and both fix-sized estimators, `voting_cap` for
//! [`Estimator::RecursiveVoting`]). The cache is therefore keyed by
//! (generation, voting class, canonical key):
//!
//! * **Generation** — every [`TreeLattice`] carries a generation drawn from
//!   a process-wide counter, reassigned by every mutation
//!   ([`TreeLattice::update_after_edit`], [`TreeLattice::prune`],
//!   [`TreeLattice::set_summary`] — including the online tuner's feedback
//!   path). A shard only answers lookups whose generation matches the one
//!   its entries were computed against, so stale entries are unreachable by
//!   construction and are evicted lazily on the next write.
//! * **Voting class** — estimates computed under different effective voting
//!   widths are distinct cache populations; [`Estimator::Recursive`],
//!   [`Estimator::FixSized`], and [`Estimator::FixSizedVoting`] share class
//!   1 (their inner recursions are identical), `RecursiveVoting` uses its
//!   saturated `voting_cap`.
//!
//! Since the interned-id rework, the key axis is a dense [`TwigId`] from the
//! engine-wide [`TwigInterner`] rather than the canonical byte string
//! itself: each distinct sub-twig encoding is hashed and cloned exactly
//! once, at id assignment; every later probe — including across generations
//! and voting classes — is a `u32` shard-table lookup with no hashing of key
//! bytes and no allocation. Ids are content-addressed and never recycled, so
//! generation invalidation stays a per-value concern exactly as before.
//!
//! Because cached values equal what the per-query recursion would compute,
//! batch results are bit-for-bit identical to a sequential
//! [`TreeLattice::estimate_with`] loop, for every estimator and any thread
//! count. Two workers may race to compute the same key; both arrive at the
//! same `f64`, so the duplicate store is benign.
//!
//! ## When the batch path wins
//!
//! The shared cache pays off when queries overlap structurally: workload
//! sweeps over one dataset, repeated estimation during tuning, and skewed
//! query logs. For a single isolated query it degenerates to the per-query
//! memo plus some locking overhead; use [`TreeLattice::estimate`] there.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::RwLock;
use tl_fault::{failpoints, Fault};
use tl_twig::{Twig, TwigId, TwigInterner, TwigKey};
use tl_xml::FxHashMap;

use crate::catalog::Catalog;
use crate::dag::{estimate_dag, IdCache};
use crate::estimator::SubtwigCache;
use crate::resilient::{estimate_resilient_with_cache, ResilientEstimate};
use crate::{Degradation, EstimateOptions, Estimator, TreeLattice};

/// Construction knobs for [`EstimationEngine`].
#[derive(Clone, Copy, Debug)]
pub struct EngineConfig {
    /// Number of cache shards, rounded up to a power of two. More shards
    /// reduce write contention between batch workers; 16 is plenty up to a
    /// few dozen threads.
    pub shards: usize,
    /// Worker threads for [`EstimationEngine::estimate_batch`]
    /// (`0` = available parallelism).
    pub threads: usize,
}

impl Default for EngineConfig {
    fn default() -> Self {
        Self {
            shards: 16,
            threads: 0,
        }
    }
}

/// Point-in-time cache counters, exposed by [`EstimationEngine::stats`].
#[derive(Clone, Copy, Debug, Default)]
pub struct EngineStats {
    /// Sub-twig lookups answered from the shared cache.
    pub hits: u64,
    /// Sub-twig lookups that had to be computed (each is followed by a
    /// store, so this is also the number of entries ever written).
    pub misses: u64,
    /// Entries currently cached across all shards.
    pub entries: usize,
    /// Approximate heap footprint of the cached entries, in bytes (shard
    /// tables plus the interner's stored encodings, mirroring
    /// `Summary::heap_bytes` accounting).
    pub bytes: usize,
    /// Wall-clock duration of the most recent
    /// [`EstimationEngine::estimate_batch`] call.
    pub last_batch: Duration,
    /// Interner occupancy: distinct canonical encodings ever id-assigned.
    pub interner_keys: usize,
    /// Distinct sub-twig nodes materialized across all evaluation DAGs.
    pub dag_nodes: u64,
    /// Total sub-twig references across all evaluation DAGs; exceeds
    /// `dag_nodes` whenever decomposition operands are shared.
    pub dag_refs: u64,
    /// Canonical key bytes cloned into the interner — charged only on first
    /// sighting of an encoding. A warm probe clones zero key bytes; this
    /// counter staying flat across a repeat workload is the allocation-free
    /// lookup guarantee.
    pub key_clone_bytes: u64,
    /// Pattern-store probes served by counting backends (the mmap catalog)
    /// during `estimate_catalog` / `estimate_batch_catalog` calls on this
    /// engine. In-memory backends are not metered and contribute 0.
    pub catalog_lookups: u64,
}

impl EngineStats {
    /// Fraction of lookups served from cache; 0 when nothing was looked up.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Shared-sub-twig dedup ratio: DAG references per distinct DAG node.
    /// Greater than 1 whenever structural sharing collapsed any references;
    /// 0 when no DAG was built yet.
    pub fn dedup_ratio(&self) -> f64 {
        if self.dag_nodes == 0 {
            0.0
        } else {
            self.dag_refs as f64 / self.dag_nodes as f64
        }
    }
}

/// One lock-guarded slice of the cache.
struct Shard {
    /// Generation the entries were computed against. Lookups for any other
    /// generation miss; stores for a newer one clear the shard first.
    generation: u64,
    /// `(voting class, interned twig id) -> estimate`, flattened to a
    /// single probe on the warm path.
    entries: FxHashMap<(u32, TwigId), f64>,
}

/// A persistent, thread-safe estimation service over [`TreeLattice`]s.
///
/// ```
/// use tl_xml::{parse_document, ParseOptions};
/// use treelattice::{BuildConfig, EstimationEngine, Estimator, TreeLattice};
///
/// let doc = parse_document(
///     b"<r><a><b/><c/></a><a><b/></a></r>",
///     ParseOptions::default(),
/// ).unwrap();
/// let lattice = TreeLattice::build(&doc, &BuildConfig::with_k(2));
/// let engine = EstimationEngine::default();
/// let twigs = vec![lattice.parse_query("a[b][c]").unwrap(); 8];
/// let batch = engine.estimate_batch(
///     &lattice,
///     &twigs,
///     Estimator::RecursiveVoting,
///     &Default::default(),
/// );
/// assert_eq!(batch.len(), 8);
/// assert!(engine.stats().hits > 0); // repeated queries share sub-twigs
/// ```
pub struct EstimationEngine {
    shards: Box<[RwLock<Shard>]>,
    /// `shards.len() - 1`; shard count is a power of two.
    mask: usize,
    threads: usize,
    /// Engine-wide id assignment for canonical sub-twig encodings. Read-lock
    /// fast path for warm probes; a write lock is taken only to assign a
    /// fresh id. Survives [`EstimationEngine::clear`] and generation bumps —
    /// ids are content-addressed, so they stay valid forever.
    interner: RwLock<TwigInterner>,
    hits: AtomicU64,
    misses: AtomicU64,
    key_clone_bytes: AtomicU64,
    dag_nodes: AtomicU64,
    dag_refs: AtomicU64,
    catalog_lookups: AtomicU64,
    last_batch_nanos: AtomicU64,
    /// Metric sink shared with batch worker threads; [`tl_obs::Noop`]
    /// unless [`EstimationEngine::with_recorder`] installed a live one.
    rec: Arc<dyn tl_obs::Recorder>,
}

impl Default for EstimationEngine {
    fn default() -> Self {
        Self::new(EngineConfig::default())
    }
}

impl EstimationEngine {
    /// Creates an engine with an empty cache.
    pub fn new(config: EngineConfig) -> Self {
        Self::with_recorder(config, Arc::new(tl_obs::Noop))
    }

    /// Creates an engine reporting to `rec`: per-query `engine.queries` /
    /// `engine.query.latency_us` / `engine.decomposition.depth`, cache
    /// `engine.cache.{hits,misses}`, and the `engine.batch` span. The
    /// recorder is `Arc`-shared so batch worker threads report too.
    pub fn with_recorder(config: EngineConfig, rec: Arc<dyn tl_obs::Recorder>) -> Self {
        let n = config.shards.max(1).next_power_of_two();
        let shards = (0..n)
            .map(|_| {
                RwLock::new(Shard {
                    generation: 0,
                    entries: FxHashMap::default(),
                })
            })
            .collect::<Vec<_>>()
            .into_boxed_slice();
        Self {
            shards,
            mask: n - 1,
            threads: config.threads,
            interner: RwLock::new(TwigInterner::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            key_clone_bytes: AtomicU64::new(0),
            dag_nodes: AtomicU64::new(0),
            dag_refs: AtomicU64::new(0),
            catalog_lookups: AtomicU64::new(0),
            last_batch_nanos: AtomicU64::new(0),
            rec,
        }
    }

    /// Estimates one query through the shared cache. Returns exactly what
    /// [`TreeLattice::estimate_with`] returns for the same inputs.
    pub fn estimate(
        &self,
        lattice: &TreeLattice,
        twig: &Twig,
        estimator: Estimator,
        opts: &EstimateOptions,
    ) -> f64 {
        self.estimate_catalog(lattice, twig, estimator, opts)
    }

    /// [`estimate`](Self::estimate) against any [`Catalog`] backend — the
    /// in-memory lattice, an eagerly loaded file, or the zero-copy mmap
    /// reader — through the same shared cache. Generations keep backends
    /// apart: every opened catalog carries a fresh one, so cached values
    /// never leak between stores.
    pub fn estimate_catalog<C: Catalog + ?Sized>(
        &self,
        catalog: &C,
        twig: &Twig,
        estimator: Estimator,
        opts: &EstimateOptions,
    ) -> f64 {
        let before = catalog.served_lookups();
        let mut cache =
            SharedIdCache::new(self, catalog.generation(), voting_class(estimator, opts));
        let value = self.estimate_in(catalog, twig, estimator, opts, &mut cache);
        drop(cache);
        self.catalog_lookups.fetch_add(
            catalog.served_lookups().saturating_sub(before),
            Ordering::Relaxed,
        );
        value
    }

    /// One query against an existing cache adapter (whose `(generation,
    /// voting class)` must match the arguments). Batch workers reuse one
    /// adapter across all their queries so counters flush once per worker,
    /// not once per query.
    fn estimate_in<C: Catalog + ?Sized>(
        &self,
        catalog: &C,
        twig: &Twig,
        estimator: Estimator,
        opts: &EstimateOptions,
        cache: &mut SharedIdCache<'_>,
    ) -> f64 {
        // Same unknown-label guard as TreeLattice::estimate_with: a label
        // the document never contained cannot match anything.
        if twig
            .nodes()
            .any(|n| twig.label(n).index() >= catalog.labels().len())
        {
            return 0.0;
        }
        let start = cache.recording.then(Instant::now);
        let (value, depth, stats) = estimate_dag(catalog, twig, estimator, opts, cache);
        cache.dag_nodes += stats.nodes;
        cache.dag_refs += stats.refs;
        if let Some(start) = start {
            self.rec.add(tl_obs::names::ENGINE_QUERIES, 1);
            self.rec.observe(
                tl_obs::names::QUERY_LATENCY_US,
                start.elapsed().as_micros() as u64,
            );
            self.rec.observe(tl_obs::names::DECOMP_DEPTH, depth as u64);
        }
        value
    }

    /// Estimates every twig in `batch`, in order, splitting the work over
    /// the configured worker threads. Workers pull indices from a shared
    /// atomic cursor, so an expensive query does not stall the others.
    ///
    /// Results are bit-for-bit equal to calling
    /// [`TreeLattice::estimate_with`] per twig, regardless of thread count.
    pub fn estimate_batch(
        &self,
        lattice: &TreeLattice,
        batch: &[Twig],
        estimator: Estimator,
        opts: &EstimateOptions,
    ) -> Vec<f64> {
        self.estimate_batch_catalog(lattice, batch, estimator, opts)
    }

    /// [`estimate_batch`](Self::estimate_batch) against any [`Catalog`]
    /// backend. `Sync` because workers probe the store concurrently — every
    /// backend qualifies (the mmap catalog's lookup counter is atomic).
    pub fn estimate_batch_catalog<C: Catalog + Sync + ?Sized>(
        &self,
        catalog: &C,
        batch: &[Twig],
        estimator: Estimator,
        opts: &EstimateOptions,
    ) -> Vec<f64> {
        let _span = tl_obs::SpanGuard::start(&*self.rec, tl_obs::names::SPAN_BATCH);
        let start = Instant::now();
        let probes_before = catalog.served_lookups();
        let threads = self.effective_threads(batch.len());
        let generation = catalog.generation();
        let class = voting_class(estimator, opts);
        let results: Vec<f64> = if threads <= 1 {
            let mut cache = SharedIdCache::new(self, generation, class);
            batch
                .iter()
                .map(|t| self.estimate_in(catalog, t, estimator, opts, &mut cache))
                .collect()
        } else {
            let slots: Vec<AtomicU64> = batch.iter().map(|_| AtomicU64::new(0)).collect();
            let cursor = AtomicUsize::new(0);
            std::thread::scope(|scope| {
                for _ in 0..threads {
                    scope.spawn(|| {
                        let mut cache = SharedIdCache::new(self, generation, class);
                        loop {
                            let i = cursor.fetch_add(1, Ordering::Relaxed);
                            let Some(twig) = batch.get(i) else { break };
                            let v = self.estimate_in(catalog, twig, estimator, opts, &mut cache);
                            slots[i].store(v.to_bits(), Ordering::Relaxed);
                        }
                    });
                }
            });
            slots
                .into_iter()
                .map(|bits| f64::from_bits(bits.into_inner()))
                .collect()
        };
        self.catalog_lookups.fetch_add(
            catalog.served_lookups().saturating_sub(probes_before),
            Ordering::Relaxed,
        );
        self.last_batch_nanos
            .store(start.elapsed().as_nanos() as u64, Ordering::Relaxed);
        results
    }

    /// Estimates one query through the shared cache under the budget in
    /// `opts`, degrading instead of erroring (see [`crate::resilient`]),
    /// and containing any panic in the estimation path as
    /// [`tl_fault::FaultKind::WorkerPanic`].
    ///
    /// Only the undegraded rung reads and writes the shared cache —
    /// degraded values stay in a query-local memo, so a budget-constrained
    /// caller can never pollute estimates served to unconstrained ones.
    pub fn estimate_resilient(
        &self,
        lattice: &TreeLattice,
        twig: &Twig,
        estimator: Estimator,
        opts: &EstimateOptions,
    ) -> Result<ResilientEstimate, Fault> {
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            if failpoints::fire(failpoints::sites::ENGINE_WORKER) {
                panic!(
                    "injected by fail-point `{}`",
                    failpoints::sites::ENGINE_WORKER
                );
            }
            self.estimate_resilient_inner(lattice, twig, estimator, opts)
        }));
        match outcome {
            Ok(est) => {
                if self.rec.enabled() && est.degradation.is_degraded() {
                    self.rec.add(tl_obs::names::ENGINE_DEGRADED, 1);
                }
                Ok(est)
            }
            Err(payload) => {
                self.rec.add(tl_obs::names::FAULT_WORKER_PANICS, 1);
                self.rec.add(tl_obs::names::FAULT_TOTAL, 1);
                let msg = payload
                    .downcast_ref::<&str>()
                    .map(|s| (*s).to_owned())
                    .or_else(|| payload.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "worker panicked".to_owned());
                Err(Fault::worker_panic(msg))
            }
        }
    }

    fn estimate_resilient_inner(
        &self,
        lattice: &TreeLattice,
        twig: &Twig,
        estimator: Estimator,
        opts: &EstimateOptions,
    ) -> ResilientEstimate {
        if twig
            .nodes()
            .any(|n| twig.label(n).index() >= lattice.labels().len())
        {
            return ResilientEstimate {
                value: 0.0,
                degradation: Degradation::None,
                cause: None,
            };
        }
        // The resilient ladder stays on the byte-keyed `SubtwigCache`
        // recursion (its budget accounting charges per key byte stored);
        // the adapter below bridges those probes onto the id-keyed shards,
        // so rung-1 values still share the engine cache with the DAG path.
        let mut cache = SharedKeyCache {
            inner: SharedIdCache::new(self, lattice.generation(), voting_class(estimator, opts)),
        };
        let start = self.rec.enabled().then(Instant::now);
        let est =
            estimate_resilient_with_cache(lattice.summary(), twig, estimator, opts, &mut cache);
        if let Some(start) = start {
            self.rec.add(tl_obs::names::ENGINE_QUERIES, 1);
            self.rec.observe(
                tl_obs::names::QUERY_LATENCY_US,
                start.elapsed().as_micros() as u64,
            );
        }
        est
    }

    /// [`estimate_batch`](EstimationEngine::estimate_batch) with per-query
    /// fault isolation: each worker item runs under `catch_unwind`, so one
    /// poisoned query comes back as `Err(FaultKind::WorkerPanic)` while
    /// every other entry completes normally. The shard locks are
    /// `parking_lot` (no poisoning) and the shared cache only ever holds
    /// fully-computed undegraded values, so a contained panic cannot leave
    /// the cache inconsistent.
    pub fn estimate_batch_resilient(
        &self,
        lattice: &TreeLattice,
        batch: &[Twig],
        estimator: Estimator,
        opts: &EstimateOptions,
    ) -> Vec<Result<ResilientEstimate, Fault>> {
        let _span = tl_obs::SpanGuard::start(&*self.rec, tl_obs::names::SPAN_BATCH);
        let start = Instant::now();
        let threads = self.effective_threads(batch.len());
        let results: Vec<Result<ResilientEstimate, Fault>> = if threads <= 1 {
            batch
                .iter()
                .map(|t| self.estimate_resilient(lattice, t, estimator, opts))
                .collect()
        } else {
            let cursor = AtomicUsize::new(0);
            std::thread::scope(|scope| {
                let handles: Vec<_> = (0..threads)
                    .map(|_| {
                        scope.spawn(|| {
                            let mut local = Vec::new();
                            loop {
                                let i = cursor.fetch_add(1, Ordering::Relaxed);
                                let Some(twig) = batch.get(i) else { break };
                                local.push((
                                    i,
                                    self.estimate_resilient(lattice, twig, estimator, opts),
                                ));
                            }
                            local
                        })
                    })
                    .collect();
                let mut slots: Vec<Option<Result<ResilientEstimate, Fault>>> =
                    (0..batch.len()).map(|_| None).collect();
                for handle in handles {
                    // Workers contain estimation panics internally; a join
                    // failure would mean the harness itself is broken.
                    for (i, result) in handle.join().expect("resilient worker exited cleanly") {
                        slots[i] = Some(result);
                    }
                }
                slots
                    .into_iter()
                    .map(|slot| slot.expect("cursor visits every index"))
                    .collect()
            })
        };
        self.last_batch_nanos
            .store(start.elapsed().as_nanos() as u64, Ordering::Relaxed);
        results
    }

    /// Drops every cached entry (counters are kept).
    pub fn clear(&self) {
        for shard in &self.shards {
            let mut guard = shard.write();
            guard.entries.clear();
            guard.generation = 0;
        }
    }

    /// Current cache statistics.
    pub fn stats(&self) -> EngineStats {
        let mut entries = 0usize;
        let mut bytes = 0usize;
        for shard in &self.shards {
            let guard = shard.read();
            entries += guard.entries.len();
            bytes += guard.entries.capacity() * (std::mem::size_of::<((u32, TwigId), f64)>() + 1);
        }
        let interner = self.interner.read();
        EngineStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            entries,
            bytes: bytes + interner.heap_bytes(),
            last_batch: Duration::from_nanos(self.last_batch_nanos.load(Ordering::Relaxed)),
            interner_keys: interner.len(),
            dag_nodes: self.dag_nodes.load(Ordering::Relaxed),
            dag_refs: self.dag_refs.load(Ordering::Relaxed),
            key_clone_bytes: self.key_clone_bytes.load(Ordering::Relaxed),
            catalog_lookups: self.catalog_lookups.load(Ordering::Relaxed),
        }
    }

    fn effective_threads(&self, batch_len: usize) -> usize {
        let configured = if self.threads == 0 {
            std::thread::available_parallelism().map_or(1, |n| n.get())
        } else {
            self.threads
        };
        configured.min(batch_len.max(1))
    }

    /// Dense ids need no hashing to pick a shard: the low bits are already
    /// uniformly spread by first-sighting order.
    fn shard_for_id(&self, id: TwigId) -> &RwLock<Shard> {
        &self.shards[(id as usize) & self.mask]
    }
}

/// The effective voting width a cached estimate was computed under.
pub(crate) fn voting_class(estimator: Estimator, opts: &EstimateOptions) -> u32 {
    match estimator {
        // The inner recursion of both fix-sized estimators runs non-voting,
        // identical to plain recursive decomposition (width 1).
        Estimator::Recursive | Estimator::FixSized | Estimator::FixSizedVoting => 1,
        Estimator::RecursiveVoting => opts.voting_cap.clamp(1, u32::MAX as usize) as u32,
    }
}

/// Routes the DAG evaluator's id-keyed cache traffic to the engine's
/// shards, batching counter updates until drop. Valid for one
/// `(generation, voting class)` pair, so a batch worker holds a single
/// adapter across all its queries and pays the atomic flush once.
struct SharedIdCache<'e> {
    engine: &'e EstimationEngine,
    generation: u64,
    class: u32,
    hits: u64,
    misses: u64,
    key_clone_bytes: u64,
    fresh_keys: u64,
    dag_nodes: u64,
    dag_refs: u64,
    /// `rec.enabled()` sampled once at construction, so the per-query path
    /// skips the dynamic dispatch entirely while a worker holds the adapter.
    recording: bool,
}

impl<'e> SharedIdCache<'e> {
    fn new(engine: &'e EstimationEngine, generation: u64, class: u32) -> Self {
        Self {
            engine,
            generation,
            class,
            hits: 0,
            misses: 0,
            key_clone_bytes: 0,
            fresh_keys: 0,
            dag_nodes: 0,
            dag_refs: 0,
            recording: engine.rec.enabled(),
        }
    }
}

impl IdCache for SharedIdCache<'_> {
    fn intern(&mut self, bytes: &[u8]) -> TwigId {
        // Warm probe: a shared read lock and no allocation. Only a
        // first-sighting encoding escalates to the write lock and pays the
        // one-time clone.
        if let Some(id) = self.engine.interner.read().get(bytes) {
            return id;
        }
        let (id, cloned) = self.engine.interner.write().intern_bytes(bytes);
        // `cloned > 0` iff this thread won the assignment race; a loser's
        // write-lock re-probe hits and clones nothing.
        self.key_clone_bytes += cloned as u64;
        self.fresh_keys += (cloned > 0) as u64;
        id
    }

    fn lookup(&mut self, id: TwigId) -> Option<f64> {
        let guard = self.engine.shard_for_id(id).read();
        let value = if guard.generation == self.generation {
            guard.entries.get(&(self.class, id)).copied()
        } else {
            None
        };
        match value {
            Some(_) => self.hits += 1,
            None => self.misses += 1,
        }
        value
    }

    fn store(&mut self, id: TwigId, value: f64) {
        let mut guard = self.engine.shard_for_id(id).write();
        if guard.generation != self.generation {
            // Entries belong to a superseded summary; evict lazily.
            guard.entries.clear();
            guard.generation = self.generation;
        }
        guard.entries.insert((self.class, id), value);
    }
}

impl Drop for SharedIdCache<'_> {
    fn drop(&mut self) {
        // Zero deltas skip the shared-line RMW: a warm single-probe query
        // flushes exactly one counter.
        if self.hits > 0 {
            self.engine.hits.fetch_add(self.hits, Ordering::Relaxed);
        }
        if self.misses > 0 {
            self.engine.misses.fetch_add(self.misses, Ordering::Relaxed);
        }
        if self.key_clone_bytes > 0 {
            self.engine
                .key_clone_bytes
                .fetch_add(self.key_clone_bytes, Ordering::Relaxed);
        }
        if self.dag_nodes > 0 {
            self.engine
                .dag_nodes
                .fetch_add(self.dag_nodes, Ordering::Relaxed);
        }
        if self.dag_refs > 0 {
            self.engine
                .dag_refs
                .fetch_add(self.dag_refs, Ordering::Relaxed);
        }
        if self.recording {
            self.engine
                .rec
                .add(tl_obs::names::ENGINE_CACHE_HITS, self.hits);
            self.engine
                .rec
                .add(tl_obs::names::ENGINE_CACHE_MISSES, self.misses);
            self.engine
                .rec
                .add(tl_obs::names::ENGINE_INTERNER_KEYS, self.fresh_keys);
            self.engine
                .rec
                .add(tl_obs::names::ENGINE_KEY_CLONE_BYTES, self.key_clone_bytes);
            self.engine
                .rec
                .add(tl_obs::names::ENGINE_DAG_NODES, self.dag_nodes);
            self.engine
                .rec
                .add(tl_obs::names::ENGINE_DAG_REFS, self.dag_refs);
        }
    }
}

/// Byte-keyed bridge for the resilient ladder: interns each probed key and
/// forwards to the id-keyed shards, so rung-1 (undegraded) values are shared
/// with the DAG fast path.
struct SharedKeyCache<'e> {
    inner: SharedIdCache<'e>,
}

impl SubtwigCache for SharedKeyCache<'_> {
    fn lookup(&mut self, key: &TwigKey) -> Option<f64> {
        let id = self.inner.intern(key.as_bytes());
        self.inner.lookup(id)
    }

    fn store(&mut self, key: TwigKey, value: f64) {
        let id = self.inner.intern(key.as_bytes());
        self.inner.store(id, value);
    }
}

#[cfg(test)]
mod tests {
    use tl_xml::{parse_document, Document, ParseOptions};

    use super::*;
    use crate::BuildConfig;

    fn doc(s: &str) -> Document {
        parse_document(s.as_bytes(), ParseOptions::default()).unwrap()
    }

    fn sample_lattice() -> TreeLattice {
        let mut s = String::from("<r>");
        for _ in 0..6 {
            s.push_str("<a><b><c/><d/></b><e/></a>");
        }
        s.push_str("</r>");
        TreeLattice::build(&doc(&s), &BuildConfig::with_k(3))
    }

    #[test]
    fn engine_matches_per_query_estimates() {
        let lat = sample_lattice();
        let engine = EstimationEngine::default();
        let queries = ["a[b[c][d]][e]", "a/b/c", "a[b][e]", "r/a/b/c"];
        for est in Estimator::ALL {
            for q in queries {
                let twig = lat.parse_query(q).unwrap();
                let direct = lat.estimate(&twig, est);
                let cached = engine.estimate(&lat, &twig, est, &EstimateOptions::default());
                assert_eq!(direct.to_bits(), cached.to_bits(), "{est} {q}");
                // Second pass answers from cache with the same bits.
                let warm = engine.estimate(&lat, &twig, est, &EstimateOptions::default());
                assert_eq!(direct.to_bits(), warm.to_bits(), "{est} {q} warm");
            }
        }
        let stats = engine.stats();
        assert!(stats.hits > 0, "repeat queries must hit");
        assert!(stats.entries > 0);
        assert!(stats.bytes > 0);
    }

    /// The engine's batch path must produce bit-identical results whether
    /// it reads from the in-memory lattice or the zero-copy mmap catalog,
    /// and the two generations must not share cache entries.
    #[test]
    fn engine_batch_agrees_across_catalog_backends() {
        let lat = sample_lattice();
        let dir = std::env::temp_dir().join(format!(
            "tl-engine-test-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("engine.tlat");
        std::fs::write(&path, lat.to_bytes()).unwrap();
        let mmap = crate::catalog::MmapCatalog::open(&path).unwrap();
        let queries = ["a[b[c][d]][e]", "a/b/c", "a[b][e]", "r/a/b/c"];
        let batch: Vec<Twig> = queries
            .iter()
            .map(|q| lat.parse_query(q).unwrap())
            .collect();
        let engine = EstimationEngine::default();
        for est in Estimator::ALL {
            let opts = EstimateOptions::default();
            let mem = engine.estimate_batch(&lat, &batch, est, &opts);
            let via_mmap = engine.estimate_batch_catalog(&mmap, &batch, est, &opts);
            for (q, (a, b)) in queries.iter().zip(mem.iter().zip(&via_mmap)) {
                assert_eq!(a.to_bits(), b.to_bits(), "{est} {q}");
            }
        }
        assert!(mmap.lookups() > 0, "mmap backend actually served probes");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn unknown_labels_estimate_zero_without_caching() {
        let lat = sample_lattice();
        let engine = EstimationEngine::default();
        let twig = lat.parse_query("nosuchlabel/other").unwrap();
        assert_eq!(
            engine.estimate(
                &lat,
                &twig,
                Estimator::Recursive,
                &EstimateOptions::default()
            ),
            0.0
        );
        assert_eq!(engine.stats().entries, 0);
    }

    #[test]
    fn voting_classes_do_not_collide() {
        let lat = sample_lattice();
        let engine = EstimationEngine::default();
        let twig = lat.parse_query("a[b[c][d]][e]").unwrap();
        let opts = EstimateOptions::default();
        // Warm the non-voting class first, then voting must not reuse it.
        let plain = engine.estimate(&lat, &twig, Estimator::Recursive, &opts);
        let voted = engine.estimate(&lat, &twig, Estimator::RecursiveVoting, &opts);
        assert_eq!(
            plain.to_bits(),
            lat.estimate(&twig, Estimator::Recursive).to_bits()
        );
        assert_eq!(
            voted.to_bits(),
            lat.estimate(&twig, Estimator::RecursiveVoting).to_bits()
        );
    }

    #[test]
    fn generation_bump_invalidates() {
        let mut lat = sample_lattice();
        let engine = EstimationEngine::default();
        let twig = lat.parse_query("a[b[c][d]][e]").unwrap();
        let opts = EstimateOptions::default();
        let before = engine.estimate(&lat, &twig, Estimator::Recursive, &opts);
        assert!(before > 0.0);
        let g0 = lat.generation();
        lat.prune(0.0);
        assert_ne!(lat.generation(), g0);
        let after = engine.estimate(&lat, &twig, Estimator::Recursive, &opts);
        assert_eq!(
            after.to_bits(),
            lat.estimate(&twig, Estimator::Recursive).to_bits(),
            "post-mutation estimates come from the new summary"
        );
    }

    #[test]
    fn clear_empties_the_cache() {
        let lat = sample_lattice();
        let engine = EstimationEngine::default();
        let twig = lat.parse_query("a[b[c][d]][e]").unwrap();
        engine.estimate(
            &lat,
            &twig,
            Estimator::Recursive,
            &EstimateOptions::default(),
        );
        assert!(engine.stats().entries > 0);
        engine.clear();
        assert_eq!(engine.stats().entries, 0);
    }

    #[test]
    fn recorder_sees_queries_cache_traffic_and_batch_span() {
        let lat = sample_lattice();
        let rec = Arc::new(tl_obs::MetricsRecorder::new());
        let engine = EstimationEngine::with_recorder(
            EngineConfig {
                shards: 4,
                threads: 2,
            },
            rec.clone(),
        );
        let plain = EstimationEngine::default();
        let twigs: Vec<_> = ["a[b[c][d]][e]", "a/b/c", "a[b[c][d]][e]"]
            .iter()
            .map(|q| lat.parse_query(q).unwrap())
            .collect();
        let opts = EstimateOptions::default();
        let observed = engine.estimate_batch(&lat, &twigs, Estimator::RecursiveVoting, &opts);
        let expected = plain.estimate_batch(&lat, &twigs, Estimator::RecursiveVoting, &opts);
        for (a, b) in observed.iter().zip(&expected) {
            assert_eq!(
                a.to_bits(),
                b.to_bits(),
                "recording must not change results"
            );
        }
        let snap = rec.snapshot();
        assert_eq!(snap.counters[tl_obs::names::ENGINE_QUERIES], 3);
        assert_eq!(snap.histograms[tl_obs::names::QUERY_LATENCY_US].count, 3);
        assert_eq!(snap.histograms[tl_obs::names::DECOMP_DEPTH].count, 3);
        assert_eq!(snap.spans[tl_obs::names::SPAN_BATCH].count, 1);
        let stats = engine.stats();
        assert_eq!(snap.counters[tl_obs::names::ENGINE_CACHE_HITS], stats.hits);
        assert_eq!(
            snap.counters[tl_obs::names::ENGINE_CACHE_MISSES],
            stats.misses
        );
        assert!(stats.hits > 0, "the repeated query must hit the cache");
    }

    #[test]
    fn warm_probes_clone_zero_key_bytes() {
        let lat = sample_lattice();
        let engine = EstimationEngine::default();
        let twig = lat.parse_query("a[b[c][d]][e]").unwrap();
        let opts = EstimateOptions::default();
        engine.estimate(&lat, &twig, Estimator::Recursive, &opts);
        let cold = engine.stats();
        assert!(cold.key_clone_bytes > 0, "first sighting pays the clone");
        assert!(cold.interner_keys > 0);
        for _ in 0..4 {
            engine.estimate(&lat, &twig, Estimator::Recursive, &opts);
        }
        let warm = engine.stats();
        assert_eq!(
            warm.key_clone_bytes, cold.key_clone_bytes,
            "warm probes must clone zero key bytes"
        );
        assert_eq!(warm.interner_keys, cold.interner_keys);
        assert!(
            warm.hits > cold.hits,
            "repeat queries answer from the shards"
        );
    }

    #[test]
    fn dedup_ratio_exceeds_one_on_standard_workload() {
        let lat = sample_lattice();
        let engine = EstimationEngine::default();
        let opts = EstimateOptions::default();
        for q in ["a[b[c][d]][e]", "a/b/c", "a[b][e]", "r/a/b/c"] {
            let twig = lat.parse_query(q).unwrap();
            engine.estimate(&lat, &twig, Estimator::Recursive, &opts);
        }
        let stats = engine.stats();
        assert!(stats.dag_nodes > 0);
        assert!(
            stats.dedup_ratio() > 1.0,
            "shared sub-twigs must collapse references: {}",
            stats.dedup_ratio()
        );
    }

    #[test]
    fn interner_survives_clear_and_generation_bumps() {
        let mut lat = sample_lattice();
        let engine = EstimationEngine::default();
        let twig = lat.parse_query("a[b[c][d]][e]").unwrap();
        let opts = EstimateOptions::default();
        engine.estimate(&lat, &twig, Estimator::Recursive, &opts);
        let keys = engine.stats().interner_keys;
        engine.clear();
        lat.prune(0.0);
        // Pruning may force deeper expansion (new sub-twigs, new ids) …
        engine.estimate(&lat, &twig, Estimator::Recursive, &opts);
        let first = engine.stats();
        assert!(first.interner_keys >= keys, "ids are never recycled");
        // … but ids are content-addressed: repeating the workload against
        // the cleared cache and new generation re-clones nothing.
        engine.clear();
        engine.estimate(&lat, &twig, Estimator::Recursive, &opts);
        let second = engine.stats();
        assert_eq!(second.interner_keys, first.interner_keys);
        assert_eq!(second.key_clone_bytes, first.key_clone_bytes);
    }

    #[test]
    fn shard_count_rounds_to_power_of_two() {
        let engine = EstimationEngine::new(EngineConfig {
            shards: 3,
            threads: 1,
        });
        assert_eq!(engine.shards.len(), 4);
        assert_eq!(engine.mask, 3);
    }
}
