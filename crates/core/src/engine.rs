//! Batched estimation with a shared cross-query sub-twig cache.
//!
//! The per-query estimators in [`crate::estimator`] memoize sub-twig
//! estimates only for the duration of one query. Realistic workloads
//! (Figure 9's query sets, the online tuner's feedback loop) estimate many
//! structurally overlapping twigs against the same summary, recomputing the
//! same decompositions query after query. [`EstimationEngine`] keeps those
//! sub-twig estimates in a hash-sharded cache that persists across queries
//! and is shared by the worker threads of [`EstimationEngine::estimate_batch`].
//!
//! ## Correctness
//!
//! A cached value is a pure function of three inputs: the summary content,
//! the canonical sub-twig key, and the *effective voting width* (the number
//! of removable pairs averaged per recursion node — 1 for
//! [`Estimator::Recursive`] and both fix-sized estimators, `voting_cap` for
//! [`Estimator::RecursiveVoting`]). The cache is therefore keyed by
//! (generation, voting class, canonical key):
//!
//! * **Generation** — every [`TreeLattice`] carries a generation drawn from
//!   a process-wide counter, reassigned by every mutation
//!   ([`TreeLattice::update_after_edit`], [`TreeLattice::prune`],
//!   [`TreeLattice::set_summary`] — including the online tuner's feedback
//!   path). A shard only answers lookups whose generation matches the one
//!   its entries were computed against, so stale entries are unreachable by
//!   construction and are evicted lazily on the next write.
//! * **Voting class** — estimates computed under different effective voting
//!   widths are distinct cache populations; [`Estimator::Recursive`],
//!   [`Estimator::FixSized`], and [`Estimator::FixSizedVoting`] share class
//!   1 (their inner recursions are identical), `RecursiveVoting` uses its
//!   saturated `voting_cap`.
//!
//! Because cached values equal what the per-query recursion would compute,
//! batch results are bit-for-bit identical to a sequential
//! [`TreeLattice::estimate_with`] loop, for every estimator and any thread
//! count. Two workers may race to compute the same key; both arrive at the
//! same `f64`, so the duplicate store is benign.
//!
//! ## When the batch path wins
//!
//! The shared cache pays off when queries overlap structurally: workload
//! sweeps over one dataset, repeated estimation during tuning, and skewed
//! query logs. For a single isolated query it degenerates to the per-query
//! memo plus some locking overhead; use [`TreeLattice::estimate`] there.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::RwLock;
use tl_fault::{failpoints, Fault};
use tl_twig::{Twig, TwigKey};
use tl_xml::{FxHashMap, FxHasher};

use crate::estimator::{estimate_with_cache_depth, SubtwigCache};
use crate::resilient::{estimate_resilient_with_cache, ResilientEstimate};
use crate::{Degradation, EstimateOptions, Estimator, TreeLattice};

/// Construction knobs for [`EstimationEngine`].
#[derive(Clone, Copy, Debug)]
pub struct EngineConfig {
    /// Number of cache shards, rounded up to a power of two. More shards
    /// reduce write contention between batch workers; 16 is plenty up to a
    /// few dozen threads.
    pub shards: usize,
    /// Worker threads for [`EstimationEngine::estimate_batch`]
    /// (`0` = available parallelism).
    pub threads: usize,
}

impl Default for EngineConfig {
    fn default() -> Self {
        Self {
            shards: 16,
            threads: 0,
        }
    }
}

/// Point-in-time cache counters, exposed by [`EstimationEngine::stats`].
#[derive(Clone, Copy, Debug, Default)]
pub struct EngineStats {
    /// Sub-twig lookups answered from the shared cache.
    pub hits: u64,
    /// Sub-twig lookups that had to be computed (each is followed by a
    /// store, so this is also the number of entries ever written).
    pub misses: u64,
    /// Entries currently cached across all shards.
    pub entries: usize,
    /// Approximate heap footprint of the cached entries, in bytes (table
    /// capacity plus key bytes, mirroring `Summary::heap_bytes` accounting).
    pub bytes: usize,
    /// Wall-clock duration of the most recent
    /// [`EstimationEngine::estimate_batch`] call.
    pub last_batch: Duration,
}

impl EngineStats {
    /// Fraction of lookups served from cache; 0 when nothing was looked up.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// One lock-guarded slice of the cache.
struct Shard {
    /// Generation the entries were computed against. Lookups for any other
    /// generation miss; stores for a newer one clear the shard first.
    generation: u64,
    /// Voting class -> canonical key -> estimate.
    classes: FxHashMap<u32, FxHashMap<TwigKey, f64>>,
}

/// A persistent, thread-safe estimation service over [`TreeLattice`]s.
///
/// ```
/// use tl_xml::{parse_document, ParseOptions};
/// use treelattice::{BuildConfig, EstimationEngine, Estimator, TreeLattice};
///
/// let doc = parse_document(
///     b"<r><a><b/><c/></a><a><b/></a></r>",
///     ParseOptions::default(),
/// ).unwrap();
/// let lattice = TreeLattice::build(&doc, &BuildConfig::with_k(2));
/// let engine = EstimationEngine::default();
/// let twigs = vec![lattice.parse_query("a[b][c]").unwrap(); 8];
/// let batch = engine.estimate_batch(
///     &lattice,
///     &twigs,
///     Estimator::RecursiveVoting,
///     &Default::default(),
/// );
/// assert_eq!(batch.len(), 8);
/// assert!(engine.stats().hits > 0); // repeated queries share sub-twigs
/// ```
pub struct EstimationEngine {
    shards: Box<[RwLock<Shard>]>,
    /// `shards.len() - 1`; shard count is a power of two.
    mask: usize,
    threads: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    last_batch_nanos: AtomicU64,
    /// Metric sink shared with batch worker threads; [`tl_obs::Noop`]
    /// unless [`EstimationEngine::with_recorder`] installed a live one.
    rec: Arc<dyn tl_obs::Recorder>,
}

impl Default for EstimationEngine {
    fn default() -> Self {
        Self::new(EngineConfig::default())
    }
}

impl EstimationEngine {
    /// Creates an engine with an empty cache.
    pub fn new(config: EngineConfig) -> Self {
        Self::with_recorder(config, Arc::new(tl_obs::Noop))
    }

    /// Creates an engine reporting to `rec`: per-query `engine.queries` /
    /// `engine.query.latency_us` / `engine.decomposition.depth`, cache
    /// `engine.cache.{hits,misses}`, and the `engine.batch` span. The
    /// recorder is `Arc`-shared so batch worker threads report too.
    pub fn with_recorder(config: EngineConfig, rec: Arc<dyn tl_obs::Recorder>) -> Self {
        let n = config.shards.max(1).next_power_of_two();
        let shards = (0..n)
            .map(|_| {
                RwLock::new(Shard {
                    generation: 0,
                    classes: FxHashMap::default(),
                })
            })
            .collect::<Vec<_>>()
            .into_boxed_slice();
        Self {
            shards,
            mask: n - 1,
            threads: config.threads,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            last_batch_nanos: AtomicU64::new(0),
            rec,
        }
    }

    /// Estimates one query through the shared cache. Returns exactly what
    /// [`TreeLattice::estimate_with`] returns for the same inputs.
    pub fn estimate(
        &self,
        lattice: &TreeLattice,
        twig: &Twig,
        estimator: Estimator,
        opts: &EstimateOptions,
    ) -> f64 {
        // Same unknown-label guard as TreeLattice::estimate_with: a label
        // the document never contained cannot match anything.
        if twig
            .nodes()
            .any(|n| twig.label(n).index() >= lattice.labels().len())
        {
            return 0.0;
        }
        let mut cache = SharedCache {
            engine: self,
            generation: lattice.generation(),
            class: voting_class(estimator, opts),
            hits: 0,
            misses: 0,
        };
        let start = self.rec.enabled().then(Instant::now);
        let (value, depth) =
            estimate_with_cache_depth(lattice.summary(), twig, estimator, opts, &mut cache);
        if let Some(start) = start {
            self.rec.add(tl_obs::names::ENGINE_QUERIES, 1);
            self.rec.observe(
                tl_obs::names::QUERY_LATENCY_US,
                start.elapsed().as_micros() as u64,
            );
            self.rec.observe(tl_obs::names::DECOMP_DEPTH, depth as u64);
        }
        value
    }

    /// Estimates every twig in `batch`, in order, splitting the work over
    /// the configured worker threads. Workers pull indices from a shared
    /// atomic cursor, so an expensive query does not stall the others.
    ///
    /// Results are bit-for-bit equal to calling
    /// [`TreeLattice::estimate_with`] per twig, regardless of thread count.
    pub fn estimate_batch(
        &self,
        lattice: &TreeLattice,
        batch: &[Twig],
        estimator: Estimator,
        opts: &EstimateOptions,
    ) -> Vec<f64> {
        let _span = tl_obs::SpanGuard::start(&*self.rec, tl_obs::names::SPAN_BATCH);
        let start = Instant::now();
        let threads = self.effective_threads(batch.len());
        let results: Vec<f64> = if threads <= 1 {
            batch
                .iter()
                .map(|t| self.estimate(lattice, t, estimator, opts))
                .collect()
        } else {
            let slots: Vec<AtomicU64> = batch.iter().map(|_| AtomicU64::new(0)).collect();
            let cursor = AtomicUsize::new(0);
            std::thread::scope(|scope| {
                for _ in 0..threads {
                    scope.spawn(|| loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        let Some(twig) = batch.get(i) else { break };
                        let v = self.estimate(lattice, twig, estimator, opts);
                        slots[i].store(v.to_bits(), Ordering::Relaxed);
                    });
                }
            });
            slots
                .into_iter()
                .map(|bits| f64::from_bits(bits.into_inner()))
                .collect()
        };
        self.last_batch_nanos
            .store(start.elapsed().as_nanos() as u64, Ordering::Relaxed);
        results
    }

    /// Estimates one query through the shared cache under the budget in
    /// `opts`, degrading instead of erroring (see [`crate::resilient`]),
    /// and containing any panic in the estimation path as
    /// [`tl_fault::FaultKind::WorkerPanic`].
    ///
    /// Only the undegraded rung reads and writes the shared cache —
    /// degraded values stay in a query-local memo, so a budget-constrained
    /// caller can never pollute estimates served to unconstrained ones.
    pub fn estimate_resilient(
        &self,
        lattice: &TreeLattice,
        twig: &Twig,
        estimator: Estimator,
        opts: &EstimateOptions,
    ) -> Result<ResilientEstimate, Fault> {
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            if failpoints::fire(failpoints::sites::ENGINE_WORKER) {
                panic!(
                    "injected by fail-point `{}`",
                    failpoints::sites::ENGINE_WORKER
                );
            }
            self.estimate_resilient_inner(lattice, twig, estimator, opts)
        }));
        match outcome {
            Ok(est) => {
                if self.rec.enabled() && est.degradation.is_degraded() {
                    self.rec.add(tl_obs::names::ENGINE_DEGRADED, 1);
                }
                Ok(est)
            }
            Err(payload) => {
                self.rec.add(tl_obs::names::FAULT_WORKER_PANICS, 1);
                self.rec.add(tl_obs::names::FAULT_TOTAL, 1);
                let msg = payload
                    .downcast_ref::<&str>()
                    .map(|s| (*s).to_owned())
                    .or_else(|| payload.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "worker panicked".to_owned());
                Err(Fault::worker_panic(msg))
            }
        }
    }

    fn estimate_resilient_inner(
        &self,
        lattice: &TreeLattice,
        twig: &Twig,
        estimator: Estimator,
        opts: &EstimateOptions,
    ) -> ResilientEstimate {
        if twig
            .nodes()
            .any(|n| twig.label(n).index() >= lattice.labels().len())
        {
            return ResilientEstimate {
                value: 0.0,
                degradation: Degradation::None,
                cause: None,
            };
        }
        let mut cache = SharedCache {
            engine: self,
            generation: lattice.generation(),
            class: voting_class(estimator, opts),
            hits: 0,
            misses: 0,
        };
        let start = self.rec.enabled().then(Instant::now);
        let est =
            estimate_resilient_with_cache(lattice.summary(), twig, estimator, opts, &mut cache);
        if let Some(start) = start {
            self.rec.add(tl_obs::names::ENGINE_QUERIES, 1);
            self.rec.observe(
                tl_obs::names::QUERY_LATENCY_US,
                start.elapsed().as_micros() as u64,
            );
        }
        est
    }

    /// [`estimate_batch`](EstimationEngine::estimate_batch) with per-query
    /// fault isolation: each worker item runs under `catch_unwind`, so one
    /// poisoned query comes back as `Err(FaultKind::WorkerPanic)` while
    /// every other entry completes normally. The shard locks are
    /// `parking_lot` (no poisoning) and the shared cache only ever holds
    /// fully-computed undegraded values, so a contained panic cannot leave
    /// the cache inconsistent.
    pub fn estimate_batch_resilient(
        &self,
        lattice: &TreeLattice,
        batch: &[Twig],
        estimator: Estimator,
        opts: &EstimateOptions,
    ) -> Vec<Result<ResilientEstimate, Fault>> {
        let _span = tl_obs::SpanGuard::start(&*self.rec, tl_obs::names::SPAN_BATCH);
        let start = Instant::now();
        let threads = self.effective_threads(batch.len());
        let results: Vec<Result<ResilientEstimate, Fault>> = if threads <= 1 {
            batch
                .iter()
                .map(|t| self.estimate_resilient(lattice, t, estimator, opts))
                .collect()
        } else {
            let cursor = AtomicUsize::new(0);
            std::thread::scope(|scope| {
                let handles: Vec<_> = (0..threads)
                    .map(|_| {
                        scope.spawn(|| {
                            let mut local = Vec::new();
                            loop {
                                let i = cursor.fetch_add(1, Ordering::Relaxed);
                                let Some(twig) = batch.get(i) else { break };
                                local.push((
                                    i,
                                    self.estimate_resilient(lattice, twig, estimator, opts),
                                ));
                            }
                            local
                        })
                    })
                    .collect();
                let mut slots: Vec<Option<Result<ResilientEstimate, Fault>>> =
                    (0..batch.len()).map(|_| None).collect();
                for handle in handles {
                    // Workers contain estimation panics internally; a join
                    // failure would mean the harness itself is broken.
                    for (i, result) in handle.join().expect("resilient worker exited cleanly") {
                        slots[i] = Some(result);
                    }
                }
                slots
                    .into_iter()
                    .map(|slot| slot.expect("cursor visits every index"))
                    .collect()
            })
        };
        self.last_batch_nanos
            .store(start.elapsed().as_nanos() as u64, Ordering::Relaxed);
        results
    }

    /// Drops every cached entry (counters are kept).
    pub fn clear(&self) {
        for shard in &self.shards {
            let mut guard = shard.write();
            guard.classes.clear();
            guard.generation = 0;
        }
    }

    /// Current cache statistics.
    pub fn stats(&self) -> EngineStats {
        let mut entries = 0usize;
        let mut bytes = 0usize;
        for shard in &self.shards {
            let guard = shard.read();
            for map in guard.classes.values() {
                entries += map.len();
                bytes += map.capacity() * (std::mem::size_of::<(TwigKey, f64)>() + 1)
                    + map.keys().map(|k| k.as_bytes().len()).sum::<usize>();
            }
        }
        EngineStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            entries,
            bytes,
            last_batch: Duration::from_nanos(self.last_batch_nanos.load(Ordering::Relaxed)),
        }
    }

    fn effective_threads(&self, batch_len: usize) -> usize {
        let configured = if self.threads == 0 {
            std::thread::available_parallelism().map_or(1, |n| n.get())
        } else {
            self.threads
        };
        configured.min(batch_len.max(1))
    }

    fn shard_for(&self, key: &TwigKey) -> &RwLock<Shard> {
        use std::hash::Hasher;
        let mut h = FxHasher::default();
        h.write(key.as_bytes());
        &self.shards[(h.finish() as usize) & self.mask]
    }
}

/// The effective voting width a cached estimate was computed under.
fn voting_class(estimator: Estimator, opts: &EstimateOptions) -> u32 {
    match estimator {
        // The inner recursion of both fix-sized estimators runs non-voting,
        // identical to plain recursive decomposition (width 1).
        Estimator::Recursive | Estimator::FixSized | Estimator::FixSizedVoting => 1,
        Estimator::RecursiveVoting => opts.voting_cap.clamp(1, u32::MAX as usize) as u32,
    }
}

/// Per-query adapter: routes the estimator's cache traffic to the engine's
/// shards, batching counter updates until drop.
struct SharedCache<'e> {
    engine: &'e EstimationEngine,
    generation: u64,
    class: u32,
    hits: u64,
    misses: u64,
}

impl SubtwigCache for SharedCache<'_> {
    fn lookup(&mut self, key: &TwigKey) -> Option<f64> {
        let guard = self.engine.shard_for(key).read();
        let value = if guard.generation == self.generation {
            guard
                .classes
                .get(&self.class)
                .and_then(|map| map.get(key))
                .copied()
        } else {
            None
        };
        match value {
            Some(_) => self.hits += 1,
            None => self.misses += 1,
        }
        value
    }

    fn store(&mut self, key: TwigKey, value: f64) {
        let mut guard = self.engine.shard_for(&key).write();
        if guard.generation != self.generation {
            // Entries belong to a superseded summary; evict lazily.
            guard.classes.clear();
            guard.generation = self.generation;
        }
        guard
            .classes
            .entry(self.class)
            .or_default()
            .insert(key, value);
    }
}

impl Drop for SharedCache<'_> {
    fn drop(&mut self) {
        self.engine.hits.fetch_add(self.hits, Ordering::Relaxed);
        self.engine.misses.fetch_add(self.misses, Ordering::Relaxed);
        if self.engine.rec.enabled() {
            self.engine
                .rec
                .add(tl_obs::names::ENGINE_CACHE_HITS, self.hits);
            self.engine
                .rec
                .add(tl_obs::names::ENGINE_CACHE_MISSES, self.misses);
        }
    }
}

#[cfg(test)]
mod tests {
    use tl_xml::{parse_document, Document, ParseOptions};

    use super::*;
    use crate::BuildConfig;

    fn doc(s: &str) -> Document {
        parse_document(s.as_bytes(), ParseOptions::default()).unwrap()
    }

    fn sample_lattice() -> TreeLattice {
        let mut s = String::from("<r>");
        for _ in 0..6 {
            s.push_str("<a><b><c/><d/></b><e/></a>");
        }
        s.push_str("</r>");
        TreeLattice::build(&doc(&s), &BuildConfig::with_k(3))
    }

    #[test]
    fn engine_matches_per_query_estimates() {
        let lat = sample_lattice();
        let engine = EstimationEngine::default();
        let queries = ["a[b[c][d]][e]", "a/b/c", "a[b][e]", "r/a/b/c"];
        for est in Estimator::ALL {
            for q in queries {
                let twig = lat.parse_query(q).unwrap();
                let direct = lat.estimate(&twig, est);
                let cached = engine.estimate(&lat, &twig, est, &EstimateOptions::default());
                assert_eq!(direct.to_bits(), cached.to_bits(), "{est} {q}");
                // Second pass answers from cache with the same bits.
                let warm = engine.estimate(&lat, &twig, est, &EstimateOptions::default());
                assert_eq!(direct.to_bits(), warm.to_bits(), "{est} {q} warm");
            }
        }
        let stats = engine.stats();
        assert!(stats.hits > 0, "repeat queries must hit");
        assert!(stats.entries > 0);
        assert!(stats.bytes > 0);
    }

    #[test]
    fn unknown_labels_estimate_zero_without_caching() {
        let lat = sample_lattice();
        let engine = EstimationEngine::default();
        let twig = lat.parse_query("nosuchlabel/other").unwrap();
        assert_eq!(
            engine.estimate(
                &lat,
                &twig,
                Estimator::Recursive,
                &EstimateOptions::default()
            ),
            0.0
        );
        assert_eq!(engine.stats().entries, 0);
    }

    #[test]
    fn voting_classes_do_not_collide() {
        let lat = sample_lattice();
        let engine = EstimationEngine::default();
        let twig = lat.parse_query("a[b[c][d]][e]").unwrap();
        let opts = EstimateOptions::default();
        // Warm the non-voting class first, then voting must not reuse it.
        let plain = engine.estimate(&lat, &twig, Estimator::Recursive, &opts);
        let voted = engine.estimate(&lat, &twig, Estimator::RecursiveVoting, &opts);
        assert_eq!(
            plain.to_bits(),
            lat.estimate(&twig, Estimator::Recursive).to_bits()
        );
        assert_eq!(
            voted.to_bits(),
            lat.estimate(&twig, Estimator::RecursiveVoting).to_bits()
        );
    }

    #[test]
    fn generation_bump_invalidates() {
        let mut lat = sample_lattice();
        let engine = EstimationEngine::default();
        let twig = lat.parse_query("a[b[c][d]][e]").unwrap();
        let opts = EstimateOptions::default();
        let before = engine.estimate(&lat, &twig, Estimator::Recursive, &opts);
        assert!(before > 0.0);
        let g0 = lat.generation();
        lat.prune(0.0);
        assert_ne!(lat.generation(), g0);
        let after = engine.estimate(&lat, &twig, Estimator::Recursive, &opts);
        assert_eq!(
            after.to_bits(),
            lat.estimate(&twig, Estimator::Recursive).to_bits(),
            "post-mutation estimates come from the new summary"
        );
    }

    #[test]
    fn clear_empties_the_cache() {
        let lat = sample_lattice();
        let engine = EstimationEngine::default();
        let twig = lat.parse_query("a[b[c][d]][e]").unwrap();
        engine.estimate(
            &lat,
            &twig,
            Estimator::Recursive,
            &EstimateOptions::default(),
        );
        assert!(engine.stats().entries > 0);
        engine.clear();
        assert_eq!(engine.stats().entries, 0);
    }

    #[test]
    fn recorder_sees_queries_cache_traffic_and_batch_span() {
        let lat = sample_lattice();
        let rec = Arc::new(tl_obs::MetricsRecorder::new());
        let engine = EstimationEngine::with_recorder(
            EngineConfig {
                shards: 4,
                threads: 2,
            },
            rec.clone(),
        );
        let plain = EstimationEngine::default();
        let twigs: Vec<_> = ["a[b[c][d]][e]", "a/b/c", "a[b[c][d]][e]"]
            .iter()
            .map(|q| lat.parse_query(q).unwrap())
            .collect();
        let opts = EstimateOptions::default();
        let observed = engine.estimate_batch(&lat, &twigs, Estimator::RecursiveVoting, &opts);
        let expected = plain.estimate_batch(&lat, &twigs, Estimator::RecursiveVoting, &opts);
        for (a, b) in observed.iter().zip(&expected) {
            assert_eq!(
                a.to_bits(),
                b.to_bits(),
                "recording must not change results"
            );
        }
        let snap = rec.snapshot();
        assert_eq!(snap.counters[tl_obs::names::ENGINE_QUERIES], 3);
        assert_eq!(snap.histograms[tl_obs::names::QUERY_LATENCY_US].count, 3);
        assert_eq!(snap.histograms[tl_obs::names::DECOMP_DEPTH].count, 3);
        assert_eq!(snap.spans[tl_obs::names::SPAN_BATCH].count, 1);
        let stats = engine.stats();
        assert_eq!(snap.counters[tl_obs::names::ENGINE_CACHE_HITS], stats.hits);
        assert_eq!(
            snap.counters[tl_obs::names::ENGINE_CACHE_MISSES],
            stats.misses
        );
        assert!(stats.hits > 0, "the repeated query must hit the cache");
    }

    #[test]
    fn shard_count_rounds_to_power_of_two() {
        let engine = EstimationEngine::new(EngineConfig {
            shards: 3,
            threads: 1,
        });
        assert_eq!(engine.shards.len(), 4);
        assert_eq!(engine.mask, 3);
    }
}
