//! The decomposition estimators (paper §3).
//!
//! Both estimators reduce a twig query to patterns the summary stores:
//!
//! * **Recursive decomposition** (§3.2, Figure 4): pick two removable nodes
//!   `u, v`; estimate `ŝ(T) = ŝ(T−v) · ŝ(T−u) / ŝ(T−u−v)` (Lemma 1),
//!   recursing on each operand until it is resolvable from the summary.
//!   With *voting* (§3.2), the estimates over all removable pairs at each
//!   recursion node are averaged, damping error propagation from unlucky
//!   pair choices. Sub-twig estimates are memoized by canonical key, which
//!   keeps full voting polynomial (the set of distinct sub-twigs is small)
//!   while preserving the per-level-averaging semantics.
//! * **Fix-sized decomposition** (§3.3, Figure 5, Lemma 3): cover the twig
//!   with `n−k+1` k-subtrees in pre-order and take the telescoping product
//!   `ŝ(T) = Π s(tᵢ) / Π s(tᵢ ∩ coveredᵢ₋₁)`.
//!
//! Lookup misses behave per [`Lookup`]: a miss on a complete level is an
//! exact zero (zero-selectivity queries answer 0, the ≥90% negative-workload
//! accuracy of §5.1), while a miss on a δ-pruned level re-derives the count
//! recursively (Lemma 5).

use tl_fault::{Budget, Fault};
use tl_twig::canonical::key_of;
use tl_twig::ops::{decompose_pair, fixed_cover_with, removable_pairs, CoverStrategy};
use tl_twig::{Twig, TwigKey};
use tl_xml::FxHashMap;

use crate::summary::{Lookup, Summary};

/// Which estimation strategy to run.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Estimator {
    /// Recursive decomposition with a single deterministic pair per step.
    Recursive,
    /// Recursive decomposition averaging over all removable pairs.
    RecursiveVoting,
    /// Fix-sized pre-order covering (Lemma 3).
    FixSized,
    /// Fix-sized covering averaged over the cover-growth strategies
    /// (§3.3's voting extension; the paper observes it helps less than
    /// recursive voting because averaging happens only at the very end).
    FixSizedVoting,
}

impl Estimator {
    /// All estimators, in the paper's reporting order.
    pub const ALL: [Estimator; 4] = [
        Estimator::Recursive,
        Estimator::RecursiveVoting,
        Estimator::FixSized,
        Estimator::FixSizedVoting,
    ];

    /// Short name used in experiment output.
    pub fn name(self) -> &'static str {
        match self {
            Estimator::Recursive => "recursive",
            Estimator::RecursiveVoting => "recursive+voting",
            Estimator::FixSized => "fix-sized",
            Estimator::FixSizedVoting => "fix-sized+voting",
        }
    }
}

impl std::fmt::Display for Estimator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Tuning knobs for estimation.
///
/// The same options steer both the per-query path
/// ([`crate::TreeLattice::estimate_with`]) and the shared-cache engine
/// ([`crate::EstimationEngine`]); the engine folds `voting_cap` into its
/// cache key (the *voting class*), so estimates cached under one cap are
/// never served to a query running under another.
#[derive(Clone, Copy, Debug)]
pub struct EstimateOptions {
    /// Upper bound on the number of removable pairs averaged per recursion
    /// node under [`Estimator::RecursiveVoting`]. `usize::MAX` = full
    /// voting; `1` degenerates to plain recursive decomposition.
    pub voting_cap: usize,
    /// Resource limits consulted by the resilient entry points
    /// ([`crate::TreeLattice::estimate_resilient`],
    /// [`crate::EstimationEngine::estimate_batch_resilient`]). The plain
    /// infallible APIs ignore it entirely, so the default (unlimited)
    /// budget costs nothing there.
    pub budget: Budget,
}

impl Default for EstimateOptions {
    fn default() -> Self {
        Self {
            voting_cap: usize::MAX,
            budget: Budget::unlimited(),
        }
    }
}

/// Where resolved sub-twig estimates live during estimation.
///
/// The default implementation is a per-query local map (estimation state is
/// discarded when the query completes). [`crate::engine::EstimationEngine`]
/// substitutes a sharded cache shared across queries and worker threads;
/// cached values are pure functions of (summary, key, effective voting
/// width), so sharing never changes results.
pub(crate) trait SubtwigCache {
    /// Returns the cached estimate for `key`, if present.
    fn lookup(&mut self, key: &TwigKey) -> Option<f64>;

    /// Records the estimate for `key`.
    fn store(&mut self, key: TwigKey, value: f64);
}

/// The per-query local memo: today's single-query behavior.
impl SubtwigCache for FxHashMap<TwigKey, f64> {
    fn lookup(&mut self, key: &TwigKey) -> Option<f64> {
        self.get(key).copied()
    }

    fn store(&mut self, key: TwigKey, value: f64) {
        self.insert(key, value);
    }
}

/// Estimates the selectivity of `twig` from `summary`.
///
/// Returns a non-negative estimate; `0.0` means the summary proves (or the
/// decomposition concludes) the query cannot match.
///
/// Runs on the iterative decomposition-DAG evaluator ([`crate::dag`]) with a
/// throwaway id cache; bit-identical to the recursive byte-keyed path, which
/// remains available through [`estimate_with_cache`] for the budget-enforced
/// resilient rungs and as a differential baseline.
pub fn estimate(
    summary: &Summary,
    twig: &Twig,
    estimator: Estimator,
    opts: &EstimateOptions,
) -> f64 {
    let mut cache = crate::dag::LocalIdCache::default();
    crate::dag::estimate_dag(summary, twig, estimator, opts, &mut cache).0
}

/// [`estimate`] reading and writing sub-twig estimates through `cache`.
pub(crate) fn estimate_with_cache<C: SubtwigCache>(
    summary: &Summary,
    twig: &Twig,
    estimator: Estimator,
    opts: &EstimateOptions,
    cache: &mut C,
) -> f64 {
    estimate_with_cache_depth(summary, twig, estimator, opts, cache).0
}

/// [`estimate_with_cache`], additionally returning the deepest
/// decomposition recursion the query forced (0 when every sub-twig resolved
/// from the summary or cache without decomposing).
pub(crate) fn estimate_with_cache_depth<C: SubtwigCache>(
    summary: &Summary,
    twig: &Twig,
    estimator: Estimator,
    opts: &EstimateOptions,
    cache: &mut C,
) -> (f64, usize) {
    // With enforcement off no budget check ever runs, so the recursion is
    // infallible and this unwrap can never fire.
    try_estimate_with_cache_depth(summary, twig, estimator, opts, cache, false)
        .expect("unbudgeted estimation cannot fault")
}

/// The fallible core behind both the plain and the resilient entry points.
///
/// With `enforce` set, [`EstimateOptions::budget`] is consulted during the
/// recursion (deadline on every sub-twig resolution, memory on every memo
/// store) and the active fail-points at the `budget.*` sites can inject
/// trips. With `enforce` clear, no check runs and the result is bit-for-bit
/// what the pre-budget code computed.
pub(crate) fn try_estimate_with_cache_depth<C: SubtwigCache>(
    summary: &Summary,
    twig: &Twig,
    estimator: Estimator,
    opts: &EstimateOptions,
    cache: &mut C,
    enforce: bool,
) -> Result<(f64, usize), Fault> {
    let mut ctx = RecursiveCtx {
        summary,
        cache,
        voting: matches!(estimator, Estimator::RecursiveVoting),
        cap: match estimator {
            Estimator::RecursiveVoting => opts.voting_cap.max(1),
            _ => 1,
        },
        scratch: Vec::new(),
        depth: 0,
        max_depth: 0,
        budget: opts.budget,
        enforce,
        charged: 0,
    };
    let k = summary.max_size();
    let value = match estimator {
        Estimator::Recursive | Estimator::RecursiveVoting => ctx.estimate_key(key_of(twig))?,
        // Canonicalize first so the pre-order cover (and hence the result)
        // is identical for isomorphic queries.
        Estimator::FixSized => estimate_fixed(
            &mut ctx,
            &key_of(twig).decode(),
            CoverStrategy::AncestorsFirst,
            k,
        )?,
        Estimator::FixSizedVoting => {
            let canonical = key_of(twig).decode();
            let strategies = [CoverStrategy::AncestorsFirst, CoverStrategy::ChildrenFirst];
            let mut sum = 0.0f64;
            for &st in &strategies {
                sum += estimate_fixed(&mut ctx, &canonical, st, k)?;
            }
            sum / strategies.len() as f64
        }
    };
    Ok((value, ctx.max_depth))
}

/// Fix-sized estimation at an explicit window size `k` — possibly smaller
/// than the summary's mined order. This is exactly the computation behind
/// the `ReducedK` rung of the degradation ladder (fresh local memo, no
/// budget enforcement), exposed so test harnesses can reproduce a
/// `Degradation::ReducedK { k }` value bit-for-bit.
///
/// # Panics
///
/// Panics unless `2 ≤ k ≤ |twig|` (the fix-sized cover's own bounds).
pub fn estimate_fixed_at(summary: &Summary, twig: &Twig, k: usize, opts: &EstimateOptions) -> f64 {
    let mut memo: FxHashMap<TwigKey, f64> = FxHashMap::default();
    try_estimate_fixed_at(summary, twig, k, opts, &mut memo, false)
        .expect("unbudgeted estimation cannot fault")
}

/// Fix-sized estimation over windows of `k` nodes — possibly smaller than
/// the summary's mined order. This is the `ReducedK` rung of the
/// degradation ladder: window and overlap lookups at sizes `<= k` still
/// resolve exactly from the summary, only the covering is coarser.
pub(crate) fn try_estimate_fixed_at<C: SubtwigCache>(
    summary: &Summary,
    twig: &Twig,
    k: usize,
    opts: &EstimateOptions,
    cache: &mut C,
    enforce: bool,
) -> Result<f64, Fault> {
    let mut ctx = RecursiveCtx {
        summary,
        cache,
        voting: false,
        cap: 1,
        scratch: Vec::new(),
        depth: 0,
        max_depth: 0,
        budget: opts.budget,
        enforce,
        charged: 0,
    };
    estimate_fixed(
        &mut ctx,
        &key_of(twig).decode(),
        CoverStrategy::AncestorsFirst,
        k,
    )
}

/// Recursive-decomposition state: the summary plus a sub-twig cache.
struct RecursiveCtx<'s, 'c, C> {
    summary: &'s Summary,
    cache: &'c mut C,
    voting: bool,
    cap: usize,
    /// Recycled twig buffers for decoding keys on cache misses, one per
    /// active recursion depth.
    scratch: Vec<Twig>,
    /// Current and deepest decomposition recursion reached; surfaced as the
    /// `engine.decomposition.depth` metric.
    depth: usize,
    max_depth: usize,
    /// Limits checked while `enforce` is set; plain estimation runs with
    /// `enforce` clear and never consults them.
    budget: Budget,
    enforce: bool,
    /// Approximate bytes of memo state charged against the budget.
    charged: u64,
}

impl<C: SubtwigCache> RecursiveCtx<'_, '_, C> {
    /// The recursive estimator of Figure 4 on a canonical key.
    ///
    /// Takes the key by value: every caller builds a fresh key anyway, and
    /// moving it into the cache avoids the clone a borrowing insert forces.
    fn estimate_key(&mut self, key: TwigKey) -> Result<f64, Fault> {
        if self.enforce {
            self.budget.check_deadline()?;
        }
        if let Some(v) = self.cache.lookup(&key) {
            return Ok(v);
        }
        let value = match self.summary.lookup(&key) {
            Lookup::Exact(c) => c as f64,
            Lookup::Derivable | Lookup::TooLarge => {
                if key.node_count() <= 2 {
                    // Levels 1–2 are never pruned; reaching here means the
                    // summary genuinely lacks the pattern.
                    0.0
                } else {
                    let mut twig = self
                        .scratch
                        .pop()
                        .unwrap_or_else(|| Twig::single(key.root_label()));
                    key.decode_into(&mut twig);
                    self.depth += 1;
                    self.max_depth = self.max_depth.max(self.depth);
                    let v = self.decompose(&twig);
                    self.depth -= 1;
                    self.scratch.push(twig);
                    v?
                }
            }
        };
        if self.enforce {
            // Mirrors the cache's own accounting: key bytes plus entry
            // overhead.
            self.charged += key.as_bytes().len() as u64 + 32;
            self.budget.check_mem(self.charged)?;
        }
        self.cache.store(key, value);
        Ok(value)
    }

    /// One decomposition step, optionally averaged over all pairs (voting).
    fn decompose(&mut self, twig: &Twig) -> Result<f64, Fault> {
        let pairs = removable_pairs(twig);
        debug_assert!(!pairs.is_empty(), "size >= 3 twigs always decompose");
        let take = if self.voting { self.cap } else { 1 };
        let mut sum = 0.0;
        let mut n = 0usize;
        for &(u, v) in pairs.iter().take(take) {
            let d = decompose_pair(twig, u, v);
            let e1 = self.estimate_key(key_of(&d.t1))?;
            if e1 <= 0.0 {
                n += 1;
                continue;
            }
            let e2 = self.estimate_key(key_of(&d.t2))?;
            if e2 <= 0.0 {
                n += 1;
                continue;
            }
            let e12 = self.estimate_key(key_of(&d.t12))?;
            if e12 > 0.0 {
                sum += e1 * e2 / e12;
            }
            n += 1;
        }
        Ok(if n == 0 { 0.0 } else { sum / n as f64 })
    }
}

/// The fix-sized estimator of Lemma 3, over windows of `k` nodes.
fn estimate_fixed<C: SubtwigCache>(
    ctx: &mut RecursiveCtx<'_, '_, C>,
    twig: &Twig,
    strategy: CoverStrategy,
    k: usize,
) -> Result<f64, Fault> {
    if twig.len() <= k {
        return ctx.estimate_key(key_of(twig));
    }
    assert!(
        k >= 2,
        "fix-sized estimation requires a summary of order >= 2"
    );
    let mut numerator = 1.0f64;
    let mut denominator = 1.0f64;
    for step in fixed_cover_with(twig, k, strategy) {
        let s_sub = ctx.estimate_key(key_of(&step.subtree))?;
        if s_sub <= 0.0 {
            return Ok(0.0);
        }
        numerator *= s_sub;
        if let Some(overlap) = &step.overlap {
            let s_ov = ctx.estimate_key(key_of(overlap))?;
            if s_ov <= 0.0 {
                return Ok(0.0);
            }
            denominator *= s_ov;
        }
    }
    Ok(numerator / denominator)
}

#[cfg(test)]
mod tests {
    use tl_xml::LabelInterner;

    use super::*;

    /// Builds a summary directly from (query, count) pairs; levels present
    /// are exactly those with at least one pattern, and remain "complete".
    fn summary_of(patterns: &[(&str, u64)], k: usize) -> (Summary, LabelInterner) {
        let mut it = LabelInterner::new();
        let mut levels = vec![FxHashMap::default(); k];
        for (q, c) in patterns {
            let t = tl_twig::parse_twig(q, &mut it).unwrap();
            assert!(t.len() <= k, "pattern {q} larger than k");
            levels[t.len() - 1].insert(key_of(&t), *c);
        }
        (Summary::from_parts(levels, vec![false; k]), it)
    }

    fn q(it: &mut LabelInterner, s: &str) -> Twig {
        tl_twig::parse_twig(s, it).unwrap()
    }

    #[test]
    fn in_summary_lookup_is_exact() {
        let (s, mut it) = summary_of(&[("a", 10), ("a/b", 4)], 2);
        let t = q(&mut it, "a/b");
        for e in Estimator::ALL {
            assert_eq!(estimate(&s, &t, e, &EstimateOptions::default()), 4.0);
        }
    }

    #[test]
    fn lemma1_formula_on_one_step() {
        // T = a[b][c]; T1 = a[b] (12), T2 = a[c] (6), T12 = a (4)
        // => 12 * 6 / 4 = 18.
        let (s, mut it) = summary_of(&[("a", 4), ("a/b", 12), ("a/c", 6), ("b", 0), ("c", 0)], 2);
        let t = q(&mut it, "a[b][c]");
        let est = estimate(&s, &t, Estimator::Recursive, &EstimateOptions::default());
        assert!((est - 18.0).abs() < 1e-9, "est = {est}");
    }

    #[test]
    fn path_estimate_is_markov_chain() {
        // s(a/b/c/d) = s(a/b) s(b/c) s(c/d) / (s(b) s(c)).
        let (s, mut it) = summary_of(
            &[
                ("a", 2),
                ("b", 4),
                ("c", 8),
                ("d", 16),
                ("a/b", 6),
                ("b/c", 12),
                ("c/d", 24),
            ],
            2,
        );
        let t = q(&mut it, "a/b/c/d");
        let expected = 6.0 * 12.0 * 24.0 / (4.0 * 8.0);
        for e in Estimator::ALL {
            let est = estimate(&s, &t, e, &EstimateOptions::default());
            assert!(
                (est - expected).abs() < 1e-9,
                "{e}: est = {est}, expected {expected}"
            );
        }
    }

    #[test]
    fn zero_subpattern_zeroes_the_estimate() {
        let (s, mut it) = summary_of(&[("a", 4), ("a/b", 12)], 2);
        // a/z never occurs (complete level 2 miss) => a[b][z] estimates 0.
        let t = q(&mut it, "a[b][z]");
        for e in Estimator::ALL {
            assert_eq!(estimate(&s, &t, e, &EstimateOptions::default()), 0.0, "{e}");
        }
    }

    #[test]
    fn voting_averages_pair_estimates() {
        // T = a[b][c] with *inconsistent* counts so different pairs give
        // different values; removable pairs: (b, c) only — extend to a 4-node
        // twig a[b][c][d] where three pairs exist.
        let (s, mut it) = summary_of(
            &[
                ("a", 2),
                ("a/b", 4),
                ("a/c", 6),
                ("a/d", 8),
                ("a[b][c]", 10),
                ("a[b][d]", 20),
                ("a[c][d]", 30),
            ],
            3,
        );
        let t = q(&mut it, "a[b][c][d]");
        // Pair (b,c): s(T−c)·s(T−b)/s(T−b−c) = s(a[b][d])·s(a[c][d])/s(a[d])
        //  = 20·30/8 = 75
        // Pair (b,d): s(a[b][c])·s(a[c][d])/s(a[c]) = 10·30/6 = 50
        // Pair (c,d): s(a[b][c])·s(a[b][d])/s(a[b]) = 10·20/4 = 50
        let est_vote = estimate(
            &s,
            &t,
            Estimator::RecursiveVoting,
            &EstimateOptions::default(),
        );
        let expected = (75.0 + 50.0 + 50.0) / 3.0;
        assert!(
            (est_vote - expected).abs() < 1e-9,
            "voting est = {est_vote}, expected {expected}"
        );
        // Plain recursive picks the first pair deterministically; its value
        // must be one of the pair estimates.
        let est_plain = estimate(&s, &t, Estimator::Recursive, &EstimateOptions::default());
        assert!(
            [75.0, 50.0].iter().any(|v| (est_plain - v).abs() < 1e-9),
            "plain est = {est_plain}"
        );
    }

    #[test]
    fn voting_cap_one_equals_plain_recursive() {
        let (s, mut it) = summary_of(
            &[
                ("a", 2),
                ("a/b", 4),
                ("a/c", 6),
                ("a/d", 8),
                ("a[b][c]", 10),
                ("a[b][d]", 20),
                ("a[c][d]", 30),
            ],
            3,
        );
        let t = q(&mut it, "a[b][c][d]");
        let plain = estimate(&s, &t, Estimator::Recursive, &EstimateOptions::default());
        let capped = estimate(
            &s,
            &t,
            Estimator::RecursiveVoting,
            &EstimateOptions {
                voting_cap: 1,
                ..EstimateOptions::default()
            },
        );
        assert!((plain - capped).abs() < 1e-12);
    }

    #[test]
    fn fix_sized_telescopes() {
        // Path a/b/c/d/e with a 3-summary: windows abc, bcd, cde over
        // overlaps bc, cd.
        let (s, mut it) = summary_of(
            &[
                ("b", 4),
                ("c", 8),
                ("b/c", 12),
                ("c/d", 24),
                ("a/b/c", 100),
                ("b/c/d", 60),
                ("c/d/e", 40),
            ],
            3,
        );
        let t = q(&mut it, "a/b/c/d/e");
        let est = estimate(&s, &t, Estimator::FixSized, &EstimateOptions::default());
        let expected = 100.0 * 60.0 * 40.0 / (12.0 * 24.0);
        assert!((est - expected).abs() < 1e-9, "est = {est}");
    }

    #[test]
    fn fix_sized_voting_equals_plain_on_paths() {
        let (s, mut it) = summary_of(
            &[
                ("b", 4),
                ("c", 8),
                ("b/c", 12),
                ("c/d", 24),
                ("a/b/c", 100),
                ("b/c/d", 60),
                ("c/d/e", 40),
            ],
            3,
        );
        let t = q(&mut it, "a/b/c/d/e");
        let plain = estimate(&s, &t, Estimator::FixSized, &EstimateOptions::default());
        let voted = estimate(
            &s,
            &t,
            Estimator::FixSizedVoting,
            &EstimateOptions::default(),
        );
        assert!(
            (plain - voted).abs() < 1e-9,
            "both cover strategies coincide on paths: {plain} vs {voted}"
        );
    }

    #[test]
    fn fix_sized_voting_averages_distinct_covers_on_branching_twigs() {
        // A 5-node twig over a 3-summary where the two growth strategies
        // pick different overlaps: r[a[b][c]][d] — covering `d` can anchor
        // on r's ancestor side or on the a-subtree side.
        let (s, mut it) = summary_of(
            &[
                ("r", 2),
                ("a", 5),
                ("r/a", 5),
                ("r/d", 7),
                ("a/b", 9),
                ("a/c", 11),
                ("r[a[b]]", 10),
                ("r[a][d]", 20),
                ("a[b][c]", 18),
                ("r[a[b]][d]", 0), // force decomposition beyond k where needed
            ],
            4,
        );
        let t = q(&mut it, "r[a[b][c]][d]");
        let plain = estimate(&s, &t, Estimator::FixSized, &EstimateOptions::default());
        let voted = estimate(
            &s,
            &t,
            Estimator::FixSizedVoting,
            &EstimateOptions::default(),
        );
        assert!(plain.is_finite() && voted.is_finite());
        // Voting is the mean of the strategy estimates; with a 4-summary
        // and a size-5 twig it may coincide, so only sanity is asserted
        // here — the genuine divergence case is covered in the integration
        // suite where mined summaries produce differing covers.
        assert!(voted >= 0.0);
    }

    #[test]
    fn derivable_miss_falls_back_to_decomposition() {
        // Level 3 marked pruned and a[b][c] absent: derive 12*6/4 = 18.
        let (mut s, mut it) = summary_of(&[("a", 4), ("a/b", 12), ("a/c", 6)], 3);
        s.mark_pruned(3);
        let t = q(&mut it, "a[b][c]");
        let est = estimate(&s, &t, Estimator::Recursive, &EstimateOptions::default());
        assert!((est - 18.0).abs() < 1e-9, "est = {est}");
    }

    #[test]
    fn estimates_are_isomorphism_invariant() {
        let (s, mut it) = summary_of(
            &[("a", 4), ("a/b", 12), ("a/c", 6), ("b/d", 3), ("b", 5)],
            2,
        );
        let t1 = q(&mut it, "a[b[d]][c]");
        let t2 = q(&mut it, "a[c][b[d]]");
        for e in Estimator::ALL {
            let v1 = estimate(&s, &t1, e, &EstimateOptions::default());
            let v2 = estimate(&s, &t2, e, &EstimateOptions::default());
            assert!((v1 - v2).abs() < 1e-9, "{e}: {v1} vs {v2}");
        }
    }

    #[test]
    fn estimates_are_finite_and_nonnegative() {
        // Even with a zero denominator candidate (s(a) = 0 is inconsistent
        // but must not produce NaN/inf).
        let (s, mut it) = summary_of(&[("a", 0), ("a/b", 12), ("a/c", 6)], 2);
        let t = q(&mut it, "a[b][c]");
        for e in Estimator::ALL {
            let v = estimate(&s, &t, e, &EstimateOptions::default());
            assert!(v.is_finite() && v >= 0.0, "{e}: {v}");
        }
    }
}
