//! Human-readable decomposition traces.
//!
//! `EXPLAIN` for the estimator: shows how a twig query was reduced to
//! summary lookups — which sub-twigs were read exactly, where the
//! conditional-independence formula was applied, and what each step
//! contributed. Invaluable when an estimate looks off: the trace points at
//! the exact overlap whose correlation broke the assumption.

use std::fmt::Write as _;

use tl_twig::canonical::key_of;
use tl_twig::ops::{decompose_pair, removable_pairs};
use tl_twig::Twig;
use tl_xml::LabelInterner;

use crate::estimator::{estimate, EstimateOptions, Estimator};
use crate::interval::estimate_interval;
use crate::summary::{Lookup, Summary};

/// Renders the recursive-decomposition trace of `twig` against `summary`.
///
/// The trace follows the plain recursive estimator (first removable pair
/// at each step); the header additionally reports the voting estimate and
/// the decomposition-disagreement interval.
pub fn explain(summary: &Summary, labels: &LabelInterner, twig: &Twig) -> String {
    let mut out = String::new();
    let opts = EstimateOptions::default();
    let point = estimate(summary, twig, Estimator::Recursive, &opts);
    let vote = estimate(summary, twig, Estimator::RecursiveVoting, &opts);
    let iv = estimate_interval(summary, twig);
    let _ = writeln!(
        out,
        "query: {}\nrecursive = {:.3}   voting = {:.3}   spread = [{:.3}, {}]",
        twig.to_query_string(labels),
        point,
        vote,
        iv.low,
        if iv.high.is_finite() {
            format!("{:.3}", iv.high)
        } else {
            "inf".to_owned()
        },
    );
    render(summary, labels, twig, 0, &mut out);
    out
}

fn render(summary: &Summary, labels: &LabelInterner, twig: &Twig, depth: usize, out: &mut String) {
    let indent = "  ".repeat(depth);
    let query = twig.to_query_string(labels);
    let key = key_of(twig);
    match summary.lookup(&key) {
        Lookup::Exact(c) => {
            let _ = writeln!(out, "{indent}{query} = {c}  (stored, exact)");
        }
        Lookup::Derivable | Lookup::TooLarge if twig.len() <= 2 => {
            let _ = writeln!(out, "{indent}{query} = 0  (absent from complete level)");
        }
        source @ (Lookup::Derivable | Lookup::TooLarge) => {
            let why = match source {
                Lookup::TooLarge => "larger than the summary order",
                _ => "pruned as derivable",
            };
            let opts = EstimateOptions::default();
            let value = estimate(summary, twig, Estimator::Recursive, &opts);
            let canonical = key.decode();
            let (u, v) = removable_pairs(&canonical)[0];
            let d = decompose_pair(&canonical, u, v);
            let _ = writeln!(
                out,
                "{indent}{query} ~= {value:.3}  ({why}; s(T1)*s(T2)/s(T12) with)"
            );
            render(summary, labels, &d.t1, depth + 1, out);
            render(summary, labels, &d.t2, depth + 1, out);
            render(summary, labels, &d.t12, depth + 1, out);
        }
    }
}

#[cfg(test)]
mod tests {
    use tl_xml::{parse_document, ParseOptions};

    use crate::{BuildConfig, TreeLattice};

    use super::*;

    fn lattice() -> TreeLattice {
        let mut xml = String::from("<r>");
        for _ in 0..6 {
            xml.push_str("<a><b><c/></b><d/></a>");
        }
        xml.push_str("</r>");
        let doc = parse_document(xml.as_bytes(), ParseOptions::default()).unwrap();
        TreeLattice::build(&doc, &BuildConfig::with_k(3))
    }

    #[test]
    fn stored_queries_explain_as_exact() {
        let lat = lattice();
        let q = lat.parse_query("a/b/c").unwrap();
        let text = explain(lat.summary(), lat.labels(), &q);
        assert!(text.contains("stored, exact"), "{text}");
        assert!(text.contains("a[b[c]] = 6"), "{text}");
    }

    #[test]
    fn large_queries_show_the_decomposition_tree() {
        let lat = lattice();
        let q = lat.parse_query("a[b[c]][d]").unwrap();
        let text = explain(lat.summary(), lat.labels(), &q);
        assert!(text.contains("larger than the summary order"), "{text}");
        // The three operands appear, indented.
        assert!(text.contains("\n  "), "{text}");
        assert!(text.contains("s(T1)*s(T2)/s(T12)"), "{text}");
        assert!(text.contains("recursive = 6.000"), "{text}");
    }

    #[test]
    fn zero_queries_explain_the_missing_edge() {
        let lat = lattice();
        // `zzz` never occurred: explain through the query API, which keeps
        // the scratch interner that can resolve it.
        let text = lat.explain_query("a[b][zzz]").unwrap();
        assert!(
            text.contains("absent from complete level") || text.contains("= 0  (stored, exact)"),
            "{text}"
        );
    }

    #[test]
    fn header_reports_interval() {
        let lat = lattice();
        let q = lat.parse_query("r/a[b[c]][d]").unwrap();
        let text = explain(lat.summary(), lat.labels(), &q);
        assert!(text.contains("spread = ["), "{text}");
        assert!(text.contains("voting = "), "{text}");
    }
}
