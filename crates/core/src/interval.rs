//! Interval estimates: a decomposition-disagreement error bar.
//!
//! The paper's future-work list (§6) asks for "an error bound associated
//! with the estimation". This module provides the natural bound available
//! *within* the decomposition framework: at every recursion node the
//! voting candidates (one per removable pair) generally disagree, and the
//! spread of their values — propagated through the recursion with interval
//! arithmetic — measures how far the conditional-independence assumption
//! is being stretched for this particular query.
//!
//! The returned interval is a *heuristic diagnostic*, not a probabilistic
//! guarantee: a width of zero means every decomposition order agrees (on
//! perfectly regular data the estimate is then typically exact), while a
//! wide interval flags queries whose estimate should not be trusted. The
//! midpoint reproduces the voting estimator exactly.

use tl_twig::canonical::key_of;
use tl_twig::ops::{decompose_pair, removable_pairs};
use tl_twig::{Twig, TwigKey};
use tl_xml::FxHashMap;

use crate::summary::{Lookup, Summary};

/// A point estimate with a decomposition-disagreement interval around it.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct IntervalEstimate {
    /// Smallest value any decomposition order produces.
    pub low: f64,
    /// The voting estimate (average over pairs at each recursion node).
    pub estimate: f64,
    /// Largest value any decomposition order produces; `f64::INFINITY`
    /// when some order divides by a vanishing overlap estimate.
    pub high: f64,
}

impl IntervalEstimate {
    fn point(v: f64) -> Self {
        Self {
            low: v,
            estimate: v,
            high: v,
        }
    }

    /// Interval width relative to the estimate (0 = all orders agree).
    pub fn relative_width(&self) -> f64 {
        if self.estimate <= 0.0 {
            if self.high > self.low {
                f64::INFINITY
            } else {
                0.0
            }
        } else {
            (self.high - self.low) / self.estimate
        }
    }
}

/// Computes the interval estimate of `twig` against `summary`.
pub fn estimate_interval(summary: &Summary, twig: &Twig) -> IntervalEstimate {
    let mut memo: FxHashMap<TwigKey, IntervalEstimate> = FxHashMap::default();
    interval_key(summary, &key_of(twig), &mut memo)
}

fn interval_key(
    summary: &Summary,
    key: &TwigKey,
    memo: &mut FxHashMap<TwigKey, IntervalEstimate>,
) -> IntervalEstimate {
    if let Some(&v) = memo.get(key) {
        return v;
    }
    let value = match summary.lookup(key) {
        Lookup::Exact(c) => IntervalEstimate::point(c as f64),
        Lookup::Derivable | Lookup::TooLarge => {
            let twig = key.decode();
            if twig.len() <= 2 {
                IntervalEstimate::point(0.0)
            } else {
                decompose_interval(summary, &twig, memo)
            }
        }
    };
    memo.insert(key.clone(), value);
    value
}

fn decompose_interval(
    summary: &Summary,
    twig: &Twig,
    memo: &mut FxHashMap<TwigKey, IntervalEstimate>,
) -> IntervalEstimate {
    let pairs = removable_pairs(twig);
    debug_assert!(!pairs.is_empty());
    let mut low = f64::INFINITY;
    let mut high: f64 = 0.0;
    let mut mid_sum = 0.0;
    let mut n = 0usize;
    for &(u, v) in &pairs {
        let d = decompose_pair(twig, u, v);
        let i1 = interval_key(summary, &key_of(&d.t1), memo);
        let i2 = interval_key(summary, &key_of(&d.t2), memo);
        let i12 = interval_key(summary, &key_of(&d.t12), memo);
        // Point part (matches the voting estimator's arithmetic exactly).
        let mid = if i1.estimate > 0.0 && i2.estimate > 0.0 && i12.estimate > 0.0 {
            i1.estimate * i2.estimate / i12.estimate
        } else {
            0.0
        };
        mid_sum += mid;
        n += 1;
        // Interval part: product of lows over the largest overlap, and
        // product of highs over the smallest overlap.
        let pair_low = if i12.high > 0.0 {
            i1.low * i2.low / i12.high
        } else {
            0.0
        };
        let pair_high = if i1.high == 0.0 || i2.high == 0.0 {
            0.0
        } else if i12.low > 0.0 {
            i1.high * i2.high / i12.low
        } else {
            f64::INFINITY
        };
        low = low.min(pair_low);
        high = high.max(pair_high);
    }
    let estimate = if n == 0 { 0.0 } else { mid_sum / n as f64 };
    if low > high {
        // All pairs degenerate (e.g. every branch zero).
        low = estimate;
        high = estimate;
    }
    IntervalEstimate {
        low: low.min(estimate),
        estimate,
        high: high.max(estimate),
    }
}

#[cfg(test)]
mod tests {
    use tl_xml::{parse_document, ParseOptions};

    use crate::estimator::{estimate, EstimateOptions, Estimator};
    use crate::{BuildConfig, TreeLattice};

    use super::*;

    fn lattice_of(xml: &str, k: usize) -> (tl_xml::Document, TreeLattice) {
        let doc = parse_document(xml.as_bytes(), ParseOptions::default()).unwrap();
        let lat = TreeLattice::build(&doc, &BuildConfig::with_k(k));
        (doc, lat)
    }

    #[test]
    fn stored_patterns_are_points() {
        let (_, lat) = lattice_of("<a><b/><c/></a>", 3);
        let q = lat.parse_query("a[b][c]").unwrap();
        let iv = estimate_interval(lat.summary(), &q);
        assert_eq!(iv, IntervalEstimate::point(1.0));
        assert_eq!(iv.relative_width(), 0.0);
    }

    #[test]
    fn midpoint_equals_voting_estimate() {
        let mut xml = String::from("<r>");
        for i in 0..12 {
            // Irregular records: disagreement between decomposition orders.
            xml.push_str(if i % 3 == 0 {
                "<a><b/><b/><c/><d/></a>"
            } else if i % 3 == 1 {
                "<a><b/><c/></a>"
            } else {
                "<a><d/><c/><c/></a>"
            });
        }
        xml.push_str("</r>");
        let (_, lat) = lattice_of(&xml, 2);
        for q in ["a[b][c][d]", "r/a[b][c]", "a[b][c]"] {
            let twig = lat.parse_query(q).unwrap();
            let iv = estimate_interval(lat.summary(), &twig);
            let vote = estimate(
                lat.summary(),
                &twig,
                Estimator::RecursiveVoting,
                &EstimateOptions::default(),
            );
            assert!(
                (iv.estimate - vote).abs() < 1e-9,
                "{q}: interval mid {} vs voting {vote}",
                iv.estimate
            );
            assert!(
                iv.low <= iv.estimate + 1e-12 && iv.estimate <= iv.high + 1e-12,
                "{q}"
            );
        }
    }

    #[test]
    fn regular_data_has_zero_width() {
        let mut xml = String::from("<r>");
        for _ in 0..10 {
            xml.push_str("<a><b><c/></b><d/></a>");
        }
        xml.push_str("</r>");
        let (_, lat) = lattice_of(&xml, 2);
        let q = lat.parse_query("a[b[c]][d]").unwrap();
        let iv = estimate_interval(lat.summary(), &q);
        assert!(
            iv.relative_width() < 1e-9,
            "regular data should have no disagreement: {iv:?}"
        );
        assert!((iv.estimate - 10.0).abs() < 1e-9);
    }

    #[test]
    fn correlated_data_produces_positive_width() {
        // Records where b/c co-occurrence is correlated but d is not:
        // different decomposition orders of a[b][c][d] route through
        // different stored size-3 patterns and disagree.
        let mut xml = String::from("<r>");
        for _ in 0..5 {
            xml.push_str("<a><b/><c/><d/></a>");
        }
        for _ in 0..5 {
            xml.push_str("<a><b/></a><a><c/></a><a><d/></a>");
        }
        for _ in 0..3 {
            xml.push_str("<a><b/><c/></a>");
        }
        xml.push_str("</r>");
        let (_, lat) = lattice_of(&xml, 3);
        let q = lat.parse_query("a[b][c][d]").unwrap();
        let iv = estimate_interval(lat.summary(), &q);
        assert!(
            iv.relative_width() > 0.05,
            "decomposition orders should disagree here: {iv:?}"
        );
        assert!(iv.low < iv.high);
        assert!(iv.low <= iv.estimate && iv.estimate <= iv.high);
        // The width is a *diagnostic*, not a guarantee: here every order
        // shares the independence bias and the truth (5) sits above the
        // whole interval — exactly the situation the caller is being
        // warned about by the positive width.
    }

    #[test]
    fn zero_queries_are_zero_points() {
        let (_, lat) = lattice_of("<a><b/></a>", 2);
        let q = lat.parse_query("a[b][z]").unwrap();
        let iv = estimate_interval(lat.summary(), &q);
        assert_eq!(iv.estimate, 0.0);
        assert_eq!(iv.low, 0.0);
        assert_eq!(iv.high, 0.0);
    }
}
