//! # treelattice — decomposition-based twig selectivity estimation
//!
//! A reproduction of *"A Decomposition-Based Probabilistic Framework for
//! Estimating the Selectivity of XML Twig Queries"* (Wang, Jin,
//! Parthasarathy). The system summarizes an XML document by the exact
//! occurrence counts of all small twig patterns (the *lattice summary*,
//! built by [`tl_miner`]) and estimates the selectivity of larger twig
//! queries by probabilistic decomposition under a conditional-independence
//! assumption (Theorem 1).
//!
//! ## Quick start
//!
//! ```
//! use tl_xml::{parse_document, ParseOptions};
//! use treelattice::{BuildConfig, Estimator, TreeLattice};
//!
//! let doc = parse_document(
//!     b"<computer><laptops>\
//!         <laptop><brand/><price/></laptop>\
//!         <laptop><brand/><price/></laptop>\
//!       </laptops><desktops/></computer>",
//!     ParseOptions::default(),
//! ).unwrap();
//!
//! // Build a 3-lattice summary and estimate Figure 1's query.
//! let lattice = TreeLattice::build(&doc, &BuildConfig::with_k(3));
//! let est = lattice
//!     .estimate_query("//laptop[brand][price]", Estimator::RecursiveVoting)
//!     .unwrap();
//! assert_eq!(est, 2.0); // small twigs are answered exactly
//! ```
//!
//! ## Modules
//!
//! * [`summary`] — the lattice summary with complete/pruned level semantics;
//! * [`estimator`] — recursive decomposition (± voting) and fix-sized
//!   covering estimators;
//! * [`pruning`] — δ-derivable pattern pruning (Definition 2 / Figure 6);
//! * [`online`] — workload-aware on-line tuning (the paper's §6 future
//!   work): feed executed queries' true counts back into the summary;
//! * [`interval`] — decomposition-disagreement error bars (the §6 "error
//!   bound" direction);
//! * [`mod@explain`] — human-readable decomposition traces (EXPLAIN for the
//!   estimator);
//! * [`serialize`] — versioned binary persistence of summaries;
//! * [`catalog`] — swappable pattern-store backends: in-memory, eager file
//!   load, and a zero-copy mmap reader serving lookups from frame bytes;
//! * [`trie`] — a prefix-tree summary store kept for the §4.2 ablation.

pub mod catalog;
pub(crate) mod dag;
pub mod engine;
pub mod estimator;
pub mod explain;
pub mod interval;
pub mod online;
pub mod pruning;
pub mod reference;
pub mod resilient;
pub mod serialize;
pub mod summary;
pub mod trie;
pub mod wal;

use tl_miner::{mine_with_index_budgeted, MineConfig};
use tl_twig::canonical::KeyEncoder;
use tl_twig::{parse_twig, Twig, TwigKey, TwigParseError};
use tl_xml::{DocIndex, Document, FxHashMap, LabelId, LabelInterner};

pub use catalog::{
    estimate_catalog, estimate_catalog_query, Catalog, CatalogError, FileCatalog, MmapCatalog,
    PatternStore,
};
pub use engine::{EngineConfig, EngineStats, EstimationEngine};
pub use estimator::{estimate, estimate_fixed_at, EstimateOptions, Estimator};
pub use explain::explain;
pub use interval::{estimate_interval, IntervalEstimate};
pub use online::{TunedLattice, TunerStats};
pub use pruning::{prune_derivable, PruneReport};
pub use reference::ReferenceEngine;
pub use resilient::{markov_estimate, markov_estimate_store, ResilientEstimate};
pub use serialize::ReadError;
pub use summary::{Lookup, Summary};
pub use wal::{
    recover, Applied, DurabilityPolicy, DurableLattice, DurableOptions, IdemCache, Recovered,
    RecoveryReport,
};
// Corpus mining's config/report are part of the build API surface:
// `TreeLattice::build_corpus` takes the former and summarizes the latter.
pub use tl_miner::{CorpusConfig, CorpusReport};
// The fault vocabulary is part of this crate's public API surface: budgets
// ride in `EstimateOptions`/`BuildConfig`, resilient results are tagged
// with `Degradation`, and fallible paths report `Fault`.
pub use tl_fault::{exit_code, Budget, Degradation, Fault, FaultKind, Outcome};

/// Configuration for [`TreeLattice::build`].
#[derive(Clone, Copy, Debug)]
pub struct BuildConfig {
    /// Lattice order: the largest pattern size stored (the paper's default
    /// evaluation uses 4).
    pub k: usize,
    /// Mining worker threads (`0` = available parallelism).
    pub threads: usize,
    /// Prune δ-derivable patterns right after mining when set.
    pub prune_delta: Option<f64>,
    /// Resource limits for the mining run. When the deadline or memory cap
    /// trips between levels, mining stops early and the build degrades to a
    /// lower-order (but internally consistent) summary instead of failing;
    /// see [`TreeLattice::build_with_report`].
    pub budget: Budget,
}

impl Default for BuildConfig {
    fn default() -> Self {
        Self {
            k: 4,
            threads: 0,
            prune_delta: None,
            budget: Budget::unlimited(),
        }
    }
}

impl BuildConfig {
    /// A configuration with lattice order `k` and defaults otherwise.
    pub fn with_k(k: usize) -> Self {
        Self {
            k,
            ..Self::default()
        }
    }
}

/// The TreeLattice selectivity estimator: a label table plus the lattice
/// summary mined from one document.
#[derive(Clone, Debug)]
pub struct TreeLattice {
    labels: LabelInterner,
    summary: Summary,
    /// Summary-content version, drawn from a process-wide counter. Every
    /// mutation ([`TreeLattice::update_after_edit`], [`TreeLattice::prune`],
    /// [`TreeLattice::set_summary`]) assigns a fresh value, which is how
    /// [`engine::EstimationEngine`] invalidates its shared cache. Clones keep
    /// the generation: identical summaries may share cached estimates.
    generation: u64,
}

/// Process-wide generation source; starts at 1 so 0 can mean "never set".
static GENERATION: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(1);

fn next_generation() -> u64 {
    GENERATION.fetch_add(1, std::sync::atomic::Ordering::Relaxed)
}

impl TreeLattice {
    /// Mines `doc` and builds the summary.
    pub fn build(doc: &Document, config: &BuildConfig) -> Self {
        Self::build_with_index(doc, &DocIndex::new(doc), config)
    }

    /// [`build`](TreeLattice::build) over a pre-built document index, so one
    /// index per document serves mining, ground truth, and baselines.
    pub fn build_with_index(doc: &Document, index: &DocIndex, config: &BuildConfig) -> Self {
        Self::build_with_index_observed(doc, index, config, &tl_obs::NOOP)
    }

    /// [`build_with_index`](TreeLattice::build_with_index), reporting the
    /// mining run's statistics to `rec` (see
    /// [`tl_miner::mine_with_index_observed`]).
    pub fn build_with_index_observed(
        doc: &Document,
        index: &DocIndex,
        config: &BuildConfig,
        rec: &dyn tl_obs::Recorder,
    ) -> Self {
        Self::build_with_report(doc, index, config, rec).0
    }

    /// [`build_with_index_observed`](TreeLattice::build_with_index_observed),
    /// additionally returning the fault that stopped mining early, if the
    /// build budget tripped. A `Some` fault means the summary's order is
    /// lower than `config.k` but every stored level is exact and usable.
    pub fn build_with_report(
        doc: &Document,
        index: &DocIndex,
        config: &BuildConfig,
        rec: &dyn tl_obs::Recorder,
    ) -> (Self, Option<Fault>) {
        let report = mine_with_index_budgeted(
            index,
            MineConfig {
                max_size: config.k,
                threads: config.threads,
            },
            config.budget,
            rec,
        );
        let stopped_early = report.stopped_early;
        let mut summary = Summary::from_mined(report.lattice);
        if let Some(delta) = config.prune_delta {
            let (pruned, _) = prune_derivable(&summary, delta);
            summary = pruned;
        }
        (
            Self {
                labels: doc.labels().clone(),
                summary,
                generation: next_generation(),
            },
            stopped_early,
        )
    }

    /// Builds a lattice over a multi-document corpus: documents are sharded
    /// across workers, mined independently, and the per-shard lattices are
    /// merged in a tree reduction (see [`tl_miner::mine_corpus`]). The
    /// resulting counts — and the canonical serialization — are identical
    /// for every shard count. When `prune_delta` is set, δ-pruning runs once
    /// over the *merged* summary (pruning does not commute with merging, so
    /// it must come last).
    pub fn build_corpus(docs: &[Document], config: CorpusConfig, prune_delta: Option<f64>) -> Self {
        Self::build_corpus_observed(docs, config, prune_delta, &tl_obs::NOOP)
    }

    /// [`build_corpus`](TreeLattice::build_corpus), recording
    /// `miner.corpus.shards` and `miner.merge.ms` to `rec`.
    pub fn build_corpus_observed(
        docs: &[Document],
        config: CorpusConfig,
        prune_delta: Option<f64>,
        rec: &dyn tl_obs::Recorder,
    ) -> Self {
        let report = tl_miner::mine_corpus_observed(docs, config, rec);
        let mut summary = Summary::from_mined(report.lattice);
        if let Some(delta) = prune_delta {
            let (pruned, _) = prune_derivable(&summary, delta);
            summary = pruned;
        }
        Self {
            labels: report.labels,
            summary,
            generation: next_generation(),
        }
    }

    /// Merges `other`'s summary into this one: label universes union (ids
    /// already assigned here never move), pattern counts add, pruned flags
    /// OR. Keys of `other` expressed in a different label universe are
    /// translated and re-canonicalized on the way in.
    ///
    /// Merging is commutative and associative in the stored counts, but
    /// δ-pruning is *not* a monoid homomorphism: a pattern derivable in each
    /// operand may not be derivable in the sum. Merge all operands first,
    /// then [`prune`](TreeLattice::prune) once — the order `gate_corpus`
    /// verifies against sequential mining.
    pub fn merge(&mut self, other: &TreeLattice) {
        let map = self.labels.extend_from(other.labels());
        if map.iter().enumerate().all(|(i, id)| id.index() == i) {
            self.summary.merge(other.summary());
        } else {
            let mut enc = KeyEncoder::new();
            let mut buf: Vec<u8> = Vec::new();
            let mut scratch = Twig::single(LabelId(0));
            let k = other.summary.max_size();
            let mut levels: Vec<FxHashMap<TwigKey, u64>> = Vec::with_capacity(k);
            let mut pruned_flags: Vec<bool> = Vec::with_capacity(k);
            for size in 1..=k {
                let mut level = FxHashMap::default();
                for (key, count) in other.summary.iter_level(size) {
                    key.decode_into(&mut scratch);
                    scratch.relabel(&map);
                    // Canonical order depends on label ids: re-encode.
                    enc.encode_into(&scratch, &mut buf);
                    level.insert(TwigKey::from_raw(buf.as_slice().into()), count);
                }
                levels.push(level);
                pruned_flags.push(other.summary.is_pruned(size));
            }
            self.summary
                .merge(&Summary::from_parts(levels, pruned_flags));
        }
        self.generation = next_generation();
    }

    /// Assembles a lattice from pre-built parts (deserialization, tests).
    pub fn from_parts(labels: LabelInterner, summary: Summary) -> Self {
        Self {
            labels,
            summary,
            generation: next_generation(),
        }
    }

    /// The summary-content version. Changes on every mutation; equal values
    /// imply the summaries are interchangeable for caching purposes (a
    /// lattice and its unmutated clones share a generation).
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// The lattice order `k`.
    pub fn k(&self) -> usize {
        self.summary.max_size()
    }

    /// The label table the summary is keyed against.
    pub fn labels(&self) -> &LabelInterner {
        &self.labels
    }

    /// The underlying summary.
    pub fn summary(&self) -> &Summary {
        &self.summary
    }

    /// Summary memory footprint in bytes.
    pub fn summary_bytes(&self) -> usize {
        self.summary.heap_bytes()
    }

    /// Estimates the selectivity of a twig with default options.
    pub fn estimate(&self, twig: &Twig, estimator: Estimator) -> f64 {
        self.estimate_with(twig, estimator, &EstimateOptions::default())
    }

    /// Estimates the selectivity of a twig with explicit options.
    pub fn estimate_with(&self, twig: &Twig, estimator: Estimator, opts: &EstimateOptions) -> f64 {
        // A label the document never contained cannot match anything.
        if twig
            .nodes()
            .any(|n| twig.label(n).index() >= self.labels.len())
        {
            return 0.0;
        }
        estimate(&self.summary, twig, estimator, opts)
    }

    /// [`estimate_with`](TreeLattice::estimate_with), reporting per-query
    /// metrics to `rec`: `engine.queries`, `engine.query.latency_us`, and
    /// `engine.decomposition.depth` (the same names the shared-cache engine
    /// uses, so one snapshot covers both paths).
    pub fn estimate_with_observed(
        &self,
        twig: &Twig,
        estimator: Estimator,
        opts: &EstimateOptions,
        rec: &dyn tl_obs::Recorder,
    ) -> f64 {
        if twig
            .nodes()
            .any(|n| twig.label(n).index() >= self.labels.len())
        {
            return 0.0;
        }
        let start = rec.enabled().then(std::time::Instant::now);
        let mut cache = dag::LocalIdCache::default();
        let (value, depth, _stats) =
            dag::estimate_dag(&self.summary, twig, estimator, opts, &mut cache);
        if let Some(start) = start {
            rec.add(tl_obs::names::ENGINE_QUERIES, 1);
            rec.observe(
                tl_obs::names::QUERY_LATENCY_US,
                start.elapsed().as_micros() as u64,
            );
            rec.observe(tl_obs::names::DECOMP_DEPTH, depth as u64);
        }
        value
    }

    /// Estimates a twig under the budget in `opts`, degrading instead of
    /// failing: the result is always a finite, non-negative estimate, and
    /// its [`Degradation`] tag records which rung of the ladder produced it
    /// (see [`resilient`]).
    pub fn estimate_resilient(
        &self,
        twig: &Twig,
        estimator: Estimator,
        opts: &EstimateOptions,
    ) -> ResilientEstimate {
        if twig
            .nodes()
            .any(|n| twig.label(n).index() >= self.labels.len())
        {
            return ResilientEstimate {
                value: 0.0,
                degradation: Degradation::None,
                cause: None,
            };
        }
        let mut memo: tl_xml::FxHashMap<tl_twig::TwigKey, f64> = tl_xml::FxHashMap::default();
        resilient::estimate_resilient_with_cache(&self.summary, twig, estimator, opts, &mut memo)
    }

    /// Parses a query in the twig surface syntax and estimates it.
    ///
    /// Labels that never occurred in the document yield an estimate of `0.0`
    /// (they cannot match), not a parse error.
    pub fn estimate_query(&self, query: &str, estimator: Estimator) -> Result<f64, TwigParseError> {
        let mut scratch = self.labels.clone();
        let twig = parse_twig(query, &mut scratch)?;
        Ok(self.estimate(&twig, estimator))
    }

    /// Parses a query against this lattice's label table (new labels are
    /// allowed and mapped to fresh ids, which estimate to zero).
    pub fn parse_query(&self, query: &str) -> Result<Twig, TwigParseError> {
        let mut scratch = self.labels.clone();
        parse_twig(query, &mut scratch)
    }

    /// Renders a decomposition trace for a query (EXPLAIN); see
    /// [`explain::explain`].
    pub fn explain_query(&self, query: &str) -> Result<String, TwigParseError> {
        let mut scratch = self.labels.clone();
        let twig = parse_twig(query, &mut scratch)?;
        Ok(explain::explain(&self.summary, &scratch, &twig))
    }

    /// Estimates a query with value predicates (`laptop[brand="Dell"]`).
    /// The `mode` must match the [`tl_xml::ValueMode`] the document was
    /// parsed with; see `tl_twig::parse_twig_valued`.
    pub fn estimate_query_valued(
        &self,
        query: &str,
        mode: tl_xml::ValueMode,
        estimator: Estimator,
    ) -> Result<f64, TwigParseError> {
        let mut scratch = self.labels.clone();
        let twig = tl_twig::parse_twig_valued(query, &mut scratch, mode)?;
        Ok(self.estimate(&twig, estimator))
    }

    /// Incrementally refreshes the summary after a document edit
    /// (`tl_xml::append_subtree` / `remove_subtree`): patterns containing
    /// none of the edit's `touched` labels keep their counts; the rest are
    /// recounted against `doc_new`. Equivalent to a full rebuild, usually
    /// much cheaper (paper §2.2's "incremental by design").
    ///
    /// # Panics
    ///
    /// Panics if the summary has pruned levels (prune *after* updates).
    pub fn update_after_edit(
        &mut self,
        doc_new: &Document,
        touched: &[tl_xml::LabelId],
    ) -> tl_miner::UpdateReport {
        let k = self.summary.max_size();
        let mut levels = Vec::with_capacity(k);
        for size in 1..=k {
            assert!(
                !self.summary.is_pruned(size),
                "update_after_edit requires an unpruned summary"
            );
            let map: tl_xml::FxHashMap<_, _> = self
                .summary
                .iter_level(size)
                .map(|(key, c)| (key.clone(), c))
                .collect();
            levels.push(map);
        }
        let prev = tl_miner::MinedLattice::from_levels(levels);
        let (updated, report) = tl_miner::update_mined(
            doc_new,
            &prev,
            touched,
            tl_miner::MineConfig {
                max_size: k,
                threads: 1,
            },
        );
        self.labels = doc_new.labels().clone();
        self.summary = Summary::from_mined(updated);
        self.generation = next_generation();
        report
    }

    /// Prunes δ-derivable patterns in place; returns the report.
    pub fn prune(&mut self, delta: f64) -> PruneReport {
        let (kept, report) = prune_derivable(&self.summary, delta);
        self.summary = kept;
        self.generation = next_generation();
        report
    }

    /// Replaces the summary (used by experiments that splice levels, e.g.
    /// Figure 10(b)'s pruned-4-lattice + level-5 non-derivables, and by the
    /// online tuner's feedback path).
    pub fn set_summary(&mut self, summary: Summary) {
        self.summary = summary;
        self.generation = next_generation();
    }

    /// Serializes to the versioned binary format.
    pub fn to_bytes(&self) -> Vec<u8> {
        serialize::to_bytes(self)
    }

    /// Parses the versioned binary format.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, ReadError> {
        serialize::from_bytes(bytes)
    }
}

#[cfg(test)]
mod tests {
    use tl_xml::{parse_document, ParseOptions};

    use super::*;

    fn doc(s: &str) -> Document {
        parse_document(s.as_bytes(), ParseOptions::default()).unwrap()
    }

    #[test]
    fn small_queries_are_exact() {
        let d = doc("<computer><laptops>\
               <laptop><brand/><price/></laptop>\
               <laptop><brand/><price/></laptop>\
             </laptops><desktops/></computer>");
        let lat = TreeLattice::build(&d, &BuildConfig::with_k(3));
        for e in Estimator::ALL {
            assert_eq!(
                lat.estimate_query("//laptop[brand][price]", e).unwrap(),
                2.0,
                "{e}"
            );
            assert_eq!(lat.estimate_query("laptop", e).unwrap(), 2.0, "{e}");
        }
    }

    #[test]
    fn unknown_labels_estimate_zero() {
        let d = doc("<a><b/></a>");
        let lat = TreeLattice::build(&d, &BuildConfig::with_k(2));
        for e in Estimator::ALL {
            assert_eq!(lat.estimate_query("nosuchtag", e).unwrap(), 0.0);
            assert_eq!(lat.estimate_query("a/nosuchtag", e).unwrap(), 0.0);
        }
    }

    #[test]
    fn big_query_estimates_are_positive_for_occurring_twigs() {
        // A regular document where conditional independence holds exactly.
        let mut s = String::from("<r>");
        for _ in 0..10 {
            s.push_str("<a><b><c/><d/></b><e/></a>");
        }
        s.push_str("</r>");
        let d = doc(&s);
        let lat = TreeLattice::build(&d, &BuildConfig::with_k(3));
        // Query size 5 > k: must decompose. True count = 10.
        for e in Estimator::ALL {
            let est = lat.estimate_query("a[b[c][d]][e]", e).unwrap();
            assert!(
                (est - 10.0).abs() < 1e-6,
                "{e}: est = {est}, expected 10 on perfectly regular data"
            );
        }
    }

    #[test]
    fn figure11_small_twig_is_exact_from_lattice() {
        let d = tl_datagen::figure11_document();
        let lat = TreeLattice::build(&d, &BuildConfig::with_k(3));
        let est = lat.estimate_query("b[c][d]", Estimator::Recursive).unwrap();
        assert_eq!(est, 4.0, "the lattice answers the Figure 11 twig exactly");
    }

    #[test]
    fn build_with_pruning_keeps_estimates() {
        let mut s = String::from("<r>");
        for _ in 0..7 {
            s.push_str("<a><b><c/></b><d/></a>");
        }
        s.push_str("</r>");
        let d = doc(&s);
        let full = TreeLattice::build(&d, &BuildConfig::with_k(4));
        let pruned = TreeLattice::build(
            &d,
            &BuildConfig {
                k: 4,
                threads: 0,
                prune_delta: Some(0.0),
                ..BuildConfig::default()
            },
        );
        assert!(pruned.summary_bytes() <= full.summary_bytes());
        for q in ["a[b[c]][d]", "a/b/c", "r/a/b", "a[b][d]"] {
            let e1 = full.estimate_query(q, Estimator::Recursive).unwrap();
            let e2 = pruned.estimate_query(q, Estimator::Recursive).unwrap();
            assert!((e1 - e2).abs() < 1e-6, "{q}: {e1} vs {e2}");
        }
    }

    #[test]
    fn observed_build_and_estimate_match_plain_and_record() {
        let mut s = String::from("<r>");
        for _ in 0..10 {
            s.push_str("<a><b><c/><d/></b><e/></a>");
        }
        s.push_str("</r>");
        let d = doc(&s);
        let index = DocIndex::new(&d);
        let cfg = BuildConfig::with_k(3);
        let rec = tl_obs::MetricsRecorder::new();
        let observed = TreeLattice::build_with_index_observed(&d, &index, &cfg, &rec);
        let plain = TreeLattice::build_with_index(&d, &index, &cfg);
        let q = observed.parse_query("a[b[c][d]][e]").unwrap();
        let opts = EstimateOptions::default();
        let v = observed.estimate_with_observed(&q, Estimator::Recursive, &opts, &rec);
        assert_eq!(
            v.to_bits(),
            plain.estimate(&q, Estimator::Recursive).to_bits()
        );
        let snap = rec.snapshot();
        assert_eq!(snap.counters[tl_obs::names::MINER_RUNS], 1);
        assert_eq!(snap.counters[tl_obs::names::ENGINE_QUERIES], 1);
        assert_eq!(snap.histograms[tl_obs::names::QUERY_LATENCY_US].count, 1);
        // The size-5 query over a 3-summary must have decomposed.
        let depth = &snap.histograms[tl_obs::names::DECOMP_DEPTH];
        assert_eq!(depth.count, 1);
        assert!(depth.sum >= 1, "size-5 query over k=3 must decompose");
    }

    #[test]
    fn corpus_build_matches_merged_single_builds() {
        let docs = vec![
            doc("<a><b><c/></b><b/></a>"),
            doc("<x><a><b/></a><a/></x>"),
            doc("<b><a/></b>"),
        ];
        let corpus = TreeLattice::build_corpus(&docs, CorpusConfig::with_max_size(3), None);
        let mut folded = TreeLattice::build(&docs[0], &BuildConfig::with_k(3));
        for d in &docs[1..] {
            folded.merge(&TreeLattice::build(d, &BuildConfig::with_k(3)));
        }
        assert_eq!(
            corpus.to_bytes(),
            folded.to_bytes(),
            "corpus build and pairwise lattice merges serialize identically"
        );
        let q = corpus.estimate_query("a/b", Estimator::Recursive).unwrap();
        assert_eq!(q, 3.0, "counts sum across documents");
    }

    #[test]
    fn merge_translates_label_universes() {
        // `other` interns b before a, so its ids differ from `base`'s.
        let mut base = TreeLattice::build(&doc("<a><b/></a>"), &BuildConfig::with_k(2));
        let other = TreeLattice::build(&doc("<b><a/><c/></b>"), &BuildConfig::with_k(2));
        let gen_before = base.generation();
        base.merge(&other);
        assert_ne!(base.generation(), gen_before, "merge is a mutation");
        assert_eq!(base.labels().len(), 3);
        for (q, want) in [
            ("a", 2.0),
            ("b", 2.0),
            ("a/b", 1.0),
            ("b/a", 1.0),
            ("b/c", 1.0),
        ] {
            let est = base.estimate_query(q, Estimator::Recursive).unwrap();
            assert_eq!(est, want, "{q}");
        }
    }

    #[test]
    fn estimate_options_voting_cap() {
        let d = doc("<r><a><b/><c/><d/></a><a><b/></a></r>");
        let lat = TreeLattice::build(&d, &BuildConfig::with_k(2));
        let mut q = lat.parse_query("a[b][c][d]").unwrap();
        let full = lat.estimate_with(&q, Estimator::RecursiveVoting, &EstimateOptions::default());
        let capped = lat.estimate_with(
            &q,
            Estimator::RecursiveVoting,
            &EstimateOptions {
                voting_cap: 1,
                ..EstimateOptions::default()
            },
        );
        let plain = lat.estimate(&q, Estimator::Recursive);
        assert!((capped - plain).abs() < 1e-12);
        assert!(full.is_finite());
        // Exercise parse_query mutability path too.
        q = lat.parse_query("a[b][c]").unwrap();
        assert!(lat.estimate(&q, Estimator::FixSized) >= 0.0);
    }
}
