//! On-line, workload-aware summary maintenance.
//!
//! The paper's future-work list (§6) proposes adapting TreeLattice "in a
//! manner similar to XPathLearner, where information learned from on-line
//! workload can guide what is to be maintained in the summary". This
//! module implements that loop: a [`TunedLattice`] wraps a summary and a
//! byte budget; every time the query executor learns a query's *true*
//! selectivity it calls [`TunedLattice::observe`], which stores the exact
//! count under the query's canonical key — even for patterns larger than
//! the mined order `k` — and evicts cold online patterns when the budget
//! overflows.
//!
//! Effects:
//! * repeated queries (the common case for optimizer workloads) answer
//!   exactly from then on;
//! * larger stored patterns improve the decomposition of their
//!   super-queries (the recursive estimator bottoms out earlier);
//! * observed zero counts (negative queries) become *stored* zeros, so the
//!   rare false-positive negatives of §5.1 are corrected by feedback.
//!
//! Eviction is cold-first, then largest-first: mined base patterns (the
//! k-lattice itself) are never evicted, matching the paper's framing of
//! the lattice as the durable statistic and the online layer as a tunable
//! cache.

use tl_twig::canonical::key_of;
use tl_twig::{Twig, TwigKey};
use tl_xml::FxHashMap;

use crate::estimator::{estimate, EstimateOptions, Estimator};
use crate::TreeLattice;

/// Statistics of the tuning loop.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TunerStats {
    /// Observations received.
    pub observed: u64,
    /// Observations that inserted or updated a pattern.
    pub inserted: u64,
    /// Online patterns evicted to stay within budget.
    pub evicted: u64,
}

/// A lattice plus an online pattern cache maintained from query feedback.
#[derive(Clone, Debug)]
pub struct TunedLattice {
    lattice: TreeLattice,
    /// Byte budget for the *online* layer (on top of the mined summary).
    online_budget: usize,
    /// Bytes currently used by online-inserted patterns.
    online_bytes: usize,
    /// Observation heat per online pattern (eviction priority).
    heat: FxHashMap<TwigKey, u64>,
    /// Monotone clock for LRU tie-breaking.
    clock: u64,
    /// Last-touch time per online pattern.
    touched: FxHashMap<TwigKey, u64>,
    stats: TunerStats,
}

impl TunedLattice {
    /// Wraps `lattice` with an online layer of at most `online_budget`
    /// bytes.
    pub fn new(lattice: TreeLattice, online_budget: usize) -> Self {
        Self {
            lattice,
            online_budget,
            online_bytes: 0,
            heat: FxHashMap::default(),
            clock: 0,
            touched: FxHashMap::default(),
            stats: TunerStats::default(),
        }
    }

    /// The wrapped lattice (mined summary + online layer).
    pub fn lattice(&self) -> &TreeLattice {
        &self.lattice
    }

    /// Durable-state view for crash-consistent snapshots: the LRU clock
    /// plus the `(key, heat, last-touch)` rows of the online layer,
    /// sorted by key bytes so the encoding is canonical. Together with
    /// the serialized summary this is everything replay determinism
    /// depends on; [`TunerStats`] is process-local diagnostics and
    /// deliberately excluded.
    pub fn online_state(&self) -> (u64, Vec<(TwigKey, u64, u64)>) {
        let mut rows: Vec<(TwigKey, u64, u64)> = self
            .heat
            .iter()
            .map(|(k, &h)| (k.clone(), h, self.touched.get(k).copied().unwrap_or(0)))
            .collect();
        rows.sort_by(|a, b| a.0.as_bytes().cmp(b.0.as_bytes()));
        (self.clock, rows)
    }

    /// Rebuilds a tuner with the exact online-layer state captured by
    /// [`TunedLattice::online_state`]. `online_bytes` is recomputed from
    /// the keys; stats restart at zero.
    pub fn restore_online_state(
        lattice: TreeLattice,
        online_budget: usize,
        clock: u64,
        rows: Vec<(TwigKey, u64, u64)>,
    ) -> Self {
        let mut tuned = Self::new(lattice, online_budget);
        tuned.clock = clock;
        for (key, heat, touched) in rows {
            tuned.online_bytes += key.heap_bytes();
            tuned.touched.insert(key.clone(), touched);
            tuned.heat.insert(key, heat);
        }
        tuned
    }

    /// Tuning statistics so far.
    pub fn stats(&self) -> TunerStats {
        self.stats
    }

    /// Bytes used by online patterns.
    pub fn online_bytes(&self) -> usize {
        self.online_bytes
    }

    /// Estimates a twig (identical to the plain lattice estimate, but
    /// benefits from online-inserted patterns).
    pub fn estimate(&self, twig: &Twig, estimator: Estimator) -> f64 {
        self.lattice.estimate(twig, estimator)
    }

    /// Estimates with explicit options.
    pub fn estimate_with(&self, twig: &Twig, estimator: Estimator, opts: &EstimateOptions) -> f64 {
        self.lattice.estimate_with(twig, estimator, opts)
    }

    /// Estimates through a shared [`crate::engine::EstimationEngine`].
    ///
    /// Safe to combine with feedback: [`TunedLattice::observe`] replaces the
    /// summary via [`TreeLattice::set_summary`], which assigns a fresh
    /// generation, so sub-twig estimates the engine cached before the
    /// observation can never be served afterwards.
    pub fn estimate_engine(
        &self,
        engine: &crate::engine::EstimationEngine,
        twig: &Twig,
        estimator: Estimator,
        opts: &EstimateOptions,
    ) -> f64 {
        engine.estimate(&self.lattice, twig, estimator, opts)
    }

    /// Feeds back the true selectivity of an executed query.
    pub fn observe(&mut self, twig: &Twig, true_count: u64) {
        self.stats.observed += 1;
        self.clock += 1;
        let key = key_of(twig);
        // Already exact in the mined summary? Nothing to store.
        if self.lattice.summary().stored(&key) == Some(true_count) && !self.heat.contains_key(&key)
        {
            return;
        }
        let is_new = !self.heat.contains_key(&key);
        *self.heat.entry(key.clone()).or_insert(0) += 1;
        self.touched.insert(key.clone(), self.clock);
        if is_new {
            self.online_bytes += key.heap_bytes();
        }
        let mut summary = self.lattice.summary().clone();
        summary.insert(key, true_count);
        self.lattice.set_summary(summary);
        self.stats.inserted += 1;
        self.enforce_budget();
    }

    /// Evicts cold online patterns until the online layer fits the budget.
    fn enforce_budget(&mut self) {
        if self.online_bytes <= self.online_budget {
            return;
        }
        // Coldest first; among equals, least recently touched, then
        // largest pattern (frees the most bytes).
        let mut candidates: Vec<(u64, u64, usize, TwigKey)> = self
            .heat
            .iter()
            .map(|(k, &h)| {
                (
                    h,
                    self.touched.get(k).copied().unwrap_or(0),
                    usize::MAX - k.heap_bytes(),
                    k.clone(),
                )
            })
            .collect();
        candidates.sort();
        let mut summary = self.lattice.summary().clone();
        for (_, _, _, key) in candidates {
            if self.online_bytes <= self.online_budget {
                break;
            }
            summary.remove(&key);
            self.heat.remove(&key);
            self.touched.remove(&key);
            self.online_bytes = self.online_bytes.saturating_sub(key.heap_bytes());
            self.stats.evicted += 1;
        }
        self.lattice.set_summary(summary);
    }

    /// Convenience: estimate, and if the caller already knows the truth
    /// (e.g. the query was executed anyway), feed it back; returns the
    /// pre-feedback estimate.
    pub fn estimate_and_learn(
        &mut self,
        twig: &Twig,
        estimator: Estimator,
        true_count: u64,
    ) -> f64 {
        let est = self.estimate(twig, estimator);
        self.observe(twig, true_count);
        est
    }
}

/// Re-derivation error of a stored pattern if it were removed — exposed
/// for tooling that wants smarter-than-cold eviction (evict the most
/// derivable first).
pub fn derivation_error(lattice: &TreeLattice, key: &TwigKey) -> Option<f64> {
    let stored = lattice.summary().stored(key)?;
    let mut reduced = lattice.summary().clone();
    reduced.remove(key);
    let est = estimate(
        &reduced,
        &key.decode(),
        Estimator::Recursive,
        &EstimateOptions::default(),
    );
    Some((est - stored as f64).abs() / (stored as f64).max(1.0))
}

#[cfg(test)]
mod tests {
    use tl_xml::{parse_document, ParseOptions};

    use crate::BuildConfig;

    use super::*;

    fn setup() -> (tl_xml::Document, TreeLattice) {
        // Correlated data: a[b] and a[c] co-occur only in half the records,
        // so independence-based estimates of a[b][c] are off.
        let mut s = String::from("<r>");
        for _ in 0..8 {
            s.push_str("<a><b/><c/></a>");
        }
        for _ in 0..8 {
            s.push_str("<a><b/></a><a><c/></a>");
        }
        s.push_str("</r>");
        let doc = parse_document(s.as_bytes(), ParseOptions::default()).unwrap();
        let lattice = TreeLattice::build(&doc, &BuildConfig::with_k(2));
        (doc, lattice)
    }

    #[test]
    fn observation_makes_repeat_queries_exact() {
        let (doc, lattice) = setup();
        let mut tuned = TunedLattice::new(lattice, 4096);
        let q = tuned.lattice().parse_query("a[b][c]").unwrap();
        let truth = tl_twig::count_matches(&doc, &q);
        assert_eq!(truth, 8);
        let before = tuned.estimate(&q, Estimator::Recursive);
        assert_ne!(before, truth as f64, "correlated pattern is mis-estimated");
        tuned.observe(&q, truth);
        assert_eq!(tuned.estimate(&q, Estimator::Recursive), truth as f64);
        assert_eq!(tuned.stats().inserted, 1);
    }

    #[test]
    fn observed_patterns_improve_super_queries() {
        let (doc, lattice) = setup();
        let mut tuned = TunedLattice::new(lattice, 4096);
        let sub = tuned.lattice().parse_query("a[b][c]").unwrap();
        let sup = tuned.lattice().parse_query("r/a[b][c]").unwrap();
        let truth_sup = tl_twig::count_matches(&doc, &sup) as f64;
        let err_before = (tuned.estimate(&sup, Estimator::Recursive) - truth_sup).abs();
        tuned.observe(&sub, tl_twig::count_matches(&doc, &sub));
        let err_after = (tuned.estimate(&sup, Estimator::Recursive) - truth_sup).abs();
        assert!(
            err_after <= err_before,
            "feedback must not hurt super-queries: {err_before} -> {err_after}"
        );
    }

    #[test]
    fn negative_feedback_stores_zero() {
        let (_, lattice) = setup();
        let mut tuned = TunedLattice::new(lattice, 4096);
        // A size-3 pattern absent from the document, on a level beyond the
        // mined k=2 so the estimator would otherwise derive a value.
        let q = tuned.lattice().parse_query("a[b][b]").unwrap();
        tuned.observe(&q, 0);
        assert_eq!(tuned.estimate(&q, Estimator::Recursive), 0.0);
    }

    #[test]
    fn budget_evicts_cold_patterns() {
        let (doc, lattice) = setup();
        // Budget fits roughly two size-3 patterns (26 bytes each).
        let mut tuned = TunedLattice::new(lattice, 60);
        let queries = ["a[b][c]", "r/a[b]", "r/a[c]", "r[a][a]"];
        let twigs: Vec<Twig> = queries
            .iter()
            .map(|q| tuned.lattice().parse_query(q).unwrap())
            .collect();
        // Heat the first query.
        let truth0 = tl_twig::count_matches(&doc, &twigs[0]);
        for _ in 0..5 {
            tuned.observe(&twigs[0], truth0);
        }
        for t in &twigs[1..] {
            tuned.observe(t, tl_twig::count_matches(&doc, t));
        }
        assert!(tuned.online_bytes() <= 60);
        assert!(tuned.stats().evicted > 0);
        // The hot pattern survived.
        assert_eq!(
            tuned.estimate(&twigs[0], Estimator::Recursive),
            truth0 as f64
        );
    }

    #[test]
    fn observing_an_already_exact_pattern_is_a_noop() {
        let (doc, lattice) = setup();
        let mut tuned = TunedLattice::new(lattice, 4096);
        let q = tuned.lattice().parse_query("a/b").unwrap();
        let truth = tl_twig::count_matches(&doc, &q);
        tuned.observe(&q, truth);
        assert_eq!(tuned.stats().inserted, 0);
        assert_eq!(tuned.online_bytes(), 0);
    }

    #[test]
    fn feedback_invalidates_engine_cache() {
        let (doc, lattice) = setup();
        let engine = crate::engine::EstimationEngine::default();
        let opts = EstimateOptions::default();
        let mut tuned = TunedLattice::new(lattice, 4096);
        let q = tuned.lattice().parse_query("a[b][c]").unwrap();
        let truth = tl_twig::count_matches(&doc, &q);
        // Warm the engine cache with the pre-feedback (wrong) estimate.
        let before = tuned.estimate_engine(&engine, &q, Estimator::Recursive, &opts);
        assert_ne!(before, truth as f64);
        tuned.observe(&q, truth);
        // The observation bumped the generation: the engine must now answer
        // from the corrected summary, not its cache.
        let after = tuned.estimate_engine(&engine, &q, Estimator::Recursive, &opts);
        assert_eq!(after, truth as f64);
    }

    #[test]
    fn estimate_and_learn_returns_pre_feedback_value() {
        let (doc, lattice) = setup();
        let mut tuned = TunedLattice::new(lattice, 4096);
        let q = tuned.lattice().parse_query("a[b][c]").unwrap();
        let truth = tl_twig::count_matches(&doc, &q);
        let first = tuned.estimate_and_learn(&q, Estimator::Recursive, truth);
        assert_ne!(first, truth as f64);
        let second = tuned.estimate_and_learn(&q, Estimator::Recursive, truth);
        assert_eq!(second, truth as f64);
    }

    #[test]
    fn derivation_error_identifies_derivable_patterns() {
        // Perfectly independent data: the joint pattern is fully derivable.
        let mut s = String::from("<r>");
        for _ in 0..6 {
            s.push_str("<a><b/><c/></a>");
        }
        s.push_str("</r>");
        let doc = parse_document(s.as_bytes(), ParseOptions::default()).unwrap();
        let lattice = TreeLattice::build(&doc, &BuildConfig::with_k(3));
        let q = lattice.parse_query("a[b][c]").unwrap();
        let key = key_of(&q);
        let err = derivation_error(&lattice, &key).unwrap();
        assert!(
            err < 1e-9,
            "independent joint pattern should be derivable: {err}"
        );
        let missing = key_of(&lattice.parse_query("r/a/b").unwrap());
        let mut reduced = lattice.summary().clone();
        reduced.remove(&missing);
        // derivation_error on an absent key is None.
        let other = TreeLattice::from_parts(lattice.labels().clone(), reduced);
        assert!(derivation_error(&other, &missing).is_none());
    }
}
