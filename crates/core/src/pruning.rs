//! δ-derivable pattern pruning (paper §4.3, Definition 2, Figure 6).
//!
//! A stored pattern is δ-derivable when the estimator would reconstruct its
//! count from the *rest* of the summary within relative error δ; such
//! patterns are redundant and can be dropped. Following Figure 6 exactly,
//! pruning rebuilds the summary bottom-up: levels 1–2 are always kept
//! (they anchor the recursion), then each level-l pattern is estimated
//! against the summary built so far and kept only if its estimation error
//! exceeds δ. At δ = 0 the kept summary produces bit-identical estimates
//! for every pruned pattern (Lemma 5); larger δ trades accuracy for space
//! (Figures 10(c)/(d)).

use tl_twig::TwigKey;
use tl_xml::FxHashMap;

use crate::estimator::{estimate, EstimateOptions, Estimator};
use crate::summary::Summary;

/// Outcome of a pruning pass.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PruneReport {
    /// Patterns examined (sizes ≥ 3).
    pub examined: usize,
    /// Patterns removed as δ-derivable.
    pub pruned: usize,
    /// Summary bytes before pruning.
    pub bytes_before: usize,
    /// Summary bytes after pruning.
    pub bytes_after: usize,
}

impl PruneReport {
    /// Fraction of examined patterns that were pruned.
    pub fn pruned_fraction(&self) -> f64 {
        if self.examined == 0 {
            0.0
        } else {
            self.pruned as f64 / self.examined as f64
        }
    }

    /// Space saved, in bytes.
    pub fn bytes_saved(&self) -> usize {
        self.bytes_before.saturating_sub(self.bytes_after)
    }
}

/// Relative estimation error with the convention of Definition 2
/// (`s ≥ 1` for stored patterns, so the denominator is safe).
fn relative_error(true_count: u64, estimate: f64) -> f64 {
    (true_count as f64 - estimate).abs() / (true_count as f64).max(1.0)
}

/// Prunes δ-derivable patterns, returning the pruned summary and a report.
///
/// The input summary must be unpruned (complete) for the error computation
/// to be meaningful; pruning an already-pruned summary is allowed and
/// simply re-examines the stored patterns.
pub fn prune_derivable(summary: &Summary, delta: f64) -> (Summary, PruneReport) {
    assert!(delta >= 0.0, "delta must be non-negative");
    let k = summary.max_size();
    let bytes_before = summary.heap_bytes();

    // Start from complete levels 1–2; levels >= 3 begin empty and *pruned*
    // so that estimation misses derive instead of reading zero.
    let mut levels: Vec<FxHashMap<TwigKey, u64>> = Vec::with_capacity(k);
    let mut pruned_flags: Vec<bool> = Vec::with_capacity(k);
    for size in 1..=k.min(2) {
        let mut m = FxHashMap::default();
        for (key, count) in summary.iter_level(size) {
            m.insert(key.clone(), count);
        }
        levels.push(m);
        pruned_flags.push(summary.is_pruned(size));
    }
    for _ in 3..=k {
        levels.push(FxHashMap::default());
        pruned_flags.push(true);
    }
    let mut kept = Summary::from_parts(levels, pruned_flags);

    let mut examined = 0usize;
    let mut pruned = 0usize;
    let opts = EstimateOptions::default();
    for size in 3..=k {
        // Deterministic order: sorted canonical keys.
        let mut patterns: Vec<(TwigKey, u64)> = summary
            .iter_level(size)
            .map(|(key, c)| (key.clone(), c))
            .collect();
        patterns.sort_unstable_by(|a, b| a.0.cmp(&b.0));
        for (key, count) in patterns {
            examined += 1;
            let twig = key.decode();
            let est = estimate(&kept, &twig, Estimator::Recursive, &opts);
            if relative_error(count, est) <= delta + 1e-12 {
                pruned += 1;
            } else {
                kept.insert(key, count);
            }
        }
    }

    let report = PruneReport {
        examined,
        pruned,
        bytes_before,
        bytes_after: kept.heap_bytes(),
    };
    (kept, report)
}

#[cfg(test)]
mod tests {
    use tl_twig::canonical::key_of;
    use tl_xml::LabelInterner;

    use crate::summary::Lookup;

    use super::*;

    fn summary_of(patterns: &[(&str, u64)], k: usize) -> (Summary, LabelInterner) {
        let mut it = LabelInterner::new();
        let mut levels = vec![FxHashMap::default(); k];
        for (q, c) in patterns {
            let t = tl_twig::parse_twig(q, &mut it).unwrap();
            levels[t.len() - 1].insert(key_of(&t), *c);
        }
        (Summary::from_parts(levels, vec![false; k]), it)
    }

    #[test]
    fn exactly_derivable_patterns_are_pruned_at_delta_zero() {
        // a[b][c] = 12*6/4 = 18 exactly: derivable.
        let (s, _) = summary_of(&[("a", 4), ("a/b", 12), ("a/c", 6), ("a[b][c]", 18)], 3);
        let (kept, report) = prune_derivable(&s, 0.0);
        assert_eq!(report.examined, 1);
        assert_eq!(report.pruned, 1);
        assert_eq!(kept.patterns_at(3), 0);
        assert!(kept.is_pruned(3));
        assert!(report.bytes_after < report.bytes_before);
    }

    #[test]
    fn non_derivable_patterns_are_kept() {
        // True count 10 differs from the independence estimate 18.
        let (s, mut it) = summary_of(&[("a", 4), ("a/b", 12), ("a/c", 6), ("a[b][c]", 10)], 3);
        let (kept, report) = prune_derivable(&s, 0.0);
        assert_eq!(report.pruned, 0);
        let key = key_of(&tl_twig::parse_twig("a[b][c]", &mut it).unwrap());
        assert_eq!(kept.lookup(&key), Lookup::Exact(10));
    }

    #[test]
    fn lemma5_estimates_unchanged_after_zero_pruning() {
        // Build a real lattice from a document, prune at delta 0, and check
        // every original pattern still estimates to its exact count.
        let doc = tl_xml::parse_document(
            b"<r><a><b/><c/></a><a><b/><c/></a><a><b/></a><a><c/><c/></a></r>",
            tl_xml::ParseOptions::default(),
        )
        .unwrap();
        let mined = tl_miner::mine(&doc, tl_miner::MineConfig::with_max_size(3));
        let s = Summary::from_mined(mined.lattice);
        let (kept, _) = prune_derivable(&s, 0.0);
        for size in 1..=3 {
            for (key, count) in s.iter_level(size) {
                let est = estimate(
                    &kept,
                    &key.decode(),
                    Estimator::Recursive,
                    &EstimateOptions::default(),
                );
                assert!(
                    (est - count as f64).abs() < 1e-6,
                    "pattern with count {count} re-estimates to {est}"
                );
            }
        }
    }

    #[test]
    fn larger_delta_prunes_more() {
        // Counts close-but-not-equal to the independence estimate.
        let (s, _) = summary_of(
            &[
                ("a", 4),
                ("a/b", 12),
                ("a/c", 6),
                ("a/d", 10),
                ("a[b][c]", 17), // 5.6% error vs 18
                ("a[b][d]", 20), // 50% error vs 30
            ],
            3,
        );
        let (_, r0) = prune_derivable(&s, 0.0);
        let (_, r10) = prune_derivable(&s, 0.10);
        let (_, r60) = prune_derivable(&s, 0.60);
        assert_eq!(r0.pruned, 0);
        assert_eq!(r10.pruned, 1);
        assert_eq!(r60.pruned, 2);
    }

    #[test]
    fn chained_derivations_survive_pruning() {
        // Level-4 pattern derivable from level-3 patterns that are
        // themselves derivable from level 2: pruning must keep estimates
        // consistent through the chain.
        let (s, mut it) = summary_of(
            &[
                ("a", 2),
                ("a/b", 4),
                ("a/c", 6),
                ("a/d", 8),
                ("a[b][c]", 12),    // = 4*6/2
                ("a[b][d]", 16),    // = 4*8/2
                ("a[c][d]", 24),    // = 6*8/2
                ("a[b][c][d]", 48), // = 12*24/6 etc., fully independent
            ],
            4,
        );
        let (kept, report) = prune_derivable(&s, 0.0);
        assert_eq!(report.pruned, 4, "all level 3-4 patterns are derivable");
        let q = tl_twig::parse_twig("a[b][c][d]", &mut it).unwrap();
        let est = estimate(&kept, &q, Estimator::Recursive, &EstimateOptions::default());
        assert!((est - 48.0).abs() < 1e-9, "est = {est}");
    }

    #[test]
    fn report_fraction() {
        let r = PruneReport {
            examined: 10,
            pruned: 4,
            bytes_before: 100,
            bytes_after: 60,
        };
        assert!((r.pruned_fraction() - 0.4).abs() < 1e-12);
        assert_eq!(r.bytes_saved(), 40);
    }
}
