//! Byte-keyed reference engine for differential testing and benchmarking.
//!
//! [`ReferenceEngine`] is the pre-interning architecture kept alive as an
//! executable specification: the hash-sharded cross-query cache keyed by
//! canonical byte strings, feeding the recursive estimator directly. The
//! production [`crate::EstimationEngine`] must stay bit-for-bit identical to
//! it for every estimator and workload — the engine proptests and the
//! `bench_decompose` harness both diff against this implementation, and the
//! harness reports the production path's speedup over it.
//!
//! Semantics and costs mirror the superseded engine faithfully: the same
//! unknown-label guard, the same `(generation, voting class, key)` cache
//! axes, the same lazy per-shard eviction, the same lock-guarded shards
//! addressed by hashing the full canonical byte string, and the same
//! drop-time counter flush. What it deliberately lacks is the interner
//! (every probe boxes a fresh key, hashes its bytes once to pick a shard
//! and again inside the map) and the iterative DAG evaluator (every query
//! recurses from scratch, sharing only through the byte-keyed maps) — the
//! two costs `bench_decompose` exists to measure.

use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::RwLock;
use tl_twig::{Twig, TwigKey};
use tl_xml::{FxHashMap, FxHasher};

use crate::engine::voting_class;
use crate::estimator::{estimate_with_cache, SubtwigCache};
use crate::{EstimateOptions, Estimator, TreeLattice};

/// One lock-guarded slice of the cache, exactly as the superseded engine
/// sharded it.
struct Shard {
    /// Generation the entries were computed against. Lookups for any other
    /// generation miss; stores for a newer one clear the shard first.
    generation: u64,
    /// Voting class -> canonical key -> estimate.
    classes: FxHashMap<u32, FxHashMap<TwigKey, f64>>,
}

/// Byte-keyed sharded cross-query estimation cache; the reference
/// implementation [`crate::EstimationEngine`] is measured and diffed
/// against.
pub struct ReferenceEngine {
    shards: Box<[RwLock<Shard>]>,
    /// `shards.len() - 1`; shard count is a power of two.
    mask: usize,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl Default for ReferenceEngine {
    fn default() -> Self {
        Self::new()
    }
}

impl ReferenceEngine {
    /// Creates an engine with an empty cache, sharded like the default
    /// production configuration.
    pub fn new() -> Self {
        let n = 16usize;
        let shards = (0..n)
            .map(|_| {
                RwLock::new(Shard {
                    generation: 0,
                    classes: FxHashMap::default(),
                })
            })
            .collect::<Vec<_>>()
            .into_boxed_slice();
        Self {
            shards,
            mask: n - 1,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// Estimates one query through the byte-keyed cross-query cache.
    /// Returns exactly what [`TreeLattice::estimate_with`] returns for the
    /// same inputs.
    pub fn estimate(
        &self,
        lattice: &TreeLattice,
        twig: &Twig,
        estimator: Estimator,
        opts: &EstimateOptions,
    ) -> f64 {
        // Same unknown-label guard as the production engine.
        if twig
            .nodes()
            .any(|n| twig.label(n).index() >= lattice.labels().len())
        {
            return 0.0;
        }
        let mut cache = ByteKeyedCache {
            engine: self,
            generation: lattice.generation(),
            class: voting_class(estimator, opts),
            hits: 0,
            misses: 0,
        };
        estimate_with_cache(lattice.summary(), twig, estimator, opts, &mut cache)
    }

    /// Estimates every twig in `batch`, in order, sequentially.
    pub fn estimate_batch(
        &self,
        lattice: &TreeLattice,
        batch: &[Twig],
        estimator: Estimator,
        opts: &EstimateOptions,
    ) -> Vec<f64> {
        batch
            .iter()
            .map(|t| self.estimate(lattice, t, estimator, opts))
            .collect()
    }

    /// Entries currently cached across all shards and voting classes.
    pub fn entries(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.read().classes.values().map(FxHashMap::len).sum::<usize>())
            .sum()
    }

    /// Sub-twig lookups answered from the cache since construction.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    fn shard_for(&self, key: &TwigKey) -> &RwLock<Shard> {
        use std::hash::Hasher;
        let mut h = FxHasher::default();
        h.write(key.as_bytes());
        &self.shards[(h.finish() as usize) & self.mask]
    }
}

/// Per-query adapter routing the recursion's cache traffic to the shards,
/// batching counter updates until drop — the superseded engine's
/// `SharedCache`, verbatim.
struct ByteKeyedCache<'e> {
    engine: &'e ReferenceEngine,
    generation: u64,
    class: u32,
    hits: u64,
    misses: u64,
}

impl SubtwigCache for ByteKeyedCache<'_> {
    fn lookup(&mut self, key: &TwigKey) -> Option<f64> {
        let guard = self.engine.shard_for(key).read();
        let value = if guard.generation == self.generation {
            guard
                .classes
                .get(&self.class)
                .and_then(|map| map.get(key))
                .copied()
        } else {
            None
        };
        match value {
            Some(_) => self.hits += 1,
            None => self.misses += 1,
        }
        value
    }

    fn store(&mut self, key: TwigKey, value: f64) {
        let mut guard = self.engine.shard_for(&key).write();
        if guard.generation != self.generation {
            // Entries belong to a superseded summary; evict lazily.
            guard.classes.clear();
            guard.generation = self.generation;
        }
        guard
            .classes
            .entry(self.class)
            .or_default()
            .insert(key, value);
    }
}

impl Drop for ByteKeyedCache<'_> {
    fn drop(&mut self) {
        self.engine.hits.fetch_add(self.hits, Ordering::Relaxed);
        self.engine.misses.fetch_add(self.misses, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use tl_xml::{parse_document, ParseOptions};

    use super::*;
    use crate::{BuildConfig, EstimationEngine};

    fn sample_lattice() -> TreeLattice {
        let mut s = String::from("<r>");
        for _ in 0..6 {
            s.push_str("<a><b><c/><d/></b><e/></a>");
        }
        s.push_str("</r>");
        let doc = parse_document(s.as_bytes(), ParseOptions::default()).unwrap();
        TreeLattice::build(&doc, &BuildConfig::with_k(3))
    }

    #[test]
    fn reference_matches_production_engine_bitwise() {
        let lat = sample_lattice();
        let reference = ReferenceEngine::new();
        let engine = EstimationEngine::default();
        let opts = EstimateOptions::default();
        for est in Estimator::ALL {
            for q in ["a[b[c][d]][e]", "a/b/c", "a[b][e]", "r/a/b/c", "a/b/c"] {
                let twig = lat.parse_query(q).unwrap();
                let want = reference.estimate(&lat, &twig, est, &opts);
                let got = engine.estimate(&lat, &twig, est, &opts);
                assert_eq!(want.to_bits(), got.to_bits(), "{est} {q}");
            }
        }
        assert!(reference.entries() > 0);
        assert!(reference.hits() > 0, "repeated queries share sub-twigs");
    }

    #[test]
    fn reference_tracks_generation_bumps() {
        let mut lat = sample_lattice();
        let reference = ReferenceEngine::new();
        let opts = EstimateOptions::default();
        let twig = lat.parse_query("a[b[c][d]][e]").unwrap();
        reference.estimate(&lat, &twig, Estimator::Recursive, &opts);
        lat.prune(0.0);
        let after = reference.estimate(&lat, &twig, Estimator::Recursive, &opts);
        assert_eq!(
            after.to_bits(),
            lat.estimate(&twig, Estimator::Recursive).to_bits(),
            "post-mutation estimates come from the new summary"
        );
    }

    #[test]
    fn reference_guards_unknown_labels() {
        let lat = sample_lattice();
        let reference = ReferenceEngine::new();
        let twig = lat.parse_query("nosuchlabel/other").unwrap();
        let opts = EstimateOptions::default();
        assert_eq!(
            reference.estimate(&lat, &twig, Estimator::Recursive, &opts),
            0.0
        );
        assert_eq!(reference.entries(), 0);
    }
}
