//! The degradation ladder: estimation that always comes back.
//!
//! A cardinality estimator embedded in a query optimizer must return *some*
//! number for every query — a crude estimate beats an aborted plan search.
//! [`estimate_resilient_with_cache`] runs the requested estimator under the
//! caller's [`Budget`] and, instead of propagating a budget trip, climbs
//! down a ladder of progressively cheaper models:
//!
//! 1. **Requested estimator** (budget-enforced). Values are bit-for-bit
//!    identical to the unbudgeted path, so this rung may share the engine's
//!    cross-query cache.
//! 2. **Fix-sized at reduced k** ([`Degradation::ReducedK`]): windows of
//!    `k_eff < k` nodes still resolve exactly from the summary's lower
//!    levels; only the covering is coarser. Degraded values use a local
//!    memo so they never pollute the shared cache.
//! 3. **First-order Markov product** ([`Degradation::Markov`]): a closed
//!    form over summary levels 1–2 only — `s(root) · Π s(parent/child) /
//!    s(parent)` over the twig's edges. No recursion, no allocation beyond
//!    one pair twig, cannot trip; the ladder therefore always terminates.
//!
//! This mirrors the fall-back-to-weaker-model stance of the TreeSketch and
//! Markov-table baselines: each rung is itself a published estimator, just
//! a coarser-order one.

use tl_fault::{Degradation, Fault};
use tl_twig::canonical::key_of;
use tl_twig::{Twig, TwigKey};
use tl_xml::FxHashMap;

use crate::catalog::PatternStore;
use crate::estimator::{
    try_estimate_fixed_at, try_estimate_with_cache_depth, EstimateOptions, Estimator, SubtwigCache,
};
use crate::summary::{Lookup, Summary};

/// A selectivity estimate that always exists, tagged with how it was
/// obtained.
#[derive(Clone, Debug, PartialEq)]
pub struct ResilientEstimate {
    /// The estimate; non-negative and finite.
    pub value: f64,
    /// How far down the degradation ladder the estimator had to go.
    pub degradation: Degradation,
    /// The fault that forced the final degradation step, when degraded.
    pub cause: Option<Fault>,
}

impl ResilientEstimate {
    /// Wraps an estimate produced without any degradation.
    pub fn exact(value: f64) -> Self {
        Self {
            value,
            degradation: Degradation::None,
            cause: None,
        }
    }
}

/// Runs the degradation ladder. Total: every path returns an estimate.
pub(crate) fn estimate_resilient_with_cache<C: SubtwigCache>(
    summary: &Summary,
    twig: &Twig,
    estimator: Estimator,
    opts: &EstimateOptions,
    cache: &mut C,
) -> ResilientEstimate {
    let k = summary.max_size();
    let capped = opts.budget.max_k.map(|mk| mk.max(2));
    let mut cause = None;

    // Rung 1: the requested estimator, unless max_k forbids touching
    // sub-twigs as large as this query would need.
    let within_cap = match capped {
        Some(mk) => twig.len() <= mk || mk >= k,
        None => true,
    };
    if within_cap {
        match try_estimate_with_cache_depth(summary, twig, estimator, opts, cache, true) {
            Ok((value, _)) => return ResilientEstimate::exact(value),
            Err(fault) => cause = Some(fault),
        }
    }

    // Rung 2: fix-sized covering at a reduced order, with a fresh local
    // memo so degraded values never enter the shared cache.
    let k_eff = capped.unwrap_or(usize::MAX).min(k.saturating_sub(1)).max(2);
    if k_eff >= 2 && k >= 2 {
        let mut local: FxHashMap<TwigKey, f64> = FxHashMap::default();
        match try_estimate_fixed_at(summary, twig, k_eff, opts, &mut local, true) {
            Ok(value) => {
                return ResilientEstimate {
                    value,
                    degradation: Degradation::ReducedK { k: k_eff },
                    cause,
                }
            }
            Err(fault) => cause = Some(fault),
        }
    }

    // Rung 3: the closed-form Markov product; never fails.
    ResilientEstimate {
        value: markov_estimate(summary, twig),
        degradation: Degradation::Markov,
        cause,
    }
}

/// First-order Markov (path-independence) estimate from levels 1–2:
/// `s(root) · Π_{edges (u,v)} s(u/v) / s(u)`.
///
/// Public because it is rung 3 of the ladder: a [`Degradation::Markov`]
/// result must be bit-for-bit reproducible by calling this directly, and
/// the test suite asserts exactly that.
pub fn markov_estimate(summary: &Summary, twig: &Twig) -> f64 {
    markov_estimate_store(summary, twig)
}

/// [`markov_estimate`] against any [`PatternStore`] backend.
///
/// The closed form only touches levels 1–2, which every backend serves by
/// key bytes, so the server can answer overload sheds with the same rung-3
/// value whether its summary is in memory, file-loaded, or mmapped —
/// bit-for-bit equal across backends by the store-identity contract.
pub fn markov_estimate_store<S: PatternStore + ?Sized>(store: &S, twig: &Twig) -> f64 {
    let count = |key: &TwigKey| -> f64 {
        match store.lookup_bytes(key.as_bytes()) {
            Lookup::Exact(c) => c as f64,
            // Levels 1-2 are never pruned; anything else means absent.
            Lookup::Derivable | Lookup::TooLarge => 0.0,
        }
    };
    let mut value = count(&key_of(&Twig::single(twig.label(twig.root()))));
    if value <= 0.0 {
        return 0.0;
    }
    for node in twig.nodes() {
        let Some(parent) = twig.parent(node) else {
            continue;
        };
        let s_parent = count(&key_of(&Twig::single(twig.label(parent))));
        if s_parent <= 0.0 {
            return 0.0;
        }
        let mut pair = Twig::single(twig.label(parent));
        pair.add_child(pair.root(), twig.label(node));
        let s_edge = count(&key_of(&pair));
        if s_edge <= 0.0 {
            return 0.0;
        }
        value *= s_edge / s_parent;
    }
    value
}

#[cfg(test)]
mod tests {
    use std::time::{Duration, Instant};

    use tl_fault::Budget;
    use tl_xml::{parse_document, ParseOptions};

    use super::*;
    use crate::{BuildConfig, TreeLattice};

    fn sample_lattice(k: usize) -> TreeLattice {
        let mut s = String::from("<r>");
        for _ in 0..6 {
            s.push_str("<a><b><c/><d/></b><e/></a>");
        }
        s.push_str("</r>");
        let doc = parse_document(s.as_bytes(), ParseOptions::default()).unwrap();
        TreeLattice::build(&doc, &BuildConfig::with_k(k))
    }

    #[test]
    fn unlimited_budget_matches_plain_estimate() {
        let lat = sample_lattice(3);
        for q in ["a[b[c][d]][e]", "a/b/c", "r/a/b"] {
            let twig = lat.parse_query(q).unwrap();
            for est in Estimator::ALL {
                let plain = lat.estimate(&twig, est);
                let res = lat.estimate_resilient(&twig, est, &EstimateOptions::default());
                assert_eq!(res.degradation, Degradation::None, "{est} {q}");
                assert_eq!(res.value.to_bits(), plain.to_bits(), "{est} {q}");
                assert!(res.cause.is_none());
            }
        }
    }

    #[test]
    fn max_k_cap_forces_reduced_k() {
        let lat = sample_lattice(4);
        let twig = lat.parse_query("a[b[c][d]][e]").unwrap();
        let opts = EstimateOptions {
            budget: Budget::unlimited().with_max_k(2),
            ..EstimateOptions::default()
        };
        let res = lat.estimate_resilient(&twig, Estimator::Recursive, &opts);
        assert_eq!(res.degradation, Degradation::ReducedK { k: 2 });
        assert!(res.value.is_finite() && res.value >= 0.0);
    }

    #[test]
    fn expired_deadline_lands_on_markov() {
        let lat = sample_lattice(3);
        // A query big enough to force decomposition (so the deadline is
        // actually consulted).
        let twig = lat.parse_query("a[b[c][d]][e]").unwrap();
        let opts = EstimateOptions {
            budget: Budget {
                deadline: Some(Instant::now() - Duration::from_millis(1)),
                ..Budget::default()
            },
            ..EstimateOptions::default()
        };
        let res = lat.estimate_resilient(&twig, Estimator::Recursive, &opts);
        assert!(res.degradation.is_degraded());
        assert!(res.value.is_finite() && res.value >= 0.0);
        assert!(res.cause.is_some());
    }

    #[test]
    fn markov_fallback_matches_closed_form_on_paths() {
        let lat = sample_lattice(3);
        let twig = lat.parse_query("a/b/c").unwrap();
        // On a path, the recursive estimator over a k>=2 summary reduces to
        // the same Markov chain product.
        let markov = markov_estimate(lat.summary(), &twig);
        let exact = lat.estimate(&twig, Estimator::Recursive);
        assert!(
            (markov - exact).abs() < 1e-9,
            "markov {markov} vs exact {exact}"
        );
    }

    #[test]
    fn markov_zero_on_absent_labels_and_edges() {
        let lat = sample_lattice(3);
        let absent = lat.parse_query("a/nosuch").unwrap();
        assert_eq!(markov_estimate(lat.summary(), &absent), 0.0);
        // c is never a child of a.
        let bad_edge = lat.parse_query("a/c").unwrap();
        assert_eq!(markov_estimate(lat.summary(), &bad_edge), 0.0);
    }

    #[test]
    fn tiny_mem_budget_degrades_instead_of_erroring() {
        let lat = sample_lattice(3);
        let twig = lat.parse_query("a[b[c][d]][e]").unwrap();
        let opts = EstimateOptions {
            budget: Budget::unlimited().with_max_mem_bytes(1),
            ..EstimateOptions::default()
        };
        let res = lat.estimate_resilient(&twig, Estimator::RecursiveVoting, &opts);
        assert!(res.degradation.is_degraded());
        assert!(res.value.is_finite() && res.value >= 0.0);
    }
}
