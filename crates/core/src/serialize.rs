//! Binary (de)serialization of a [`TreeLattice`] summary.
//!
//! The summary is the artifact a query optimizer ships and loads at startup,
//! so it has a compact, versioned, self-describing binary format with an
//! integrity frame:
//!
//! ```text
//! magic "TLAT" | u8 version | u32 crc32(payload) | u64 payload-len
//! | payload:
//!   u32 label-count | labels (u16 len + utf8)*
//!   | u8 k | per level: u8 pruned-flag, u32 entry-count,
//!     entries (u16 key-len, key bytes, u64 count)*
//! ```
//!
//! All integers are little-endian. The frame makes truncation and
//! bit-flips detectable *before* structural parsing: a length mismatch or
//! checksum failure is reported as [`ReadError::Corrupt`] without touching
//! the payload decoder. Structural validation (label references, key
//! sizes, level placement) still runs afterwards as defense in depth
//! against crafted files whose checksum is valid. Every failure is a typed
//! error — never a panic — and converts to
//! [`tl_fault::FaultKind::CorruptSummary`] via `From<ReadError> for Fault`.

use bytes::{Buf, BufMut};
use tl_fault::{failpoints, Fault, FaultKind};
use tl_twig::TwigKey;
use tl_xml::{FxHashMap, LabelInterner};

use crate::summary::Summary;
use crate::TreeLattice;

pub(crate) const MAGIC: &[u8; 4] = b"TLAT";
/// Version 2 introduced the crc32 + length integrity frame; version-1
/// files (no frame) are no longer readable and re-serialize on upgrade.
pub(crate) const VERSION: u8 = 2;
/// Bytes before the payload: magic, version, crc32, payload length.
pub(crate) const HEADER_LEN: usize = 4 + 1 + 4 + 8;

/// Deserialization failure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ReadError {
    /// Input does not start with the format magic.
    BadMagic,
    /// Unsupported format version.
    BadVersion(u8),
    /// Input ended before a field was complete.
    Truncated(&'static str),
    /// The integrity frame rejected the payload (length mismatch,
    /// checksum failure, or trailing garbage).
    Corrupt(&'static str),
    /// A label string was not valid UTF-8.
    BadLabel,
    /// A pattern key was structurally invalid or on the wrong level.
    BadKey,
}

impl std::fmt::Display for ReadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReadError::BadMagic => write!(f, "not a TreeLattice summary (bad magic)"),
            ReadError::BadVersion(v) => write!(f, "unsupported summary version {v}"),
            ReadError::Truncated(what) => write!(f, "truncated input while reading {what}"),
            ReadError::Corrupt(what) => write!(f, "corrupt summary file: {what}"),
            ReadError::BadLabel => write!(f, "label is not valid UTF-8"),
            ReadError::BadKey => write!(f, "corrupt pattern key"),
        }
    }
}

impl std::error::Error for ReadError {}

impl From<ReadError> for Fault {
    fn from(err: ReadError) -> Self {
        Fault::new(FaultKind::CorruptSummary, err.to_string())
    }
}

/// IEEE CRC-32 (the zlib/PNG polynomial), table-driven. Implemented
/// locally so persistence needs no external dependency.
pub(crate) fn crc32(bytes: &[u8]) -> u32 {
    static TABLE: std::sync::OnceLock<[u32; 256]> = std::sync::OnceLock::new();
    let table = TABLE.get_or_init(|| {
        let mut table = [0u32; 256];
        for (i, slot) in table.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 {
                    0xedb8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
            }
            *slot = c;
        }
        table
    });
    let mut crc = !0u32;
    for &b in bytes {
        crc = table[((crc ^ u32::from(b)) & 0xff) as usize] ^ (crc >> 8);
    }
    !crc
}

/// Serializes `lattice` into a byte vector.
pub fn to_bytes(lattice: &TreeLattice) -> Vec<u8> {
    let summary = lattice.summary();
    let labels = lattice.labels();
    let mut payload = Vec::with_capacity(summary.heap_bytes() + labels.len() * 12 + 64);
    payload.put_u32_le(labels.len() as u32);
    for (_, name) in labels.iter() {
        // The parser bounds names at tl_xml::parser::MAX_NAME_BYTES, far
        // below u16::MAX; a longer label here means a caller bypassed the
        // parser, and truncating would corrupt the file.
        assert!(
            name.len() <= u16::MAX as usize,
            "label too long to serialize"
        );
        payload.put_u16_le(name.len() as u16);
        payload.put_slice(name.as_bytes());
    }
    let k = summary.max_size();
    debug_assert!(k <= u8::MAX as usize);
    payload.put_u8(k as u8);
    for size in 1..=k {
        payload.put_u8(u8::from(summary.is_pruned(size)));
        // Canonical order: hash-map iteration depends on insertion history,
        // so sort by key bytes to make serialization a pure function of the
        // summary's content (round trips are byte-identical).
        let mut entries: Vec<(&TwigKey, u64)> = summary.iter_level(size).collect();
        entries.sort_unstable_by_key(|(key, _)| key.as_bytes());
        payload.put_u32_le(entries.len() as u32);
        for (key, count) in entries {
            let bytes = key.as_bytes();
            debug_assert!(bytes.len() <= u16::MAX as usize);
            payload.put_u16_le(bytes.len() as u16);
            payload.put_slice(bytes);
            payload.put_u64_le(count);
        }
    }
    let mut out = Vec::with_capacity(HEADER_LEN + payload.len());
    out.put_slice(MAGIC);
    out.put_u8(VERSION);
    out.put_u32_le(crc32(&payload));
    out.put_u64_le(payload.len() as u64);
    out.extend_from_slice(&payload);
    out
}

/// Parses a serialized lattice, verifying the integrity frame first.
pub fn from_bytes(input: &[u8]) -> Result<TreeLattice, ReadError> {
    if input.len() < 4 || &input[..4] != MAGIC {
        return Err(ReadError::BadMagic);
    }
    if input.len() < 5 {
        return Err(ReadError::Truncated("version"));
    }
    let version = input[4];
    if version != VERSION {
        return Err(ReadError::BadVersion(version));
    }
    if input.len() < HEADER_LEN {
        return Err(ReadError::Truncated("integrity frame"));
    }
    let expected_crc = u32::from_le_bytes(input[5..9].try_into().expect("4 bytes"));
    let expected_len = u64::from_le_bytes(input[9..HEADER_LEN].try_into().expect("8 bytes"));
    let payload = &input[HEADER_LEN..];
    if (payload.len() as u64) < expected_len {
        return Err(ReadError::Truncated("payload"));
    }
    if payload.len() as u64 > expected_len {
        return Err(ReadError::Corrupt("trailing bytes after payload"));
    }
    // Chaos hook: flip one payload byte *before* verification, asserting
    // the checksum actually catches single-bit corruption end to end.
    let corrupted;
    let payload = if failpoints::fire(failpoints::sites::SUMMARY_CORRUPT) && !payload.is_empty() {
        let mut copy = payload.to_vec();
        let mid = copy.len() / 2;
        copy[mid] ^= 0x01;
        corrupted = copy;
        &corrupted[..]
    } else {
        payload
    };
    if crc32(payload) != expected_crc {
        return Err(ReadError::Corrupt("checksum mismatch"));
    }
    parse_payload(payload)
}

/// Parses the structural payload (everything after the frame).
fn parse_payload(mut input: &[u8]) -> Result<TreeLattice, ReadError> {
    let buf = &mut input;
    if buf.remaining() < 4 {
        return Err(ReadError::Truncated("label count"));
    }
    let n_labels = buf.get_u32_le() as usize;
    let mut labels = LabelInterner::new();
    for _ in 0..n_labels {
        if buf.remaining() < 2 {
            return Err(ReadError::Truncated("label length"));
        }
        let len = buf.get_u16_le() as usize;
        if buf.remaining() < len {
            return Err(ReadError::Truncated("label bytes"));
        }
        let bytes = buf.copy_to_bytes(len);
        let name = std::str::from_utf8(&bytes).map_err(|_| ReadError::BadLabel)?;
        labels.intern(name);
    }
    if buf.remaining() < 1 {
        return Err(ReadError::Truncated("summary order"));
    }
    let k = buf.get_u8() as usize;
    let mut levels: Vec<FxHashMap<TwigKey, u64>> = Vec::with_capacity(k);
    let mut pruned: Vec<bool> = Vec::with_capacity(k);
    for size in 1..=k {
        if buf.remaining() < 5 {
            return Err(ReadError::Truncated("level header"));
        }
        pruned.push(buf.get_u8() != 0);
        let n = buf.get_u32_le() as usize;
        let mut level = FxHashMap::default();
        for _ in 0..n {
            if buf.remaining() < 2 {
                return Err(ReadError::Truncated("key length"));
            }
            let len = buf.get_u16_le() as usize;
            if buf.remaining() < len + 8 {
                return Err(ReadError::Truncated("key bytes"));
            }
            let key_bytes = buf.copy_to_bytes(len).to_vec();
            let count = buf.get_u64_le();
            let key = validate_key(&key_bytes, size, labels.len())?;
            level.insert(key, count);
        }
        levels.push(level);
    }
    Ok(TreeLattice::from_parts(
        labels,
        Summary::from_parts(levels, pruned),
    ))
}

/// Validates raw key bytes: decodable, right node count, known labels.
fn validate_key(bytes: &[u8], expected_size: usize, n_labels: usize) -> Result<TwigKey, ReadError> {
    if bytes.len() != expected_size * 6 {
        return Err(ReadError::BadKey);
    }
    let key = TwigKey::from_raw(bytes.to_vec().into_boxed_slice());
    let twig = key.try_decode().ok_or(ReadError::BadKey)?;
    if twig.len() != expected_size {
        return Err(ReadError::BadKey);
    }
    if twig.nodes().any(|n| twig.label(n).index() >= n_labels) {
        return Err(ReadError::BadKey);
    }
    Ok(key)
}

#[cfg(test)]
mod tests {
    use tl_xml::{parse_document, ParseOptions};

    use crate::{BuildConfig, TreeLattice};

    use super::*;

    fn sample_lattice() -> TreeLattice {
        let doc = parse_document(
            b"<r><a><b/><c/></a><a><b/></a><d><a><c/></a></d></r>",
            ParseOptions::default(),
        )
        .unwrap();
        TreeLattice::build(&doc, &BuildConfig::with_k(3))
    }

    #[test]
    fn round_trip_preserves_everything() {
        let lat = sample_lattice();
        let bytes = to_bytes(&lat);
        let back = from_bytes(&bytes).unwrap();
        assert_eq!(back.k(), lat.k());
        assert_eq!(back.summary().len(), lat.summary().len());
        for (key, count) in lat.summary().iter() {
            assert_eq!(back.summary().stored(key), Some(count));
        }
        for (id, name) in lat.labels().iter() {
            assert_eq!(back.labels().get(name), Some(id));
        }
    }

    #[test]
    fn round_trip_preserves_pruned_flags() {
        let mut lat = sample_lattice();
        lat.prune(0.0);
        let back = from_bytes(&to_bytes(&lat)).unwrap();
        for size in 1..=lat.k() {
            assert_eq!(
                back.summary().is_pruned(size),
                lat.summary().is_pruned(size)
            );
        }
    }

    #[test]
    fn bad_magic_rejected() {
        assert_eq!(from_bytes(b"NOPE.....").unwrap_err(), ReadError::BadMagic);
        assert_eq!(from_bytes(b"").unwrap_err(), ReadError::BadMagic);
    }

    #[test]
    fn bad_version_rejected() {
        let mut bytes = to_bytes(&sample_lattice());
        bytes[4] = 99;
        assert_eq!(from_bytes(&bytes).unwrap_err(), ReadError::BadVersion(99));
    }

    #[test]
    fn version_1_files_are_rejected_not_misparsed() {
        let mut bytes = to_bytes(&sample_lattice());
        bytes[4] = 1;
        assert_eq!(from_bytes(&bytes).unwrap_err(), ReadError::BadVersion(1));
    }

    #[test]
    fn truncation_rejected_at_every_prefix() {
        let bytes = to_bytes(&sample_lattice());
        for cut in 0..bytes.len() {
            let res = from_bytes(&bytes[..cut]);
            assert!(res.is_err(), "prefix of {cut} bytes must not parse");
        }
        assert!(from_bytes(&bytes).is_ok());
    }

    #[test]
    fn every_single_byte_flip_is_rejected() {
        // The frame guarantees *any* one-byte corruption fails typed:
        // magic/version flips hit their checks, header flips break the
        // crc or length match, payload flips break the checksum.
        let bytes = to_bytes(&sample_lattice());
        for i in 0..bytes.len() {
            for flip in [0x01u8, 0x80] {
                let mut corrupt = bytes.clone();
                corrupt[i] ^= flip;
                assert!(
                    from_bytes(&corrupt).is_err(),
                    "flip 0x{flip:02x} at byte {i} must not parse"
                );
            }
        }
    }

    #[test]
    fn trailing_garbage_is_rejected() {
        let mut bytes = to_bytes(&sample_lattice());
        bytes.push(0);
        assert_eq!(
            from_bytes(&bytes).unwrap_err(),
            ReadError::Corrupt("trailing bytes after payload")
        );
    }

    #[test]
    fn payload_flip_reports_checksum_mismatch() {
        let mut bytes = to_bytes(&sample_lattice());
        let last = bytes.len() - 1;
        bytes[last] ^= 0x10;
        assert_eq!(
            from_bytes(&bytes).unwrap_err(),
            ReadError::Corrupt("checksum mismatch")
        );
    }

    #[test]
    fn corrupt_key_with_valid_checksum_still_rejected() {
        // Defense in depth: a crafted file can carry a *valid* checksum
        // over structurally broken content; key validation must catch it.
        let lat = sample_lattice();
        let mut bytes = to_bytes(&lat);
        // Locate the first level-1 key inside the payload and break its
        // structural sentinel, then re-stamp the checksum.
        let mut idx = HEADER_LEN + 4;
        for _ in 0..lat.labels().len() {
            let len = u16::from_le_bytes([bytes[idx], bytes[idx + 1]]) as usize;
            idx += 2 + len;
        }
        idx += 1; // k
        idx += 1 + 4; // level 1 header
        idx += 2; // key length
        bytes[idx + 4] = 0xEE;
        let crc = crc32(&bytes[HEADER_LEN..]);
        bytes[5..9].copy_from_slice(&crc.to_le_bytes());
        assert_eq!(from_bytes(&bytes).unwrap_err(), ReadError::BadKey);
    }

    #[test]
    fn read_error_converts_to_corrupt_summary_fault() {
        let fault: Fault = ReadError::Corrupt("checksum mismatch").into();
        assert_eq!(fault.kind, FaultKind::CorruptSummary);
        assert!(fault.message.contains("checksum"));
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard IEEE CRC-32 test vectors.
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xcbf4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414f_a339
        );
    }

    #[test]
    fn injected_corruption_is_caught_by_the_checksum() {
        let bytes = to_bytes(&sample_lattice());
        tl_fault::failpoints::with_active("summary.corrupt=always", 0, || {
            assert_eq!(
                from_bytes(&bytes).unwrap_err(),
                ReadError::Corrupt("checksum mismatch")
            );
        });
        // And the same bytes parse cleanly once the fail-point is gone.
        assert!(from_bytes(&bytes).is_ok());
    }

    #[test]
    fn estimates_survive_round_trip() {
        let lat = sample_lattice();
        let back = from_bytes(&to_bytes(&lat)).unwrap();
        let est1 = lat.estimate_query("a[b][c]", crate::Estimator::RecursiveVoting);
        let est2 = back.estimate_query("a[b][c]", crate::Estimator::RecursiveVoting);
        assert_eq!(est1.unwrap(), est2.unwrap());
    }
}
