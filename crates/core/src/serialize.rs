//! Binary (de)serialization of a [`TreeLattice`] summary.
//!
//! The summary is the artifact a query optimizer ships and loads at startup,
//! so it has a compact, versioned, self-describing binary format:
//!
//! ```text
//! magic "TLAT" | u8 version | u32 label-count | labels (u16 len + utf8)*
//! | u8 k | per level: u8 pruned-flag, u32 entry-count,
//!   entries (u16 key-len, key bytes, u64 count)*
//! ```
//!
//! All integers are little-endian. Deserialization validates the magic,
//! version, label references, key sizes, and level placement, and fails
//! with a typed error rather than panicking on corrupt input.

use bytes::{Buf, BufMut};
use tl_twig::TwigKey;
use tl_xml::{FxHashMap, LabelInterner};

use crate::summary::Summary;
use crate::TreeLattice;

const MAGIC: &[u8; 4] = b"TLAT";
const VERSION: u8 = 1;

/// Deserialization failure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ReadError {
    /// Input does not start with the format magic.
    BadMagic,
    /// Unsupported format version.
    BadVersion(u8),
    /// Input ended before a field was complete.
    Truncated(&'static str),
    /// A label string was not valid UTF-8.
    BadLabel,
    /// A pattern key was structurally invalid or on the wrong level.
    BadKey,
}

impl std::fmt::Display for ReadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReadError::BadMagic => write!(f, "not a TreeLattice summary (bad magic)"),
            ReadError::BadVersion(v) => write!(f, "unsupported summary version {v}"),
            ReadError::Truncated(what) => write!(f, "truncated input while reading {what}"),
            ReadError::BadLabel => write!(f, "label is not valid UTF-8"),
            ReadError::BadKey => write!(f, "corrupt pattern key"),
        }
    }
}

impl std::error::Error for ReadError {}

/// Serializes `lattice` into a byte vector.
pub fn to_bytes(lattice: &TreeLattice) -> Vec<u8> {
    let summary = lattice.summary();
    let labels = lattice.labels();
    let mut out = Vec::with_capacity(summary.heap_bytes() + labels.len() * 12 + 64);
    out.put_slice(MAGIC);
    out.put_u8(VERSION);
    out.put_u32_le(labels.len() as u32);
    for (_, name) in labels.iter() {
        // The parser bounds names at tl_xml::parser::MAX_NAME_BYTES, far
        // below u16::MAX; a longer label here means a caller bypassed the
        // parser, and truncating would corrupt the file.
        assert!(
            name.len() <= u16::MAX as usize,
            "label too long to serialize"
        );
        out.put_u16_le(name.len() as u16);
        out.put_slice(name.as_bytes());
    }
    let k = summary.max_size();
    debug_assert!(k <= u8::MAX as usize);
    out.put_u8(k as u8);
    for size in 1..=k {
        out.put_u8(u8::from(summary.is_pruned(size)));
        let entries: Vec<(&TwigKey, u64)> = summary.iter_level(size).collect();
        out.put_u32_le(entries.len() as u32);
        for (key, count) in entries {
            let bytes = key.as_bytes();
            debug_assert!(bytes.len() <= u16::MAX as usize);
            out.put_u16_le(bytes.len() as u16);
            out.put_slice(bytes);
            out.put_u64_le(count);
        }
    }
    out
}

/// Parses a serialized lattice.
pub fn from_bytes(mut input: &[u8]) -> Result<TreeLattice, ReadError> {
    let buf = &mut input;
    if buf.remaining() < 4 || &buf.copy_to_bytes(4)[..] != MAGIC {
        return Err(ReadError::BadMagic);
    }
    if buf.remaining() < 1 {
        return Err(ReadError::Truncated("version"));
    }
    let version = buf.get_u8();
    if version != VERSION {
        return Err(ReadError::BadVersion(version));
    }
    if buf.remaining() < 4 {
        return Err(ReadError::Truncated("label count"));
    }
    let n_labels = buf.get_u32_le() as usize;
    let mut labels = LabelInterner::new();
    for _ in 0..n_labels {
        if buf.remaining() < 2 {
            return Err(ReadError::Truncated("label length"));
        }
        let len = buf.get_u16_le() as usize;
        if buf.remaining() < len {
            return Err(ReadError::Truncated("label bytes"));
        }
        let bytes = buf.copy_to_bytes(len);
        let name = std::str::from_utf8(&bytes).map_err(|_| ReadError::BadLabel)?;
        labels.intern(name);
    }
    if buf.remaining() < 1 {
        return Err(ReadError::Truncated("summary order"));
    }
    let k = buf.get_u8() as usize;
    let mut levels: Vec<FxHashMap<TwigKey, u64>> = Vec::with_capacity(k);
    let mut pruned: Vec<bool> = Vec::with_capacity(k);
    for size in 1..=k {
        if buf.remaining() < 5 {
            return Err(ReadError::Truncated("level header"));
        }
        pruned.push(buf.get_u8() != 0);
        let n = buf.get_u32_le() as usize;
        let mut level = FxHashMap::default();
        for _ in 0..n {
            if buf.remaining() < 2 {
                return Err(ReadError::Truncated("key length"));
            }
            let len = buf.get_u16_le() as usize;
            if buf.remaining() < len + 8 {
                return Err(ReadError::Truncated("key bytes"));
            }
            let key_bytes = buf.copy_to_bytes(len).to_vec();
            let count = buf.get_u64_le();
            let key = validate_key(&key_bytes, size, labels.len())?;
            level.insert(key, count);
        }
        levels.push(level);
    }
    Ok(TreeLattice::from_parts(
        labels,
        Summary::from_parts(levels, pruned),
    ))
}

/// Validates raw key bytes: decodable, right node count, known labels.
fn validate_key(bytes: &[u8], expected_size: usize, n_labels: usize) -> Result<TwigKey, ReadError> {
    if bytes.len() != expected_size * 6 {
        return Err(ReadError::BadKey);
    }
    let key = TwigKey::from_raw(bytes.to_vec().into_boxed_slice());
    let twig = key.try_decode().ok_or(ReadError::BadKey)?;
    if twig.len() != expected_size {
        return Err(ReadError::BadKey);
    }
    if twig.nodes().any(|n| twig.label(n).index() >= n_labels) {
        return Err(ReadError::BadKey);
    }
    Ok(key)
}

#[cfg(test)]
mod tests {
    use tl_xml::{parse_document, ParseOptions};

    use crate::{BuildConfig, TreeLattice};

    use super::*;

    fn sample_lattice() -> TreeLattice {
        let doc = parse_document(
            b"<r><a><b/><c/></a><a><b/></a><d><a><c/></a></d></r>",
            ParseOptions::default(),
        )
        .unwrap();
        TreeLattice::build(&doc, &BuildConfig::with_k(3))
    }

    #[test]
    fn round_trip_preserves_everything() {
        let lat = sample_lattice();
        let bytes = to_bytes(&lat);
        let back = from_bytes(&bytes).unwrap();
        assert_eq!(back.k(), lat.k());
        assert_eq!(back.summary().len(), lat.summary().len());
        for (key, count) in lat.summary().iter() {
            assert_eq!(back.summary().stored(key), Some(count));
        }
        for (id, name) in lat.labels().iter() {
            assert_eq!(back.labels().get(name), Some(id));
        }
    }

    #[test]
    fn round_trip_preserves_pruned_flags() {
        let mut lat = sample_lattice();
        lat.prune(0.0);
        let back = from_bytes(&to_bytes(&lat)).unwrap();
        for size in 1..=lat.k() {
            assert_eq!(
                back.summary().is_pruned(size),
                lat.summary().is_pruned(size)
            );
        }
    }

    #[test]
    fn bad_magic_rejected() {
        assert_eq!(from_bytes(b"NOPE.....").unwrap_err(), ReadError::BadMagic);
        assert_eq!(from_bytes(b"").unwrap_err(), ReadError::BadMagic);
    }

    #[test]
    fn bad_version_rejected() {
        let mut bytes = to_bytes(&sample_lattice());
        bytes[4] = 99;
        assert_eq!(from_bytes(&bytes).unwrap_err(), ReadError::BadVersion(99));
    }

    #[test]
    fn truncation_rejected_at_every_prefix() {
        let bytes = to_bytes(&sample_lattice());
        for cut in 0..bytes.len() {
            let res = from_bytes(&bytes[..cut]);
            assert!(res.is_err(), "prefix of {cut} bytes must not parse");
        }
        assert!(from_bytes(&bytes).is_ok());
    }

    #[test]
    fn corrupt_key_rejected() {
        let lat = sample_lattice();
        let mut bytes = to_bytes(&lat);
        // Flip a byte inside the first stored key region (after labels).
        // Locate the first level's first entry: search for the first
        // u16 key length == 6 (level-1 keys are 6 bytes).
        let mut idx = 4 + 1 + 4;
        for _ in 0..lat.labels().len() {
            let len = u16::from_le_bytes([bytes[idx], bytes[idx + 1]]) as usize;
            idx += 2 + len;
        }
        idx += 1; // k
        idx += 1 + 4; // level 1 header
        idx += 2; // key length
                  // Corrupt the structural sentinel of the key.
        bytes[idx + 4] = 0xEE;
        assert_eq!(from_bytes(&bytes).unwrap_err(), ReadError::BadKey);
    }

    #[test]
    fn estimates_survive_round_trip() {
        let lat = sample_lattice();
        let back = from_bytes(&to_bytes(&lat)).unwrap();
        let est1 = lat.estimate_query("a[b][c]", crate::Estimator::RecursiveVoting);
        let est2 = back.estimate_query("a[b][c]", crate::Estimator::RecursiveVoting);
        assert_eq!(est1.unwrap(), est2.unwrap());
    }
}
