//! The lattice summary (paper §4).
//!
//! A [`Summary`] stores the occurrence counts of small twig patterns in
//! per-level hash tables (the paper found hash tables beat prefix trees for
//! this workload, §4.2; we keep a trie alternative in
//! [`crate::trie`] to benchmark the claim). Levels 1 and 2 are always
//! complete; higher levels may be *pruned* (δ-derivable patterns removed,
//! §4.3), which changes the meaning of a lookup miss:
//!
//! * miss on a **complete** level ⇒ the pattern does not occur ⇒ count 0;
//! * miss on a **pruned** level ⇒ unknown — the estimator re-derives the
//!   value by decomposition (Lemma 5).

use tl_twig::canonical::key_of;
use tl_twig::{Twig, TwigKey};
use tl_xml::FxHashMap;

use tl_miner::MinedLattice;

/// Result of a summary lookup.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Lookup {
    /// The exact stored count (or an exact zero from a complete level).
    Exact(u64),
    /// The level was pruned and the key is absent: derive by decomposition.
    Derivable,
    /// The pattern is larger than the summary order `k`.
    TooLarge,
}

/// Occurrence statistics of all (kept) twig patterns up to size `k`.
#[derive(Clone, Debug)]
pub struct Summary {
    levels: Vec<FxHashMap<TwigKey, u64>>,
    /// `pruned[i]` marks level `i + 1` as incomplete (δ-pruning applied).
    pruned: Vec<bool>,
}

impl Summary {
    /// Wraps a mined lattice as an unpruned summary.
    pub fn from_mined(lattice: MinedLattice) -> Self {
        let levels: Vec<FxHashMap<TwigKey, u64>> = (1..=lattice.max_size())
            .map(|s| lattice.level_map(s).cloned().unwrap_or_default())
            .collect();
        let pruned = vec![false; levels.len()];
        Self { levels, pruned }
    }

    /// Builds a summary directly from per-level maps and pruned flags (used
    /// by deserialization and pruning).
    pub(crate) fn from_parts(levels: Vec<FxHashMap<TwigKey, u64>>, pruned: Vec<bool>) -> Self {
        assert_eq!(levels.len(), pruned.len());
        Self { levels, pruned }
    }

    /// The identity of the merge monoid: no levels, no patterns. Merging
    /// any summary with it leaves the other operand unchanged.
    pub fn empty() -> Self {
        Self {
            levels: Vec::new(),
            pruned: Vec::new(),
        }
    }

    /// Merges `other`'s pattern counts into `self`: counts of shared keys
    /// add (saturating), missing keys are inserted, pruned flags OR.
    ///
    /// Both operands must be keyed against the **same label universe** —
    /// canonical keys embed label ids, so merging summaries mined under
    /// different interners silently conflates unrelated patterns. Corpus
    /// mining guarantees this by interning every document's labels into one
    /// shared table up front; [`crate::TreeLattice::merge`] handles the
    /// general case by re-keying first.
    ///
    /// A level present in one operand but absent from the other is treated
    /// as *complete with zero counts*, which matches how the miner produces
    /// short lattices: mining stops at the first empty level, and by
    /// downward closure every larger pattern's count is exactly zero. Under
    /// that contract merging is commutative and associative (u64 addition),
    /// so shard-merge reductions in any order produce identical summaries.
    ///
    /// δ-pruning does **not** commute with merging: a pattern derivable in
    /// each shard alone need not be derivable in the union. Callers that
    /// want a pruned result re-run [`crate::prune_derivable`] *after* the
    /// final merge (the unpruned merge of pruned operands stays correct —
    /// pruned flags OR, so estimation misses keep deriving).
    pub fn merge(&mut self, other: &Summary) {
        while self.levels.len() < other.levels.len() {
            self.levels.push(FxHashMap::default());
            self.pruned.push(false);
        }
        for (i, level) in other.levels.iter().enumerate() {
            self.levels[i].reserve(level.len());
            for (key, &count) in level {
                let slot = self.levels[i].entry(key.clone()).or_insert(0);
                *slot = slot.saturating_add(count);
            }
            self.pruned[i] = self.pruned[i] || other.pruned[i];
        }
    }

    /// The summary order `k` (largest pattern size stored).
    pub fn max_size(&self) -> usize {
        self.levels.len()
    }

    /// Looks up a canonical key.
    pub fn lookup(&self, key: &TwigKey) -> Lookup {
        let size = key.node_count();
        if size == 0 || size > self.levels.len() {
            return Lookup::TooLarge;
        }
        match self.levels[size - 1].get(key) {
            Some(&c) => Lookup::Exact(c),
            None if self.pruned[size - 1] => Lookup::Derivable,
            None => Lookup::Exact(0),
        }
    }

    /// Looks up a twig (canonicalizing first).
    pub fn lookup_twig(&self, twig: &Twig) -> Lookup {
        self.lookup(&key_of(twig))
    }

    /// [`Summary::lookup`] over raw canonical encoding bytes, without
    /// materializing a boxed [`TwigKey`]. Allocation-free: the per-level maps
    /// are probed through `TwigKey`'s `Borrow<[u8]>` bridge. This is the
    /// lookup the interner-backed evaluation DAG uses on every node.
    pub fn lookup_bytes(&self, bytes: &[u8]) -> Lookup {
        let size = bytes.len() / 6;
        if size == 0 || size > self.levels.len() {
            return Lookup::TooLarge;
        }
        match self.levels[size - 1].get(bytes) {
            Some(&c) => Lookup::Exact(c),
            None if self.pruned[size - 1] => Lookup::Derivable,
            None => Lookup::Exact(0),
        }
    }

    /// Raw stored count, ignoring pruned-level semantics.
    pub fn stored(&self, key: &TwigKey) -> Option<u64> {
        let size = key.node_count();
        self.levels.get(size.wrapping_sub(1))?.get(key).copied()
    }

    /// Number of patterns stored at `size`.
    pub fn patterns_at(&self, size: usize) -> usize {
        self.levels
            .get(size.wrapping_sub(1))
            .map_or(0, FxHashMap::len)
    }

    /// Total stored patterns.
    pub fn len(&self) -> usize {
        self.levels.iter().map(FxHashMap::len).sum()
    }

    /// Whether the summary stores nothing.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether level `size` has been pruned.
    pub fn is_pruned(&self, size: usize) -> bool {
        self.pruned
            .get(size.wrapping_sub(1))
            .copied()
            .unwrap_or(false)
    }

    /// Iterates `(key, count)` pairs at one level.
    pub fn iter_level(&self, size: usize) -> impl Iterator<Item = (&TwigKey, u64)> {
        self.levels
            .get(size.wrapping_sub(1))
            .into_iter()
            .flat_map(|m| m.iter().map(|(k, &c)| (k, c)))
    }

    /// Iterates all `(key, count)` pairs, smallest patterns first.
    pub fn iter(&self) -> impl Iterator<Item = (&TwigKey, u64)> {
        self.levels
            .iter()
            .flat_map(|m| m.iter().map(|(k, &c)| (k, c)))
    }

    /// Summary memory footprint in bytes, the quantity the paper reports in
    /// Table 3 and Figure 10.
    ///
    /// Accounts for the hash tables as allocated, not just the payload:
    /// every *bucket* (allocated at capacity, whether occupied or not)
    /// holds an inline `(TwigKey, u64)` pair plus one control byte, and
    /// every *stored* key additionally owns its out-of-line canonical
    /// encoding. `TwigKey::heap_bytes` already bundles the 8-byte count
    /// with the encoding, and the count is part of the inline pair here, so
    /// only the encoding length is added per entry.
    pub fn heap_bytes(&self) -> usize {
        let bucket = std::mem::size_of::<(TwigKey, u64)>() + 1;
        self.levels
            .iter()
            .map(|level| {
                level.capacity() * bucket
                    + level
                        .keys()
                        .map(|k| k.heap_bytes() - std::mem::size_of::<u64>())
                        .sum::<usize>()
            })
            .sum()
    }

    /// Removes `key` from its level and marks the level pruned (a removed
    /// pattern is no longer distinguishable from a never-stored one, so the
    /// level loses its completeness guarantee). Returns the removed count.
    pub fn remove(&mut self, key: &TwigKey) -> Option<u64> {
        let size = key.node_count();
        let level = self.levels.get_mut(size.wrapping_sub(1))?;
        let removed = level.remove(key);
        if removed.is_some() {
            self.pruned[size - 1] = true;
        }
        removed
    }

    /// Inserts (or replaces) a pattern count; used when extending a pruned
    /// summary with selected higher-level patterns (Figure 10(b)).
    pub fn insert(&mut self, key: TwigKey, count: u64) {
        let size = key.node_count();
        assert!(size >= 1, "empty key");
        while self.levels.len() < size {
            self.levels.push(FxHashMap::default());
            // A level added on demand is not complete.
            self.pruned.push(true);
        }
        self.levels[size - 1].insert(key, count);
    }

    /// Marks a level as pruned/incomplete explicitly.
    pub fn mark_pruned(&mut self, size: usize) {
        if size >= 1 && size <= self.pruned.len() {
            self.pruned[size - 1] = true;
        }
    }

    /// Per-level `(stored, pruned)` listing for reports.
    pub fn level_info(&self) -> Vec<(usize, bool)> {
        self.levels
            .iter()
            .zip(&self.pruned)
            .map(|(m, &p)| (m.len(), p))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use tl_xml::LabelInterner;

    use super::*;

    fn summary_of(patterns: &[(&str, u64)]) -> (Summary, LabelInterner) {
        // Builds *complete* levels sized to the largest pattern.
        let mut it = LabelInterner::new();
        let parsed: Vec<(tl_twig::Twig, u64)> = patterns
            .iter()
            .map(|(q, c)| (tl_twig::parse_twig(q, &mut it).unwrap(), *c))
            .collect();
        let k = parsed.iter().map(|(t, _)| t.len()).max().unwrap_or(1);
        let mut levels = vec![FxHashMap::default(); k];
        for (t, c) in parsed {
            levels[t.len() - 1].insert(key_of(&t), c);
        }
        let s = Summary::from_parts(levels, vec![false; k]);
        (s, it)
    }

    #[test]
    fn complete_level_miss_is_exact_zero() {
        let (mined, it) = {
            let mut it = LabelInterner::new();
            let doc = {
                let mut b = tl_xml::DocumentBuilder::new();
                b.begin("a");
                b.begin("b");
                b.end();
                b.end();
                b.finish().unwrap()
            };
            let m = tl_miner::mine(&doc, tl_miner::MineConfig::with_max_size(2));
            it.intern("a");
            it.intern("b");
            it.intern("z");
            (m.lattice, it)
        };
        let s = Summary::from_mined(mined);
        let z = tl_twig::parse_twig_in("z", &it).unwrap();
        // `z` is absent from the complete level 1 => exact zero.
        assert_eq!(s.lookup_twig(&z), Lookup::Exact(0));
    }

    #[test]
    fn pruned_level_miss_is_derivable() {
        let (mut s, mut it) = summary_of(&[("a", 5), ("a/b", 3), ("a/b/c", 2)]);
        let abc = key_of(&tl_twig::parse_twig("a/b/c", &mut it).unwrap());
        assert_eq!(s.lookup(&abc), Lookup::Exact(2));
        s.remove(&abc);
        assert_eq!(s.lookup(&abc), Lookup::Derivable);
        assert!(s.is_pruned(3));
        assert!(!s.is_pruned(2));
    }

    #[test]
    fn too_large_patterns_reported() {
        let (s, mut it) = summary_of(&[("a", 1), ("a/b", 1)]);
        let big = key_of(&tl_twig::parse_twig("a/b/c", &mut it).unwrap());
        assert_eq!(s.lookup(&big), Lookup::TooLarge);
    }

    #[test]
    fn insert_beyond_k_creates_incomplete_level() {
        let (mut s, mut it) = summary_of(&[("a", 4), ("a/b", 2)]);
        assert_eq!(s.max_size(), 2);
        let abc = key_of(&tl_twig::parse_twig("a/b/c", &mut it).unwrap());
        s.insert(abc.clone(), 1);
        assert_eq!(s.max_size(), 3);
        assert_eq!(s.lookup(&abc), Lookup::Exact(1));
        // Another size-3 key is absent but the level is incomplete.
        let abd = key_of(&tl_twig::parse_twig("a/b/d", &mut it).unwrap());
        assert_eq!(s.lookup(&abd), Lookup::Derivable);
    }

    #[test]
    fn merge_adds_counts_and_unions_keys() {
        let (mut a, mut it) = summary_of(&[("a", 4), ("a/b", 2)]);
        let b = {
            let parsed: Vec<(tl_twig::Twig, u64)> = [("a", 3), ("a/c", 5)]
                .iter()
                .map(|(q, c)| (tl_twig::parse_twig(q, &mut it).unwrap(), *c))
                .collect();
            let mut levels = vec![FxHashMap::default(); 2];
            for (t, c) in parsed {
                levels[t.len() - 1].insert(key_of(&t), c);
            }
            Summary::from_parts(levels, vec![false; 2])
        };
        a.merge(&b);
        let mut key = |q: &str| key_of(&tl_twig::parse_twig(q, &mut it).unwrap());
        assert_eq!(a.lookup(&key("a")), Lookup::Exact(7), "shared counts add");
        assert_eq!(a.lookup(&key("a/b")), Lookup::Exact(2));
        assert_eq!(a.lookup(&key("a/c")), Lookup::Exact(5));
        assert_eq!(a.lookup(&key("b/c")), Lookup::Exact(0), "complete miss");
    }

    #[test]
    fn merge_with_empty_is_identity_both_ways() {
        let (s, _) = summary_of(&[("a", 4), ("a/b", 2), ("a/b/c", 1)]);
        let mut left = s.clone();
        left.merge(&Summary::empty());
        let mut right = Summary::empty();
        right.merge(&s);
        for m in [&left, &right] {
            assert_eq!(m.max_size(), s.max_size());
            assert_eq!(m.level_info(), s.level_info());
            for (key, count) in s.iter() {
                assert_eq!(m.stored(key), Some(count));
            }
        }
    }

    #[test]
    fn merge_extends_short_operand_with_complete_levels() {
        let (mut a, mut it) = summary_of(&[("a", 1)]); // one level, complete
        let (b, _) = {
            let mut other = LabelInterner::new();
            other.intern("a");
            other.intern("b");
            summary_of(&[("a", 2), ("a/b", 3)])
        };
        a.merge(&b);
        assert_eq!(a.max_size(), 2);
        assert!(!a.is_pruned(2), "absent level merges as zero-complete");
        let ab = key_of(&tl_twig::parse_twig("a/b", &mut it).unwrap());
        assert_eq!(a.lookup(&ab), Lookup::Exact(3));
    }

    #[test]
    fn merge_ors_pruned_flags() {
        let (mut a, mut it) = summary_of(&[("a", 1), ("a/b", 1), ("a/b/c", 4)]);
        let (mut b, _) = summary_of(&[("a", 1), ("a/b", 1), ("a/b/c", 4)]);
        let abc = key_of(&tl_twig::parse_twig("a/b/c", &mut it).unwrap());
        b.remove(&abc); // marks level 3 pruned in b
        a.merge(&b);
        assert!(a.is_pruned(3), "pruned-ness is sticky under merge");
        assert_eq!(a.lookup(&abc), Lookup::Exact(4), "kept count survives");
    }

    #[test]
    fn heap_bytes_count_table_capacity_overhead() {
        let (s, _) = summary_of(&[("a", 1), ("a/b", 1), ("a/b/c", 1)]);
        // Strictly more than the bare key+count payload: the tables
        // allocate whole buckets at capacity.
        let payload: usize = s.iter().map(|(k, _)| k.heap_bytes()).sum();
        assert!(s.heap_bytes() > payload);
    }

    #[test]
    fn heap_bytes_shrink_on_remove() {
        let (mut s, mut it) = summary_of(&[("a", 1), ("a/b", 1), ("a/b/c", 1)]);
        let before = s.heap_bytes();
        let abc = key_of(&tl_twig::parse_twig("a/b/c", &mut it).unwrap());
        s.remove(&abc);
        assert!(s.heap_bytes() < before);
    }
}
