//! A byte-trie map over canonical twig keys.
//!
//! §4.2 of the paper reports that the authors tried a prefix-tree store for
//! the lattice statistics and found hash tables faster ("quite a bit of
//! pointer chasing"). We keep a compact array-backed trie implementation so
//! the claim is *measurable* in this reproduction (see the `summary_lookup`
//! criterion bench) rather than folklore. The trie is not used on the hot
//! estimation path.

/// Map from byte strings to `u64` counts, stored as an array-indexed trie.
///
/// Nodes hold sorted `(byte, child)` edge lists; lookup does a binary
/// search per byte. Construction order does not affect lookup results.
#[derive(Clone, Debug, Default)]
pub struct TrieMap {
    nodes: Vec<TrieNode>,
    len: usize,
}

#[derive(Clone, Debug, Default)]
struct TrieNode {
    edges: Vec<(u8, u32)>,
    value: Option<u64>,
}

impl TrieMap {
    /// Creates an empty trie.
    pub fn new() -> Self {
        Self {
            nodes: vec![TrieNode::default()],
            len: 0,
        }
    }

    /// Number of stored keys.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the trie stores nothing.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Inserts `key -> value`, returning the previous value if any.
    pub fn insert(&mut self, key: &[u8], value: u64) -> Option<u64> {
        let mut cur = 0usize;
        for &b in key {
            cur = match self.nodes[cur].edges.binary_search_by_key(&b, |e| e.0) {
                Ok(i) => self.nodes[cur].edges[i].1 as usize,
                Err(i) => {
                    let id = self.nodes.len() as u32;
                    self.nodes.push(TrieNode::default());
                    self.nodes[cur].edges.insert(i, (b, id));
                    id as usize
                }
            };
        }
        let old = self.nodes[cur].value.replace(value);
        if old.is_none() {
            self.len += 1;
        }
        old
    }

    /// Looks up `key`.
    pub fn get(&self, key: &[u8]) -> Option<u64> {
        let mut cur = 0usize;
        for &b in key {
            match self.nodes[cur].edges.binary_search_by_key(&b, |e| e.0) {
                Ok(i) => cur = self.nodes[cur].edges[i].1 as usize,
                Err(_) => return None,
            }
        }
        self.nodes[cur].value
    }

    /// Approximate heap usage in bytes.
    pub fn heap_bytes(&self) -> usize {
        self.nodes.len() * std::mem::size_of::<TrieNode>()
            + self
                .nodes
                .iter()
                .map(|n| n.edges.capacity() * std::mem::size_of::<(u8, u32)>())
                .sum::<usize>()
    }
}

/// Builds a trie over every `(key, count)` in a summary.
pub fn trie_of_summary(summary: &crate::summary::Summary) -> TrieMap {
    let mut t = TrieMap::new();
    for (key, count) in summary.iter() {
        t.insert(key.as_bytes(), count);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_roundtrip() {
        let mut t = TrieMap::new();
        assert_eq!(t.insert(b"abc", 1), None);
        assert_eq!(t.insert(b"abd", 2), None);
        assert_eq!(t.insert(b"ab", 3), None);
        assert_eq!(t.get(b"abc"), Some(1));
        assert_eq!(t.get(b"abd"), Some(2));
        assert_eq!(t.get(b"ab"), Some(3));
        assert_eq!(t.get(b"a"), None);
        assert_eq!(t.get(b"abcd"), None);
        assert_eq!(t.len(), 3);
    }

    #[test]
    fn reinsert_replaces() {
        let mut t = TrieMap::new();
        t.insert(b"k", 1);
        assert_eq!(t.insert(b"k", 9), Some(1));
        assert_eq!(t.get(b"k"), Some(9));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn empty_key_is_a_valid_key() {
        let mut t = TrieMap::new();
        assert!(t.is_empty());
        t.insert(b"", 7);
        assert_eq!(t.get(b""), Some(7));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn trie_of_summary_contains_every_pattern() {
        let doc = tl_xml::parse_document(
            b"<r><a><b/><c/></a><a><b/></a></r>",
            tl_xml::ParseOptions::default(),
        )
        .unwrap();
        let mined = tl_miner::mine(&doc, tl_miner::MineConfig::with_max_size(3));
        let summary = crate::summary::Summary::from_mined(mined.lattice);
        let trie = trie_of_summary(&summary);
        assert_eq!(trie.len(), summary.len());
        for (key, count) in summary.iter() {
            assert_eq!(trie.get(key.as_bytes()), Some(count));
        }
    }

    #[test]
    fn agrees_with_hashmap_on_random_keys() {
        use std::collections::HashMap;
        let mut t = TrieMap::new();
        let mut m: HashMap<Vec<u8>, u64> = HashMap::new();
        // Deterministic pseudo-random byte strings.
        let mut state = 0x2545F4914F6CDD1Du64;
        for i in 0..500 {
            let mut key = Vec::new();
            let len = (state >> 5) as usize % 12;
            for _ in 0..len {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                key.push((state >> 33) as u8);
            }
            t.insert(&key, i);
            m.insert(key, i);
        }
        for (k, v) in &m {
            assert_eq!(t.get(k), Some(*v));
        }
        assert_eq!(t.len(), m.len());
    }
}
