//! Crash-consistent durability for the online feedback layer: a
//! write-ahead update log, atomic snapshots, and startup recovery.
//!
//! The paper's framework is explicitly online — true counts observed at
//! query time feed back into the summary — so a served correction must
//! survive a crash or the estimator silently forgets what it learned.
//! This module makes the [`TunedLattice`] durable:
//!
//! * **WAL** — every accepted observation is appended to `wal.log` as a
//!   length-prefixed, FNV-1a-checksummed record (the tl-wire/1 idiom)
//!   *before* it is acknowledged, under a configurable fsync policy
//!   ([`DurabilityPolicy`]).
//! * **Snapshots** — the full tuner state (summary frame + online-layer
//!   heat/clock + idempotency window, sealed under a CRC) is written
//!   temp-file → fsync → rename, and the WAL is truncated only after
//!   the snapshot is durable. Snapshot filenames encode the covered
//!   sequence number, so a crash between rename and truncation is
//!   harmless: replay skips records the snapshot already covers.
//! * **Recovery** — [`recover`] loads the newest *valid* snapshot and
//!   replays the WAL tail. A torn/partial final record is a clean
//!   end-of-log (the crash interrupted an unacknowledged append); any
//!   mid-log corruption — a bad checksum on a *complete* record, a
//!   sequence gap, an undecodable key — is a typed
//!   [`FaultKind::CorruptSummary`] fault, never a wrong answer.
//!
//! The invariant the whole design serves: after a crash at *any* point,
//! recovery yields tuner state bit-identical to a synchronous replay of
//! the acknowledged prefix. Fail-point sites (`wal.append.torn`,
//! `wal.append.short`, `wal.fsync`, `snapshot.before_rename`,
//! `snapshot.after_rename`) let the chaos suite and `gate_recovery`
//! prove it for every injected crash point.

use std::collections::VecDeque;
use std::fs::{File, OpenOptions};
use std::io::{Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use tl_fault::failpoints::{fire, sites};
use tl_fault::{Fault, FaultKind};
use tl_obs::{names, Recorder};
use tl_twig::canonical::key_of;
use tl_twig::{Twig, TwigKey};
use tl_xml::FxHashMap;

use crate::online::TunedLattice;
use crate::serialize::crc32;
use crate::TreeLattice;

/// FNV-1a over `bytes` — the checksum of the tl-wire/1 frame idiom,
/// shared by WAL records and the server's wire protocol.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// When an accepted update may be acknowledged relative to stable
/// storage.
///
/// All three levels survive `kill -9` identically: the record bytes are
/// written (into the OS page cache at minimum) before the ack leaves the
/// server, and process death does not discard the page cache. The levels
/// differ only in what survives an *OS crash or power failure*.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DurabilityPolicy {
    /// `write(2)` only, never fsync. An OS crash can lose acknowledged
    /// records; a process crash cannot.
    None,
    /// fsync every [`BATCH_FSYNC_EVERY`]-th append (and always on
    /// snapshot/drain): a bounded loss window under power failure.
    Batch,
    /// fsync before every acknowledgement: an acked update is on stable
    /// storage even across power failure.
    Strict,
}

/// Appends between fsyncs under [`DurabilityPolicy::Batch`].
pub const BATCH_FSYNC_EVERY: u64 = 32;

impl DurabilityPolicy {
    pub fn parse(s: &str) -> Result<Self, String> {
        match s {
            "none" => Ok(Self::None),
            "batch" => Ok(Self::Batch),
            "strict" => Ok(Self::Strict),
            other => Err(format!(
                "unknown durability policy `{other}` (expected none|batch|strict)"
            )),
        }
    }
}

impl std::fmt::Display for DurabilityPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Self::None => "none",
            Self::Batch => "batch",
            Self::Strict => "strict",
        })
    }
}

/// One logged observation: the canonical pattern key and its true count,
/// stamped with a monotone sequence number and an optional client
/// idempotency key (`0` = none).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WalRecord {
    pub seq: u64,
    pub idem: u64,
    pub key: TwigKey,
    pub count: u64,
}

/// WAL file name inside the durable directory.
pub const WAL_FILE: &str = "wal.log";

/// Sanity cap on one record frame; a length prefix beyond this on a
/// complete read is corruption, not a huge pattern.
const MAX_RECORD_LEN: usize = 1 << 20;

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn get_u32(bytes: &[u8], at: &mut usize) -> Option<u32> {
    let v = bytes.get(*at..*at + 4)?;
    *at += 4;
    Some(u32::from_le_bytes(v.try_into().unwrap()))
}

fn get_u64(bytes: &[u8], at: &mut usize) -> Option<u64> {
    let v = bytes.get(*at..*at + 8)?;
    *at += 8;
    Some(u64::from_le_bytes(v.try_into().unwrap()))
}

fn corrupt(msg: impl Into<String>) -> Fault {
    Fault::corrupt_summary(msg)
}

impl WalRecord {
    /// Encodes the full frame: `u32 body-len | body | u64 fnv1a(body)`.
    fn encode(&self) -> Vec<u8> {
        let key = self.key.as_bytes();
        let mut body = Vec::with_capacity(28 + key.len());
        put_u64(&mut body, self.seq);
        put_u64(&mut body, self.idem);
        put_u32(&mut body, key.len() as u32);
        body.extend_from_slice(key);
        put_u64(&mut body, self.count);
        let mut frame = Vec::with_capacity(body.len() + 12);
        put_u32(&mut frame, body.len() as u32);
        frame.extend_from_slice(&body);
        put_u64(&mut frame, fnv1a(&body));
        frame
    }

    fn decode_body(body: &[u8]) -> Result<Self, Fault> {
        let mut at = 0;
        let err = || corrupt("wal record body truncated");
        let seq = get_u64(body, &mut at).ok_or_else(err)?;
        let idem = get_u64(body, &mut at).ok_or_else(err)?;
        let key_len = get_u32(body, &mut at).ok_or_else(err)? as usize;
        let key = body.get(at..at + key_len).ok_or_else(err)?;
        at += key_len;
        let count = get_u64(body, &mut at).ok_or_else(err)?;
        if at != body.len() {
            return Err(corrupt("wal record has trailing bytes"));
        }
        let key = TwigKey::from_raw(key.to_vec().into_boxed_slice());
        if key.try_decode().is_none() {
            return Err(corrupt(format!(
                "wal record seq {seq}: key bytes do not decode to a twig"
            )));
        }
        Ok(Self {
            seq,
            idem,
            key,
            count,
        })
    }
}

/// Result of scanning a WAL file: every complete, checksummed record
/// plus where the valid prefix ends.
pub struct WalScan {
    pub records: Vec<WalRecord>,
    /// Byte length of the valid record prefix; anything past it is a
    /// torn tail from an interrupted append.
    pub valid_len: u64,
    /// Torn-tail bytes past `valid_len` (0 on a clean log).
    pub torn_bytes: u64,
}

/// Reads every complete record, applying the torn-tail rule: running out
/// of bytes mid-record is a clean end-of-log, but a checksum mismatch on
/// a complete record — or a nonsense length prefix — is typed
/// corruption.
pub fn scan_wal(path: &Path) -> Result<WalScan, Fault> {
    let bytes = match std::fs::read(path) {
        Ok(b) => b,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
            return Ok(WalScan {
                records: Vec::new(),
                valid_len: 0,
                torn_bytes: 0,
            })
        }
        Err(e) => return Err(corrupt(format!("{}: {e}", path.display()))),
    };
    let mut records = Vec::new();
    let mut at = 0usize;
    loop {
        let start = at;
        let Some(len) = get_u32(&bytes, &mut at) else {
            // Fewer than 4 bytes left: torn length prefix.
            return Ok(scan_done(records, start, bytes.len()));
        };
        let len = len as usize;
        if at + len + 8 > bytes.len() {
            if len > MAX_RECORD_LEN {
                // Not enough bytes *and* an absurd length: we cannot
                // distinguish a torn prefix from corruption, and the
                // torn-tail rule wins only for the final record — an
                // absurd length is corruption either way.
                return Err(corrupt(format!(
                    "{}: record at byte {start} claims {len} bytes",
                    path.display()
                )));
            }
            // Torn mid-body or mid-checksum.
            return Ok(scan_done(records, start, bytes.len()));
        }
        if len > MAX_RECORD_LEN {
            return Err(corrupt(format!(
                "{}: record at byte {start} claims {len} bytes",
                path.display()
            )));
        }
        let body = &bytes[at..at + len];
        at += len;
        let sum = get_u64(&bytes, &mut at).expect("bounds checked above");
        if sum != fnv1a(body) {
            // The record is complete — all its bytes are present — so a
            // bad checksum is mid-log corruption, never a torn tail.
            return Err(corrupt(format!(
                "{}: checksum mismatch on complete record at byte {start}",
                path.display()
            )));
        }
        records.push(WalRecord::decode_body(body)?);
    }
}

fn scan_done(records: Vec<WalRecord>, valid_len: usize, total: usize) -> WalScan {
    WalScan {
        records,
        valid_len: valid_len as u64,
        torn_bytes: (total - valid_len) as u64,
    }
}

/// Appender half of the WAL. Opened by recovery (which seals any torn
/// tail off first), appends acknowledge-gating records under the
/// configured fsync policy, and repairs or poisons itself on failure so
/// a failed append can never leave a complete-but-unacknowledged record
/// behind.
#[derive(Debug)]
pub struct WalWriter {
    file: File,
    path: PathBuf,
    policy: DurabilityPolicy,
    /// Committed length: every byte below this is a complete record.
    len: u64,
    next_seq: u64,
    since_fsync: u64,
    poisoned: bool,
}

impl WalWriter {
    /// Opens (creating if absent) the log at `path`, truncating it to
    /// `valid_len` — recovery's scan told us everything past that is a
    /// torn tail, and appending after garbage would turn a clean torn
    /// tail into mid-log corruption.
    pub fn open(
        path: &Path,
        policy: DurabilityPolicy,
        next_seq: u64,
        valid_len: u64,
    ) -> Result<Self, Fault> {
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)
            .map_err(|e| corrupt(format!("{}: {e}", path.display())))?;
        file.set_len(valid_len)
            .and_then(|()| file.seek(SeekFrom::Start(valid_len)))
            .map_err(|e| corrupt(format!("{}: seal torn tail: {e}", path.display())))?;
        Ok(Self {
            file,
            path: path.to_path_buf(),
            policy,
            len: valid_len,
            next_seq,
            since_fsync: 0,
            poisoned: false,
        })
    }

    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    pub fn len(&self) -> u64 {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Winds the file back to the committed length after a failed write
    /// or fsync, so the file holds exactly the acknowledged records.
    fn repair(&mut self) -> bool {
        let ok = self
            .file
            .set_len(self.len)
            .and_then(|()| self.file.seek(SeekFrom::Start(self.len)))
            .is_ok();
        if !ok {
            self.poisoned = true;
        }
        ok
    }

    /// Appends one observation; returns its sequence number. The record
    /// gates the acknowledgement: an `Err` here means the update must
    /// not be acked (and was not applied).
    pub fn append(
        &mut self,
        idem: u64,
        key: &TwigKey,
        count: u64,
        rec: &dyn Recorder,
    ) -> Result<u64, Fault> {
        if self.poisoned {
            rec.add(names::WAL_APPEND_FAILURES, 1);
            return Err(corrupt(
                "wal poisoned by an earlier failed append; restart to recover",
            ));
        }
        let record = WalRecord {
            seq: self.next_seq,
            idem,
            key: key.clone(),
            count,
        };
        let frame = record.encode();
        // Injected torn/short writes emulate a crash mid-append: the
        // partial frame stays in the file (recovery must treat it as a
        // clean end-of-log) and the writer is poisoned, because appending
        // after garbage would manufacture mid-log corruption.
        if fire(sites::WAL_APPEND_TORN) {
            let _ = self.file.write_all(&frame[..frame.len() / 2]);
            self.poisoned = true;
            rec.add(names::WAL_APPEND_FAILURES, 1);
            return Err(Fault::injected(
                FaultKind::CorruptSummary,
                sites::WAL_APPEND_TORN,
            ));
        }
        if fire(sites::WAL_APPEND_SHORT) {
            let _ = self.file.write_all(&frame[..frame.len() - 4]);
            self.poisoned = true;
            rec.add(names::WAL_APPEND_FAILURES, 1);
            return Err(Fault::injected(
                FaultKind::CorruptSummary,
                sites::WAL_APPEND_SHORT,
            ));
        }
        if let Err(e) = self.file.write_all(&frame) {
            // An organic short write is repairable in-process: wind the
            // file back to the committed prefix and let the caller retry.
            self.repair();
            rec.add(names::WAL_APPEND_FAILURES, 1);
            return Err(corrupt(format!("{}: append: {e}", self.path.display())));
        }
        let need_fsync = match self.policy {
            DurabilityPolicy::None => false,
            DurabilityPolicy::Batch => self.since_fsync + 1 >= BATCH_FSYNC_EVERY,
            DurabilityPolicy::Strict => true,
        };
        if need_fsync {
            if let Err(fault) = self.fsync(rec) {
                // The record bytes are written but the ack contract is
                // not met: undo the record so the file holds exactly the
                // acknowledged prefix.
                self.repair();
                rec.add(names::WAL_APPEND_FAILURES, 1);
                return Err(fault);
            }
            self.since_fsync = 0;
        } else {
            self.since_fsync += 1;
        }
        self.len += frame.len() as u64;
        self.next_seq += 1;
        rec.add(names::WAL_APPENDS, 1);
        rec.add(names::WAL_APPEND_BYTES, frame.len() as u64);
        Ok(record.seq)
    }

    fn fsync(&mut self, rec: &dyn Recorder) -> Result<(), Fault> {
        if fire(sites::WAL_FSYNC) {
            return Err(Fault::injected(FaultKind::CorruptSummary, sites::WAL_FSYNC));
        }
        self.file
            .sync_data()
            .map_err(|e| corrupt(format!("{}: fsync: {e}", self.path.display())))?;
        rec.add(names::WAL_FSYNCS, 1);
        Ok(())
    }

    /// Forces everything written so far to stable storage (drain and
    /// pre-snapshot barrier), regardless of policy.
    pub fn flush(&mut self, rec: &dyn Recorder) -> Result<(), Fault> {
        let r = self.fsync(rec);
        if r.is_ok() {
            self.since_fsync = 0;
        }
        r
    }

    /// Empties the log after a snapshot became durable.
    pub fn truncate_all(&mut self, rec: &dyn Recorder) -> Result<(), Fault> {
        self.file
            .set_len(0)
            .and_then(|()| self.file.seek(SeekFrom::Start(0)))
            .and_then(|_| self.file.sync_data())
            .map_err(|e| {
                self.poisoned = true;
                corrupt(format!("{}: truncate: {e}", self.path.display()))
            })?;
        self.len = 0;
        self.since_fsync = 0;
        rec.add(names::WAL_TRUNCATIONS, 1);
        Ok(())
    }
}

/// Bounded sliding window of client idempotency keys. A retried update
/// whose key is still in the window is acknowledged without being
/// re-applied, so an ack lost in flight cannot double-apply.
#[derive(Clone, Debug)]
pub struct IdemCache {
    set: FxHashMap<u64, ()>,
    order: VecDeque<u64>,
    cap: usize,
}

impl IdemCache {
    pub fn new(cap: usize) -> Self {
        Self {
            set: FxHashMap::default(),
            order: VecDeque::new(),
            cap: cap.max(1),
        }
    }

    pub fn contains(&self, key: u64) -> bool {
        key != 0 && self.set.contains_key(&key)
    }

    /// Records a key (0 = no key, ignored), evicting the oldest beyond
    /// capacity.
    pub fn insert(&mut self, key: u64) {
        if key == 0 || self.set.contains_key(&key) {
            return;
        }
        if self.order.len() == self.cap {
            if let Some(old) = self.order.pop_front() {
                self.set.remove(&old);
            }
        }
        self.set.insert(key, ());
        self.order.push_back(key);
    }

    pub fn len(&self) -> usize {
        self.order.len()
    }

    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }

    /// Keys oldest-first — the canonical snapshot encoding order, so a
    /// recovered cache evicts in the same order as the live one did.
    pub fn iter(&self) -> impl Iterator<Item = u64> + '_ {
        self.order.iter().copied()
    }
}

const SNAPSHOT_MAGIC: &[u8; 4] = b"TSNP";
const SNAPSHOT_VERSION: u8 = 1;

/// Durable tuner state as captured by a snapshot: everything replay
/// determinism depends on. [`crate::TunerStats`] is deliberately absent
/// (process-local diagnostics, not state).
struct SnapshotState {
    last_seq: u64,
    clock: u64,
    online: Vec<(TwigKey, u64, u64)>,
    idem: Vec<u64>,
    lattice_bytes: Vec<u8>,
}

fn encode_snapshot_payload(state: &SnapshotState) -> Vec<u8> {
    let mut p = Vec::with_capacity(64 + state.lattice_bytes.len());
    put_u64(&mut p, state.last_seq);
    put_u64(&mut p, state.clock);
    put_u32(&mut p, state.online.len() as u32);
    for (key, heat, touched) in &state.online {
        put_u32(&mut p, key.as_bytes().len() as u32);
        p.extend_from_slice(key.as_bytes());
        put_u64(&mut p, *heat);
        put_u64(&mut p, *touched);
    }
    put_u32(&mut p, state.idem.len() as u32);
    for k in &state.idem {
        put_u64(&mut p, *k);
    }
    put_u64(&mut p, state.lattice_bytes.len() as u64);
    p.extend_from_slice(&state.lattice_bytes);
    p
}

fn encode_snapshot(state: &SnapshotState) -> Vec<u8> {
    let payload = encode_snapshot_payload(state);
    let mut out = Vec::with_capacity(17 + payload.len());
    out.extend_from_slice(SNAPSHOT_MAGIC);
    out.push(SNAPSHOT_VERSION);
    out.extend_from_slice(&crc32(&payload).to_le_bytes());
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(&payload);
    out
}

fn decode_snapshot(bytes: &[u8], path: &Path) -> Result<SnapshotState, Fault> {
    let ctx = |msg: &str| corrupt(format!("{}: {msg}", path.display()));
    if bytes.len() < 17 || &bytes[..4] != SNAPSHOT_MAGIC {
        return Err(ctx("bad snapshot magic"));
    }
    if bytes[4] != SNAPSHOT_VERSION {
        return Err(ctx("unsupported snapshot version"));
    }
    let crc = u32::from_le_bytes(bytes[5..9].try_into().unwrap());
    let len = u64::from_le_bytes(bytes[9..17].try_into().unwrap()) as usize;
    let payload = bytes
        .get(17..17 + len)
        .filter(|_| bytes.len() == 17 + len)
        .ok_or_else(|| ctx("snapshot payload length mismatch"))?;
    if crc32(payload) != crc {
        return Err(ctx("snapshot payload checksum mismatch"));
    }
    let mut at = 0usize;
    let err = || ctx("snapshot payload truncated");
    let last_seq = get_u64(payload, &mut at).ok_or_else(err)?;
    let clock = get_u64(payload, &mut at).ok_or_else(err)?;
    let n_online = get_u32(payload, &mut at).ok_or_else(err)? as usize;
    let mut online = Vec::with_capacity(n_online.min(1 << 16));
    for _ in 0..n_online {
        let key_len = get_u32(payload, &mut at).ok_or_else(err)? as usize;
        let key = payload.get(at..at + key_len).ok_or_else(err)?;
        at += key_len;
        let heat = get_u64(payload, &mut at).ok_or_else(err)?;
        let touched = get_u64(payload, &mut at).ok_or_else(err)?;
        online.push((
            TwigKey::from_raw(key.to_vec().into_boxed_slice()),
            heat,
            touched,
        ));
    }
    let n_idem = get_u32(payload, &mut at).ok_or_else(err)? as usize;
    let mut idem = Vec::with_capacity(n_idem.min(1 << 16));
    for _ in 0..n_idem {
        idem.push(get_u64(payload, &mut at).ok_or_else(err)?);
    }
    let lat_len = get_u64(payload, &mut at).ok_or_else(err)? as usize;
    let lattice_bytes = payload.get(at..at + lat_len).ok_or_else(err)?;
    at += lat_len;
    if at != payload.len() {
        return Err(ctx("snapshot payload has trailing bytes"));
    }
    Ok(SnapshotState {
        last_seq,
        clock,
        online,
        idem,
        lattice_bytes: lattice_bytes.to_vec(),
    })
}

fn snapshot_file_name(seq: u64) -> String {
    format!("snap-{seq:020}.tlat")
}

fn parse_snapshot_name(name: &str) -> Option<u64> {
    let digits = name.strip_prefix("snap-")?.strip_suffix(".tlat")?;
    if digits.len() != 20 || !digits.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    digits.parse().ok()
}

/// Snapshot files in `dir`, newest (highest covered seq) first.
fn list_snapshots(dir: &Path) -> Result<Vec<(u64, PathBuf)>, Fault> {
    let mut out = Vec::new();
    let entries = match std::fs::read_dir(dir) {
        Ok(e) => e,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(out),
        Err(e) => return Err(corrupt(format!("{}: {e}", dir.display()))),
    };
    for entry in entries {
        let entry = entry.map_err(|e| corrupt(format!("{}: {e}", dir.display())))?;
        if let Some(seq) = entry.file_name().to_str().and_then(parse_snapshot_name) {
            out.push((seq, entry.path()));
        }
    }
    out.sort_by_key(|&(seq, _)| std::cmp::Reverse(seq));
    Ok(out)
}

/// Writes `bytes` into `dir/{name}` atomically: temp file → fsync →
/// rename → fsync(dir). Crashing before the rename leaves only a `.tmp`
/// that recovery ignores; after it, the file is complete or absent.
fn write_atomic(dir: &Path, name: &str, bytes: &[u8]) -> Result<PathBuf, Fault> {
    let final_path = dir.join(name);
    let tmp_path = dir.join(format!("{name}.tmp"));
    let io = |e: std::io::Error| corrupt(format!("{}: {e}", tmp_path.display()));
    let mut tmp = File::create(&tmp_path).map_err(io)?;
    tmp.write_all(bytes).map_err(io)?;
    tmp.sync_all().map_err(io)?;
    drop(tmp);
    if fire(sites::SNAPSHOT_BEFORE_RENAME) {
        // Crash semantics: the durable temp file stays behind (recovery
        // ignores `.tmp`), the published snapshot does not exist.
        return Err(Fault::injected(
            FaultKind::CorruptSummary,
            sites::SNAPSHOT_BEFORE_RENAME,
        ));
    }
    std::fs::rename(&tmp_path, &final_path)
        .map_err(|e| corrupt(format!("{}: rename: {e}", final_path.display())))?;
    // Durability of the rename itself. Best-effort: opening a directory
    // for fsync is not supported on every platform, and the rename is
    // already atomic; this only narrows the power-failure window.
    if let Ok(d) = File::open(dir) {
        let _ = d.sync_all();
    }
    Ok(final_path)
}

/// What startup recovery found and did.
#[derive(Clone, Debug, Default)]
pub struct RecoveryReport {
    /// Sequence covered by the snapshot recovery loaded (0 = none).
    pub snapshot_seq: u64,
    pub snapshot_path: Option<PathBuf>,
    /// Highest applied sequence after replay.
    pub last_seq: u64,
    /// WAL records replayed (seq above the snapshot).
    pub replayed: u64,
    /// WAL records skipped because the snapshot already covered them.
    pub skipped: u64,
    /// Torn-tail bytes sealed off the end of the log.
    pub torn_bytes: u64,
    /// Byte length of the valid WAL prefix (where appends resume).
    pub wal_valid_len: u64,
}

impl std::fmt::Display for RecoveryReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "snapshot seq {} ({}), replayed {} wal record(s) (skipped {}), last seq {}, torn tail {} byte(s)",
            self.snapshot_seq,
            self.snapshot_path
                .as_ref()
                .map(|p| p.display().to_string())
                .unwrap_or_else(|| "none".into()),
            self.replayed,
            self.skipped,
            self.last_seq,
            self.torn_bytes,
        )
    }
}

/// Everything [`recover`] hands back: the rebuilt tuner, the idempotency
/// window, and the report.
pub struct Recovered {
    pub tuned: TunedLattice,
    pub idem: IdemCache,
    pub report: RecoveryReport,
}

/// Tuning knobs for [`DurableLattice`].
#[derive(Clone, Debug)]
pub struct DurableOptions {
    pub online_budget: usize,
    pub policy: DurabilityPolicy,
    /// Snapshot after this many records since the last one (0 = only on
    /// drain).
    pub snapshot_every: u64,
    /// Idempotency-window capacity.
    pub idem_capacity: usize,
}

impl Default for DurableOptions {
    fn default() -> Self {
        Self {
            online_budget: 1 << 20,
            policy: DurabilityPolicy::Batch,
            snapshot_every: 512,
            idem_capacity: 4096,
        }
    }
}

/// Rebuilds tuner state from `dir`: newest valid snapshot, then the WAL
/// tail. `base` seeds the state when no snapshot exists yet (the mined
/// summary the server was started with); once a snapshot exists it is
/// authoritative and `base` is ignored.
pub fn recover(
    dir: &Path,
    base: Option<&TreeLattice>,
    opts: &DurableOptions,
    rec: &dyn Recorder,
) -> Result<Recovered, Fault> {
    let snapshots = list_snapshots(dir)?;
    let mut chosen: Option<(SnapshotState, PathBuf)> = None;
    let mut first_err: Option<Fault> = None;
    for (_, path) in &snapshots {
        let result = std::fs::read(path)
            .map_err(|e| corrupt(format!("{}: {e}", path.display())))
            .and_then(|bytes| decode_snapshot(&bytes, path));
        match result {
            Ok(state) => {
                chosen = Some((state, path.clone()));
                break;
            }
            Err(e) => first_err = first_err.or(Some(e)),
        }
    }
    if chosen.is_none() {
        if let Some(e) = first_err {
            // Snapshots exist but none is valid. The WAL was truncated
            // when the oldest of them was written, so falling back to
            // the base summary would silently lose acknowledged
            // updates: fail typed instead.
            return Err(corrupt(format!(
                "no valid snapshot in {}: {e}",
                dir.display()
            )));
        }
    }

    let (mut tuned, snapshot_seq, snapshot_path, mut idem) = match chosen {
        Some((state, path)) => {
            let lattice = TreeLattice::from_bytes(&state.lattice_bytes)
                .map_err(|e| corrupt(format!("{}: {e}", path.display())))?;
            let tuned = TunedLattice::restore_online_state(
                lattice,
                opts.online_budget,
                state.clock,
                state.online,
            );
            let mut idem = IdemCache::new(opts.idem_capacity);
            for k in state.idem {
                idem.insert(k);
            }
            (tuned, state.last_seq, Some(path), idem)
        }
        None => {
            let base = base.ok_or_else(|| {
                corrupt(format!(
                    "{}: no snapshot found and no base summary provided",
                    dir.display()
                ))
            })?;
            (
                TunedLattice::new(base.clone(), opts.online_budget),
                0,
                None,
                IdemCache::new(opts.idem_capacity),
            )
        }
    };

    let scan = scan_wal(&dir.join(WAL_FILE))?;
    let mut report = RecoveryReport {
        snapshot_seq,
        snapshot_path,
        last_seq: snapshot_seq,
        torn_bytes: scan.torn_bytes,
        wal_valid_len: scan.valid_len,
        ..RecoveryReport::default()
    };
    let mut prev_seq: Option<u64> = None;
    for record in &scan.records {
        if let Some(prev) = prev_seq {
            if record.seq != prev + 1 {
                return Err(corrupt(format!(
                    "wal sequence gap: record {} follows {}",
                    record.seq, prev
                )));
            }
        }
        prev_seq = Some(record.seq);
        if record.seq <= snapshot_seq {
            report.skipped += 1;
            continue;
        }
        if record.seq != report.last_seq + 1 {
            return Err(corrupt(format!(
                "wal sequence gap: snapshot covers {} but replay starts at {}",
                report.last_seq, record.seq
            )));
        }
        tuned.observe(&record.key.decode(), record.count);
        idem.insert(record.idem);
        report.last_seq = record.seq;
        report.replayed += 1;
    }
    rec.add(names::WAL_REPLAYED, report.replayed);
    Ok(Recovered {
        tuned,
        idem,
        report,
    })
}

/// Outcome of one [`DurableLattice::apply`].
#[derive(Clone, Debug)]
pub struct Applied {
    /// Sequence the observation was logged under (the highest applied
    /// sequence, on a dedup hit).
    pub seq: u64,
    /// Summary generation after the apply.
    pub generation: u64,
    /// True when the idempotency window answered a retried update
    /// without re-applying it.
    pub deduped: bool,
    /// A periodic snapshot attempted by this apply failed. The update
    /// itself is durable in the WAL and acknowledged; the fault is
    /// operational telemetry, not an ack failure.
    pub snapshot_fault: Option<Fault>,
}

/// A [`TunedLattice`] whose observations survive crashes: WAL-before-ack,
/// periodic atomic snapshots, idempotent retries.
#[derive(Debug)]
pub struct DurableLattice {
    tuned: TunedLattice,
    wal: WalWriter,
    dir: PathBuf,
    snapshot_every: u64,
    snapshot_seq: u64,
    last_seq: u64,
    idem: IdemCache,
}

impl DurableLattice {
    /// Runs recovery over `dir` (created if missing) and opens the WAL
    /// for appending, sealing any torn tail.
    pub fn open(
        dir: &Path,
        base: Option<&TreeLattice>,
        opts: &DurableOptions,
        rec: &dyn Recorder,
    ) -> Result<(Self, RecoveryReport), Fault> {
        std::fs::create_dir_all(dir).map_err(|e| corrupt(format!("{}: {e}", dir.display())))?;
        let recovered = recover(dir, base, opts, rec)?;
        let wal = WalWriter::open(
            &dir.join(WAL_FILE),
            opts.policy,
            recovered.report.last_seq + 1,
            recovered.report.wal_valid_len,
        )?;
        let this = Self {
            tuned: recovered.tuned,
            wal,
            dir: dir.to_path_buf(),
            snapshot_every: opts.snapshot_every,
            snapshot_seq: recovered.report.snapshot_seq,
            last_seq: recovered.report.last_seq,
            idem: recovered.idem,
        };
        Ok((this, recovered.report))
    }

    pub fn tuned(&self) -> &TunedLattice {
        &self.tuned
    }

    pub fn lattice(&self) -> &TreeLattice {
        self.tuned.lattice()
    }

    pub fn last_seq(&self) -> u64 {
        self.last_seq
    }

    pub fn snapshot_seq(&self) -> u64 {
        self.snapshot_seq
    }

    /// Logs and applies one observation. The WAL append gates the
    /// acknowledgement: on `Err` the state is untouched and the caller
    /// must answer with the typed fault, not an ack.
    pub fn apply(
        &mut self,
        twig: &Twig,
        true_count: u64,
        idem: u64,
        rec: &dyn Recorder,
    ) -> Result<Applied, Fault> {
        if self.idem.contains(idem) {
            return Ok(Applied {
                seq: self.last_seq,
                generation: self.tuned.lattice().generation(),
                deduped: true,
                snapshot_fault: None,
            });
        }
        let key = key_of(twig);
        let seq = self.wal.append(idem, &key, true_count, rec)?;
        self.tuned.observe(twig, true_count);
        self.last_seq = seq;
        self.idem.insert(idem);
        let mut snapshot_fault = None;
        if self.snapshot_every > 0 && seq.saturating_sub(self.snapshot_seq) >= self.snapshot_every {
            if let Err(fault) = self.snapshot(rec) {
                rec.add(names::SNAPSHOT_FAILURES, 1);
                snapshot_fault = Some(fault);
            }
        }
        Ok(Applied {
            seq,
            generation: self.tuned.lattice().generation(),
            deduped: false,
            snapshot_fault,
        })
    }

    /// The canonical durable-state encoding (what a snapshot file's
    /// payload holds). Two instances with bit-identical state encode to
    /// bit-identical bytes — the recovery gate's comparison key.
    pub fn state_bytes(&self) -> Vec<u8> {
        encode_snapshot_payload(&self.snapshot_state())
    }

    fn snapshot_state(&self) -> SnapshotState {
        let (clock, online) = self.tuned.online_state();
        SnapshotState {
            last_seq: self.last_seq,
            clock,
            online,
            idem: self.idem.iter().collect(),
            lattice_bytes: self.tuned.lattice().to_bytes(),
        }
    }

    /// Writes an atomic snapshot covering everything applied so far,
    /// then truncates the WAL. On `Err` the previous snapshot and the
    /// WAL are intact and recovery remains correct.
    pub fn snapshot(&mut self, rec: &dyn Recorder) -> Result<u64, Fault> {
        // Barrier: records the snapshot will supersede must be stable
        // before the WAL can be truncated below them.
        self.wal.flush(rec)?;
        let seq = self.last_seq;
        let bytes = encode_snapshot(&self.snapshot_state());
        write_atomic(&self.dir, &snapshot_file_name(seq), &bytes)?;
        rec.add(names::SNAPSHOT_WRITES, 1);
        rec.add(names::SNAPSHOT_BYTES, bytes.len() as u64);
        // From here the snapshot is durable and authoritative even if
        // the remaining cleanup fails.
        self.snapshot_seq = seq;
        if fire(sites::SNAPSHOT_AFTER_RENAME) {
            // Crash semantics: the WAL keeps records the snapshot
            // already covers; replay skips them by sequence.
            return Err(Fault::injected(
                FaultKind::CorruptSummary,
                sites::SNAPSHOT_AFTER_RENAME,
            ));
        }
        self.wal.truncate_all(rec)?;
        self.retire_old_snapshots(seq);
        Ok(seq)
    }

    /// Best-effort retention: keep the newest snapshot plus one
    /// predecessor, drop older ones and stale temp files. Failures are
    /// harmless (the files are re-candidates next snapshot).
    fn retire_old_snapshots(&self, newest: u64) {
        if let Ok(snapshots) = list_snapshots(&self.dir) {
            for (seq, path) in snapshots.iter().skip(2) {
                if *seq < newest {
                    let _ = std::fs::remove_file(path);
                }
            }
        }
        if let Ok(entries) = std::fs::read_dir(&self.dir) {
            for entry in entries.flatten() {
                if entry.file_name().to_string_lossy().ends_with(".tmp") {
                    let _ = std::fs::remove_file(entry.path());
                }
            }
        }
    }

    /// Drain for shutdown: force the WAL to stable storage, then write a
    /// final snapshot. On `Err` the WAL and the previous snapshot are
    /// intact, so nothing acknowledged is lost — the process should exit
    /// with the fault code and recovery will finish the job.
    pub fn drain(&mut self, rec: &dyn Recorder) -> Result<(), Fault> {
        self.wal.flush(rec)?;
        if self.last_seq > self.snapshot_seq || (self.last_seq > 0 && !self.wal.is_empty()) {
            self.snapshot(rec)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use tl_fault::failpoints;
    use tl_obs::NOOP;
    use tl_xml::{parse_document, ParseOptions};

    use crate::BuildConfig;

    use super::*;

    fn test_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "tl-wal-{name}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn base_lattice() -> TreeLattice {
        let mut s = String::from("<r>");
        for _ in 0..6 {
            s.push_str("<a><b><c/></b><d/></a>");
        }
        s.push_str("</r>");
        let doc = parse_document(s.as_bytes(), ParseOptions::default()).unwrap();
        TreeLattice::build(&doc, &BuildConfig::with_k(2))
    }

    fn storm(lattice: &TreeLattice, n: usize) -> Vec<(Twig, u64)> {
        let queries = ["a[b][d]", "r/a/b/c", "a[b[c]][d]", "r/a[d]", "a/b"];
        (0..n)
            .map(|i| {
                let twig = lattice.parse_query(queries[i % queries.len()]).unwrap();
                (twig, (i as u64).wrapping_mul(7) % 100)
            })
            .collect()
    }

    fn opts() -> DurableOptions {
        DurableOptions {
            online_budget: 1 << 20,
            policy: DurabilityPolicy::Strict,
            snapshot_every: 0,
            idem_capacity: 64,
        }
    }

    #[test]
    fn append_replay_round_trips() {
        let dir = test_dir("roundtrip");
        let base = base_lattice();
        let (mut durable, report) =
            DurableLattice::open(&dir, Some(&base), &opts(), &NOOP).unwrap();
        assert_eq!(report.last_seq, 0);
        for (twig, count) in storm(&base, 10) {
            durable.apply(&twig, count, 0, &NOOP).unwrap();
        }
        let want = durable.state_bytes();
        drop(durable);

        let (recovered, report) = DurableLattice::open(&dir, Some(&base), &opts(), &NOOP).unwrap();
        assert_eq!(report.replayed, 10);
        assert_eq!(report.last_seq, 10);
        assert_eq!(
            recovered.state_bytes(),
            want,
            "replayed state bit-identical"
        );
    }

    #[test]
    fn torn_tail_is_a_clean_end_of_log() {
        let dir = test_dir("torn");
        let base = base_lattice();
        let (mut durable, _) = DurableLattice::open(&dir, Some(&base), &opts(), &NOOP).unwrap();
        for (twig, count) in storm(&base, 6) {
            durable.apply(&twig, count, 0, &NOOP).unwrap();
        }
        let want = durable.state_bytes();
        drop(durable);

        // Chop bytes off the end one at a time down to mid-first-record:
        // every cut must recover to the longest complete prefix.
        let wal_path = dir.join(WAL_FILE);
        let full = std::fs::read(&wal_path).unwrap();
        for cut in (1..full.len()).rev() {
            std::fs::write(&wal_path, &full[..cut]).unwrap();
            let scan = scan_wal(&wal_path).unwrap();
            assert!(scan.records.len() <= 6);
            assert_eq!(scan.torn_bytes as usize, cut - scan.valid_len as usize);
        }
        // Un-truncated file still recovers bit-identically.
        std::fs::write(&wal_path, &full).unwrap();
        let (recovered, _) = DurableLattice::open(&dir, Some(&base), &opts(), &NOOP).unwrap();
        assert_eq!(recovered.state_bytes(), want);
    }

    #[test]
    fn mid_log_corruption_is_a_typed_fault() {
        let dir = test_dir("midlog");
        let base = base_lattice();
        let (mut durable, _) = DurableLattice::open(&dir, Some(&base), &opts(), &NOOP).unwrap();
        for (twig, count) in storm(&base, 6) {
            durable.apply(&twig, count, 0, &NOOP).unwrap();
        }
        drop(durable);
        let wal_path = dir.join(WAL_FILE);
        let mut bytes = std::fs::read(&wal_path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        std::fs::write(&wal_path, &bytes).unwrap();
        let err = DurableLattice::open(&dir, Some(&base), &opts(), &NOOP).unwrap_err();
        assert_eq!(err.kind, FaultKind::CorruptSummary, "{err}");
    }

    #[test]
    fn snapshot_truncates_wal_and_recovery_prefers_it() {
        let dir = test_dir("snap");
        let base = base_lattice();
        let mut o = opts();
        o.snapshot_every = 4;
        let (mut durable, _) = DurableLattice::open(&dir, Some(&base), &o, &NOOP).unwrap();
        for (twig, count) in storm(&base, 10) {
            durable.apply(&twig, count, 0, &NOOP).unwrap();
        }
        assert!(durable.snapshot_seq() >= 8);
        assert!(durable.wal.len() < 200, "wal truncated at each snapshot");
        let want = durable.state_bytes();
        drop(durable);
        let (recovered, report) = DurableLattice::open(&dir, Some(&base), &o, &NOOP).unwrap();
        assert!(report.snapshot_path.is_some());
        assert!(report.replayed <= 2);
        assert_eq!(recovered.state_bytes(), want);
    }

    #[test]
    fn corrupt_newest_snapshot_falls_back_to_predecessor() {
        let dir = test_dir("fallback");
        let base = base_lattice();
        let mut o = opts();
        o.snapshot_every = 0;
        let (mut durable, _) = DurableLattice::open(&dir, Some(&base), &o, &NOOP).unwrap();
        let updates = storm(&base, 8);
        for (twig, count) in &updates[..4] {
            durable.apply(twig, *count, 0, &NOOP).unwrap();
        }
        durable.snapshot(&NOOP).unwrap();
        for (twig, count) in &updates[4..] {
            durable.apply(twig, *count, 0, &NOOP).unwrap();
        }
        durable.snapshot(&NOOP).unwrap();
        let want = durable.state_bytes();
        drop(durable);

        // Flip a byte in the newest snapshot: recovery must fall back to
        // the predecessor and replay the (empty) tail — state regresses
        // to seq 4, never a wrong answer.
        let snaps = list_snapshots(&dir).unwrap();
        assert_eq!(snaps.len(), 2);
        let newest = &snaps[0].1;
        let mut bytes = std::fs::read(newest).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x01;
        std::fs::write(newest, &bytes).unwrap();
        let (recovered, report) = DurableLattice::open(&dir, Some(&base), &o, &NOOP).unwrap();
        assert_eq!(report.snapshot_seq, 4);
        assert_ne!(recovered.state_bytes(), want);
        assert_eq!(recovered.last_seq(), 4);
    }

    #[test]
    fn idempotent_retry_does_not_double_apply() {
        let dir = test_dir("idem");
        let base = base_lattice();
        let (mut durable, _) = DurableLattice::open(&dir, Some(&base), &opts(), &NOOP).unwrap();
        let twig = base.parse_query("a[b][d]").unwrap();
        let first = durable.apply(&twig, 42, 777, &NOOP).unwrap();
        assert!(!first.deduped);
        let retry = durable.apply(&twig, 42, 777, &NOOP).unwrap();
        assert!(retry.deduped);
        assert_eq!(retry.seq, first.seq);
        assert_eq!(durable.last_seq(), 1, "retry logged nothing");

        // The window survives recovery: a retry after restart still
        // deduplicates.
        drop(durable);
        let (mut recovered, _) = DurableLattice::open(&dir, Some(&base), &opts(), &NOOP).unwrap();
        let retry = recovered.apply(&twig, 42, 777, &NOOP).unwrap();
        assert!(retry.deduped);
        assert_eq!(recovered.last_seq(), 1);
    }

    #[test]
    fn every_injected_crash_point_recovers_bit_identically() {
        let base = base_lattice();
        let mut o = opts();
        o.snapshot_every = 4;
        let crash_sites = [
            sites::WAL_APPEND_TORN,
            sites::WAL_APPEND_SHORT,
            sites::WAL_FSYNC,
            sites::SNAPSHOT_BEFORE_RENAME,
            sites::SNAPSHOT_AFTER_RENAME,
        ];
        for site in crash_sites {
            let dir = test_dir(&format!("crash-{}", site.replace('.', "-")));
            let (mut durable, _) = DurableLattice::open(&dir, Some(&base), &o, &NOOP).unwrap();
            let mut acked = 0u64;
            failpoints::with_active(&format!("{site}=nth:1"), 7, || {
                for (twig, count) in storm(&base, 9) {
                    match durable.apply(&twig, count, 0, &NOOP) {
                        Ok(a) => {
                            acked += 1;
                            if let Some(f) = a.snapshot_fault {
                                assert_eq!(f.kind, FaultKind::CorruptSummary, "{site}: {f}");
                            }
                        }
                        Err(f) => {
                            assert_eq!(f.kind, FaultKind::CorruptSummary, "{site}: {f}");
                            break;
                        }
                    }
                }
            });
            drop(durable);

            let (recovered, report) = DurableLattice::open(&dir, Some(&base), &o, &NOOP).unwrap();
            assert_eq!(report.last_seq, acked, "{site}: acked prefix recovered");

            // Replica: synchronous replay of the acknowledged prefix
            // through an identical pipeline, no faults.
            let replica_dir = test_dir(&format!("replica-{}", site.replace('.', "-")));
            let (mut replica, _) =
                DurableLattice::open(&replica_dir, Some(&base), &o, &NOOP).unwrap();
            for (twig, count) in storm(&base, 9).into_iter().take(acked as usize) {
                replica.apply(&twig, count, 0, &NOOP).unwrap();
            }
            assert_eq!(
                recovered.state_bytes(),
                replica.state_bytes(),
                "{site}: recovered state bit-identical to synchronous replay"
            );
        }
    }

    #[test]
    fn drain_writes_a_final_snapshot() {
        let dir = test_dir("drain");
        let base = base_lattice();
        let (mut durable, _) = DurableLattice::open(&dir, Some(&base), &opts(), &NOOP).unwrap();
        for (twig, count) in storm(&base, 5) {
            durable.apply(&twig, count, 0, &NOOP).unwrap();
        }
        durable.drain(&NOOP).unwrap();
        assert_eq!(durable.snapshot_seq(), 5);
        assert!(durable.wal.is_empty());
        drop(durable);
        let (_, report) = DurableLattice::open(&dir, Some(&base), &opts(), &NOOP).unwrap();
        assert_eq!(report.replayed, 0, "everything came from the snapshot");
        assert_eq!(report.last_seq, 5);
    }

    #[test]
    fn policy_parse_round_trips() {
        for p in [
            DurabilityPolicy::None,
            DurabilityPolicy::Batch,
            DurabilityPolicy::Strict,
        ] {
            assert_eq!(DurabilityPolicy::parse(&p.to_string()).unwrap(), p);
        }
        assert!(DurabilityPolicy::parse("paranoid").is_err());
    }

    #[test]
    fn seq_gap_is_a_typed_fault() {
        let dir = test_dir("gap");
        let base = base_lattice();
        let (mut durable, _) = DurableLattice::open(&dir, Some(&base), &opts(), &NOOP).unwrap();
        for (twig, count) in storm(&base, 4) {
            durable.apply(&twig, count, 0, &NOOP).unwrap();
        }
        drop(durable);
        // Drop the second record from the file wholesale: checksums all
        // pass, but the sequence run has a hole.
        let wal_path = dir.join(WAL_FILE);
        let bytes = std::fs::read(&wal_path).unwrap();
        let first_len = 4 + u32::from_le_bytes(bytes[..4].try_into().unwrap()) as usize + 8;
        let second_len = 4
            + u32::from_le_bytes(bytes[first_len..first_len + 4].try_into().unwrap()) as usize
            + 8;
        let mut cut = bytes[..first_len].to_vec();
        cut.extend_from_slice(&bytes[first_len + second_len..]);
        std::fs::write(&wal_path, &cut).unwrap();
        let err = DurableLattice::open(&dir, Some(&base), &opts(), &NOOP).unwrap_err();
        assert_eq!(err.kind, FaultKind::CorruptSummary);
        assert!(err.message.contains("gap"), "{err}");
    }
}
