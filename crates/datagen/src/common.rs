//! Shared generator machinery: configuration, budgeted emission, and the
//! fan-out distributions the four dataset stand-ins draw from.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tl_xml::{Document, DocumentBuilder, ValueMode};

/// Configuration shared by every dataset generator.
#[derive(Clone, Copy, Debug)]
pub struct GenConfig {
    /// RNG seed; equal seeds produce identical documents.
    pub seed: u64,
    /// Approximate number of element nodes to emit. Generators finish the
    /// record in flight when the budget runs out, so actual sizes land
    /// within a few percent of the target.
    pub target_elements: usize,
}

impl Default for GenConfig {
    fn default() -> Self {
        Self {
            seed: 42,
            target_elements: 50_000,
        }
    }
}

/// Budgeted document emitter wrapped around [`DocumentBuilder`].
///
/// Record generators call [`Gen::begin`]/[`Gen::end`] freely and consult
/// [`Gen::budget_left`] between records; the emitter never truncates a
/// subtree mid-record, keeping every record well-formed.
pub struct Gen {
    rng: StdRng,
    builder: DocumentBuilder,
    emitted: usize,
    target: usize,
    values: ValueMode,
}

impl Gen {
    /// Creates an emitter for the given configuration.
    pub fn new(config: GenConfig) -> Self {
        Self::with_values(config, ValueMode::Ignore)
    }

    /// Creates an emitter that also materializes element values under the
    /// given [`ValueMode`] (as the synthetic leaf children the XML parser
    /// would produce).
    pub fn with_values(config: GenConfig, values: ValueMode) -> Self {
        Self {
            rng: StdRng::seed_from_u64(config.seed),
            builder: DocumentBuilder::with_capacity(config.target_elements + 64),
            emitted: 0,
            target: config.target_elements,
            values,
        }
    }

    /// Opens an element.
    pub fn begin(&mut self, name: &str) {
        self.builder.begin(name);
        self.emitted += 1;
    }

    /// Closes the innermost open element.
    pub fn end(&mut self) {
        self.builder.end();
    }

    /// Emits a childless element.
    pub fn leaf(&mut self, name: &str) {
        self.begin(name);
        self.end();
    }

    /// Emits `n` copies of a childless element.
    pub fn leaves(&mut self, name: &str, n: usize) {
        for _ in 0..n {
            self.leaf(name);
        }
    }

    /// Emits a childless element carrying a text value; under a value-aware
    /// mode the value becomes a synthetic leaf child, matching what
    /// [`tl_xml::parse_document`] produces for `<name>value</name>`.
    pub fn leaf_with_value(&mut self, name: &str, value: &str) {
        self.begin(name);
        if let Some(label) = self.values.value_label(value) {
            self.begin(&label);
            self.end();
        }
        self.end();
    }

    /// Emits a uniform-random number of childless elements in `[lo, hi]`.
    pub fn leaves_range(&mut self, name: &str, lo: usize, hi: usize) {
        let n = self.range(lo, hi);
        self.leaves(name, n);
    }

    /// Whether the element budget still has room for another record.
    pub fn budget_left(&self) -> bool {
        self.emitted < self.target
    }

    /// Elements emitted so far.
    pub fn emitted(&self) -> usize {
        self.emitted
    }

    /// The RNG (deterministic per seed).
    pub fn rng(&mut self) -> &mut StdRng {
        &mut self.rng
    }

    /// Uniform integer in `[lo, hi]` inclusive.
    pub fn range(&mut self, lo: usize, hi: usize) -> usize {
        debug_assert!(lo <= hi);
        self.rng.gen_range(lo..=hi)
    }

    /// Bernoulli draw with probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        self.rng.gen_bool(p.clamp(0.0, 1.0))
    }

    /// Geometric-ish count: number of successes before failure, capped.
    /// `p` is the continuation probability; expectation ≈ `p / (1 - p)`.
    pub fn geometric(&mut self, p: f64, cap: usize) -> usize {
        let mut n = 0;
        while n < cap && self.rng.gen_bool(p) {
            n += 1;
        }
        n
    }

    /// Heavy-tailed count in `[lo, hi]`: usually near `lo`, occasionally
    /// near `hi`. This is the fan-out skew that defeats average-based
    /// synopses (used aggressively by the XMark stand-in).
    pub fn skewed(&mut self, lo: usize, hi: usize) -> usize {
        debug_assert!(lo <= hi);
        // Inverse-power sample: u^3 concentrates near 0.
        let u: f64 = self.rng.gen();
        let frac = u * u * u;
        lo + ((hi - lo) as f64 * frac).round() as usize
    }

    /// Picks an index in `0..weights.len()` proportionally to `weights`.
    pub fn weighted(&mut self, weights: &[f64]) -> usize {
        let total: f64 = weights.iter().sum();
        debug_assert!(total > 0.0);
        let mut x = self.rng.gen_range(0.0..total);
        for (i, &w) in weights.iter().enumerate() {
            if x < w {
                return i;
            }
            x -= w;
        }
        weights.len() - 1
    }

    /// Finalizes the document.
    pub fn finish(self) -> Document {
        self.builder
            .finish()
            .expect("generators emit well-formed documents")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn budget_counts_elements() {
        let mut g = Gen::new(GenConfig {
            seed: 1,
            target_elements: 10,
        });
        g.begin("r");
        g.leaves("x", 8);
        assert!(g.budget_left());
        g.leaf("x");
        assert!(!g.budget_left());
        g.end();
        let d = g.finish();
        assert_eq!(d.len(), 10);
    }

    #[test]
    fn geometric_respects_cap() {
        let mut g = Gen::new(GenConfig::default());
        for _ in 0..100 {
            assert!(g.geometric(0.95, 7) <= 7);
        }
    }

    #[test]
    fn skewed_stays_in_range_and_skews_low() {
        let mut g = Gen::new(GenConfig::default());
        let draws: Vec<usize> = (0..2000).map(|_| g.skewed(1, 100)).collect();
        assert!(draws.iter().all(|&d| (1..=100).contains(&d)));
        let mean = draws.iter().sum::<usize>() as f64 / draws.len() as f64;
        assert!(mean < 40.0, "mean {mean} should be well below the midpoint");
        assert!(
            draws.iter().any(|&d| d > 60),
            "tail draws should occasionally be large"
        );
    }

    #[test]
    fn weighted_hits_every_bucket() {
        let mut g = Gen::new(GenConfig::default());
        let mut seen = [false; 3];
        for _ in 0..500 {
            seen[g.weighted(&[1.0, 2.0, 3.0])] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
