//! The worked example of the paper's §5.3 / Figure 11.
//!
//! The original figure is only partially legible in the archived text, but
//! its mechanism is stated precisely in the prose: a TreeSketches-style
//! synopsis records *average* child counts per (parent-set, label) edge, so
//! when the children counts of two labels are anti-correlated across parent
//! instances, multiplying the averages grossly overestimates a branching
//! twig, while TreeLattice reads the exact joint count from the lattice.
//!
//! We reconstruct the example with those exact roles:
//!
//! ```text
//! r
//! ├── b  ── c c c d        (3 c-children, 1 d-child)
//! ├── b  ── c d            (1 c-child,  1 d-child)
//! └── b  ── d d d d        (0 c-children, 4 d-children)
//! ```
//!
//! Query `b[c][d]`: true selectivity `3·1 + 1·1 + 0·4 = 4`.
//! Synopsis estimate: `count(b) · avg(c per b) · avg(d per b)
//! = 3 · (4/3) · 2 = 8` — a 100% overestimate, the Figure 11 shape.
//! TreeLattice with a 3-lattice (or larger) stores the size-3 twig
//! `b[c][d]` itself and answers the exact 4 by direct lookup, exactly as
//! the paper's example: subtree statistics capture the joint (c, d)
//! distribution under `b` that per-edge averages destroy.

use tl_xml::{parse_document, Document, ParseOptions};

/// Builds the Figure 11 example document.
pub fn figure11_document() -> Document {
    parse_document(
        b"<r>\
            <b><c/><c/><c/><d/></b>\
            <b><c/><d/></b>\
            <b><d/><d/><d/><d/></b>\
          </r>",
        ParseOptions::default(),
    )
    .expect("static example document is well-formed")
}

#[cfg(test)]
mod tests {
    use tl_twig::{count_matches, parse_twig_in};

    use super::*;

    #[test]
    fn true_selectivity_is_four() {
        let doc = figure11_document();
        let q = parse_twig_in("b[c][d]", doc.labels()).unwrap();
        assert_eq!(count_matches(&doc, &q), 4);
    }

    #[test]
    fn component_counts() {
        let doc = figure11_document();
        let labels = doc.labels();
        assert_eq!(count_matches(&doc, &parse_twig_in("b", labels).unwrap()), 3);
        assert_eq!(
            count_matches(&doc, &parse_twig_in("b[c]", labels).unwrap()),
            4
        );
        assert_eq!(
            count_matches(&doc, &parse_twig_in("b[d]", labels).unwrap()),
            6
        );
    }
}
