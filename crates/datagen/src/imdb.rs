//! IMDB stand-in: the Internet Movie Database.
//!
//! Calibration targets: ~88 distinct labels, a combinatorially exploding
//! pattern inventory at higher lattice levels (Table 2: 88 / 120 / 877 /
//! 9839 / 97780), and — critically — *correlated* substructure. Each movie
//! record draws a latent kind (feature film, TV series, documentary, short)
//! that jointly determines which sections appear, and feature films carry
//! all-or-none bundles (`trivia`/`goofs`/`quotes`). Joint presence breaks
//! the conditional-independence assumption, which is why TreeLattice loses
//! some accuracy to TreeSketches on IMDB in the paper (Figure 7(b)) and why
//! 0-derivable pruning saves little space there (Figure 10(a)).

use tl_xml::Document;

use crate::common::{Gen, GenConfig};

/// The pool of miscellaneous per-movie info sections; random subsets of
/// these create the higher-level pattern explosion.
const INFO_LABELS: [&str; 40] = [
    "akas",
    "alternate_versions",
    "camera",
    "color_info",
    "connections",
    "crazy_credits",
    "distributor",
    "dvd",
    "filming_dates",
    "filming_locations",
    "genre_tags",
    "laboratory",
    "literature",
    "merchandise",
    "mix",
    "mpaa",
    "negative_format",
    "novel",
    "official_sites",
    "plot_outline",
    "printed_format",
    "process",
    "production_dates",
    "release_dates",
    "screenplay",
    "sound_crew",
    "soundtrack",
    "special_effects",
    "stunts",
    "taglines",
    "tech_info",
    "thanks",
    "trailers",
    "versions",
    "video",
    "vfx_company",
    "weekend_gross",
    "copyright",
    "certificates",
    "spoken_languages",
];

/// Generates the movie corpus.
pub fn generate(config: GenConfig) -> Document {
    let mut g = Gen::new(config);
    g.begin("imdb");
    while g.budget_left() {
        movie(&mut g);
    }
    g.end();
    g.finish()
}

fn movie(g: &mut Gen) {
    g.begin("movie");
    g.leaf("title");
    g.leaf("year");
    // The latent kind correlates every optional section below.
    match g.weighted(&[0.5, 0.2, 0.15, 0.15]) {
        0 => feature_film(g),
        1 => tv_series(g),
        2 => documentary(g),
        _ => short_film(g),
    }
    info_sections(g);
    g.end();
}

fn feature_film(g: &mut Gen) {
    genres(g);
    cast(g, true);
    crew(g);
    g.begin("business");
    g.leaf("budget");
    g.leaves_range("gross", 1, 3);
    g.end();
    g.begin("release");
    g.leaf("country");
    g.leaf("date");
    g.end();
    ratings(g);
    // Awards appear only on well-rated features, and when they do, a
    // festival list comes with them: strong joint presence.
    if g.chance(0.3) {
        g.begin("awards");
        let n = g.range(1, 4);
        for _ in 0..n {
            g.begin("award");
            g.leaf("category");
            g.leaf("result");
            g.end();
        }
        g.end();
        g.begin("festivals");
        g.leaves_range("festival", 1, 3);
        g.end();
    }
    // All-or-none bundle: trivia, goofs and quotes travel together.
    if g.chance(0.45) {
        g.begin("trivia");
        g.leaves_range("fact", 1, 4);
        g.end();
        g.begin("goofs");
        g.leaves_range("goof", 1, 3);
        g.end();
        g.begin("quotes");
        g.leaves_range("quote", 1, 3);
        g.end();
    }
}

fn tv_series(g: &mut Gen) {
    genres(g);
    cast(g, false);
    g.leaf("network");
    g.begin("seasons");
    let seasons = g.range(1, 5);
    for _ in 0..seasons {
        g.begin("season");
        let eps = g.range(2, 8);
        for _ in 0..eps {
            g.begin("episode");
            g.leaf("eptitle");
            g.leaf("airdate");
            if g.chance(0.3) {
                g.leaf("guest");
            }
            g.end();
        }
        g.end();
    }
    g.end();
    ratings(g);
}

fn documentary(g: &mut Gen) {
    g.leaves_range("subject", 1, 3);
    g.begin("narrator");
    g.leaf("name");
    g.end();
    g.begin("production");
    g.leaf("company");
    if g.chance(0.5) {
        g.leaf("sponsor");
    }
    g.end();
    if g.chance(0.6) {
        ratings(g);
    }
}

fn short_film(g: &mut Gen) {
    g.leaf("runtime");
    if g.chance(0.5) {
        genres(g);
    }
    if g.chance(0.4) {
        g.begin("crew");
        g.begin("director");
        g.leaf("name");
        g.end();
        g.end();
    }
}

fn genres(g: &mut Gen) {
    g.begin("genres");
    g.leaves_range("genre", 1, 4);
    g.end();
}

fn cast(g: &mut Gen, big: bool) {
    g.begin("cast");
    let actors = if big { g.range(2, 8) } else { g.range(1, 4) };
    for _ in 0..actors {
        let tag = if g.chance(0.5) { "actor" } else { "actress" };
        g.begin(tag);
        g.leaf("name");
        g.leaf("role");
        if g.chance(0.2) {
            g.leaf("billing");
        }
        g.end();
    }
    g.end();
}

fn crew(g: &mut Gen) {
    g.begin("crew");
    g.begin("director");
    g.leaf("name");
    g.end();
    let producers = g.range(1, 3);
    for _ in 0..producers {
        g.begin("producer");
        g.leaf("name");
        g.end();
    }
    if g.chance(0.8) {
        g.begin("writer");
        g.leaf("name");
        g.end();
    }
    if g.chance(0.5) {
        g.begin("composer");
        g.leaf("name");
        g.end();
    }
    g.end();
}

fn ratings(g: &mut Gen) {
    g.begin("ratings");
    g.leaf("rating");
    g.leaf("votes");
    g.end();
}

fn info_sections(g: &mut Gen) {
    // A random, movie-specific subset of the info pool; subset diversity is
    // what multiplies distinct level-4/5 patterns under <movie>.
    g.begin("info");
    let picks = g.range(2, 7);
    let mut chosen = [false; INFO_LABELS.len()];
    for _ in 0..picks {
        let i = g.range(0, INFO_LABELS.len() - 1);
        if !chosen[i] {
            chosen[i] = true;
            g.leaf(INFO_LABELS[i]);
        }
    }
    g.end();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bundle_children_are_jointly_present() {
        let d = generate(GenConfig {
            seed: 1,
            target_elements: 30_000,
        });
        let movie = d.labels().get("movie").unwrap();
        let trivia = d.labels().get("trivia").unwrap();
        let goofs = d.labels().get("goofs").unwrap();
        let quotes = d.labels().get("quotes").unwrap();
        let mut with_trivia = 0usize;
        let mut with_all = 0usize;
        for n in d.pre_order().filter(|&n| d.label(n) == movie) {
            let has = |l| d.children(n).any(|c| d.label(c) == l);
            if has(trivia) {
                with_trivia += 1;
                if has(goofs) && has(quotes) {
                    with_all += 1;
                }
            }
        }
        assert!(with_trivia > 0);
        assert_eq!(with_trivia, with_all, "trivia implies goofs and quotes");
    }

    #[test]
    fn kinds_are_mutually_exclusive() {
        let d = generate(GenConfig {
            seed: 2,
            target_elements: 30_000,
        });
        let movie = d.labels().get("movie").unwrap();
        let seasons = d.labels().get("seasons").unwrap();
        let business = d.labels().get("business").unwrap();
        for n in d.pre_order().filter(|&n| d.label(n) == movie) {
            let has_seasons = d.children(n).any(|c| d.label(c) == seasons);
            let has_business = d.children(n).any(|c| d.label(c) == business);
            assert!(
                !(has_seasons && has_business),
                "a record cannot be both a feature film and a TV series"
            );
        }
    }

    #[test]
    fn big_label_inventory() {
        let d = generate(GenConfig {
            seed: 3,
            target_elements: 40_000,
        });
        assert!(
            d.labels().len() >= 80,
            "imdb stand-in needs a large label pool, got {}",
            d.labels().len()
        );
    }
}
