//! # tl-datagen — seeded synthetic XML corpora
//!
//! The paper evaluates on four corpora: NASA (astronomy records), IMDB
//! (movies), PSD (protein sequences), and XMark (auction site). The real
//! files are not redistributable with this repository, so this crate
//! generates structural stand-ins calibrated to the published
//! characteristics that drive estimation quality:
//!
//! * label-set sizes near the paper's Table 2 level-1 counts
//!   (NASA ≈ 61, IMDB ≈ 88, PSD ≈ 64, XMark ≈ 27);
//! * per-level pattern-count growth shape (IMDB explodes combinatorially,
//!   XMark stays small);
//! * the structural property each dataset is used to demonstrate —
//!   the IMDB stand-in has strongly *correlated* optional children (so the
//!   conditional-independence assumption fails, §5.2), while the XMark
//!   stand-in has high-variance fan-out (so average-based synopses
//!   overestimate, §5.3).
//!
//! All generators are deterministic given a seed. See `DESIGN.md` §6 for
//! the substitution rationale.

pub mod common;
pub mod fig11;
pub mod imdb;
pub mod nasa;
pub mod psd;
pub mod random;
pub mod xmark;

use tl_xml::Document;

pub use common::GenConfig;
pub use fig11::figure11_document;
pub use random::{random_document, RandomTreeConfig};

/// The four benchmark datasets of the paper's evaluation (§5.1, Table 1).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Dataset {
    /// Astronomy records; regular structure, conditional independence holds.
    Nasa,
    /// Movie records; correlated optional substructure.
    Imdb,
    /// Protein sequence records; regular and shallow.
    Psd,
    /// Auction site; small label set, highly skewed fan-out.
    Xmark,
}

impl Dataset {
    /// All four datasets, in the paper's reporting order.
    pub const ALL: [Dataset; 4] = [Dataset::Nasa, Dataset::Imdb, Dataset::Psd, Dataset::Xmark];

    /// Lower-case name used in output tables and file names.
    pub fn name(self) -> &'static str {
        match self {
            Dataset::Nasa => "nasa",
            Dataset::Imdb => "imdb",
            Dataset::Psd => "psd",
            Dataset::Xmark => "xmark",
        }
    }

    /// Generates the stand-in corpus for this dataset.
    pub fn generate(self, config: GenConfig) -> Document {
        match self {
            Dataset::Nasa => nasa::generate(config),
            Dataset::Imdb => imdb::generate(config),
            Dataset::Psd => psd::generate(config),
            Dataset::Xmark => xmark::generate(config),
        }
    }

    /// [`generate`](Dataset::generate), reporting generation time and output
    /// size to `rec` (`datagen.generate` span, `datagen.elements` counter).
    pub fn generate_observed(self, config: GenConfig, rec: &dyn tl_obs::Recorder) -> Document {
        let _span = tl_obs::SpanGuard::start(rec, tl_obs::names::SPAN_DATAGEN);
        let doc = self.generate(config);
        rec.add(tl_obs::names::DATAGEN_ELEMENTS, doc.len() as u64);
        doc
    }

    /// [`generate_valued`](Dataset::generate_valued) with the same reporting
    /// as [`generate_observed`](Dataset::generate_observed).
    pub fn generate_valued_observed(
        self,
        config: GenConfig,
        mode: tl_xml::ValueMode,
        rec: &dyn tl_obs::Recorder,
    ) -> Document {
        let _span = tl_obs::SpanGuard::start(rec, tl_obs::names::SPAN_DATAGEN);
        let doc = self.generate_valued(config, mode);
        rec.add(tl_obs::names::DATAGEN_ELEMENTS, doc.len() as u64);
        doc
    }

    /// Generates the corpus with element values materialized under `mode`
    /// (currently XMark carries values: category names and price points;
    /// other datasets generate their plain structure).
    pub fn generate_valued(self, config: GenConfig, mode: tl_xml::ValueMode) -> Document {
        match self {
            Dataset::Xmark => xmark::generate_valued(config, mode),
            other => other.generate(config),
        }
    }
}

impl std::str::FromStr for Dataset {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "nasa" => Ok(Dataset::Nasa),
            "imdb" => Ok(Dataset::Imdb),
            "psd" => Ok(Dataset::Psd),
            "xmark" => Ok(Dataset::Xmark),
            other => Err(format!(
                "unknown dataset `{other}` (expected nasa|imdb|psd|xmark)"
            )),
        }
    }
}

impl std::fmt::Display for Dataset {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use tl_xml::DocStats;

    use super::*;

    #[test]
    fn all_datasets_generate_deterministically() {
        for ds in Dataset::ALL {
            let cfg = GenConfig {
                seed: 7,
                target_elements: 2000,
            };
            let d1 = ds.generate(cfg);
            let d2 = ds.generate(cfg);
            assert_eq!(d1.len(), d2.len(), "{ds}: deterministic size");
            for (a, b) in d1.pre_order().zip(d2.pre_order()) {
                assert_eq!(
                    d1.label_name(d1.label(a)),
                    d2.label_name(d2.label(b)),
                    "{ds}: deterministic labels"
                );
            }
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = Dataset::Xmark.generate(GenConfig {
            seed: 1,
            target_elements: 3000,
        });
        let b = Dataset::Xmark.generate(GenConfig {
            seed: 2,
            target_elements: 3000,
        });
        // Sizes are near the target but the exact structure differs.
        let same = a.len() == b.len()
            && a.pre_order()
                .zip(b.pre_order())
                .all(|(x, y)| a.label_name(a.label(x)) == b.label_name(b.label(y)));
        assert!(
            !same,
            "different seeds should not be structurally identical"
        );
    }

    #[test]
    fn sizes_land_near_target() {
        for ds in Dataset::ALL {
            let doc = ds.generate(GenConfig {
                seed: 3,
                target_elements: 10_000,
            });
            let n = doc.len();
            assert!(
                (8_000..=13_000).contains(&n),
                "{ds}: generated {n} elements for a 10k target"
            );
        }
    }

    #[test]
    fn label_inventories_match_paper_scale() {
        // Table 2 level-1 counts: Nasa 61, IMDB 88, PSD 64, XMark 27.
        let expected = [
            (Dataset::Nasa, 55, 67),
            (Dataset::Imdb, 80, 96),
            (Dataset::Psd, 58, 70),
            (Dataset::Xmark, 24, 30),
        ];
        for (ds, lo, hi) in expected {
            let doc = ds.generate(GenConfig {
                seed: 11,
                target_elements: 30_000,
            });
            let n = doc.labels().len();
            assert!(
                n >= lo && n <= hi,
                "{ds}: {n} distinct labels, expected in [{lo}, {hi}]"
            );
        }
    }

    #[test]
    fn xmark_has_high_fanout_variance() {
        let xmark = Dataset::Xmark.generate(GenConfig {
            seed: 5,
            target_elements: 20_000,
        });
        let psd = Dataset::Psd.generate(GenConfig {
            seed: 5,
            target_elements: 20_000,
        });
        let sx = DocStats::compute(&xmark);
        let sp = DocStats::compute(&psd);
        assert!(
            sx.fanout_variance > sp.fanout_variance,
            "xmark variance {} should exceed psd variance {}",
            sx.fanout_variance,
            sp.fanout_variance
        );
    }
}
