//! NASA stand-in: astronomy dataset records (the ADC XML conversion).
//!
//! Calibration targets: ~61 distinct labels and a *regular* record
//! structure — nearly every `dataset` record carries the same skeleton with
//! mild variation. Regularity makes the conditional-independence assumption
//! hold well, which is why the paper's Figure 10(a) shows dramatic
//! 0-derivable pruning savings on NASA.

use tl_xml::Document;

use crate::common::{Gen, GenConfig};

/// Generates the astronomy corpus.
pub fn generate(config: GenConfig) -> Document {
    let mut g = Gen::new(config);
    g.begin("datasets");
    while g.budget_left() {
        dataset(&mut g);
    }
    g.end();
    g.finish()
}

fn dataset(g: &mut Gen) {
    g.begin("dataset");
    g.leaf("title");
    if g.chance(0.4) {
        g.leaves_range("altname", 1, 2);
    }
    reference_block(g);
    keywords(g);
    descriptions(g);
    g.leaf("identifier");
    if g.chance(0.3) {
        dictionary(g);
    }
    if g.chance(0.5) {
        astro_objects(g);
    }
    if g.chance(0.4) {
        instrument(g);
    }
    if g.chance(0.4) {
        coverage(g);
    }
    if g.chance(0.3) {
        resource(g);
    }
    if g.chance(0.3) {
        contact(g);
    }
    table_head(g);
    table_data(g);
    history(g);
    g.end();
}

fn astro_objects(g: &mut Gen) {
    g.begin("astroObjects");
    let objs = g.range(1, 3);
    for _ in 0..objs {
        g.begin("astroObject");
        g.leaf("name");
        g.begin("position");
        g.leaf("ra");
        g.leaf("dec");
        g.end();
        g.end();
    }
    g.end();
}

fn instrument(g: &mut Gen) {
    g.begin("instrument");
    g.leaf("telescope");
    g.leaf("detector");
    if g.chance(0.6) {
        g.leaf("bandpass");
    }
    g.end();
}

fn coverage(g: &mut Gen) {
    g.begin("coverage");
    if g.chance(0.8) {
        g.leaf("spatial");
    }
    g.begin("temporal");
    g.leaf("startTime");
    g.leaf("stopTime");
    g.end();
    if g.chance(0.5) {
        g.leaf("spectral");
    }
    g.end();
}

fn resource(g: &mut Gen) {
    g.begin("resource");
    g.leaf("relatedTo");
    g.leaf("size");
    g.leaf("format");
    g.end();
}

fn contact(g: &mut Gen) {
    g.begin("contact");
    g.leaf("institution");
    g.leaf("email");
    if g.chance(0.5) {
        g.leaf("address");
    }
    g.end();
}

fn reference_block(g: &mut Gen) {
    let refs = g.range(1, 3);
    for _ in 0..refs {
        g.begin("reference");
        g.begin("source");
        g.begin("other");
        author(g);
        if g.chance(0.8) {
            g.begin("journal");
            g.leaf("name");
            g.leaf("volume");
            g.leaf("page");
            g.end();
        }
        g.end(); // other
        g.begin("date");
        g.leaf("year");
        g.leaf("month");
        if g.chance(0.5) {
            g.leaf("day");
        }
        g.end();
        g.end(); // source
        g.end(); // reference
    }
}

fn author(g: &mut Gen) {
    let n = g.range(1, 4);
    for _ in 0..n {
        g.begin("author");
        if g.chance(0.9) {
            g.leaf("initial");
        }
        g.leaf("lastname");
        g.end();
    }
}

fn keywords(g: &mut Gen) {
    g.begin("keywords");
    g.leaves_range("keyword", 1, 5);
    g.end();
}

fn descriptions(g: &mut Gen) {
    g.begin("descriptions");
    g.begin("description");
    g.leaves_range("para", 1, 3);
    g.end();
    if g.chance(0.5) {
        g.begin("details");
        g.leaves_range("para", 1, 2);
        g.end();
    }
    g.end();
}

fn dictionary(g: &mut Gen) {
    g.begin("dictionary");
    let terms = g.range(1, 4);
    for _ in 0..terms {
        g.begin("term");
        g.leaf("name");
        g.leaf("definition");
        g.end();
    }
    g.end();
}

fn table_head(g: &mut Gen) {
    g.begin("tableHead");
    let fields = g.range(3, 8);
    for _ in 0..fields {
        g.begin("field");
        g.leaf("name");
        if g.chance(0.7) {
            g.leaf("units");
        }
        if g.chance(0.6) {
            g.leaf("definition");
        }
        g.end();
    }
    if g.chance(0.4) {
        g.begin("tableLinks");
        g.leaves_range("tableLink", 1, 2);
        g.end();
    }
    g.end();
}

fn table_data(g: &mut Gen) {
    g.begin("tableData");
    let rows = g.range(2, 10);
    let entries = g.range(3, 8);
    for _ in 0..rows {
        g.begin("row");
        g.leaves("entry", entries);
        g.end();
    }
    if g.chance(0.2) {
        g.leaf("footnote");
    }
    g.end();
}

fn history(g: &mut Gen) {
    g.begin("history");
    g.begin("ingest");
    g.begin("creator");
    g.leaf("initial");
    g.leaf("lastname");
    g.end();
    g.begin("date");
    g.leaf("year");
    g.leaf("month");
    g.end();
    g.end(); // ingest
    let revisions = g.geometric(0.3, 2);
    for _ in 0..revisions {
        g.begin("revision");
        g.leaf("year");
        g.leaf("comment");
        g.end();
    }
    g.end();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn structure_is_regular() {
        let d = generate(GenConfig {
            seed: 1,
            target_elements: 20_000,
        });
        let dataset = d.labels().get("dataset").unwrap();
        let title = d.labels().get("title").unwrap();
        // Every dataset record has exactly one title child.
        for n in d.pre_order().filter(|&n| d.label(n) == dataset) {
            let titles = d.children(n).filter(|&c| d.label(c) == title).count();
            assert_eq!(titles, 1);
        }
    }

    #[test]
    fn records_have_tables() {
        let d = generate(GenConfig {
            seed: 2,
            target_elements: 10_000,
        });
        assert!(d.labels().get("tableData").is_some());
        assert!(d.labels().get("row").is_some());
        assert!(d.labels().get("entry").is_some());
    }

    #[test]
    fn depth_is_moderate() {
        let d = generate(GenConfig {
            seed: 3,
            target_elements: 10_000,
        });
        let stats = tl_xml::DocStats::compute(&d);
        assert!(
            stats.max_depth >= 4 && stats.max_depth <= 8,
            "{}",
            stats.max_depth
        );
    }
}
