//! PSD stand-in: the Protein Sequence Database.
//!
//! Calibration targets: ~64 distinct labels, shallow and regular records.
//! Like NASA, the structure is regular enough for conditional independence
//! to hold broadly, but references and features introduce moderate
//! per-record variation so higher lattice levels still grow (Table 2: 64 /
//! 78 / 289 / 1313 / 6870).

use tl_xml::Document;

use crate::common::{Gen, GenConfig};

/// Generates the protein-database corpus.
pub fn generate(config: GenConfig) -> Document {
    let mut g = Gen::new(config);
    g.begin("ProteinDatabase");
    while g.budget_left() {
        protein_entry(&mut g);
    }
    g.end();
    g.finish()
}

fn protein_entry(g: &mut Gen) {
    g.begin("ProteinEntry");
    header(g);
    protein(g);
    organism(g);
    if g.chance(0.6) {
        genetics(g);
    }
    references(g);
    if g.chance(0.5) {
        classification(g);
    }
    if g.chance(0.35) {
        function(g);
    }
    if g.chance(0.25) {
        complex(g);
    }
    if g.chance(0.3) {
        secondary_structure(g);
    }
    features(g);
    summary(g);
    g.leaf("sequence");
    g.end();
}

fn header(g: &mut Gen) {
    g.begin("header");
    g.leaf("uid");
    g.leaves_range("accession", 1, 3);
    g.leaf("created_date");
    if g.chance(0.8) {
        g.leaf("seq-rev");
    }
    g.end();
}

fn protein(g: &mut Gen) {
    g.begin("protein");
    g.leaf("name");
    if g.chance(0.4) {
        g.begin("alt-name");
        g.leaf("name");
        g.end();
    }
    if g.chance(0.3) {
        g.leaf("contains");
    }
    g.end();
}

fn organism(g: &mut Gen) {
    g.begin("organism");
    g.leaf("source");
    if g.chance(0.7) {
        g.leaf("common");
    }
    g.leaf("formal");
    if g.chance(0.2) {
        g.leaf("variety");
    }
    g.end();
}

fn genetics(g: &mut Gen) {
    g.begin("genetics");
    let genes = g.range(1, 2);
    for _ in 0..genes {
        g.begin("gene");
        g.leaf("name");
        g.end();
    }
    if g.chance(0.4) {
        g.leaf("gene-map");
    }
    if g.chance(0.3) {
        g.leaf("genome");
    }
    if g.chance(0.3) {
        g.begin("codon-usage");
        g.leaf("cai");
        g.end();
    }
    g.end();
}

fn references(g: &mut Gen) {
    let refs = g.range(1, 4);
    for _ in 0..refs {
        g.begin("reference");
        g.begin("refinfo");
        g.begin("authors");
        let authors = g.range(1, 6);
        for _ in 0..authors {
            g.leaf("author");
        }
        g.end();
        g.leaf("citation");
        g.leaf("title");
        g.leaf("year");
        if g.chance(0.7) {
            g.leaf("volume");
        }
        if g.chance(0.7) {
            g.leaf("pages");
        }
        if g.chance(0.3) {
            g.begin("xrefs");
            g.begin("xref");
            g.leaf("db");
            g.leaf("uid");
            g.end();
            g.end();
        }
        g.end(); // refinfo
        g.begin("accinfo");
        g.leaf("accession");
        if g.chance(0.5) {
            g.leaf("mol-type");
        }
        if g.chance(0.4) {
            g.leaf("seq-spec");
        }
        g.end();
        g.end(); // reference
    }
}

fn classification(g: &mut Gen) {
    g.begin("classification");
    g.leaves_range("superfamily", 1, 2);
    if g.chance(0.5) {
        g.leaves_range("keyword", 1, 4);
    }
    g.end();
}

fn features(g: &mut Gen) {
    let n = g.geometric(0.55, 5);
    for _ in 0..n {
        g.begin("feature");
        g.leaf("seq-spec");
        g.begin("feature-type");
        match g.range(0, 3) {
            0 => g.leaf("active-site"),
            1 => g.leaf("binding-site"),
            2 => g.leaf("modified-site"),
            _ => g.leaf("disulfide-bond"),
        }
        g.end();
        if g.chance(0.6) {
            g.leaf("description");
        }
        if g.chance(0.3) {
            g.leaf("status");
        }
        g.end();
    }
}

fn function(g: &mut Gen) {
    g.begin("function");
    g.leaf("description");
    if g.chance(0.5) {
        g.leaf("pathway");
    }
    if g.chance(0.5) {
        g.leaf("activity");
    }
    g.end();
}

fn complex(g: &mut Gen) {
    g.begin("complex");
    g.leaves_range("subunit", 1, 3);
    g.end();
}

fn secondary_structure(g: &mut Gen) {
    g.begin("secondary-structure");
    if g.chance(0.7) {
        g.leaves_range("helix", 1, 3);
    }
    if g.chance(0.6) {
        g.leaves_range("strand", 1, 3);
    }
    if g.chance(0.4) {
        g.leaves_range("turn", 1, 2);
    }
    g.end();
}

fn summary(g: &mut Gen) {
    g.begin("summary");
    g.leaf("length");
    g.leaf("type");
    g.end();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn entries_are_complete() {
        let d = generate(GenConfig {
            seed: 1,
            target_elements: 15_000,
        });
        let entry = d.labels().get("ProteinEntry").unwrap();
        let seq = d.labels().get("sequence").unwrap();
        for n in d.pre_order().filter(|&n| d.label(n) == entry) {
            assert!(
                d.children(n).any(|c| d.label(c) == seq),
                "every entry carries a sequence"
            );
        }
    }

    #[test]
    fn depth_is_shallow() {
        let d = generate(GenConfig {
            seed: 2,
            target_elements: 10_000,
        });
        let s = tl_xml::DocStats::compute(&d);
        assert!(s.max_depth <= 6, "max depth {}", s.max_depth);
    }

    #[test]
    fn fanout_is_low_variance_relative_to_mean() {
        let d = generate(GenConfig {
            seed: 3,
            target_elements: 20_000,
        });
        let s = tl_xml::DocStats::compute(&d);
        assert!(
            s.fanout_variance < 25.0,
            "psd should be regular; variance {}",
            s.fanout_variance
        );
    }
}
