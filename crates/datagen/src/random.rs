//! Unstructured random trees for differential and metamorphic testing.
//!
//! Unlike the four dataset stand-ins, these documents have *no* schema:
//! labels attach uniformly at random, fan-out is bounded only by
//! `max_children`, and shape varies wildly with the seed. That is exactly
//! what an oracle-vs-kernel differential suite wants — documents the
//! kernels were never tuned for.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tl_xml::{Document, DocumentBuilder};

/// Configuration for [`random_document`].
#[derive(Clone, Copy, Debug)]
pub struct RandomTreeConfig {
    /// RNG seed; equal configs produce identical documents.
    pub seed: u64,
    /// Exact number of element nodes.
    pub nodes: usize,
    /// Size of the label alphabet (`l0`, `l1`, …). Small alphabets force
    /// label collisions — the injective-counting edge cases.
    pub labels: usize,
    /// Fan-out cap per node. Keeps sibling groups within the dense
    /// kernel's `MAX_SIBLING_GROUP` when set ≤ 20.
    pub max_children: usize,
}

impl Default for RandomTreeConfig {
    fn default() -> Self {
        Self {
            seed: 42,
            nodes: 200,
            labels: 6,
            max_children: 8,
        }
    }
}

/// Generates a uniformly random tree with exactly `cfg.nodes` nodes.
///
/// Each node after the root attaches to a random earlier node that still
/// has child capacity, with a bias toward recently created nodes so the
/// trees grow real depth instead of degenerating to stars.
///
/// # Panics
///
/// Panics if `cfg.nodes == 0`, `cfg.labels == 0`, or `cfg.max_children == 0`.
pub fn random_document(cfg: &RandomTreeConfig) -> Document {
    assert!(cfg.nodes > 0, "need at least a root node");
    assert!(cfg.labels > 0, "need a non-empty label alphabet");
    assert!(cfg.max_children > 0, "nodes must be attachable");
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0x7261_6e64_7472_6565);

    // Parent choice: sample from a window over the most recent open nodes
    // (nodes with spare child capacity). Window size trades depth for
    // breadth; sampling the full open list yields shallow recursive trees.
    let mut parents: Vec<usize> = vec![0; cfg.nodes];
    let mut child_count: Vec<usize> = vec![0; cfg.nodes];
    let mut open: Vec<usize> = vec![0];
    for (i, parent) in parents.iter_mut().enumerate().skip(1) {
        let window = open.len().min(4);
        let slot = open.len() - 1 - rng.gen_range(0..window);
        let p = open[slot];
        *parent = p;
        child_count[p] += 1;
        if child_count[p] >= cfg.max_children {
            open.remove(slot);
        }
        open.push(i);
    }

    // Children adjacency, then a pre-order emit into the builder.
    let mut children: Vec<Vec<usize>> = vec![Vec::new(); cfg.nodes];
    for i in 1..cfg.nodes {
        children[parents[i]].push(i);
    }
    let mut builder = DocumentBuilder::with_capacity(cfg.nodes);
    let mut labels: Vec<String> = Vec::with_capacity(cfg.labels);
    for l in 0..cfg.labels {
        labels.push(format!("l{l}"));
    }
    // Explicit stack: (node, entered?) so begin/end pair up without
    // recursion (trees can be `nodes` deep).
    let mut stack: Vec<(usize, bool)> = vec![(0, false)];
    while let Some((node, entered)) = stack.pop() {
        if entered {
            builder.end();
            continue;
        }
        builder.begin(&labels[rng.gen_range(0..cfg.labels)]);
        stack.push((node, true));
        for &c in children[node].iter().rev() {
            stack.push((c, false));
        }
    }
    builder
        .finish()
        .expect("generated event stream is a single well-formed tree")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_node_count_and_determinism() {
        let cfg = RandomTreeConfig {
            seed: 9,
            nodes: 137,
            ..RandomTreeConfig::default()
        };
        let a = random_document(&cfg);
        let b = random_document(&cfg);
        assert_eq!(a.len(), 137);
        assert_eq!(a.len(), b.len());
        for n in 0..a.len() as u32 {
            let n = tl_xml::NodeId(n);
            assert_eq!(a.label(n), b.label(n));
            assert_eq!(a.parent(n), b.parent(n));
        }
    }

    #[test]
    fn fanout_respects_cap_and_seeds_differ() {
        let cfg = RandomTreeConfig {
            seed: 1,
            nodes: 300,
            labels: 4,
            max_children: 5,
        };
        let doc = random_document(&cfg);
        for n in 0..doc.len() as u32 {
            assert!(doc.child_count(tl_xml::NodeId(n)) <= 5);
        }
        let other = random_document(&RandomTreeConfig { seed: 2, ..cfg });
        let differs = (0..doc.len() as u32)
            .any(|n| doc.label(tl_xml::NodeId(n)) != other.label(tl_xml::NodeId(n)));
        assert!(differs, "different seeds should differ somewhere");
    }

    #[test]
    fn single_node_tree() {
        let doc = random_document(&RandomTreeConfig {
            nodes: 1,
            ..RandomTreeConfig::default()
        });
        assert_eq!(doc.len(), 1);
    }
}
