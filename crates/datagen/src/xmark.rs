//! XMark stand-in: an on-line auction site.
//!
//! Calibration targets: ~27 distinct labels (Table 2 level-1 = 27), a small
//! level-2 inventory, and — the property §5.3 turns on — *highly skewed
//! fan-out*: the number of items per region, mails per mailbox, and bidders
//! per auction all follow heavy-tailed draws, plus a recursive
//! `description/parlist/listitem` markup structure. Average-fanout synopses
//! (the TreeSketches-style baseline) grossly overestimate branching twigs on
//! this data, reproducing the paper's Figure 7(d) blow-up.

use tl_xml::{Document, ValueMode};

use crate::common::{Gen, GenConfig};

const REGIONS: [&str; 6] = [
    "africa",
    "asia",
    "australia",
    "europe",
    "namerica",
    "samerica",
];

/// Generates the auction-site corpus.
pub fn generate(config: GenConfig) -> Document {
    generate_valued(config, ValueMode::Ignore)
}

/// Generates the auction-site corpus with element values (category names,
/// price points) materialized under `mode` — the substrate for the
/// value-predicate experiments.
pub fn generate_valued(config: GenConfig, mode: ValueMode) -> Document {
    let mut g = Gen::with_values(config, mode);
    g.begin("site");

    // Interleave region items and auctions until the budget is exhausted;
    // both sections stay open so records can keep arriving.
    g.begin("regions");
    // Region skew: namerica/europe carry most items.
    let region_weights = [0.04, 0.10, 0.03, 0.28, 0.45, 0.10];
    let mut open_region: Option<usize> = None;
    let mut region_opened = [false; 6];
    // First pass: emit items grouped per region, one region at a time, with
    // heavy-tailed items-per-region batches.
    let item_budget = (config.target_elements as f64 * 0.55) as usize;
    while g.budget_left() && g.emitted() < item_budget {
        let r = g.weighted(&region_weights);
        match open_region {
            Some(cur) if cur == r => {}
            Some(_) => {
                g.end();
                open_region = Some(r);
                if region_opened[r] {
                    // Regions are single sections in real XMark; emitting a
                    // fresh element with the same label keeps label counts
                    // right and fan-out skewed.
                }
                region_opened[r] = true;
                g.begin(REGIONS[r]);
            }
            None => {
                open_region = Some(r);
                region_opened[r] = true;
                g.begin(REGIONS[r]);
            }
        }
        let burst = g.skewed(1, 14).max(1);
        for _ in 0..burst {
            item(&mut g);
        }
    }
    if open_region.is_some() {
        g.end();
    }
    g.end(); // regions

    g.begin("open_auctions");
    while g.budget_left() {
        open_auction(&mut g);
    }
    g.end(); // open_auctions

    g.end(); // site
    g.finish()
}

fn item(g: &mut Gen) {
    g.begin("item");
    g.leaf("name");
    let categories = g.skewed(1, 8).max(1);
    for _ in 0..categories {
        // Zipf-ish category popularity: low ids dominate.
        let cat = g.skewed(0, 19);
        g.leaf_with_value("incategory", &format!("category{cat}"));
    }
    // Mailbox size is the canonical XMark skew: most items have no mail,
    // a few have dozens.
    let mails = if g.chance(0.35) { g.skewed(1, 24) } else { 0 };
    g.begin("mailbox");
    for _ in 0..mails {
        g.begin("mail");
        g.leaf("from");
        g.leaf("to");
        g.end();
    }
    g.end();
    if g.chance(0.7) {
        description(g, 0);
    }
    g.end();
}

fn description(g: &mut Gen, depth: usize) {
    g.begin("description");
    parlist(g, depth);
    g.end();
}

fn parlist(g: &mut Gen, depth: usize) {
    g.begin("parlist");
    let items = g.skewed(1, 6).max(1);
    for _ in 0..items {
        g.begin("listitem");
        // Recursive markup, bounded: listitem may nest another parlist.
        if depth < 2 && g.chance(0.25) {
            parlist(g, depth + 1);
        }
        g.end();
    }
    g.end();
}

fn open_auction(g: &mut Gen) {
    g.begin("open_auction");
    g.leaf("itemref");
    g.leaf("seller");
    let start = g.skewed(1, 40) * 25;
    g.leaf_with_value("initial", &start.to_string());
    if g.chance(0.8) {
        let bid = start + g.range(0, 500);
        g.leaf_with_value("current", &bid.to_string());
    }
    let bidders = g.skewed(0, 18);
    for _ in 0..bidders {
        g.begin("bidder");
        g.leaf("increase");
        g.end();
    }
    if g.chance(0.5) {
        g.begin("annotation");
        description(g, 1);
        g.end();
    }
    g.end();
}

#[cfg(test)]
mod tests {
    use tl_xml::DocStats;

    use super::*;

    #[test]
    fn label_inventory_is_compact() {
        let d = generate(GenConfig {
            seed: 1,
            target_elements: 20_000,
        });
        // site, regions, 6 regions, item, name, incategory, mailbox, mail,
        // from, to, description, parlist, listitem, open_auctions,
        // open_auction, itemref, seller, initial, current, bidder,
        // increase, annotation = 27.
        assert!(d.labels().len() <= 27, "labels = {}", d.labels().len());
        assert!(d.labels().len() >= 24);
    }

    #[test]
    fn mailbox_fanout_is_heavy_tailed() {
        let d = generate(GenConfig {
            seed: 2,
            target_elements: 30_000,
        });
        let mailbox = d.labels().get("mailbox").unwrap();
        let counts: Vec<usize> = d
            .pre_order()
            .filter(|&n| d.label(n) == mailbox)
            .map(|n| d.child_count(n))
            .collect();
        let empty = counts.iter().filter(|&&c| c == 0).count();
        let big = counts.iter().filter(|&&c| c >= 10).count();
        assert!(empty * 2 > counts.len(), "most mailboxes are empty");
        assert!(big > 0, "some mailboxes are very large");
    }

    #[test]
    fn recursion_bounded() {
        let d = generate(GenConfig {
            seed: 3,
            target_elements: 20_000,
        });
        let s = DocStats::compute(&d);
        assert!(s.max_depth <= 16, "max depth {}", s.max_depth);
    }

    #[test]
    fn valued_generation_adds_value_leaves() {
        let cfg = GenConfig {
            seed: 6,
            target_elements: 8_000,
        };
        let plain = generate(cfg);
        let valued = generate_valued(cfg, ValueMode::AsLabels);
        assert!(valued.labels().len() > plain.labels().len());
        assert!(
            valued.labels().get("=category0").is_some(),
            "popular category value should occur"
        );
        // Value leaves hang under incategory elements only.
        let cat_value = valued.labels().get("=category0").unwrap();
        for n in valued.pre_order().filter(|&n| valued.label(n) == cat_value) {
            let p = valued.parent(n).unwrap();
            assert_eq!(valued.label_name(valued.label(p)), "incategory");
        }
    }

    #[test]
    fn auctions_present() {
        let d = generate(GenConfig {
            seed: 4,
            target_elements: 20_000,
        });
        assert!(d.labels().get("open_auction").is_some());
        assert!(d.labels().get("bidder").is_some());
    }
}
