//! Deterministic, seeded fail-point harness.
//!
//! A fail-point is a named site in production code that asks
//! [`fire`]`("site.name")` whether it should inject a fault this time.
//! When no plan is active the call is a single relaxed atomic load; with
//! the `failpoints` cargo feature disabled the whole module compiles to
//! no-ops and the sites vanish from the binary.
//!
//! Activation is either programmatic ([`activate`] / the test-friendly
//! [`with_active`]) or environmental (`TL_CHAOS` holds the spec,
//! `TL_CHAOS_SEED` the seed) — the CLI maps its `--chaos`/`--chaos-seed`
//! flags onto the same entry points.
//!
//! # Spec grammar
//!
//! A plan is `site=rule` pairs separated by `;`:
//!
//! | rule     | behaviour                                              |
//! |----------|--------------------------------------------------------|
//! | `always` | fire on every hit                                      |
//! | `never`  | never fire (site still counts hits)                    |
//! | `nth:N`  | fire exactly on the N-th hit (1-based)                 |
//! | `1inN`   | fire pseudo-randomly ~1/N of hits, seeded and          |
//! |          | deterministic in (seed, site, hit index)               |
//!
//! Example: `xml.parse=nth:2;engine.worker=1in4`.

/// Canonical fail-point site names. Keeping them in one place means the
/// chaos suite can enumerate every site the pipeline defines.
pub mod sites {
    /// Inside `tl_xml::parse_document`: injects a parse error.
    pub const XML_PARSE: &str = "xml.parse";
    /// Inside `TreeLattice::from_bytes`, before checksum verification:
    /// flips a payload byte so the frame check must catch it.
    pub const SUMMARY_CORRUPT: &str = "summary.corrupt";
    /// Inside `Budget::check_deadline`: simulates deadline expiry.
    pub const BUDGET_DEADLINE: &str = "budget.deadline";
    /// Inside `Budget::check_mem`: simulates an allocation-cap hit.
    pub const BUDGET_MEM: &str = "budget.mem";
    /// Inside each resilient batch worker: panics, exercising the
    /// engine's `catch_unwind` containment.
    pub const ENGINE_WORKER: &str = "engine.worker";
    /// Between mining levels: simulates deadline expiry, forcing an
    /// early stop at a lower order.
    pub const MINER_DEADLINE: &str = "miner.deadline";
    /// Inside `WalWriter::append`: the record frame is torn mid-body (a
    /// partial prefix reaches the file) and the append fails.
    pub const WAL_APPEND_TORN: &str = "wal.append.torn";
    /// Inside `WalWriter::append`: the frame lands short of its trailing
    /// checksum bytes and the append fails.
    pub const WAL_APPEND_SHORT: &str = "wal.append.short";
    /// Inside `WalWriter`: fsync reports an I/O error after the record
    /// bytes were written; the writer must undo the record before
    /// surfacing the fault so the file never holds an unacknowledged
    /// complete record.
    pub const WAL_FSYNC: &str = "wal.fsync";
    /// Inside the snapshot protocol: crash after the temp file is
    /// durable but before the rename publishes it.
    pub const SNAPSHOT_BEFORE_RENAME: &str = "snapshot.before_rename";
    /// Inside the snapshot protocol: crash after the rename publishes
    /// the snapshot but before the WAL is truncated.
    pub const SNAPSHOT_AFTER_RENAME: &str = "snapshot.after_rename";

    /// Every site the pipeline defines, for exhaustive chaos sweeps.
    pub const ALL: &[&str] = &[
        XML_PARSE,
        SUMMARY_CORRUPT,
        BUDGET_DEADLINE,
        BUDGET_MEM,
        ENGINE_WORKER,
        MINER_DEADLINE,
        WAL_APPEND_TORN,
        WAL_APPEND_SHORT,
        WAL_FSYNC,
        SNAPSHOT_BEFORE_RENAME,
        SNAPSHOT_AFTER_RENAME,
    ];
}

#[cfg(feature = "failpoints")]
mod imp {
    use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
    use std::sync::{Mutex, MutexGuard, OnceLock, PoisonError};

    /// Fast-path gate: `fire` bails on one relaxed load unless a plan is
    /// active, so disabled fail-points cost nothing measurable.
    static ACTIVE: AtomicBool = AtomicBool::new(false);
    static INJECTED: AtomicU64 = AtomicU64::new(0);

    fn plan_slot() -> &'static Mutex<Option<Plan>> {
        static PLAN: OnceLock<Mutex<Option<Plan>>> = OnceLock::new();
        PLAN.get_or_init(|| Mutex::new(None))
    }

    /// Serializes tests that activate global plans; held by `with_active`
    /// so concurrent test threads cannot see each other's injections.
    fn test_mutex() -> &'static Mutex<()> {
        static M: OnceLock<Mutex<()>> = OnceLock::new();
        M.get_or_init(|| Mutex::new(()))
    }

    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    enum Rule {
        Always,
        Never,
        Nth(u64),
        OneIn(u64),
    }

    #[derive(Debug)]
    struct Site {
        name: String,
        rule: Rule,
        hits: u64,
    }

    #[derive(Debug)]
    struct Plan {
        seed: u64,
        sites: Vec<Site>,
    }

    fn parse_rule(s: &str) -> Result<Rule, String> {
        if s == "always" {
            return Ok(Rule::Always);
        }
        if s == "never" {
            return Ok(Rule::Never);
        }
        if let Some(n) = s.strip_prefix("nth:") {
            let n: u64 = n
                .parse()
                .map_err(|_| format!("bad nth count in rule `{s}`"))?;
            if n == 0 {
                return Err("nth count must be >= 1".into());
            }
            return Ok(Rule::Nth(n));
        }
        if let Some(n) = s.strip_prefix("1in") {
            let n: u64 = n
                .parse()
                .map_err(|_| format!("bad denominator in rule `{s}`"))?;
            if n == 0 {
                return Err("1inN denominator must be >= 1".into());
            }
            return Ok(Rule::OneIn(n));
        }
        Err(format!(
            "unknown fail-point rule `{s}` (expected always, never, nth:N, or 1inN)"
        ))
    }

    fn parse_spec(spec: &str) -> Result<Vec<Site>, String> {
        let mut sites = Vec::new();
        for part in spec.split(';').filter(|p| !p.trim().is_empty()) {
            let (name, rule) = part
                .split_once('=')
                .ok_or_else(|| format!("fail-point entry `{part}` is missing `=rule`"))?;
            let name = name.trim();
            if name.is_empty() {
                return Err(format!("fail-point entry `{part}` has an empty site name"));
            }
            sites.push(Site {
                name: name.to_owned(),
                rule: parse_rule(rule.trim())?,
                hits: 0,
            });
        }
        if sites.is_empty() {
            return Err("empty fail-point spec".into());
        }
        Ok(sites)
    }

    /// splitmix64: the deterministic per-hit coin for `1inN` rules.
    fn splitmix64(mut x: u64) -> u64 {
        x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
        x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        x ^ (x >> 31)
    }

    fn site_hash(name: &str) -> u64 {
        // FNV-1a: stable across runs and platforms.
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for &b in name.as_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        h
    }

    /// Installs a fail-point plan. Replaces any active plan. Errors on a
    /// malformed spec (the caller maps this to a usage error).
    pub fn activate(spec: &str, seed: u64) -> Result<(), String> {
        let sites = parse_spec(spec)?;
        let mut guard = plan_slot().lock().unwrap_or_else(PoisonError::into_inner);
        *guard = Some(Plan { seed, sites });
        ACTIVE.store(true, Ordering::SeqCst);
        Ok(())
    }

    /// Removes the active plan; all sites go back to never firing.
    pub fn deactivate() {
        let mut guard = plan_slot().lock().unwrap_or_else(PoisonError::into_inner);
        ACTIVE.store(false, Ordering::SeqCst);
        *guard = None;
    }

    /// True when a plan is installed.
    pub fn is_active() -> bool {
        ACTIVE.load(Ordering::Relaxed)
    }

    /// Total faults injected since process start (monotonic).
    pub fn injected_total() -> u64 {
        INJECTED.load(Ordering::Relaxed)
    }

    /// Reads `TL_CHAOS` / `TL_CHAOS_SEED` and installs the plan they
    /// describe. Returns `Ok(false)` when `TL_CHAOS` is unset.
    pub fn activate_from_env() -> Result<bool, String> {
        let spec = match std::env::var("TL_CHAOS") {
            Ok(s) if !s.trim().is_empty() => s,
            _ => return Ok(false),
        };
        let seed = match std::env::var("TL_CHAOS_SEED") {
            Ok(s) => s
                .trim()
                .parse::<u64>()
                .map_err(|_| format!("TL_CHAOS_SEED `{s}` is not a u64"))?,
            Err(_) => 0,
        };
        activate(&spec, seed)?;
        Ok(true)
    }

    /// Should the fail-point at `site` inject a fault now?
    ///
    /// One relaxed atomic load when no plan is active.
    #[inline]
    pub fn fire(site: &str) -> bool {
        if !ACTIVE.load(Ordering::Relaxed) {
            return false;
        }
        fire_slow(site)
    }

    #[cold]
    fn fire_slow(site: &str) -> bool {
        let mut guard = plan_slot().lock().unwrap_or_else(PoisonError::into_inner);
        let Some(plan) = guard.as_mut() else {
            return false;
        };
        let seed = plan.seed;
        let Some(entry) = plan.sites.iter_mut().find(|s| s.name == site) else {
            return false;
        };
        entry.hits += 1;
        let fired = match entry.rule {
            Rule::Always => true,
            Rule::Never => false,
            Rule::Nth(n) => entry.hits == n,
            Rule::OneIn(n) => {
                let coin = splitmix64(seed ^ site_hash(site) ^ entry.hits);
                coin.is_multiple_of(n)
            }
        };
        if fired {
            INJECTED.fetch_add(1, Ordering::Relaxed);
        }
        fired
    }

    /// An exclusive hold on the global fail-point state, for code (like
    /// the CLI test harness) that needs to serialize chaos activity
    /// around a multi-step critical section.
    pub fn exclusive() -> MutexGuard<'static, ()> {
        test_mutex().lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Runs `f` with `spec` active under `seed`, deactivating afterwards
    /// even if `f` panics. Serialized process-wide so concurrent tests
    /// never observe each other's plans.
    pub fn with_active<T>(spec: &str, seed: u64, f: impl FnOnce() -> T) -> T {
        let _guard = exclusive();
        activate(spec, seed).expect("invalid fail-point spec in test");
        struct Deactivate;
        impl Drop for Deactivate {
            fn drop(&mut self) {
                deactivate();
            }
        }
        let _d = Deactivate;
        f()
    }
}

#[cfg(not(feature = "failpoints"))]
mod imp {
    //! Feature-off stubs: everything is inert and `fire` is a constant
    //! `false` the optimizer deletes.

    #[inline(always)]
    pub fn fire(_site: &str) -> bool {
        false
    }

    pub fn activate(_spec: &str, _seed: u64) -> Result<(), String> {
        Err("fail-points were compiled out (feature `failpoints` is disabled)".into())
    }

    pub fn deactivate() {}

    pub fn is_active() -> bool {
        false
    }

    pub fn injected_total() -> u64 {
        0
    }

    pub fn activate_from_env() -> Result<bool, String> {
        Ok(false)
    }

    pub fn with_active<T>(_spec: &str, _seed: u64, f: impl FnOnce() -> T) -> T {
        f()
    }
}

pub use imp::{
    activate, activate_from_env, deactivate, fire, injected_total, is_active, with_active,
};

#[cfg(feature = "failpoints")]
pub use imp::exclusive;

#[cfg(all(test, feature = "failpoints"))]
mod tests {
    use super::*;

    #[test]
    fn inactive_sites_never_fire() {
        let _guard = exclusive();
        deactivate();
        assert!(!fire(sites::XML_PARSE));
        assert!(!is_active());
    }

    #[test]
    fn always_and_never() {
        with_active("a=always;b=never", 0, || {
            for _ in 0..5 {
                assert!(fire("a"));
                assert!(!fire("b"));
            }
            // Unconfigured sites never fire even while a plan is active.
            assert!(!fire("c"));
        });
    }

    #[test]
    fn nth_fires_exactly_once() {
        with_active("s=nth:3", 0, || {
            let fired: Vec<bool> = (0..6).map(|_| fire("s")).collect();
            assert_eq!(fired, vec![false, false, true, false, false, false]);
        });
    }

    #[test]
    fn one_in_n_is_deterministic_per_seed() {
        let run = |seed| {
            with_active("s=1in3", seed, || {
                (0..64).map(|_| fire("s")).collect::<Vec<_>>()
            })
        };
        let a = run(7);
        let b = run(7);
        let c = run(8);
        assert_eq!(a, b, "same seed must reproduce the same firing pattern");
        assert_ne!(a, c, "different seeds should differ over 64 hits");
        let fired = a.iter().filter(|&&f| f).count();
        assert!(fired > 0, "1in3 over 64 hits should fire at least once");
    }

    #[test]
    fn injected_total_is_monotonic() {
        let before = injected_total();
        with_active("s=always", 0, || {
            fire("s");
            fire("s");
        });
        assert!(injected_total() >= before + 2);
    }

    #[test]
    fn bad_specs_are_rejected() {
        for spec in [
            "",
            "s",
            "s=",
            "s=sometimes",
            "s=nth:0",
            "s=1in0",
            "=always",
            "s=nth:x",
        ] {
            let _guard = exclusive();
            assert!(
                activate(spec, 0).is_err(),
                "spec `{spec}` should be rejected"
            );
            deactivate();
        }
    }

    #[test]
    fn with_active_deactivates_on_panic() {
        let result = std::panic::catch_unwind(|| {
            with_active("s=always", 0, || panic!("boom"));
        });
        assert!(result.is_err());
        assert!(
            !is_active(),
            "plan must be cleared after a panicking closure"
        );
    }
}
