//! Unified fault taxonomy, resource budgets, and deterministic fail-point
//! injection for the TreeLattice pipeline.
//!
//! Every crate boundary in the workspace funnels its failure modes into one
//! [`Fault`] type so callers (the CLI, the batched engine, tests) can react
//! to *kinds* of failure instead of string-matching per-crate error types.
//! [`Budget`] carries the resource limits an estimation or mining call must
//! respect; the estimator consults it and degrades (see `Degradation`)
//! instead of running away. [`failpoints`] is the seeded fault-injection
//! harness the chaos suite drives.

pub mod failpoints;

use std::fmt;
use std::time::{Duration, Instant};

/// The closed set of failure classes the pipeline can report.
///
/// Each variant has a stable kebab-case name ([`FaultKind::as_str`]) used in
/// CLI error output and metric labels.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// Malformed input: XML documents or twig query strings.
    Parse,
    /// A memory or work budget was exhausted ([`Budget::max_mem_bytes`],
    /// [`Budget::max_k`]).
    BudgetExhausted,
    /// The exact-match kernel refused a same-label sibling group larger
    /// than its subset-DP bound.
    GroupTooLarge,
    /// A persisted summary failed frame, checksum, or structural
    /// validation on load.
    CorruptSummary,
    /// A batch worker panicked; the panic was contained to its query.
    WorkerPanic,
    /// A wall-clock deadline ([`Budget::deadline`]) expired.
    Timeout,
}

impl FaultKind {
    /// Stable kebab-case name, used in error messages and metric labels.
    pub fn as_str(self) -> &'static str {
        match self {
            FaultKind::Parse => "parse",
            FaultKind::BudgetExhausted => "budget-exhausted",
            FaultKind::GroupTooLarge => "group-too-large",
            FaultKind::CorruptSummary => "corrupt-summary",
            FaultKind::WorkerPanic => "worker-panic",
            FaultKind::Timeout => "timeout",
        }
    }
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A classified pipeline failure: a [`FaultKind`] plus human context.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Fault {
    pub kind: FaultKind,
    /// Fail-point site name when the fault was injected by [`failpoints`],
    /// `None` for organic faults.
    pub site: Option<&'static str>,
    pub message: String,
}

impl Fault {
    pub fn new(kind: FaultKind, message: impl Into<String>) -> Self {
        Self {
            kind,
            site: None,
            message: message.into(),
        }
    }

    /// A fault produced by an active fail-point at `site`.
    pub fn injected(kind: FaultKind, site: &'static str) -> Self {
        Self {
            kind,
            site: Some(site),
            message: format!("injected by fail-point `{site}`"),
        }
    }

    pub fn parse(message: impl Into<String>) -> Self {
        Self::new(FaultKind::Parse, message)
    }

    pub fn budget(message: impl Into<String>) -> Self {
        Self::new(FaultKind::BudgetExhausted, message)
    }

    pub fn timeout(message: impl Into<String>) -> Self {
        Self::new(FaultKind::Timeout, message)
    }

    pub fn corrupt_summary(message: impl Into<String>) -> Self {
        Self::new(FaultKind::CorruptSummary, message)
    }

    pub fn worker_panic(message: impl Into<String>) -> Self {
        Self::new(FaultKind::WorkerPanic, message)
    }
}

impl fmt::Display for Fault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {}", self.kind, self.message)
    }
}

impl std::error::Error for Fault {}

/// Resource limits for one mining or estimation call.
///
/// The default budget is unlimited; enforcement only happens on the
/// resilient code paths, so the plain infallible APIs pay nothing.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Budget {
    /// Cap on bytes the call may allocate for its working state
    /// (memo tables, candidate levels). `None` = unlimited.
    pub max_mem_bytes: Option<u64>,
    /// Wall-clock point after which the call must degrade or stop.
    pub deadline: Option<Instant>,
    /// Cap on the decomposition order: sub-twig sizes above this are
    /// treated as unavailable, forcing fix-sized estimation at a smaller k
    /// (and capping the mined lattice order). `None` = use the summary's k.
    pub max_k: Option<usize>,
}

impl Budget {
    /// No limits; never trips.
    pub fn unlimited() -> Self {
        Self::default()
    }

    pub fn is_unlimited(&self) -> bool {
        self.max_mem_bytes.is_none() && self.deadline.is_none() && self.max_k.is_none()
    }

    /// Sets the deadline to `now + dur`.
    pub fn with_time_limit(mut self, dur: Duration) -> Self {
        self.deadline = Some(Instant::now() + dur);
        self
    }

    pub fn with_max_mem_bytes(mut self, bytes: u64) -> Self {
        self.max_mem_bytes = Some(bytes);
        self
    }

    pub fn with_max_k(mut self, k: usize) -> Self {
        self.max_k = Some(k);
        self
    }

    /// Errors with [`FaultKind::Timeout`] if the deadline has passed (or
    /// the `budget.deadline` fail-point fires).
    pub fn check_deadline(&self) -> Result<(), Fault> {
        if failpoints::fire(failpoints::sites::BUDGET_DEADLINE) {
            return Err(Fault::injected(
                FaultKind::Timeout,
                failpoints::sites::BUDGET_DEADLINE,
            ));
        }
        match self.deadline {
            Some(d) if Instant::now() >= d => Err(Fault::timeout("deadline expired")),
            _ => Ok(()),
        }
    }

    /// Errors with [`FaultKind::BudgetExhausted`] if `used_bytes` exceeds
    /// the memory cap (or the `budget.mem` fail-point fires).
    pub fn check_mem(&self, used_bytes: u64) -> Result<(), Fault> {
        if failpoints::fire(failpoints::sites::BUDGET_MEM) {
            return Err(Fault::injected(
                FaultKind::BudgetExhausted,
                failpoints::sites::BUDGET_MEM,
            ));
        }
        match self.max_mem_bytes {
            Some(cap) if used_bytes > cap => Err(Fault::budget(format!(
                "memory budget exhausted: {used_bytes} bytes used, cap {cap}"
            ))),
            _ => Ok(()),
        }
    }
}

/// The outcome classes every entry point of the pipeline reports — the
/// single vocabulary behind the CLI's process exit codes and the server's
/// request-level status codes.
///
/// The mapping is part of the external contract (scripts branch on it, the
/// wire protocol carries it), so it lives here — next to [`Fault`] and
/// [`Degradation`] — and both `tl-cli` and `tl-server` call [`exit_code`]
/// instead of hard-coding numbers.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Outcome {
    /// The request succeeded on the exact path.
    Success,
    /// The request succeeded on a degraded rung of the ladder (the caller
    /// is told which via [`Degradation`]); still a success to scripts.
    DegradedOk,
    /// The caller's input was malformed (bad flags, bad query syntax, a
    /// query the exact kernel refuses).
    UsageError,
    /// A typed pipeline [`Fault`]: missing/corrupt input, parse failure,
    /// budget trip surfaced as an error, injected fault.
    Fault,
}

/// The one exit-code table: success and degraded-ok are `0` (a degraded
/// estimate is still an estimate — the provenance note goes to stderr, not
/// the exit code), usage errors are `2`, faults are `3`.
pub const fn exit_code(outcome: Outcome) -> i32 {
    match outcome {
        Outcome::Success | Outcome::DegradedOk => 0,
        Outcome::UsageError => 2,
        Outcome::Fault => 3,
    }
}

/// Provenance of a resilient estimate: how far down the degradation ladder
/// the estimator had to climb to produce a number.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Degradation {
    /// The requested estimator ran to completion within budget.
    None,
    /// The budget tripped (or `max_k` capped the order); the estimate came
    /// from fix-sized decomposition over windows of size `k`, smaller than
    /// the summary's mined order.
    ReducedK { k: usize },
    /// Last rung: a closed-form path-independence (first-order Markov)
    /// product over levels 1–2 of the summary. Always terminates, coarsest
    /// accuracy.
    Markov,
}

impl Degradation {
    pub fn is_degraded(&self) -> bool {
        !matches!(self, Degradation::None)
    }
}

impl fmt::Display for Degradation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Degradation::None => f.write_str("none"),
            Degradation::ReducedK { k } => write!(f, "reduced-k({k})"),
            Degradation::Markov => f.write_str("markov-fallback"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_names_are_stable() {
        let kinds = [
            (FaultKind::Parse, "parse"),
            (FaultKind::BudgetExhausted, "budget-exhausted"),
            (FaultKind::GroupTooLarge, "group-too-large"),
            (FaultKind::CorruptSummary, "corrupt-summary"),
            (FaultKind::WorkerPanic, "worker-panic"),
            (FaultKind::Timeout, "timeout"),
        ];
        for (kind, name) in kinds {
            assert_eq!(kind.as_str(), name);
        }
    }

    #[test]
    fn display_includes_kind_and_message() {
        let f = Fault::parse("bad tag");
        assert_eq!(f.to_string(), "[parse] bad tag");
    }

    #[test]
    fn unlimited_budget_never_trips() {
        let b = Budget::unlimited();
        assert!(b.is_unlimited());
        assert!(b.check_deadline().is_ok());
        assert!(b.check_mem(u64::MAX).is_ok());
    }

    #[test]
    fn expired_deadline_is_a_timeout() {
        let b = Budget {
            deadline: Some(Instant::now() - Duration::from_millis(1)),
            ..Budget::default()
        };
        let err = b.check_deadline().unwrap_err();
        assert_eq!(err.kind, FaultKind::Timeout);
    }

    #[test]
    fn mem_cap_trips_only_above_cap() {
        let b = Budget::unlimited().with_max_mem_bytes(100);
        assert!(b.check_mem(100).is_ok());
        let err = b.check_mem(101).unwrap_err();
        assert_eq!(err.kind, FaultKind::BudgetExhausted);
    }

    /// Pins the exit-code table. These numbers are an external contract
    /// (CI scripts and the wire protocol both branch on them); changing
    /// any row is a breaking change and must fail loudly here.
    #[test]
    fn exit_code_table_is_pinned() {
        assert_eq!(exit_code(Outcome::Success), 0);
        assert_eq!(exit_code(Outcome::DegradedOk), 0);
        assert_eq!(exit_code(Outcome::UsageError), 2);
        assert_eq!(exit_code(Outcome::Fault), 3);
    }

    #[test]
    fn degradation_display() {
        assert_eq!(Degradation::None.to_string(), "none");
        assert_eq!(Degradation::ReducedK { k: 2 }.to_string(), "reduced-k(2)");
        assert_eq!(Degradation::Markov.to_string(), "markov-fallback");
        assert!(!Degradation::None.is_degraded());
        assert!(Degradation::Markov.is_degraded());
    }
}
