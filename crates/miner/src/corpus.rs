//! Corpus-scale mining: shard a multi-document corpus across workers and
//! merge per-worker partial lattices.
//!
//! The paper mines one document tree; a corpus is the sum of its documents
//! (a twig's corpus selectivity is the sum of its per-document match
//! counts), so corpus mining is embarrassingly parallel *if* the per-shard
//! statistics are mergeable. They are, in three steps:
//!
//! 1. A serial pass folds every document's labels into one shared
//!    [`LabelInterner`] (see [`LabelInterner::extend_from`]) — the shared
//!    universe depends only on document order, never on sharding.
//! 2. Workers pull documents off a shared work-stealing cursor, mine each
//!    in its *own* label space, and remap the mined keys into the shared
//!    universe before folding them into a worker-local partial lattice
//!    (identity maps skip the remap entirely).
//! 3. The partials merge pairwise in a tree reduction. Because u64 count
//!    addition is commutative and associative, the merged lattice is
//!    bit-identical (content-wise, and therefore in the canonical sorted
//!    serialization) to mining the documents sequentially in order — the
//!    property `gate_corpus` enforces.

use std::sync::atomic::{AtomicUsize, Ordering};

use tl_twig::canonical::KeyEncoder;
use tl_twig::{Twig, TwigKey};
use tl_xml::{DocIndex, Document, FxHashMap, LabelId, LabelInterner};

use crate::{mine_with_index, MineConfig, MinedLattice};

/// Configuration for [`mine_corpus`].
#[derive(Clone, Copy, Debug)]
pub struct CorpusConfig {
    /// Largest pattern size to enumerate (the `k` of the k-lattice).
    pub max_size: usize,
    /// Number of shard workers mining documents concurrently. `0` means
    /// "use available parallelism"; `1` mines the corpus serially. The
    /// effective count never exceeds the number of documents.
    pub shards: usize,
    /// Worker threads for candidate counting *within* one document (the
    /// [`MineConfig::threads`] of each per-document mine). Defaults to 1:
    /// corpus parallelism comes from sharding documents, and nesting
    /// per-document counting threads under shard workers oversubscribes.
    pub threads: usize,
}

impl Default for CorpusConfig {
    fn default() -> Self {
        Self {
            max_size: 4,
            shards: 0,
            threads: 1,
        }
    }
}

impl CorpusConfig {
    /// A configuration with the given lattice order and default sharding.
    pub fn with_max_size(max_size: usize) -> Self {
        Self {
            max_size,
            ..Self::default()
        }
    }

    fn effective_shards(&self) -> usize {
        if self.shards != 0 {
            self.shards
        } else {
            std::thread::available_parallelism().map_or(1, |n| n.get())
        }
    }

    fn per_doc(&self) -> MineConfig {
        MineConfig {
            max_size: self.max_size,
            threads: self.threads.max(1),
        }
    }
}

/// The result of a corpus mining run.
#[derive(Clone, Debug)]
pub struct CorpusReport {
    /// Summed pattern counts over the whole corpus, in the shared label
    /// universe.
    pub lattice: MinedLattice,
    /// The shared label universe (union of every document's labels, in
    /// document order).
    pub labels: LabelInterner,
    /// Shard workers actually used.
    pub shards: usize,
    /// Documents mined.
    pub docs: usize,
    /// Wall-clock milliseconds spent in the final tree reduction.
    pub merge_ms: u64,
}

/// Mines every document of `docs` up to `config.max_size` and merges the
/// per-document lattices into one corpus lattice over a shared label
/// universe. See the module docs for the sharding scheme.
///
/// The result is deterministic: counts (and the canonical serialization of
/// the summary built from them) are identical for every shard count,
/// including fully serial mining.
///
/// # Examples
///
/// ```
/// use tl_xml::{parse_document, ParseOptions};
/// use tl_miner::{mine_corpus, CorpusConfig};
/// use tl_twig::parse_twig_in;
///
/// let docs: Vec<_> = [b"<a><b/></a>" as &[u8], b"<c><a><b/></a></c>"]
///     .iter()
///     .map(|s| parse_document(s, ParseOptions::default()).unwrap())
///     .collect();
/// let report = mine_corpus(&docs, CorpusConfig::with_max_size(2));
/// let q = parse_twig_in("a/b", &report.labels).unwrap();
/// assert_eq!(report.lattice.get_twig(&q), Some(2), "counts sum over docs");
/// ```
pub fn mine_corpus(docs: &[Document], config: CorpusConfig) -> CorpusReport {
    mine_corpus_observed(docs, config, &tl_obs::NOOP)
}

/// [`mine_corpus`], recording `miner.corpus.shards` and `miner.merge.ms`
/// (plus one `miner.runs` per document via the per-document mines being
/// unobserved — corpus runs report at corpus granularity only).
pub fn mine_corpus_observed(
    docs: &[Document],
    config: CorpusConfig,
    rec: &dyn tl_obs::Recorder,
) -> CorpusReport {
    // Phase 1 (serial): shared label universe + per-document translations.
    let mut labels = LabelInterner::new();
    let maps: Vec<Vec<LabelId>> = docs
        .iter()
        .map(|d| labels.extend_from(d.labels()))
        .collect();

    let shards = config.effective_shards().min(docs.len()).max(1);
    rec.add(tl_obs::names::MINER_CORPUS_SHARDS, shards as u64);
    let per_doc = config.per_doc();

    // Phase 2: shard workers pull documents off a shared cursor (document
    // mining cost varies with document size, so static chunking would
    // serialize behind the unlucky worker — same scheme as the candidate
    // counter's work stealing).
    let mut partials: Vec<MinedLattice> = if shards <= 1 {
        let mut acc = MinedLattice::default();
        for (doc, map) in docs.iter().zip(&maps) {
            let mined = mine_with_index(&DocIndex::new(doc), per_doc).lattice;
            merge_remapped(&mut acc, mined, map);
        }
        vec![acc]
    } else {
        let cursor = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..shards)
                .map(|_| {
                    let cursor = &cursor;
                    let maps = &maps;
                    scope.spawn(move || {
                        let mut acc = MinedLattice::default();
                        loop {
                            let i = cursor.fetch_add(1, Ordering::Relaxed);
                            let Some(doc) = docs.get(i) else { break };
                            let mined = mine_with_index(&DocIndex::new(doc), per_doc).lattice;
                            merge_remapped(&mut acc, mined, &maps[i]);
                        }
                        acc
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("corpus shard worker panicked"))
                .collect()
        })
    };

    // Phase 3: pairwise tree reduction of the shard partials. Commutativity
    // of the merge makes the pairing order irrelevant to the result; the
    // tree shape just keeps each round's operands similar in size.
    let start = std::time::Instant::now();
    while partials.len() > 1 {
        let mut next = Vec::with_capacity(partials.len().div_ceil(2));
        let mut it = partials.into_iter();
        while let Some(mut a) = it.next() {
            if let Some(b) = it.next() {
                a.merge(&b);
            }
            next.push(a);
        }
        partials = next;
    }
    let lattice = partials.pop().unwrap_or_default();
    let merge_ms = u64::try_from(start.elapsed().as_millis()).unwrap_or(u64::MAX);
    rec.add(tl_obs::names::MINER_MERGE_MS, merge_ms);

    CorpusReport {
        lattice,
        labels,
        shards,
        docs: docs.len(),
        merge_ms,
    }
}

/// Folds a per-document lattice into a shard accumulator, translating its
/// keys from the document's label space into the shared universe via `map`
/// first. Identity maps (document labels already aligned with the shared
/// interner — always true for the first document) skip the rewrite.
fn merge_remapped(acc: &mut MinedLattice, mined: MinedLattice, map: &[LabelId]) {
    if map.iter().enumerate().all(|(i, id)| id.index() == i) {
        acc.merge(&mined);
        return;
    }
    let mut enc = KeyEncoder::new();
    let mut buf: Vec<u8> = Vec::new();
    let mut scratch = Twig::single(LabelId(0));
    let mut levels: Vec<FxHashMap<TwigKey, u64>> = Vec::with_capacity(mined.max_size());
    for size in 1..=mined.max_size() {
        let mut level = FxHashMap::default();
        for (key, count) in mined.iter_level(size) {
            key.decode_into(&mut scratch);
            scratch.relabel(map);
            // Canonical order depends on label ids, so re-encode from
            // scratch rather than patching bytes in place.
            enc.encode_into(&scratch, &mut buf);
            level.insert(TwigKey::from_raw(buf.as_slice().into()), count);
        }
        levels.push(level);
    }
    acc.merge(&MinedLattice::from_levels(levels));
}

#[cfg(test)]
mod tests {
    use tl_xml::{parse_document, ParseOptions};

    use super::*;

    fn doc(s: &str) -> Document {
        parse_document(s.as_bytes(), ParseOptions::default()).unwrap()
    }

    fn assert_same(a: &MinedLattice, b: &MinedLattice) {
        assert_eq!(a.max_size(), b.max_size());
        assert_eq!(a.len(), b.len());
        for (key, count) in a.iter() {
            assert_eq!(b.get(key), Some(count));
        }
    }

    #[test]
    fn corpus_counts_sum_over_documents() {
        let docs = vec![
            doc("<a><b><c/></b><b/></a>"),
            doc("<a><b/></a>"),
            doc("<x><a><b/></a></x>"),
        ];
        let report = mine_corpus(&docs, CorpusConfig::with_max_size(3));
        let q = |s: &str| tl_twig::parse_twig_in(s, &report.labels).unwrap();
        assert_eq!(report.lattice.get_twig(&q("a/b")), Some(4));
        assert_eq!(report.lattice.get_twig(&q("a")), Some(3));
        assert_eq!(report.lattice.get_twig(&q("x/a/b")), Some(1));
        assert_eq!(report.docs, 3);
    }

    #[test]
    fn label_universes_union_across_documents() {
        // Same tag strings in different per-document id orders must land on
        // the same shared ids.
        let docs = vec![doc("<b><a/></b>"), doc("<a><b/></a>")];
        let report = mine_corpus(&docs, CorpusConfig::with_max_size(2));
        assert_eq!(report.labels.len(), 2);
        let q = |s: &str| tl_twig::parse_twig_in(s, &report.labels).unwrap();
        assert_eq!(report.lattice.get_twig(&q("a/b")), Some(1));
        assert_eq!(report.lattice.get_twig(&q("b/a")), Some(1));
        assert_eq!(report.lattice.get_twig(&q("a")), Some(2));
    }

    #[test]
    fn sharded_matches_sequential() {
        let docs: Vec<_> = (0..7)
            .map(|i| {
                tl_datagen::Dataset::Xmark.generate(tl_datagen::GenConfig {
                    seed: 100 + i,
                    target_elements: 300,
                })
            })
            .collect();
        let serial = mine_corpus(
            &docs,
            CorpusConfig {
                max_size: 3,
                shards: 1,
                threads: 1,
            },
        );
        for shards in [2, 3, 8] {
            let sharded = mine_corpus(
                &docs,
                CorpusConfig {
                    max_size: 3,
                    shards,
                    threads: 1,
                },
            );
            assert_same(&serial.lattice, &sharded.lattice);
            assert_eq!(serial.labels.len(), sharded.labels.len());
            for (id, name) in serial.labels.iter() {
                assert_eq!(sharded.labels.resolve(id), name);
            }
        }
    }

    #[test]
    fn single_document_corpus_matches_plain_mine() {
        let d = doc("<a><b><c/></b><b/><d/></a>");
        let plain = crate::mine(&d, MineConfig::with_max_size(3));
        let corpus = mine_corpus(std::slice::from_ref(&d), CorpusConfig::with_max_size(3));
        assert_same(&plain.lattice, &corpus.lattice);
    }

    #[test]
    fn observed_run_records_shards_and_merge_time() {
        let docs = vec![doc("<a><b/></a>"), doc("<a><b/></a>")];
        let rec = tl_obs::MetricsRecorder::new();
        let report = mine_corpus_observed(
            &docs,
            CorpusConfig {
                max_size: 2,
                shards: 2,
                threads: 1,
            },
            &rec,
        );
        assert_eq!(report.shards, 2);
        let snap = rec.snapshot();
        assert_eq!(snap.counters[tl_obs::names::MINER_CORPUS_SHARDS], 2);
        assert!(snap.counters.contains_key(tl_obs::names::MINER_MERGE_MS));
    }

    #[test]
    fn empty_corpus_yields_empty_lattice() {
        let report = mine_corpus(&[], CorpusConfig::default());
        assert!(report.lattice.is_empty());
        assert!(report.labels.is_empty());
        assert_eq!(report.shards, 1);
    }
}
