//! The mined pattern lattice: counts of every occurred twig of size ≤ k.

use tl_twig::canonical::key_of;
use tl_twig::{Twig, TwigKey};
use tl_xml::FxHashMap;

/// All occurred twig patterns of a document up to a size bound, with exact
/// selectivities, organized by level (pattern size).
///
/// This is the raw statistic behind the paper's "k-lattice"; the
/// `treelattice` crate wraps it with pruning, budgets, and estimation.
#[derive(Clone, Debug, Default)]
pub struct MinedLattice {
    /// `levels[i]` holds patterns of size `i + 1`.
    levels: Vec<FxHashMap<TwigKey, u64>>,
}

impl MinedLattice {
    /// Creates a lattice from per-level maps (`levels[i]` = size `i + 1`).
    pub fn from_levels(levels: Vec<FxHashMap<TwigKey, u64>>) -> Self {
        Self { levels }
    }

    /// The maximum pattern size stored (the `k` of a k-lattice).
    pub fn max_size(&self) -> usize {
        self.levels.len()
    }

    /// Looks up the exact count of a canonical pattern key.
    pub fn get(&self, key: &TwigKey) -> Option<u64> {
        let level = key.node_count();
        if level == 0 || level > self.levels.len() {
            return None;
        }
        self.levels[level - 1].get(key).copied()
    }

    /// Looks up a twig (canonicalizing it first).
    pub fn get_twig(&self, twig: &Twig) -> Option<u64> {
        self.get(&key_of(twig))
    }

    /// Number of patterns at `size` (1-based level).
    pub fn patterns_at(&self, size: usize) -> usize {
        if size == 0 || size > self.levels.len() {
            0
        } else {
            self.levels[size - 1].len()
        }
    }

    /// Total number of stored patterns.
    pub fn len(&self) -> usize {
        self.levels.iter().map(FxHashMap::len).sum()
    }

    /// Whether no pattern is stored.
    pub fn is_empty(&self) -> bool {
        self.levels.iter().all(FxHashMap::is_empty)
    }

    /// Iterates over `(key, count)` pairs at a given pattern size.
    pub fn iter_level(&self, size: usize) -> impl Iterator<Item = (&TwigKey, u64)> {
        self.levels
            .get(size.wrapping_sub(1))
            .into_iter()
            .flat_map(|m| m.iter().map(|(k, &c)| (k, c)))
    }

    /// Iterates over all `(key, count)` pairs, smallest patterns first.
    pub fn iter(&self) -> impl Iterator<Item = (&TwigKey, u64)> {
        self.levels
            .iter()
            .flat_map(|m| m.iter().map(|(k, &c)| (k, c)))
    }

    /// Approximate heap footprint in bytes: each entry is its encoded key
    /// plus an 8-byte count (the accounting used for Table 3 / Fig. 10).
    pub fn heap_bytes(&self) -> usize {
        self.iter().map(|(k, _)| k.heap_bytes()).sum()
    }

    /// The per-level map (for the summary layer); `size` is 1-based.
    pub fn level_map(&self, size: usize) -> Option<&FxHashMap<TwigKey, u64>> {
        self.levels.get(size.wrapping_sub(1))
    }
}

#[cfg(test)]
mod tests {
    use tl_xml::LabelInterner;

    use super::*;

    fn lattice_with(patterns: &[(&str, u64)]) -> (MinedLattice, LabelInterner) {
        let mut it = LabelInterner::new();
        let mut levels: Vec<FxHashMap<TwigKey, u64>> = Vec::new();
        for (q, c) in patterns {
            let t = tl_twig::parse_twig(q, &mut it).unwrap();
            let key = key_of(&t);
            let lvl = t.len();
            while levels.len() < lvl {
                levels.push(FxHashMap::default());
            }
            levels[lvl - 1].insert(key, *c);
        }
        (MinedLattice::from_levels(levels), it)
    }

    #[test]
    fn lookup_by_key_and_twig() {
        let (lat, mut it) = lattice_with(&[("a", 10), ("a/b", 4), ("a[b][c]", 2)]);
        let t = tl_twig::parse_twig("a[c][b]", &mut it).unwrap();
        assert_eq!(lat.get_twig(&t), Some(2), "lookup is isomorphism-safe");
        assert_eq!(lat.max_size(), 3);
        assert_eq!(lat.len(), 3);
        assert_eq!(lat.patterns_at(1), 1);
        assert_eq!(lat.patterns_at(9), 0);
    }

    #[test]
    fn missing_patterns_are_none() {
        let (lat, mut it) = lattice_with(&[("a", 1)]);
        let t = tl_twig::parse_twig("z", &mut it).unwrap();
        assert_eq!(lat.get_twig(&t), None);
        let big = tl_twig::parse_twig("a/b/c/d/e/f", &mut it).unwrap();
        assert_eq!(lat.get_twig(&big), None, "beyond max_size is None");
    }

    #[test]
    fn heap_bytes_counts_entries() {
        let (lat, _) = lattice_with(&[("a", 1), ("a/b", 1)]);
        // Keys are 6 bytes per node + 8-byte count.
        assert_eq!(lat.heap_bytes(), (6 + 8) + (12 + 8));
    }
}
