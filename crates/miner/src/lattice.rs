//! The mined pattern lattice: counts of every occurred twig of size ≤ k.

use tl_twig::canonical::key_of;
use tl_twig::{Twig, TwigKey};
use tl_xml::FxHashMap;

/// All occurred twig patterns of a document up to a size bound, with exact
/// selectivities, organized by level (pattern size).
///
/// This is the raw statistic behind the paper's "k-lattice"; the
/// `treelattice` crate wraps it with pruning, budgets, and estimation.
#[derive(Clone, Debug, Default)]
pub struct MinedLattice {
    /// `levels[i]` holds patterns of size `i + 1`.
    levels: Vec<FxHashMap<TwigKey, u64>>,
}

impl MinedLattice {
    /// Creates a lattice from per-level maps (`levels[i]` = size `i + 1`).
    pub fn from_levels(levels: Vec<FxHashMap<TwigKey, u64>>) -> Self {
        Self { levels }
    }

    /// The maximum pattern size stored (the `k` of a k-lattice).
    pub fn max_size(&self) -> usize {
        self.levels.len()
    }

    /// Looks up the exact count of a canonical pattern key.
    pub fn get(&self, key: &TwigKey) -> Option<u64> {
        let level = key.node_count();
        if level == 0 || level > self.levels.len() {
            return None;
        }
        self.levels[level - 1].get(key).copied()
    }

    /// Looks up a twig (canonicalizing it first).
    pub fn get_twig(&self, twig: &Twig) -> Option<u64> {
        self.get(&key_of(twig))
    }

    /// Number of patterns at `size` (1-based level).
    pub fn patterns_at(&self, size: usize) -> usize {
        if size == 0 || size > self.levels.len() {
            0
        } else {
            self.levels[size - 1].len()
        }
    }

    /// Total number of stored patterns.
    pub fn len(&self) -> usize {
        self.levels.iter().map(FxHashMap::len).sum()
    }

    /// Whether no pattern is stored.
    pub fn is_empty(&self) -> bool {
        self.levels.iter().all(FxHashMap::is_empty)
    }

    /// Iterates over `(key, count)` pairs at a given pattern size.
    pub fn iter_level(&self, size: usize) -> impl Iterator<Item = (&TwigKey, u64)> {
        self.levels
            .get(size.wrapping_sub(1))
            .into_iter()
            .flat_map(|m| m.iter().map(|(k, &c)| (k, c)))
    }

    /// Iterates over all `(key, count)` pairs, smallest patterns first.
    pub fn iter(&self) -> impl Iterator<Item = (&TwigKey, u64)> {
        self.levels
            .iter()
            .flat_map(|m| m.iter().map(|(k, &c)| (k, c)))
    }

    /// Approximate heap footprint in bytes: each entry is its encoded key
    /// plus an 8-byte count (the accounting used for Table 3 / Fig. 10).
    pub fn heap_bytes(&self) -> usize {
        self.iter().map(|(k, _)| k.heap_bytes()).sum()
    }

    /// The per-level map (for the summary layer); `size` is 1-based.
    pub fn level_map(&self, size: usize) -> Option<&FxHashMap<TwigKey, u64>> {
        self.levels.get(size.wrapping_sub(1))
    }

    /// Merges `other`'s counts into `self`: shared keys add (saturating),
    /// missing keys are inserted, and a shorter operand is padded with empty
    /// levels.
    ///
    /// Both lattices must be expressed over the *same* label universe —
    /// corpus mining remaps per-document keys into the shared interner
    /// before merging. Because u64 addition is commutative and associative,
    /// merging per-shard lattices in any tree order yields the same counts
    /// as mining the concatenated corpus sequentially.
    pub fn merge(&mut self, other: &MinedLattice) {
        while self.levels.len() < other.levels.len() {
            self.levels.push(FxHashMap::default());
        }
        for (i, level) in other.levels.iter().enumerate() {
            self.levels[i].reserve(level.len());
            for (key, &count) in level {
                let slot = self.levels[i].entry(key.clone()).or_insert(0);
                *slot = slot.saturating_add(count);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use tl_xml::LabelInterner;

    use super::*;

    fn lattice_with(patterns: &[(&str, u64)]) -> (MinedLattice, LabelInterner) {
        let mut it = LabelInterner::new();
        let mut levels: Vec<FxHashMap<TwigKey, u64>> = Vec::new();
        for (q, c) in patterns {
            let t = tl_twig::parse_twig(q, &mut it).unwrap();
            let key = key_of(&t);
            let lvl = t.len();
            while levels.len() < lvl {
                levels.push(FxHashMap::default());
            }
            levels[lvl - 1].insert(key, *c);
        }
        (MinedLattice::from_levels(levels), it)
    }

    #[test]
    fn lookup_by_key_and_twig() {
        let (lat, mut it) = lattice_with(&[("a", 10), ("a/b", 4), ("a[b][c]", 2)]);
        let t = tl_twig::parse_twig("a[c][b]", &mut it).unwrap();
        assert_eq!(lat.get_twig(&t), Some(2), "lookup is isomorphism-safe");
        assert_eq!(lat.max_size(), 3);
        assert_eq!(lat.len(), 3);
        assert_eq!(lat.patterns_at(1), 1);
        assert_eq!(lat.patterns_at(9), 0);
    }

    #[test]
    fn missing_patterns_are_none() {
        let (lat, mut it) = lattice_with(&[("a", 1)]);
        let t = tl_twig::parse_twig("z", &mut it).unwrap();
        assert_eq!(lat.get_twig(&t), None);
        let big = tl_twig::parse_twig("a/b/c/d/e/f", &mut it).unwrap();
        assert_eq!(lat.get_twig(&big), None, "beyond max_size is None");
    }

    #[test]
    fn merge_adds_counts_and_pads_levels() {
        let (mut a, _) = lattice_with(&[("a", 10), ("a/b", 4)]);
        // Reuse one interner path: build `b` with the same label ids.
        let (b, mut it) = lattice_with(&[("a", 5), ("a/b/c", 7)]);
        a.merge(&b);
        assert_eq!(a.max_size(), 3);
        let key = |q: &str, it: &mut LabelInterner| key_of(&tl_twig::parse_twig(q, it).unwrap());
        assert_eq!(a.get(&key("a", &mut it)), Some(15));
        assert_eq!(a.get(&key("a/b", &mut it)), Some(4));
        assert_eq!(a.get(&key("a/b/c", &mut it)), Some(7));
    }

    #[test]
    fn merge_with_default_is_identity() {
        let (orig, _) = lattice_with(&[("a", 3), ("a[b][c]", 2)]);
        let mut left = orig.clone();
        left.merge(&MinedLattice::default());
        let mut right = MinedLattice::default();
        right.merge(&orig);
        for merged in [&left, &right] {
            assert_eq!(merged.max_size(), orig.max_size());
            assert_eq!(merged.len(), orig.len());
            for (k, c) in orig.iter() {
                assert_eq!(merged.get(k), Some(c));
            }
        }
    }

    #[test]
    fn heap_bytes_counts_entries() {
        let (lat, _) = lattice_with(&[("a", 1), ("a/b", 1)]);
        // Keys are 6 bytes per node + 8-byte count.
        assert_eq!(lat.heap_bytes(), (6 + 8) + (12 + 8));
    }
}
