//! The mining algorithm: candidate generation + root-map counting.

use tl_fault::{failpoints, Budget, Fault, FaultKind};
use tl_twig::canonical::{key_of, KeyEncoder};
use tl_twig::{Twig, TwigKey};
use tl_xml::{DocIndex, Document, FxHashMap, FxHashSet, LabelId};

/// Sparse root map of a pattern: `(rank, m)` pairs, sorted ascending, where
/// `rank` is the within-label rank (see [`DocIndex::rank`]) of a document
/// node hosting `m ≥ 1` matches of the pattern. Rank-keyed so counting can
/// scatter a map into a dense per-label vector and read it back with plain
/// indexing; sparse at rest so the level cache stays proportional to the
/// number of *occurrences*, not to the document.
type RootMap = Vec<(u32, u64)>;

/// Configuration for [`mine`].
#[derive(Clone, Copy, Debug)]
pub struct MineConfig {
    /// Largest pattern size to enumerate (the `k` of the k-lattice).
    pub max_size: usize,
    /// Worker threads for candidate counting. `0` means "use available
    /// parallelism"; `1` runs fully serial.
    pub threads: usize,
}

impl Default for MineConfig {
    fn default() -> Self {
        Self {
            max_size: 4,
            threads: 0,
        }
    }
}

impl MineConfig {
    /// A serial configuration with the given lattice order.
    pub fn with_max_size(max_size: usize) -> Self {
        Self {
            max_size,
            ..Self::default()
        }
    }

    fn effective_threads(&self) -> usize {
        if self.threads != 0 {
            self.threads
        } else {
            std::thread::available_parallelism().map_or(1, |n| n.get())
        }
    }
}

/// The result of a mining run.
#[derive(Clone, Debug)]
pub struct MineReport {
    /// The mined pattern counts.
    pub lattice: super::MinedLattice,
    /// Candidate patterns generated per level (before counting filtered the
    /// non-occurring ones) — levels are 1-based sizes, index 0 = size 1.
    pub candidates_per_level: Vec<usize>,
    /// Set when a mining [`Budget`] tripped between levels: the run stopped
    /// early and the lattice's order is lower than requested, but every
    /// stored level holds exact counts (graceful degradation, not
    /// corruption). `None` for unbudgeted runs and completed budgeted runs.
    pub stopped_early: Option<Fault>,
}

/// Mines all occurred twig patterns of `doc` up to `config.max_size` nodes,
/// with exact selectivities.
///
/// Builds a throwaway [`DocIndex`]; callers that already hold one (the
/// lattice builder, the bench harness) use [`mine_with_index`] to share it.
///
/// # Examples
///
/// ```
/// use tl_xml::{parse_document, ParseOptions};
/// use tl_miner::{mine, MineConfig};
/// use tl_twig::parse_twig_in;
///
/// let doc = parse_document(b"<a><b><c/></b><b/></a>", ParseOptions::default()).unwrap();
/// let report = mine(&doc, MineConfig { max_size: 3, threads: 1 });
/// let q = parse_twig_in("a/b", doc.labels()).unwrap();
/// assert_eq!(report.lattice.get_twig(&q), Some(2));
/// let q3 = parse_twig_in("a[b[c]][b]", doc.labels());
/// assert!(q3.is_ok());
/// ```
pub fn mine(doc: &Document, config: MineConfig) -> MineReport {
    mine_with_index(&DocIndex::new(doc), config)
}

/// [`mine_with_index`], reporting run statistics to `rec`: the `miner.mine`
/// wall-clock span, aggregate `miner.{runs,candidates,patterns_kept,
/// pruned_zero}` counters, and per-level `miner.level<N>.{candidates,kept,
/// pruned}` counters with a `miner.level<N>` span each (levels are 1-based
/// pattern sizes; level 1 has no counting pass, so no per-level stats).
pub fn mine_with_index_observed(
    index: &DocIndex,
    config: MineConfig,
    rec: &dyn tl_obs::Recorder,
) -> MineReport {
    mine_with_index_budgeted(index, config, Budget::unlimited(), rec)
}

/// [`mine_with_index_observed`] under a resource [`Budget`].
///
/// The budget is consulted *between* levels: `max_k` caps the lattice order
/// up front, while a deadline or memory-cap trip stops the run before the
/// next level and records the fault in [`MineReport::stopped_early`]. The
/// already-mined levels are exact, so the result degrades to a lower-order
/// summary rather than failing.
pub fn mine_with_index_budgeted(
    index: &DocIndex,
    config: MineConfig,
    budget: Budget,
    rec: &dyn tl_obs::Recorder,
) -> MineReport {
    let _span = tl_obs::SpanGuard::start(rec, tl_obs::names::SPAN_MINE);
    rec.add(tl_obs::names::MINER_RUNS, 1);
    mine_inner(index, config, budget, rec)
}

/// [`mine`] over a pre-built document index.
///
/// Everything the miner asks of the document — label populations, per-label
/// child slices, the label-level adjacency bounding candidate generation —
/// comes from the index, so one index per document serves mining, ground
/// truth, and the experiment harness without re-indexing.
pub fn mine_with_index(index: &DocIndex, config: MineConfig) -> MineReport {
    mine_inner(index, config, Budget::unlimited(), &tl_obs::NOOP)
}

/// The between-level budget gate: fail-point first (deterministic chaos),
/// then the real deadline and memory checks.
fn check_mine_budget(budget: &Budget, charged_bytes: u64) -> Result<(), Fault> {
    if failpoints::fire(failpoints::sites::MINER_DEADLINE) {
        return Err(Fault::injected(
            FaultKind::Timeout,
            failpoints::sites::MINER_DEADLINE,
        ));
    }
    budget.check_deadline()?;
    budget.check_mem(charged_bytes)
}

fn mine_inner(
    index: &DocIndex,
    config: MineConfig,
    budget: Budget,
    rec: &dyn tl_obs::Recorder,
) -> MineReport {
    assert!(config.max_size >= 1, "max_size must be at least 1");
    let max_size = config
        .max_size
        .min(budget.max_k.unwrap_or(usize::MAX))
        .max(1);
    let mut stopped_early: Option<Fault> = None;
    let mut charged_bytes: u64 = 0;

    let mut levels: Vec<FxHashMap<TwigKey, u64>> = Vec::with_capacity(max_size);
    let mut candidates_per_level: Vec<usize> = Vec::with_capacity(max_size);

    // Level 1: one pattern per occurring label.
    let mut level1 = FxHashMap::default();
    for l in 0..index.n_labels() {
        let label = LabelId(l as u32);
        let count = index.label_count(label);
        if count > 0 {
            level1.insert(key_of(&Twig::single(label)), count);
        }
    }
    candidates_per_level.push(level1.len());
    if rec.enabled() {
        let n = level1.len() as u64;
        rec.add(tl_obs::names::MINER_CANDIDATES, n);
        rec.add(tl_obs::names::MINER_KEPT, n);
        rec.add("miner.level1.candidates", n);
        rec.add("miner.level1.kept", n);
    }
    levels.push(level1);

    // Root-map cache for patterns that may appear as subtrees of later
    // candidates (sizes 2 ..= max_size - 1). Size-1 subtrees are implicit.
    let mut cache: FxHashMap<TwigKey, RootMap> = FxHashMap::default();

    for size in 2..=max_size {
        if let Err(fault) = check_mine_budget(&budget, charged_bytes) {
            stopped_early = Some(fault);
            break;
        }
        let level_span = rec
            .enabled()
            .then(|| tl_obs::SpanGuard::start_dynamic(rec, format!("miner.level{size}")));
        let candidates = generate_candidates(&levels[size - 2], index);
        candidates_per_level.push(candidates.len());
        let n_candidates = candidates.len();
        let keep_maps = size < max_size;
        let counted = count_candidates(
            index,
            &cache,
            candidates,
            config.effective_threads(),
            keep_maps,
        );
        let mut level = FxHashMap::default();
        for (key, count, map) in counted {
            if count == 0 {
                continue;
            }
            if keep_maps {
                cache.insert(key.clone(), map.expect("map kept when requested"));
            }
            level.insert(key, count);
        }
        if rec.enabled() {
            let kept = level.len() as u64;
            let pruned = n_candidates as u64 - kept;
            rec.add(tl_obs::names::MINER_CANDIDATES, n_candidates as u64);
            rec.add(tl_obs::names::MINER_KEPT, kept);
            rec.add(tl_obs::names::MINER_PRUNED_ZERO, pruned);
            rec.add(
                &format!("miner.level{size}.candidates"),
                n_candidates as u64,
            );
            rec.add(&format!("miner.level{size}.kept"), kept);
            rec.add(&format!("miner.level{size}.pruned"), pruned);
        }
        drop(level_span);
        if budget.max_mem_bytes.is_some() {
            // Same accounting the summary uses: key bytes + entry overhead.
            charged_bytes += level
                .keys()
                .map(|k| k.as_bytes().len() as u64 + 24)
                .sum::<u64>();
        }
        let empty = level.is_empty();
        levels.push(level);
        if empty {
            break; // No pattern of this size occurs; larger ones cannot either.
        }
    }

    MineReport {
        lattice: super::MinedLattice::from_levels(levels),
        candidates_per_level,
        stopped_early,
    }
}

/// Extends every level-(n−1) pattern by one child edge, deduplicates by
/// canonical key, and Apriori-prunes candidates with a non-occurring
/// sub-pattern. Extension labels come from the index's label-level
/// adjacency. Returns canonical twigs sorted by key for determinism.
fn generate_candidates(prev: &FxHashMap<TwigKey, u64>, index: &DocIndex) -> Vec<(TwigKey, Twig)> {
    let mut seen: FxHashSet<TwigKey> = FxHashSet::default();
    let mut out: Vec<(TwigKey, Twig)> = Vec::new();
    // Scratch twigs reused across the whole enumeration: `base` receives
    // each previous-level pattern, `sub` each one-smaller sub-pattern of a
    // candidate during the Apriori check. Keys are encoded into reused
    // buffers and probed as raw bytes (`TwigKey: Borrow<[u8]>`), so the
    // duplicate-heavy enumeration boxes a key only on the first sighting of
    // each distinct candidate and the Apriori probes box nothing at all.
    let mut base = Twig::single(LabelId(0));
    let mut sub = Twig::single(LabelId(0));
    let mut enc = KeyEncoder::new();
    let mut ext_buf: Vec<u8> = Vec::new();
    let mut sub_buf: Vec<u8> = Vec::new();
    for key in prev.keys() {
        key.decode_into(&mut base);
        let n = base.len() as u32;
        for q in 0..n {
            for &l in index.child_labels_of(base.label(q)) {
                // Extend the scratch twig in place; `pop_leaf` backs the
                // extension out at the bottom of the loop, so a clone is
                // paid only for candidates that survive every filter.
                let added = base.add_child(q, l);
                enc.encode_into(&base, &mut ext_buf);
                if seen.contains(ext_buf.as_slice()) {
                    base.pop_leaf(added);
                    continue;
                }
                // Apriori: every one-smaller sub-pattern must occur.
                // Removing the node just added reproduces the unextended
                // pattern, whose key is in `prev` by construction — no need
                // to re-canonicalize that one.
                let ok = base
                    .removable_nodes()
                    .into_iter()
                    .filter(|&r| r != added)
                    .all(|r| {
                        base.remove_node_into(r, &mut sub);
                        enc.encode_into(&sub, &mut sub_buf);
                        prev.contains_key(sub_buf.as_slice())
                    });
                let ext_key = TwigKey::from_raw(ext_buf.as_slice().into());
                if ok {
                    out.push((ext_key.clone(), base.clone()));
                }
                seen.insert(ext_key);
                base.pop_leaf(added);
            }
        }
    }
    out.sort_unstable_by(|a, b| a.0.cmp(&b.0));
    out
}

/// How one same-label child group of the current candidate produces its
/// per-root factor `f`.
#[derive(Clone, Copy)]
enum GroupF {
    /// Single leaf child: `f(v)` = number of children of `v` with the
    /// group's label, read from the per-(parent label, child label) count
    /// vector in [`Scratch::pair_cache`].
    Leaf,
    /// Single non-leaf child: `f(v)` = sum of the child map's `m` over the
    /// children of `v`, pre-accumulated into `Scratch::facc[slot]` by one
    /// pass over the map (each occurrence walks up to its parent).
    Cached(usize),
    /// Same-label sibling group: injective subset DP over the document
    /// children, using the per-member dense vectors in `Scratch::dense`.
    Dp,
}

/// Per-child-label count vector for one (parent label, child label) pair:
/// `cnt[r]` = how many children with the child label the `r`-th parent-label
/// node has; `support` lists the ranks with `cnt > 0`, sorted.
struct PairCounts {
    cnt: Vec<u64>,
    support: Vec<u32>,
}

/// Per-worker reusable buffers for [`count_one`]: pools of dense vectors
/// (all-zero between uses — each use scatters data in and un-scatters it on
/// the way out), the subset-DP table and weights, the per-candidate small
/// vectors that would otherwise be reallocated for every candidate, and a
/// cache of per-(parent label, child label) child counts shared by every
/// candidate the worker processes. Borrows from the level cache live `'c`.
#[derive(Default)]
struct Scratch<'c> {
    /// Dense child m-vectors for DP groups, indexed by within-label rank of
    /// the *child* label.
    dense: Vec<Vec<u64>>,
    dp: Vec<u64>,
    weights: Vec<u64>,
    cached: Vec<Option<&'c RootMap>>,
    dense_slot: Vec<usize>,
    roots: Vec<u32>,
    group_labels: Vec<LabelId>,
    group_members: Vec<Vec<usize>>,
    group_kind: Vec<GroupF>,
    /// Accumulated factors for [`GroupF::Cached`] groups, indexed by
    /// within-label rank of the *root* label, plus their nonzero ranks.
    facc: Vec<Vec<u64>>,
    facc_support: Vec<Vec<u32>>,
    pair_cache: FxHashMap<(u32, u32), PairCounts>,
    /// Pooled canonical encoder + output buffer for probing the level cache
    /// by raw bytes, instead of boxing a fresh key per non-leaf child.
    enc: KeyEncoder,
    key_buf: Vec<u8>,
}

impl PairCounts {
    /// Counts, for every node of `root_label`, its children labeled
    /// `child_label` — one pass over the child label's population.
    fn build(index: &DocIndex, root_label: LabelId, child_label: LabelId) -> Self {
        let parents = index.nodes_with_label(root_label);
        let mut cnt = vec![0u64; parents.len()];
        let mut support = Vec::new();
        for &u in index.nodes_with_label(child_label) {
            let Some(p) = index.parent(u) else { continue };
            let r = index.rank(p) as usize;
            if parents.get(r) == Some(&p) {
                if cnt[r] == 0 {
                    support.push(r as u32);
                }
                cnt[r] += 1;
            }
        }
        support.sort_unstable();
        Self { cnt, support }
    }
}

/// Counts each candidate; optionally returns its root map for the cache.
fn count_candidates(
    index: &DocIndex,
    cache: &FxHashMap<TwigKey, RootMap>,
    candidates: Vec<(TwigKey, Twig)>,
    threads: usize,
    keep_maps: bool,
) -> Vec<(TwigKey, u64, Option<RootMap>)> {
    if threads <= 1 || candidates.len() < 64 {
        let mut scratch = Scratch::default();
        return candidates
            .into_iter()
            .map(|(key, twig)| {
                let (count, map) = count_one(index, cache, &twig, keep_maps, &mut scratch);
                (key, count, map)
            })
            .collect();
    }
    // Work-stealing over a shared cursor: candidate cost varies wildly (a
    // deep same-label DP group can dominate a level), so a static chunk
    // split would serialize behind the unlucky worker. Results are written
    // back by index; keys never cross threads — they are moved out of the
    // owned candidates vec afterwards, pairing each with its slot.
    let cursor = std::sync::atomic::AtomicUsize::new(0);
    let workers = threads.min(candidates.len());
    let mut slots: Vec<Option<(u64, Option<RootMap>)>> = Vec::new();
    slots.resize_with(candidates.len(), || None);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                let cursor = &cursor;
                let candidates = &candidates;
                scope.spawn(move || {
                    let mut scratch = Scratch::default();
                    let mut out = Vec::new();
                    loop {
                        let i = cursor.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        let Some((_, twig)) = candidates.get(i) else {
                            break;
                        };
                        let (count, map) = count_one(index, cache, twig, keep_maps, &mut scratch);
                        out.push((i, count, map));
                    }
                    out
                })
            })
            .collect();
        for h in handles {
            for (i, count, map) in h.join().expect("mining worker panicked") {
                slots[i] = Some((count, map));
            }
        }
    });
    candidates
        .into_iter()
        .zip(slots)
        .map(|((key, _), slot)| {
            let (count, map) = slot.expect("every candidate counted");
            (key, count, map)
        })
        .collect()
}

/// Counts one candidate using the cached root maps of its child subtrees.
///
/// Cached maps are sparse `(rank, m)` pairs; each non-leaf child's map is
/// scattered into a dense per-label vector from `scratch` for the duration
/// of the call (and zeroed again on the way out), so the inner loops index
/// by [`DocIndex::rank`] with no hash probes.
///
/// When the candidate has at least one non-leaf child, the root loop runs
/// only over the *parents* of that child's map entries (the smallest map is
/// chosen) instead of every node carrying the root label: any other root
/// has no match of that subtree below it and would contribute zero anyway.
/// For selective patterns this shrinks the scan from the root label's
/// population to the subtree's occurrence count.
fn count_one<'c>(
    index: &DocIndex,
    cache: &'c FxHashMap<TwigKey, RootMap>,
    twig: &Twig,
    keep_map: bool,
    scratch: &mut Scratch<'c>,
) -> (u64, Option<RootMap>) {
    let root = twig.root();
    let candidates = index.nodes_with_label(twig.label(root));
    if candidates.is_empty() {
        return (0, keep_map.then(RootMap::new));
    }

    // Pass 1 — resolve cached maps before touching any scratch buffer, so
    // the missing-subtree early-out leaves the scratch invariant intact.
    let root_children = twig.children(root);
    scratch.cached.clear();
    for &c in root_children {
        if twig.children(c).is_empty() {
            scratch.cached.push(None); // Leaf: m = 1 on label match.
        } else {
            scratch
                .enc
                .encode_subtree_into(twig, c, &mut scratch.key_buf);
            match cache.get(scratch.key_buf.as_slice()) {
                Some(pairs) => scratch.cached.push(Some(pairs)),
                // Subtree does not occur => the candidate cannot occur.
                None => return (0, keep_map.then(RootMap::new)),
            }
        }
    }
    let root_label = twig.label(root);
    let Scratch {
        dense,
        dp,
        weights,
        cached,
        dense_slot,
        roots,
        group_labels,
        group_members,
        group_kind,
        facc,
        facc_support,
        pair_cache,
        ..
    } = scratch;

    // Group child indices by label (first-appearance order), reusing the
    // member vectors across calls.
    group_labels.clear();
    for (i, &c) in root_children.iter().enumerate() {
        let label = twig.label(c);
        match group_labels.iter().position(|&l| l == label) {
            Some(g) => group_members[g].push(i),
            None => {
                group_labels.push(label);
                if group_members.len() < group_labels.len() {
                    group_members.push(Vec::new());
                }
                let g = group_labels.len() - 1;
                group_members[g].clear();
                group_members[g].push(i);
            }
        }
    }
    let n_groups = group_labels.len();

    // Pass 2 — prepare each group's factor source. Leaf singletons read the
    // shared pair-count cache; cached singletons accumulate their map into a
    // dense per-root vector by walking each occurrence up to its parent (so
    // the root loop below never touches child lists for them); DP groups
    // scatter their members' maps by child rank, as the DP reads per-child
    // weights.
    dense_slot.clear();
    dense_slot.resize(root_children.len(), usize::MAX);
    group_kind.clear();
    let (mut n_dense, mut n_facc) = (0usize, 0usize);
    for g in 0..n_groups {
        let label = group_labels[g];
        let members = &group_members[g];
        if members.len() > 1 {
            // DP group: dense per-member child m-vectors.
            for &i in members {
                let Some(pairs) = cached[i] else { continue };
                if dense.len() == n_dense {
                    dense.push(Vec::new());
                }
                let buf = &mut dense[n_dense];
                let need = index.label_count(label) as usize;
                if buf.len() < need {
                    buf.resize(need, 0);
                }
                for &(rank, m) in pairs.iter() {
                    buf[rank as usize] = m;
                }
                dense_slot[i] = n_dense;
                n_dense += 1;
            }
            group_kind.push(GroupF::Dp);
        } else if let Some(pairs) = cached[members[0]] {
            // Cached singleton: accumulate m onto parents with root label.
            if facc.len() == n_facc {
                facc.push(Vec::new());
                facc_support.push(Vec::new());
            }
            let buf = &mut facc[n_facc];
            if buf.len() < candidates.len() {
                buf.resize(candidates.len(), 0);
            }
            let sup = &mut facc_support[n_facc];
            sup.clear();
            let child_nodes = index.nodes_with_label(label);
            for &(rank, m) in pairs.iter() {
                let Some(p) = index.parent(child_nodes[rank as usize]) else {
                    continue;
                };
                // `p` carries the root label iff its rank points back at
                // it inside the root label group.
                let r = index.rank(p) as usize;
                if candidates.get(r) == Some(&p) {
                    if buf[r] == 0 {
                        sup.push(r as u32);
                    }
                    buf[r] = buf[r].saturating_add(m); // m ≥ 1 keeps it > 0.
                }
            }
            group_kind.push(GroupF::Cached(n_facc));
            n_facc += 1;
        } else {
            // Leaf singleton: per-(root label, child label) child counts,
            // built once per worker and shared by every candidate.
            pair_cache
                .entry((root_label.0, label.0))
                .or_insert_with(|| PairCounts::build(index, root_label, label));
            group_kind.push(GroupF::Leaf);
        }
    }
    // All pair-cache insertions are done; immutable borrows are safe now.
    let leaf_counts: Vec<Option<&PairCounts>> = (0..n_groups)
        .map(|g| match group_kind[g] {
            GroupF::Leaf => Some(&pair_cache[&(root_label.0, group_labels[g].0)]),
            _ => None,
        })
        .collect();

    // Candidate roots: the smallest known support among the groups, or the
    // whole root label group when every group is a DP group. Roots outside
    // any group's support have that factor equal to zero and contribute
    // nothing, so restricting the loop leaves the count unchanged.
    let mut best: Option<&[u32]> = None;
    for g in 0..n_groups {
        let sup: &[u32] = match group_kind[g] {
            GroupF::Leaf => &leaf_counts[g].expect("leaf counts").support,
            GroupF::Cached(slot) => &facc_support[slot],
            GroupF::Dp => continue,
        };
        if best.is_none_or(|b| sup.len() < b.len()) {
            best = Some(sup);
        }
    }
    roots.clear();
    match best {
        None => roots.extend(0..candidates.len() as u32),
        Some(sup) => {
            roots.extend_from_slice(sup);
            roots.sort_unstable(); // Facc supports are built unsorted.
        }
    }

    let mut total: u64 = 0;
    let mut map = RootMap::new();
    for &rank_v in roots.iter() {
        let mut m_v: u64 = 1;
        for g in 0..n_groups {
            let f = match group_kind[g] {
                GroupF::Leaf => leaf_counts[g].expect("leaf counts").cnt[rank_v as usize],
                GroupF::Cached(slot) => facc[slot][rank_v as usize],
                GroupF::Dp => {
                    // Injective subset DP over the same-label group.
                    let v = candidates[rank_v as usize];
                    let members = &group_members[g];
                    let doc_children = index.children_with_label(v, group_labels[g]);
                    let n = members.len();
                    if doc_children.len() < n {
                        0
                    } else {
                        let full = (1usize << n) - 1;
                        dp.clear();
                        dp.resize(full + 1, 0);
                        dp[0] = 1;
                        weights.clear();
                        weights.resize(n, 0);
                        for &u in doc_children {
                            let rank = index.rank(u) as usize;
                            let mut any = false;
                            for (slot, &i) in members.iter().enumerate() {
                                weights[slot] = match dense_slot[i] {
                                    usize::MAX => 1,
                                    s => dense[s][rank],
                                };
                                any |= weights[slot] != 0;
                            }
                            if !any {
                                continue;
                            }
                            for mask in (1..=full).rev() {
                                let mut add = 0u64;
                                let mut bits = mask;
                                while bits != 0 {
                                    let s = bits.trailing_zeros() as usize;
                                    bits &= bits - 1;
                                    if weights[s] != 0 {
                                        add = add.saturating_add(
                                            dp[mask ^ (1 << s)].saturating_mul(weights[s]),
                                        );
                                    }
                                }
                                dp[mask] = dp[mask].saturating_add(add);
                            }
                        }
                        dp[full]
                    }
                }
            };
            if f == 0 {
                m_v = 0;
                break;
            }
            m_v = m_v.saturating_mul(f);
        }
        if m_v > 0 {
            total = total.saturating_add(m_v);
            if keep_map {
                map.push((rank_v, m_v)); // rank_v == index.rank(v).
            }
        }
    }

    // Pass 3 — un-scatter: restore the all-zero invariant of the dense and
    // facc pools by zeroing exactly the slots each map touched (O(nnz)).
    for (i, pairs) in cached.iter().enumerate() {
        let Some(pairs) = pairs else { continue };
        if dense_slot[i] == usize::MAX {
            continue; // Accumulated into facc, not scattered into dense.
        }
        let buf = &mut dense[dense_slot[i]];
        for &(rank, _) in pairs.iter() {
            buf[rank as usize] = 0;
        }
    }
    for slot in 0..n_facc {
        let buf = &mut facc[slot];
        for &r in &facc_support[slot] {
            buf[r as usize] = 0;
        }
    }

    (total, keep_map.then_some(map))
}

#[cfg(test)]
mod tests {
    use tl_datagen::{Dataset, GenConfig};
    use tl_twig::{count_matches, parse_twig_in};
    use tl_xml::{parse_document, ParseOptions};

    use super::*;

    fn doc(s: &str) -> Document {
        parse_document(s.as_bytes(), ParseOptions::default()).unwrap()
    }

    #[test]
    fn level1_counts_labels() {
        let d = doc("<a><b/><b/><c/></a>");
        let r = mine(&d, MineConfig::with_max_size(1));
        assert_eq!(r.lattice.max_size(), 1);
        assert_eq!(r.lattice.patterns_at(1), 3);
        let b = parse_twig_in("b", d.labels()).unwrap();
        assert_eq!(r.lattice.get_twig(&b), Some(2));
    }

    #[test]
    fn level2_counts_edges() {
        let d = doc("<a><b><c/></b><b/></a>");
        let r = mine(&d, MineConfig::with_max_size(2));
        let ab = parse_twig_in("a/b", d.labels()).unwrap();
        let bc = parse_twig_in("b/c", d.labels()).unwrap();
        assert_eq!(r.lattice.get_twig(&ab), Some(2));
        assert_eq!(r.lattice.get_twig(&bc), Some(1));
        let ac = parse_twig_in("a/c", d.labels()).unwrap();
        assert_eq!(r.lattice.get_twig(&ac), None, "a/c does not occur");
    }

    #[test]
    fn figure1_lattice() {
        let d = doc("<computer><laptops>\
               <laptop><brand/><price/></laptop>\
               <laptop><brand/><price/></laptop>\
             </laptops><desktops/></computer>");
        let r = mine(&d, MineConfig::with_max_size(3));
        let q = parse_twig_in("laptop[brand][price]", d.labels()).unwrap();
        assert_eq!(r.lattice.get_twig(&q), Some(2));
    }

    #[test]
    fn shared_index_mine_matches_owned() {
        let d = Dataset::Xmark.generate(GenConfig {
            seed: 11,
            target_elements: 1200,
        });
        let index = DocIndex::new(&d);
        let cfg = MineConfig {
            max_size: 3,
            threads: 1,
        };
        let owned = mine(&d, cfg);
        let shared = mine_with_index(&index, cfg);
        assert_eq!(owned.lattice.len(), shared.lattice.len());
        for (key, count) in owned.lattice.iter() {
            assert_eq!(shared.lattice.get(key), Some(count));
        }
        assert_eq!(owned.candidates_per_level, shared.candidates_per_level);
    }

    /// Brute-force check: every mined count equals the exact matcher's
    /// count, and every occurring pattern is present.
    #[test]
    fn mined_counts_agree_with_exact_matcher() {
        let d = Dataset::Psd.generate(GenConfig {
            seed: 9,
            target_elements: 800,
        });
        let r = mine(
            &d,
            MineConfig {
                max_size: 4,
                threads: 1,
            },
        );
        let counter = tl_twig::MatchCounter::new(&d);
        let mut checked = 0;
        for size in 1..=4 {
            for (key, count) in r.lattice.iter_level(size) {
                let twig = key.decode();
                assert_eq!(
                    counter.count(&twig),
                    count,
                    "mined count mismatch for {:?}",
                    twig.to_query_string(d.labels())
                );
                checked += 1;
            }
        }
        assert!(checked > 50, "only {checked} patterns checked");
    }

    #[test]
    fn parallel_equals_serial() {
        let d = Dataset::Xmark.generate(GenConfig {
            seed: 4,
            target_elements: 3000,
        });
        let serial = mine(
            &d,
            MineConfig {
                max_size: 4,
                threads: 1,
            },
        );
        let parallel = mine(
            &d,
            MineConfig {
                max_size: 4,
                threads: 4,
            },
        );
        assert_eq!(serial.lattice.len(), parallel.lattice.len());
        for (key, count) in serial.lattice.iter() {
            assert_eq!(parallel.lattice.get(key), Some(count));
        }
    }

    #[test]
    fn all_subpatterns_of_stored_patterns_are_stored() {
        // Downward closure: the lattice is closed under leaf removal.
        let d = Dataset::Nasa.generate(GenConfig {
            seed: 2,
            target_elements: 1500,
        });
        let r = mine(
            &d,
            MineConfig {
                max_size: 4,
                threads: 1,
            },
        );
        for size in 2..=4 {
            for (key, _) in r.lattice.iter_level(size) {
                let twig = key.decode();
                for rnode in twig.removable_nodes() {
                    let sub = twig.remove_node(rnode);
                    assert!(
                        r.lattice.get_twig(&sub).is_some(),
                        "missing sub-pattern of a stored pattern"
                    );
                }
            }
        }
    }

    #[test]
    fn duplicate_sibling_patterns_counted_injectively() {
        let d = doc("<a><b/><b/><b/></a>");
        let r = mine(&d, MineConfig::with_max_size(3));
        // Pattern a[b][b]: 3 * 2 = 6 ordered injective pairs.
        let labels = d.labels().clone();
        let (a, b) = (labels.get("a").unwrap(), labels.get("b").unwrap());
        let mut q = Twig::single(a);
        q.add_child(q.root(), b);
        q.add_child(q.root(), b);
        assert_eq!(r.lattice.get_twig(&q), Some(6));
        assert_eq!(count_matches(&d, &q), 6);
    }

    #[test]
    fn mining_stops_when_a_level_is_empty() {
        let d = doc("<a><b/></a>");
        let r = mine(&d, MineConfig::with_max_size(6));
        // Only patterns: a, b, a/b — levels 3.. are empty.
        assert_eq!(r.lattice.len(), 3);
    }

    #[test]
    fn candidates_reported_per_level() {
        let d = doc("<a><b><c/></b></a>");
        let r = mine(&d, MineConfig::with_max_size(3));
        assert_eq!(r.candidates_per_level.len(), 3);
        assert_eq!(r.candidates_per_level[0], 3);
        assert!(r.candidates_per_level[1] >= 2);
    }

    #[test]
    fn observed_mining_reports_per_level_stats() {
        let d = doc("<a><b><c/></b><b/></a>");
        let index = DocIndex::new(&d);
        let cfg = MineConfig {
            max_size: 3,
            threads: 1,
        };
        let rec = tl_obs::MetricsRecorder::new();
        let observed = mine_with_index_observed(&index, cfg, &rec);
        let plain = mine_with_index(&index, cfg);
        assert_eq!(observed.lattice.len(), plain.lattice.len());
        for (key, count) in plain.lattice.iter() {
            assert_eq!(observed.lattice.get(key), Some(count));
        }
        let snap = rec.snapshot();
        assert_eq!(snap.counters[tl_obs::names::MINER_RUNS], 1);
        assert_eq!(snap.spans[tl_obs::names::SPAN_MINE].count, 1);
        // Per-level stats reconcile with the report and the aggregates.
        for (i, &n) in observed.candidates_per_level.iter().enumerate() {
            let level = i + 1;
            assert_eq!(
                snap.counters[&format!("miner.level{level}.candidates")],
                n as u64
            );
        }
        let kept: u64 = (1..=3)
            .map(|l| snap.counters[&format!("miner.level{l}.kept")])
            .sum();
        assert_eq!(snap.counters[tl_obs::names::MINER_KEPT], kept);
        assert_eq!(kept, observed.lattice.len() as u64);
        assert_eq!(
            snap.counters[tl_obs::names::MINER_CANDIDATES],
            observed.candidates_per_level.iter().sum::<usize>() as u64
        );
        assert_eq!(snap.spans["miner.level2"].count, 1);
    }

    #[test]
    fn recursive_structure_patterns() {
        let d = doc("<s><s><s/><s/></s></s>");
        let r = mine(&d, MineConfig::with_max_size(3));
        let labels = d.labels().clone();
        let s = labels.get("s").unwrap();
        // s/s edges: (1,2),(2,3),(2,4) = 3.
        assert_eq!(r.lattice.get_twig(&Twig::path(&[s, s])), Some(3));
        // s/s/s chains: (1,2,3),(1,2,4) = 2.
        assert_eq!(r.lattice.get_twig(&Twig::path(&[s, s, s])), Some(2));
        // s[s][s]: node 2 has two s children: 2 ordered pairs.
        let mut q = Twig::single(s);
        q.add_child(q.root(), s);
        q.add_child(q.root(), s);
        assert_eq!(r.lattice.get_twig(&q), Some(2));
    }
}
