//! The mining algorithm: candidate generation + root-map counting.

use tl_twig::canonical::{key_of, key_of_subtree};
use tl_twig::{Twig, TwigKey};
use tl_xml::{Document, FxHashMap, FxHashSet, NodeId};

/// Map from document node id to the number of matches of a pattern rooted
/// at that node (only nodes with a positive count are stored).
type RootMap = FxHashMap<u32, u64>;

/// Configuration for [`mine`].
#[derive(Clone, Copy, Debug)]
pub struct MineConfig {
    /// Largest pattern size to enumerate (the `k` of the k-lattice).
    pub max_size: usize,
    /// Worker threads for candidate counting. `0` means "use available
    /// parallelism"; `1` runs fully serial.
    pub threads: usize,
}

impl Default for MineConfig {
    fn default() -> Self {
        Self {
            max_size: 4,
            threads: 0,
        }
    }
}

impl MineConfig {
    /// A serial configuration with the given lattice order.
    pub fn with_max_size(max_size: usize) -> Self {
        Self {
            max_size,
            ..Self::default()
        }
    }

    fn effective_threads(&self) -> usize {
        if self.threads != 0 {
            self.threads
        } else {
            std::thread::available_parallelism().map_or(1, |n| n.get())
        }
    }
}

/// The result of a mining run.
#[derive(Clone, Debug)]
pub struct MineReport {
    /// The mined pattern counts.
    pub lattice: super::MinedLattice,
    /// Candidate patterns generated per level (before counting filtered the
    /// non-occurring ones) — levels are 1-based sizes, index 0 = size 1.
    pub candidates_per_level: Vec<usize>,
}

/// Mines all occurred twig patterns of `doc` up to `config.max_size` nodes,
/// with exact selectivities.
///
/// # Examples
///
/// ```
/// use tl_xml::{parse_document, ParseOptions};
/// use tl_miner::{mine, MineConfig};
/// use tl_twig::parse_twig_in;
///
/// let doc = parse_document(b"<a><b><c/></b><b/></a>", ParseOptions::default()).unwrap();
/// let report = mine(&doc, MineConfig { max_size: 3, threads: 1 });
/// let q = parse_twig_in("a/b", doc.labels()).unwrap();
/// assert_eq!(report.lattice.get_twig(&q), Some(2));
/// let q3 = parse_twig_in("a[b[c]][b]", doc.labels());
/// assert!(q3.is_ok());
/// ```
pub fn mine(doc: &Document, config: MineConfig) -> MineReport {
    assert!(config.max_size >= 1, "max_size must be at least 1");
    let by_label = doc.nodes_by_label();
    let child_labels = child_label_index(doc);

    let mut levels: Vec<FxHashMap<TwigKey, u64>> = Vec::with_capacity(config.max_size);
    let mut candidates_per_level: Vec<usize> = Vec::with_capacity(config.max_size);

    // Level 1: one pattern per occurring label.
    let mut level1 = FxHashMap::default();
    for (label_idx, nodes) in by_label.iter().enumerate() {
        if !nodes.is_empty() {
            let t = Twig::single(tl_xml::LabelId(label_idx as u32));
            level1.insert(key_of(&t), nodes.len() as u64);
        }
    }
    candidates_per_level.push(level1.len());
    levels.push(level1);

    // Root-map cache for patterns that may appear as subtrees of later
    // candidates (sizes 2 ..= max_size - 1). Size-1 subtrees are implicit.
    let mut cache: FxHashMap<TwigKey, RootMap> = FxHashMap::default();

    for size in 2..=config.max_size {
        let candidates = generate_candidates(&levels[size - 2], &child_labels);
        candidates_per_level.push(candidates.len());
        let keep_maps = size < config.max_size;
        let counted = count_candidates(
            doc,
            &by_label,
            &cache,
            candidates,
            config.effective_threads(),
            keep_maps,
        );
        let mut level = FxHashMap::default();
        for (key, count, map) in counted {
            if count == 0 {
                continue;
            }
            if keep_maps {
                cache.insert(key.clone(), map.expect("map kept when requested"));
            }
            level.insert(key, count);
        }
        let empty = level.is_empty();
        levels.push(level);
        if empty {
            break; // No pattern of this size occurs; larger ones cannot either.
        }
    }

    MineReport {
        lattice: super::MinedLattice::from_levels(levels),
        candidates_per_level,
    }
}

/// Distinct child labels per parent label, from the document's edges.
fn child_label_index(doc: &Document) -> Vec<FxHashSet<u32>> {
    let mut index = vec![FxHashSet::default(); doc.labels().len()];
    for v in doc.pre_order() {
        if let Some(p) = doc.parent(v) {
            index[doc.label(p).index()].insert(doc.label(v).0);
        }
    }
    index
}

/// Extends every level-(n−1) pattern by one child edge, deduplicates by
/// canonical key, and Apriori-prunes candidates with a non-occurring
/// sub-pattern. Returns canonical twigs sorted by key for determinism.
fn generate_candidates(
    prev: &FxHashMap<TwigKey, u64>,
    child_labels: &[FxHashSet<u32>],
) -> Vec<(TwigKey, Twig)> {
    let mut seen: FxHashSet<TwigKey> = FxHashSet::default();
    let mut out: Vec<(TwigKey, Twig)> = Vec::new();
    // Scratch twigs reused across the whole enumeration: `base` receives
    // each previous-level pattern, `sub` each one-smaller sub-pattern of a
    // candidate during the Apriori check.
    let mut base = Twig::single(tl_xml::LabelId(0));
    let mut sub = Twig::single(tl_xml::LabelId(0));
    for key in prev.keys() {
        key.decode_into(&mut base);
        for q in base.nodes() {
            let parent_label = base.label(q);
            let Some(labels) = child_labels.get(parent_label.index()) else {
                continue;
            };
            for &l in labels {
                let mut ext = base.clone();
                let added = ext.add_child(q, tl_xml::LabelId(l));
                let ext_key = key_of(&ext);
                if !seen.insert(ext_key.clone()) {
                    continue;
                }
                // Apriori: every one-smaller sub-pattern must occur.
                // Removing the node just added reproduces `base`, whose key
                // is in `prev` by construction — no need to re-canonicalize
                // that one.
                let ok = ext
                    .removable_nodes()
                    .into_iter()
                    .filter(|&r| r != added)
                    .all(|r| {
                        ext.remove_node_into(r, &mut sub);
                        prev.contains_key(&key_of(&sub))
                    });
                if ok {
                    out.push((ext_key, ext));
                }
            }
        }
    }
    out.sort_unstable_by(|a, b| a.0.cmp(&b.0));
    out
}

/// Counts each candidate; optionally returns its root map for the cache.
fn count_candidates(
    doc: &Document,
    by_label: &[Vec<NodeId>],
    cache: &FxHashMap<TwigKey, RootMap>,
    candidates: Vec<(TwigKey, Twig)>,
    threads: usize,
    keep_maps: bool,
) -> Vec<(TwigKey, u64, Option<RootMap>)> {
    if threads <= 1 || candidates.len() < 64 {
        return candidates
            .into_iter()
            .map(|(key, twig)| {
                let (count, map) = count_one(doc, by_label, cache, &twig, keep_maps);
                (key, count, map)
            })
            .collect();
    }
    // Work-stealing over a shared cursor: candidate cost varies wildly (a
    // deep same-label DP group can dominate a level), so a static chunk
    // split would serialize behind the unlucky worker. Results are written
    // back by index, keeping the output order identical to the serial path.
    let cursor = std::sync::atomic::AtomicUsize::new(0);
    let workers = threads.min(candidates.len());
    let mut slots: Vec<Option<(TwigKey, u64, Option<RootMap>)>> = Vec::new();
    slots.resize_with(candidates.len(), || None);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                let cursor = &cursor;
                let candidates = &candidates;
                scope.spawn(move || {
                    let mut out = Vec::new();
                    loop {
                        let i = cursor.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        let Some((key, twig)) = candidates.get(i) else {
                            break;
                        };
                        let (count, map) = count_one(doc, by_label, cache, twig, keep_maps);
                        out.push((i, key.clone(), count, map));
                    }
                    out
                })
            })
            .collect();
        for h in handles {
            for (i, key, count, map) in h.join().expect("mining worker panicked") {
                slots[i] = Some((key, count, map));
            }
        }
    });
    slots
        .into_iter()
        .map(|s| s.expect("every candidate counted"))
        .collect()
}

/// Counts one candidate using the cached root maps of its child subtrees.
fn count_one(
    doc: &Document,
    by_label: &[Vec<NodeId>],
    cache: &FxHashMap<TwigKey, RootMap>,
    twig: &Twig,
    keep_map: bool,
) -> (u64, Option<RootMap>) {
    let root = twig.root();
    // Child subtrees: label, size, and (for size > 1) cached root map.
    struct Child<'c> {
        label: tl_xml::LabelId,
        map: Option<&'c RootMap>, // None = leaf (size 1)
    }
    let mut children: Vec<Child<'_>> = Vec::with_capacity(twig.children(root).len());
    for &c in twig.children(root) {
        let map = if twig.children(c).is_empty() {
            None
        } else {
            let key = key_of_subtree(twig, c);
            match cache.get(&key) {
                Some(m) => Some(m),
                // Subtree does not occur => the candidate cannot occur.
                None => return (0, keep_map.then(RootMap::default)),
            }
        };
        children.push(Child {
            label: twig.label(c),
            map,
        });
    }
    // Group child indices by label.
    let mut groups: Vec<(tl_xml::LabelId, Vec<usize>)> = Vec::new();
    for (i, ch) in children.iter().enumerate() {
        match groups.iter_mut().find(|(l, _)| *l == ch.label) {
            Some((_, v)) => v.push(i),
            None => groups.push((ch.label, vec![i])),
        }
    }

    let child_m = |i: usize, u: NodeId| -> u64 {
        let ch = &children[i];
        match ch.map {
            None => 1, // label already checked by the caller of child_m
            Some(m) => m.get(&u.0).copied().unwrap_or(0),
        }
    };

    let candidates = by_label
        .get(twig.label(root).index())
        .map(Vec::as_slice)
        .unwrap_or(&[]);
    let mut total: u64 = 0;
    let mut map = RootMap::default();
    let mut doc_children: Vec<NodeId> = Vec::new();
    for &v in candidates {
        doc_children.clear();
        doc_children.extend(doc.children(v));
        let mut m_v: u64 = 1;
        for (label, members) in &groups {
            let f = if members.len() == 1 {
                let i = members[0];
                let mut sum = 0u64;
                for &u in &doc_children {
                    if doc.label(u) == *label {
                        sum = sum.saturating_add(child_m(i, u));
                    }
                }
                sum
            } else {
                // Injective subset DP over the same-label group.
                let g = members.len();
                let full = (1usize << g) - 1;
                let mut f = vec![0u64; full + 1];
                f[0] = 1;
                let mut w = vec![0u64; g];
                for &u in &doc_children {
                    if doc.label(u) != *label {
                        continue;
                    }
                    let mut any = false;
                    for (slot, &i) in members.iter().enumerate() {
                        w[slot] = child_m(i, u);
                        any |= w[slot] != 0;
                    }
                    if !any {
                        continue;
                    }
                    for mask in (1..=full).rev() {
                        let mut add = 0u64;
                        let mut bits = mask;
                        while bits != 0 {
                            let s = bits.trailing_zeros() as usize;
                            bits &= bits - 1;
                            if w[s] != 0 {
                                add = add.saturating_add(f[mask ^ (1 << s)].saturating_mul(w[s]));
                            }
                        }
                        f[mask] = f[mask].saturating_add(add);
                    }
                }
                f[full]
            };
            if f == 0 {
                m_v = 0;
                break;
            }
            m_v = m_v.saturating_mul(f);
        }
        if m_v > 0 {
            total = total.saturating_add(m_v);
            if keep_map {
                map.insert(v.0, m_v);
            }
        }
    }
    (total, keep_map.then_some(map))
}

#[cfg(test)]
mod tests {
    use tl_datagen::{Dataset, GenConfig};
    use tl_twig::{count_matches, parse_twig_in};
    use tl_xml::{parse_document, ParseOptions};

    use super::*;

    fn doc(s: &str) -> Document {
        parse_document(s.as_bytes(), ParseOptions::default()).unwrap()
    }

    #[test]
    fn level1_counts_labels() {
        let d = doc("<a><b/><b/><c/></a>");
        let r = mine(&d, MineConfig::with_max_size(1));
        assert_eq!(r.lattice.max_size(), 1);
        assert_eq!(r.lattice.patterns_at(1), 3);
        let b = parse_twig_in("b", d.labels()).unwrap();
        assert_eq!(r.lattice.get_twig(&b), Some(2));
    }

    #[test]
    fn level2_counts_edges() {
        let d = doc("<a><b><c/></b><b/></a>");
        let r = mine(&d, MineConfig::with_max_size(2));
        let ab = parse_twig_in("a/b", d.labels()).unwrap();
        let bc = parse_twig_in("b/c", d.labels()).unwrap();
        assert_eq!(r.lattice.get_twig(&ab), Some(2));
        assert_eq!(r.lattice.get_twig(&bc), Some(1));
        let ac = parse_twig_in("a/c", d.labels()).unwrap();
        assert_eq!(r.lattice.get_twig(&ac), None, "a/c does not occur");
    }

    #[test]
    fn figure1_lattice() {
        let d = doc("<computer><laptops>\
               <laptop><brand/><price/></laptop>\
               <laptop><brand/><price/></laptop>\
             </laptops><desktops/></computer>");
        let r = mine(&d, MineConfig::with_max_size(3));
        let q = parse_twig_in("laptop[brand][price]", d.labels()).unwrap();
        assert_eq!(r.lattice.get_twig(&q), Some(2));
    }

    /// Brute-force check: every mined count equals the exact matcher's
    /// count, and every occurring pattern is present.
    #[test]
    fn mined_counts_agree_with_exact_matcher() {
        let d = Dataset::Psd.generate(GenConfig {
            seed: 9,
            target_elements: 800,
        });
        let r = mine(
            &d,
            MineConfig {
                max_size: 4,
                threads: 1,
            },
        );
        let counter = tl_twig::MatchCounter::new(&d);
        let mut checked = 0;
        for size in 1..=4 {
            for (key, count) in r.lattice.iter_level(size) {
                let twig = key.decode();
                assert_eq!(
                    counter.count(&twig),
                    count,
                    "mined count mismatch for {:?}",
                    twig.to_query_string(d.labels())
                );
                checked += 1;
            }
        }
        assert!(checked > 50, "only {checked} patterns checked");
    }

    #[test]
    fn parallel_equals_serial() {
        let d = Dataset::Xmark.generate(GenConfig {
            seed: 4,
            target_elements: 3000,
        });
        let serial = mine(
            &d,
            MineConfig {
                max_size: 4,
                threads: 1,
            },
        );
        let parallel = mine(
            &d,
            MineConfig {
                max_size: 4,
                threads: 4,
            },
        );
        assert_eq!(serial.lattice.len(), parallel.lattice.len());
        for (key, count) in serial.lattice.iter() {
            assert_eq!(parallel.lattice.get(key), Some(count));
        }
    }

    #[test]
    fn all_subpatterns_of_stored_patterns_are_stored() {
        // Downward closure: the lattice is closed under leaf removal.
        let d = Dataset::Nasa.generate(GenConfig {
            seed: 2,
            target_elements: 1500,
        });
        let r = mine(
            &d,
            MineConfig {
                max_size: 4,
                threads: 1,
            },
        );
        for size in 2..=4 {
            for (key, _) in r.lattice.iter_level(size) {
                let twig = key.decode();
                for rnode in twig.removable_nodes() {
                    let sub = twig.remove_node(rnode);
                    assert!(
                        r.lattice.get_twig(&sub).is_some(),
                        "missing sub-pattern of a stored pattern"
                    );
                }
            }
        }
    }

    #[test]
    fn duplicate_sibling_patterns_counted_injectively() {
        let d = doc("<a><b/><b/><b/></a>");
        let r = mine(&d, MineConfig::with_max_size(3));
        // Pattern a[b][b]: 3 * 2 = 6 ordered injective pairs.
        let labels = d.labels().clone();
        let (a, b) = (labels.get("a").unwrap(), labels.get("b").unwrap());
        let mut q = Twig::single(a);
        q.add_child(q.root(), b);
        q.add_child(q.root(), b);
        assert_eq!(r.lattice.get_twig(&q), Some(6));
        assert_eq!(count_matches(&d, &q), 6);
    }

    #[test]
    fn mining_stops_when_a_level_is_empty() {
        let d = doc("<a><b/></a>");
        let r = mine(&d, MineConfig::with_max_size(6));
        // Only patterns: a, b, a/b — levels 3.. are empty.
        assert_eq!(r.lattice.len(), 3);
    }

    #[test]
    fn candidates_reported_per_level() {
        let d = doc("<a><b><c/></b></a>");
        let r = mine(&d, MineConfig::with_max_size(3));
        assert_eq!(r.candidates_per_level.len(), 3);
        assert_eq!(r.candidates_per_level[0], 3);
        assert!(r.candidates_per_level[1] >= 2);
    }

    #[test]
    fn recursive_structure_patterns() {
        let d = doc("<s><s><s/><s/></s></s>");
        let r = mine(&d, MineConfig::with_max_size(3));
        let labels = d.labels().clone();
        let s = labels.get("s").unwrap();
        // s/s edges: (1,2),(2,3),(2,4) = 3.
        assert_eq!(r.lattice.get_twig(&Twig::path(&[s, s])), Some(3));
        // s/s/s chains: (1,2,3),(1,2,4) = 2.
        assert_eq!(r.lattice.get_twig(&Twig::path(&[s, s, s])), Some(2));
        // s[s][s]: node 2 has two s children: 2 ordered pairs.
        let mut q = Twig::single(s);
        q.add_child(q.root(), s);
        q.add_child(q.root(), s);
        assert_eq!(r.lattice.get_twig(&q), Some(2));
    }
}
