//! Incremental lattice maintenance after document edits.
//!
//! The paper notes (§2.2) that "our approach by design is also incremental
//! in nature and can maintain summaries on-line". The enabling observation:
//! every match gained or lost by an edit uses at least one added or removed
//! node, so **a pattern containing none of the edit's touched labels has
//! exactly the same count before and after**. [`update_mined`] therefore:
//!
//! 1. recounts level-1 entries from the new document (cheap);
//! 2. regenerates candidates level-wise as in a full mine, but for each
//!    candidate that contains *no* touched label it reuses the previous
//!    lattice's count verbatim, and only candidates overlapping the touched
//!    label set are recounted (with the exact [`tl_twig::MatchCounter`]);
//! 3. newly occurring patterns necessarily contain a touched label
//!    (their matches are new), so they are found by step 2.
//!
//! For record-append workloads (the common case for the paper's corpora,
//! which grow by records) the touched set is one record schema's labels,
//! and the bulk of the lattice is carried over without recounting.

use tl_twig::canonical::key_of;
use tl_twig::{MatchCounter, Twig, TwigKey};
use tl_xml::{DocIndex, Document, FxHashMap, FxHashSet, LabelId};

use crate::lattice::MinedLattice;
use crate::mine::MineConfig;

/// Statistics of an incremental update.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct UpdateReport {
    /// Patterns whose counts were carried over unchanged.
    pub reused: usize,
    /// Patterns recounted against the new document.
    pub recounted: usize,
}

/// Rebuilds a mined lattice for `doc_new`, reusing counts from `prev` for
/// every pattern that contains none of the `touched` labels.
///
/// `prev` must have been mined (at the same `max_size`) from the document
/// this edit started from, and `touched` must cover the labels of all
/// added/removed nodes (as produced by [`tl_xml::append_subtree`] /
/// [`tl_xml::remove_subtree`]).
pub fn update_mined(
    doc_new: &Document,
    prev: &MinedLattice,
    touched: &[LabelId],
    config: MineConfig,
) -> (MinedLattice, UpdateReport) {
    update_mined_with_index(doc_new, &DocIndex::new(doc_new), prev, touched, config)
}

/// [`update_mined`] over a pre-built index of `doc_new`, for callers that
/// already indexed the post-edit document (e.g. to serve queries from it).
pub fn update_mined_with_index(
    doc_new: &Document,
    index: &DocIndex,
    prev: &MinedLattice,
    touched: &[LabelId],
    config: MineConfig,
) -> (MinedLattice, UpdateReport) {
    assert!(config.max_size >= 1);
    let touched_set: FxHashSet<u32> = touched.iter().map(|l| l.0).collect();
    let counter = MatchCounter::with_index(doc_new, index);
    let mut report = UpdateReport::default();

    // Level 1 from the new document directly.
    let mut levels: Vec<FxHashMap<TwigKey, u64>> = Vec::with_capacity(config.max_size);
    let mut level1 = FxHashMap::default();
    for idx in 0..index.n_labels() {
        let label = LabelId(idx as u32);
        let count = index.label_count(label);
        if count > 0 {
            level1.insert(key_of(&Twig::single(label)), count);
        }
    }
    levels.push(level1);

    // The index's label-level adjacency (of the *new* document) bounds
    // candidate generation.
    for size in 2..=config.max_size {
        let mut level = FxHashMap::default();
        let mut seen: FxHashSet<TwigKey> = FxHashSet::default();
        for base_key in levels[size - 2].keys() {
            let base = base_key.decode();
            for q in base.nodes() {
                for &l in index.child_labels_of(base.label(q)) {
                    let mut ext = base.clone();
                    ext.add_child(q, l);
                    let key = key_of(&ext);
                    if !seen.insert(key.clone()) {
                        continue;
                    }
                    let unaffected = ext.nodes().all(|n| !touched_set.contains(&ext.label(n).0));
                    let count = if unaffected {
                        report.reused += 1;
                        prev.get(&key).unwrap_or(0)
                    } else {
                        report.recounted += 1;
                        counter.count(&ext)
                    };
                    if count > 0 {
                        level.insert(key, count);
                    }
                }
            }
        }
        let empty = level.is_empty();
        levels.push(level);
        if empty {
            break;
        }
    }
    (MinedLattice::from_levels(levels), report)
}

#[cfg(test)]
mod tests {
    use tl_xml::{append_subtree, parse_document, remove_subtree, ParseOptions};

    use crate::mine::mine;

    use super::*;

    fn doc(s: &str) -> Document {
        parse_document(s.as_bytes(), ParseOptions::default()).unwrap()
    }

    fn assert_lattices_equal(a: &MinedLattice, b: &MinedLattice, context: &str) {
        assert_eq!(a.len(), b.len(), "{context}: pattern count");
        for (key, count) in a.iter() {
            assert_eq!(b.get(key), Some(count), "{context}: count mismatch");
        }
    }

    #[test]
    fn append_matches_full_remine() {
        let base = doc("<r><a><b/><c/></a><a><b/></a><d/></r>");
        let record = doc("<a><b/><e/></a>");
        let cfg = MineConfig {
            max_size: 4,
            threads: 1,
        };
        let prev = mine(&base, cfg).lattice;
        let edit = append_subtree(&base, base.root(), &record);
        let (incremental, report) = update_mined(&edit.document, &prev, &edit.touched, cfg);
        let full = mine(&edit.document, cfg).lattice;
        assert_lattices_equal(&incremental, &full, "append");
        assert!(report.recounted > 0);
    }

    #[test]
    fn removal_matches_full_remine() {
        let base = doc("<r><a><b/><c/></a><a><b/><c/></a><d><e/></d></r>");
        let cfg = MineConfig {
            max_size: 3,
            threads: 1,
        };
        let prev = mine(&base, cfg).lattice;
        // Remove the second <a> subtree (find it by scanning).
        let second_a = base
            .pre_order()
            .filter(|&n| base.label_name(base.label(n)) == "a")
            .nth(1)
            .unwrap();
        let edit = remove_subtree(&base, second_a);
        let (incremental, _) = update_mined(&edit.document, &prev, &edit.touched, cfg);
        let full = mine(&edit.document, cfg).lattice;
        assert_lattices_equal(&incremental, &full, "removal");
    }

    #[test]
    fn untouched_patterns_are_reused_not_recounted() {
        // Appending an <x><y/></x> record cannot affect any a/b/c pattern.
        let mut body = String::from("<r>");
        for _ in 0..6 {
            body.push_str("<a><b><c/></b></a>");
        }
        body.push_str("</r>");
        let base = doc(&body);
        let record = doc("<x><y/></x>");
        let cfg = MineConfig {
            max_size: 3,
            threads: 1,
        };
        let prev = mine(&base, cfg).lattice;
        let edit = append_subtree(&base, base.root(), &record);
        let (incremental, report) = update_mined(&edit.document, &prev, &edit.touched, cfg);
        let full = mine(&edit.document, cfg).lattice;
        assert_lattices_equal(&incremental, &full, "disjoint append");
        assert!(
            report.reused > report.recounted,
            "most patterns are unaffected: {report:?}"
        );
    }

    #[test]
    fn repeated_appends_stay_consistent() {
        let mut current = doc("<r><a><b/></a></r>");
        let cfg = MineConfig {
            max_size: 3,
            threads: 1,
        };
        let mut lattice = mine(&current, cfg).lattice;
        for i in 0..5 {
            let record = if i % 2 == 0 {
                doc("<a><b/><c/></a>")
            } else {
                doc("<d><b/></d>")
            };
            let edit = append_subtree(&current, current.root(), &record);
            let (updated, _) = update_mined(&edit.document, &lattice, &edit.touched, cfg);
            current = edit.document;
            lattice = updated;
        }
        let full = mine(&current, cfg).lattice;
        assert_lattices_equal(&lattice, &full, "after 5 incremental appends");
    }

    #[test]
    fn new_labels_produce_new_patterns() {
        let base = doc("<r><a/></r>");
        let record = doc("<z><w/></z>");
        let cfg = MineConfig {
            max_size: 3,
            threads: 1,
        };
        let prev = mine(&base, cfg).lattice;
        let edit = append_subtree(&base, base.root(), &record);
        let (incremental, _) = update_mined(&edit.document, &prev, &edit.touched, cfg);
        let d = &edit.document;
        let q = tl_twig::parse_twig_in("r/z/w", d.labels()).unwrap();
        assert_eq!(incremental.get_twig(&q), Some(1));
    }
}
