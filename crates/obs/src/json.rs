//! A minimal JSON value model, parser, and writer.
//!
//! The workspace carries no JSON dependency, so the snapshot format and the
//! CI gate thresholds are read and written with this module. It supports
//! the full JSON grammar the snapshots use: objects, arrays, strings with
//! standard escapes, numbers, booleans, and null. Integer literals that fit
//! `u64` are kept exact ([`Json::UInt`]) so counter values round-trip
//! without floating-point loss.

use std::fmt;

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A non-negative integer literal that fits `u64`, kept exact.
    UInt(u64),
    /// Any other number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order is preserved.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// The value of `key` in an object, if present.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// This value as `u64`, accepting exact integers and integral floats.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Json::UInt(n) => Some(n),
            Json::Num(f) if f >= 0.0 && f.fract() == 0.0 && f <= u64::MAX as f64 => Some(f as u64),
            _ => None,
        }
    }

    /// This value as `f64`.
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Json::UInt(n) => Some(n as f64),
            Json::Num(f) => Some(f),
            _ => None,
        }
    }

    /// This value as `&str`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// This value's array items.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// This value's object entries.
    pub fn entries(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(entries) => Some(entries),
            _ => None,
        }
    }
}

/// Where and why parsing failed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the failure.
    pub offset: usize,
    /// What was expected or found.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

/// Parses one JSON document; trailing whitespace is allowed, trailing
/// content is an error.
pub fn parse(input: &str) -> Result<Json, JsonError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing content"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: impl Into<String>) -> JsonError {
        JsonError {
            offset: self.pos,
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected `{}`", b as char)))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn literal(&mut self, text: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected `{text}`")))
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(entries));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("bad escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000C}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are not produced by our writer;
                            // lone surrogates map to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                        }
                        other => return Err(self.err(format!("bad escape `\\{}`", other as char))),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 code point.
                    let start = self.pos;
                    let s = std::str::from_utf8(&self.bytes[start..])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    let ch = s.chars().next().ok_or_else(|| self.err("empty"))?;
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let integral_end = self.pos;
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ASCII digits");
        if integral_end == self.pos {
            // Pure integer literal: keep u64 exact when it fits.
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Json::UInt(n));
            }
        }
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err(format!("bad number `{text}`")))
    }
}

/// Appends `s` as a JSON string literal (with escapes) to `out`.
pub fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Appends `x` as a JSON number. Finite values round-trip (`{:?}` prints
/// the shortest representation that parses back equal); non-finite values
/// are clamped to `null`-safe sentinels since JSON has no inf/NaN.
pub fn write_f64(out: &mut String, x: f64) {
    if x.is_finite() {
        out.push_str(&format!("{x:?}"));
    } else if x.is_nan() {
        out.push_str("0.0");
    } else if x > 0.0 {
        out.push_str(&format!("{:?}", f64::MAX));
    } else {
        out.push_str(&format!("{:?}", f64::MIN));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), Json::Null);
        assert_eq!(parse("true").unwrap(), Json::Bool(true));
        assert_eq!(parse("false").unwrap(), Json::Bool(false));
        assert_eq!(parse("42").unwrap(), Json::UInt(42));
        assert_eq!(parse("-1").unwrap(), Json::Num(-1.0));
        assert_eq!(parse("1.5").unwrap(), Json::Num(1.5));
        assert_eq!(parse("1e3").unwrap(), Json::Num(1000.0));
        assert_eq!(parse("\"hi\"").unwrap(), Json::Str("hi".into()));
    }

    #[test]
    fn large_integers_stay_exact() {
        let v = parse(&u64::MAX.to_string()).unwrap();
        assert_eq!(v.as_u64(), Some(u64::MAX));
    }

    #[test]
    fn parses_nested_structures() {
        let v = parse(r#"{"a": [1, {"b": "c"}], "d": {}}"#).unwrap();
        let a = v.get("a").unwrap().as_arr().unwrap();
        assert_eq!(a[0].as_u64(), Some(1));
        assert_eq!(a[1].get("b").unwrap().as_str(), Some("c"));
        assert_eq!(v.get("d").unwrap().entries().unwrap().len(), 0);
    }

    #[test]
    fn string_escapes_round_trip() {
        let original = "line1\nline2\t\"quoted\" \\ \u{0001} π";
        let mut encoded = String::new();
        write_escaped(&mut encoded, original);
        assert_eq!(parse(&encoded).unwrap().as_str(), Some(original));
    }

    #[test]
    fn float_writer_round_trips() {
        for x in [0.0, 1.5, 0.1, 123456.789, 1e-9, f64::MAX] {
            let mut s = String::new();
            write_f64(&mut s, x);
            assert_eq!(parse(&s).unwrap().as_f64(), Some(x), "{x}");
        }
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(parse("").is_err());
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{\"a\" 1}").is_err());
        assert!(parse("12 34").is_err());
        assert!(parse("\"unterminated").is_err());
    }

    #[test]
    fn errors_carry_offsets() {
        let err = parse("[1, x]").unwrap_err();
        assert_eq!(err.offset, 4);
        assert!(err.to_string().contains("byte 4"));
    }
}
