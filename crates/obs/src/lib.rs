//! # tl-obs — the observability layer
//!
//! A zero-dependency metrics substrate for the TreeLattice pipeline. Every
//! production crate reports through the [`Recorder`] trait:
//!
//! * **counters** — monotone `u64` totals (`engine.cache.hits`);
//! * **histograms** — base-2 exponential bucket distributions of observed
//!   values (`engine.query.latency_us`);
//! * **gauges** — last-written `f64` values, used by the bench harness so
//!   `BENCH_*.json` and runtime metrics share one schema;
//! * **spans** — monotonic wall-clock timings of named pipeline stages
//!   (`xml.parse`, `miner.mine`), aggregated as count/total/min/max.
//!
//! The default recorder is [`NOOP`]: every method is an empty body and
//! [`Recorder::enabled`] returns `false`, so instrumented hot paths skip
//! even the `Instant::now()` timestamp when nobody is listening.
//! [`MetricsRecorder`] is the collecting implementation; it is `Sync`, safe
//! to share across worker threads, and snapshots into a [`Snapshot`] with a
//! stable JSON schema (`tl-metrics/1`, see [`Snapshot::to_json`]).
//!
//! ```
//! use tl_obs::{MetricsRecorder, Recorder, SpanGuard};
//!
//! let rec = MetricsRecorder::new();
//! {
//!     let _span = SpanGuard::start(&rec, "xml.parse");
//!     rec.add("xml.parse.docs", 1);
//!     rec.observe("engine.query.latency_us", 180);
//! }
//! let snap = rec.snapshot();
//! assert_eq!(snap.counters["xml.parse.docs"], 1);
//! assert_eq!(snap.spans["xml.parse"].count, 1);
//! let round_trip = tl_obs::Snapshot::from_json(&snap.to_json()).unwrap();
//! assert_eq!(snap, round_trip);
//! ```

pub mod json;
pub mod names;
mod recorder;
mod snapshot;

use std::borrow::Cow;
use std::time::Instant;

pub use recorder::MetricsRecorder;
pub use snapshot::{HistSnapshot, Snapshot, SpanSnapshot};

/// The metric sink the pipeline reports into.
///
/// All methods have empty default bodies, so an implementation opts into
/// exactly the signal kinds it cares about. Implementations must be
/// thread-safe: one recorder is shared by the batch engine's workers and
/// the miner's counting threads.
pub trait Recorder: Send + Sync {
    /// Whether recording is live. Instrumented code checks this before
    /// paying for anything that is only needed when metrics are collected
    /// (taking timestamps, formatting dynamic metric names).
    fn enabled(&self) -> bool {
        false
    }

    /// Adds `delta` to the counter `name`.
    fn add(&self, name: &str, delta: u64) {
        let _ = (name, delta);
    }

    /// Records one observation of `value` into the histogram `name`.
    fn observe(&self, name: &str, value: u64) {
        let _ = (name, value);
    }

    /// Sets the gauge `name` to `value` (last write wins).
    fn gauge(&self, name: &str, value: f64) {
        let _ = (name, value);
    }

    /// Records one completed span of `nanos` wall-clock nanoseconds under
    /// `name`. Usually called by [`SpanGuard`] on drop, not directly.
    fn span(&self, name: &str, nanos: u64) {
        let _ = (name, nanos);
    }
}

/// The no-op recorder: every signal is discarded, [`Recorder::enabled`] is
/// `false`. This is what un-instrumented entry points pass down, keeping
/// the observed code paths identical whether or not anyone is measuring.
#[derive(Clone, Copy, Debug, Default)]
pub struct Noop;

impl Recorder for Noop {}

/// A `'static` [`Noop`] instance for default `&dyn Recorder` arguments.
pub static NOOP: Noop = Noop;

/// RAII span timer: measures monotonic wall-clock time from construction to
/// drop and reports it to the recorder. When the recorder is disabled, no
/// timestamp is taken and drop is free.
#[must_use = "a span measures until dropped; binding to _ drops immediately"]
pub struct SpanGuard<'r> {
    rec: &'r dyn Recorder,
    name: Cow<'static, str>,
    start: Option<Instant>,
}

impl<'r> SpanGuard<'r> {
    /// Starts a span named by a static string (the common case).
    pub fn start(rec: &'r dyn Recorder, name: &'static str) -> Self {
        Self {
            rec,
            name: Cow::Borrowed(name),
            start: rec.enabled().then(Instant::now),
        }
    }

    /// Starts a span with a dynamically built name (e.g. a per-level miner
    /// span). The string is only materialized by callers that checked
    /// [`Recorder::enabled`] first.
    pub fn start_dynamic(rec: &'r dyn Recorder, name: String) -> Self {
        Self {
            rec,
            name: Cow::Owned(name),
            start: rec.enabled().then(Instant::now),
        }
    }
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        if let Some(start) = self.start {
            let nanos = start.elapsed().as_nanos().min(u64::MAX as u128) as u64;
            self.rec.span(&self.name, nanos);
        }
    }
}

/// The bucket a value falls into in the base-2 exponential histogram:
/// bucket `0` holds only zero, bucket `i >= 1` holds `[2^(i-1), 2^i)`.
/// There are [`N_BUCKETS`] buckets; `u64::MAX` lands in the last one.
#[inline]
pub fn bucket_index(value: u64) -> usize {
    if value == 0 {
        0
    } else {
        64 - value.leading_zeros() as usize
    }
}

/// Inclusive lower bound of histogram bucket `i` (see [`bucket_index`]).
#[inline]
pub fn bucket_lower_bound(i: usize) -> u64 {
    if i == 0 {
        0
    } else {
        1u64 << (i - 1)
    }
}

/// Number of buckets in the base-2 exponential histogram.
pub const N_BUCKETS: usize = 65;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noop_is_disabled_and_silent() {
        assert!(!NOOP.enabled());
        // All default methods are callable and side-effect free.
        NOOP.add("x", 1);
        NOOP.observe("x", 1);
        NOOP.gauge("x", 1.0);
        NOOP.span("x", 1);
    }

    #[test]
    fn bucket_boundaries_are_powers_of_two() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(7), 3);
        assert_eq!(bucket_index(8), 4);
        assert_eq!(bucket_index(u64::MAX), 64);
        // Every bucket's lower bound maps back into that bucket, and the
        // value just below it maps into the previous one.
        for i in 1..N_BUCKETS {
            let lo = bucket_lower_bound(i);
            assert_eq!(bucket_index(lo), i, "lower bound of bucket {i}");
            assert_eq!(bucket_index(lo - 1), i - 1, "predecessor of bucket {i}");
        }
    }

    #[test]
    fn span_guard_on_noop_takes_no_timestamp() {
        let guard = SpanGuard::start(&NOOP, "test.span");
        assert!(guard.start.is_none());
    }

    #[test]
    fn span_guard_records_on_drop() {
        let rec = MetricsRecorder::new();
        {
            let _g = SpanGuard::start(&rec, "test.span");
        }
        let snap = rec.snapshot();
        assert_eq!(snap.spans["test.span"].count, 1);
    }
}
