//! The stable metric-name vocabulary of the pipeline.
//!
//! Every instrumented crate records under one of these names (plus a small
//! set of dynamic per-level miner names, `miner.level<N>.*`). The CLI's
//! `--metrics` snapshots pre-register the whole vocabulary through
//! [`crate::MetricsRecorder::with_schema`], so a snapshot always contains
//! every family — zero-valued when the command did not exercise it — and
//! consumers can rely on key presence.

/// Documents parsed (`tl_xml::parse_document`).
pub const XML_PARSE_DOCS: &str = "xml.parse.docs";
/// Input bytes consumed by the XML parser.
pub const XML_PARSE_BYTES: &str = "xml.parse.bytes";
/// Element nodes produced by the XML parser.
pub const XML_PARSE_NODES: &str = "xml.parse.nodes";
/// Document indexes built (`tl_xml::DocIndex`).
pub const XML_INDEX_BUILDS: &str = "xml.index.builds";
/// Nodes indexed across all `DocIndex` builds.
pub const XML_INDEX_NODES: &str = "xml.index.nodes";

/// Exact match-kernel invocations (`tl_twig::MatchCounter`).
pub const TWIG_MATCH_CALLS: &str = "twig.match.calls";
/// Histogram: total m-table entries allocated per match-kernel call.
pub const TWIG_MATCH_M_ENTRIES: &str = "twig.match.m_entries";

/// Mining runs (`tl_miner::mine`).
pub const MINER_RUNS: &str = "miner.runs";
/// Candidate patterns generated across all levels.
pub const MINER_CANDIDATES: &str = "miner.candidates";
/// Patterns kept (count > 0) across all levels.
pub const MINER_KEPT: &str = "miner.patterns_kept";
/// Candidates counted to zero and dropped, across all levels.
pub const MINER_PRUNED_ZERO: &str = "miner.pruned_zero";
/// Shards (worker partial lattices) used by the last corpus mining run.
pub const MINER_CORPUS_SHARDS: &str = "miner.corpus.shards";
/// Milliseconds spent tree-reducing per-shard partial lattices into the
/// merged corpus lattice.
pub const MINER_MERGE_MS: &str = "miner.merge.ms";

/// Mmap catalogs opened (`treelattice::MmapCatalog`).
pub const CATALOG_MMAP_OPENS: &str = "catalog.mmap.opens";
/// Pattern-count lookups served straight from mapped frame bytes.
pub const CATALOG_MMAP_LOOKUPS: &str = "catalog.mmap.lookups";
/// Bytes mapped (or read, on the non-mmap fallback) across all opens.
pub const CATALOG_MMAP_BYTES_MAPPED: &str = "catalog.mmap.bytes_mapped";

/// Sub-twig lookups answered from the engine's shared cache.
pub const ENGINE_CACHE_HITS: &str = "engine.cache.hits";
/// Sub-twig lookups that had to be computed.
pub const ENGINE_CACHE_MISSES: &str = "engine.cache.misses";
/// Queries estimated (engine or observed per-query path).
pub const ENGINE_QUERIES: &str = "engine.queries";
/// Distinct sub-twig nodes materialized across all evaluation DAGs.
pub const ENGINE_DAG_NODES: &str = "engine.dag.nodes";
/// Total sub-twig references across all evaluation DAGs; the ratio to
/// `engine.dag.nodes` is the structural dedup factor.
pub const ENGINE_DAG_REFS: &str = "engine.dag.refs";
/// Fresh canonical encodings assigned an interned id (cumulative interner
/// occupancy when one engine feeds the recorder).
pub const ENGINE_INTERNER_KEYS: &str = "engine.interner.keys";
/// Canonical key bytes cloned into the interner; stays flat on warm
/// workloads — the allocation-free-probe guarantee, measurable.
pub const ENGINE_KEY_CLONE_BYTES: &str = "engine.interner.key_clone_bytes";
/// Histogram: per-query estimation latency in microseconds.
pub const QUERY_LATENCY_US: &str = "engine.query.latency_us";
/// Histogram: maximum decomposition recursion depth per query.
pub const DECOMP_DEPTH: &str = "engine.decomposition.depth";

/// Requests admitted by the server and answered through the full path
/// (queue + worker + requested estimator).
pub const SERVER_ACCEPTED: &str = "server.requests.accepted";
/// Admitted requests that had to wait behind other work (queue depth was
/// non-zero at enqueue time). Always ≤ `server.requests.accepted`.
pub const SERVER_QUEUED: &str = "server.requests.queued";
/// Requests rejected by admission control (tenant queue full or shutdown
/// draining) and answered degraded-with-provenance instead of queued.
pub const SERVER_SHED: &str = "server.requests.shed";
/// Client connections accepted by the listener.
pub const SERVER_CONNECTIONS: &str = "server.connections";
/// Server responses tagged with a non-`None` degradation (budget trips on
/// the worker path plus admission-control sheds).
pub const SERVER_RESP_DEGRADED: &str = "server.responses.degraded";
/// Server responses carrying a typed fault or usage error.
pub const SERVER_RESP_FAULT: &str = "server.responses.fault";
/// Gauge: queue depth sampled after each enqueue/dequeue.
pub const SERVER_QUEUE_DEPTH: &str = "server.queue.depth";
/// Histogram: server-side request latency (enqueue to response written),
/// microseconds. Per-tenant variants are `server.tenant.<name>.latency_us`.
pub const SERVER_LATENCY_US: &str = "server.latency_us";

/// Socket-option failures (`set_nodelay`/`set_read_timeout`) on accepted
/// connections — surfaced, never silently swallowed.
pub const SERVER_SOCKOPT_ERRORS: &str = "server.sockopt_errors";
/// Connections closed by the server's idle deadline (`--idle-timeout-ms`):
/// half-open or slow-loris peers shed deterministically.
pub const SERVER_IDLE_CLOSED: &str = "server.conn.idle_closed";

/// The per-tenant latency histogram name for `tenant`.
pub fn server_tenant_latency(tenant: &str) -> String {
    format!("server.tenant.{tenant}.latency_us")
}

/// WAL records appended (each one gates an update acknowledgement).
pub const WAL_APPENDS: &str = "wal.appends";
/// Bytes appended to the WAL (frames, including length/checksum).
pub const WAL_APPEND_BYTES: &str = "wal.append.bytes";
/// fsync(2) calls issued by the WAL writer (policy-dependent).
pub const WAL_FSYNCS: &str = "wal.fsyncs";
/// Appends that failed (torn/short write, fsync error, poisoned log);
/// each one is a typed fault to the caller, never an ack.
pub const WAL_APPEND_FAILURES: &str = "wal.append.failures";
/// WAL records replayed by startup recovery.
pub const WAL_REPLAYED: &str = "wal.replayed";
/// WAL truncations after a snapshot became durable.
pub const WAL_TRUNCATIONS: &str = "wal.truncations";
/// Atomic snapshots published (temp-file → fsync → rename).
pub const SNAPSHOT_WRITES: &str = "snapshot.writes";
/// Bytes written across all published snapshots.
pub const SNAPSHOT_BYTES: &str = "snapshot.bytes";
/// Snapshot attempts that failed (the WAL keeps covering the tail).
pub const SNAPSHOT_FAILURES: &str = "snapshot.failures";

/// Typed faults surfaced to callers (parse failures, corrupt summaries,
/// contained worker panics — injected or organic).
pub const FAULT_TOTAL: &str = "fault.total";
/// Batch worker panics contained by the engine's `catch_unwind` shell.
pub const FAULT_WORKER_PANICS: &str = "fault.worker_panics";
/// Faults injected by active `tl-fault` fail-points (chaos runs only).
pub const FAULT_INJECTED: &str = "fault.injected";
/// Resilient estimates that came from a degraded rung of the ladder
/// (reduced-k or Markov fall-back) after a budget trip.
pub const ENGINE_DEGRADED: &str = "engine.degraded";

/// Workload queries generated (`tl_workload`).
pub const WORKLOAD_QUERIES: &str = "workload.queries";
/// Synthetic elements generated (`tl_datagen`).
pub const DATAGEN_ELEMENTS: &str = "datagen.elements";

/// Span: XML parse wall-clock.
pub const SPAN_PARSE: &str = "xml.parse";
/// Span: document index build wall-clock.
pub const SPAN_INDEX: &str = "xml.index.build";
/// Span: full mining run wall-clock (per-level spans are
/// `miner.level<N>`).
pub const SPAN_MINE: &str = "miner.mine";
/// Span: one engine batch estimation call.
pub const SPAN_BATCH: &str = "engine.batch";
/// Span: workload generation.
pub const SPAN_WORKLOAD: &str = "workload.generate";
/// Span: synthetic document generation.
pub const SPAN_DATAGEN: &str = "datagen.generate";
/// Span: baseline synopsis construction (`tl_baselines`).
pub const SPAN_BASELINE_BUILD: &str = "baseline.build";

/// Counters pre-registered by [`crate::MetricsRecorder::with_schema`].
pub const SCHEMA_COUNTERS: &[&str] = &[
    XML_PARSE_DOCS,
    XML_PARSE_BYTES,
    XML_PARSE_NODES,
    XML_INDEX_BUILDS,
    XML_INDEX_NODES,
    TWIG_MATCH_CALLS,
    MINER_RUNS,
    MINER_CANDIDATES,
    MINER_KEPT,
    MINER_PRUNED_ZERO,
    MINER_CORPUS_SHARDS,
    MINER_MERGE_MS,
    CATALOG_MMAP_OPENS,
    CATALOG_MMAP_LOOKUPS,
    CATALOG_MMAP_BYTES_MAPPED,
    ENGINE_CACHE_HITS,
    ENGINE_CACHE_MISSES,
    ENGINE_QUERIES,
    ENGINE_DAG_NODES,
    ENGINE_DAG_REFS,
    ENGINE_INTERNER_KEYS,
    ENGINE_KEY_CLONE_BYTES,
    ENGINE_DEGRADED,
    SERVER_ACCEPTED,
    SERVER_QUEUED,
    SERVER_SHED,
    SERVER_CONNECTIONS,
    SERVER_RESP_DEGRADED,
    SERVER_RESP_FAULT,
    SERVER_SOCKOPT_ERRORS,
    SERVER_IDLE_CLOSED,
    WAL_APPENDS,
    WAL_APPEND_BYTES,
    WAL_FSYNCS,
    WAL_APPEND_FAILURES,
    WAL_REPLAYED,
    WAL_TRUNCATIONS,
    SNAPSHOT_WRITES,
    SNAPSHOT_BYTES,
    SNAPSHOT_FAILURES,
    FAULT_TOTAL,
    FAULT_WORKER_PANICS,
    FAULT_INJECTED,
    WORKLOAD_QUERIES,
    DATAGEN_ELEMENTS,
];

/// Histograms pre-registered by [`crate::MetricsRecorder::with_schema`].
pub const SCHEMA_HISTOGRAMS: &[&str] = &[
    TWIG_MATCH_M_ENTRIES,
    QUERY_LATENCY_US,
    DECOMP_DEPTH,
    SERVER_LATENCY_US,
];

/// Spans pre-registered by [`crate::MetricsRecorder::with_schema`].
pub const SCHEMA_SPANS: &[&str] = &[
    SPAN_PARSE,
    SPAN_INDEX,
    SPAN_MINE,
    SPAN_BATCH,
    SPAN_WORKLOAD,
    SPAN_DATAGEN,
    SPAN_BASELINE_BUILD,
];
