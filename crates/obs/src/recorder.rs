//! The collecting [`Recorder`] implementation.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

use crate::snapshot::{HistSnapshot, Snapshot, SpanSnapshot};
use crate::{bucket_index, bucket_lower_bound, names, Recorder, N_BUCKETS};

/// One base-2 exponential histogram (see [`bucket_index`]).
struct Hist {
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
}

impl Hist {
    fn new() -> Self {
        Self {
            buckets: (0..N_BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }

    fn observe(&self, value: u64) {
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        // Saturating: a sum overflowing u64 pins at the max instead of
        // wrapping into a nonsense value.
        self.sum
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |s| {
                Some(s.saturating_add(value))
            })
            .ok();
    }

    fn snapshot(&self) -> HistSnapshot {
        HistSnapshot {
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            buckets: self
                .buckets
                .iter()
                .enumerate()
                .filter_map(|(i, b)| {
                    let n = b.load(Ordering::Relaxed);
                    (n > 0).then(|| (bucket_lower_bound(i), n))
                })
                .collect(),
        }
    }
}

/// Aggregated wall-clock statistics for one span name.
struct SpanStat {
    count: AtomicU64,
    total_ns: AtomicU64,
    min_ns: AtomicU64,
    max_ns: AtomicU64,
}

impl SpanStat {
    fn new() -> Self {
        Self {
            count: AtomicU64::new(0),
            total_ns: AtomicU64::new(0),
            min_ns: AtomicU64::new(u64::MAX),
            max_ns: AtomicU64::new(0),
        }
    }

    fn record(&self, nanos: u64) {
        self.count.fetch_add(1, Ordering::Relaxed);
        self.total_ns.fetch_add(nanos, Ordering::Relaxed);
        self.min_ns.fetch_min(nanos, Ordering::Relaxed);
        self.max_ns.fetch_max(nanos, Ordering::Relaxed);
    }

    fn snapshot(&self) -> SpanSnapshot {
        let count = self.count.load(Ordering::Relaxed);
        SpanSnapshot {
            count,
            total_ns: self.total_ns.load(Ordering::Relaxed),
            min_ns: if count == 0 {
                0
            } else {
                self.min_ns.load(Ordering::Relaxed)
            },
            max_ns: self.max_ns.load(Ordering::Relaxed),
        }
    }
}

/// Generic named-metric registry: a read-mostly map of atomics. The read
/// path takes a shared lock and one atomic op; the write lock is only taken
/// the first time a name appears.
struct Registry<T> {
    map: RwLock<HashMap<String, Arc<T>>>,
}

impl<T> Registry<T> {
    fn new() -> Self {
        Self {
            map: RwLock::new(HashMap::new()),
        }
    }

    fn with(&self, name: &str, make: impl FnOnce() -> T, use_it: impl FnOnce(&T)) {
        if let Some(entry) = self.map.read().expect("registry lock").get(name) {
            use_it(entry);
            return;
        }
        let entry = {
            let mut guard = self.map.write().expect("registry lock");
            guard
                .entry(name.to_owned())
                .or_insert_with(|| Arc::new(make()))
                .clone()
        };
        use_it(&entry);
    }

    fn ensure(&self, name: &str, make: impl FnOnce() -> T) {
        self.with(name, make, |_| {});
    }

    fn collect<U>(&self, f: impl Fn(&T) -> U) -> Vec<(String, U)> {
        self.map
            .read()
            .expect("registry lock")
            .iter()
            .map(|(k, v)| (k.clone(), f(v)))
            .collect()
    }
}

/// The collecting recorder: thread-safe counters, histograms, gauges, and
/// span statistics, snapshotted into the `tl-metrics/1` JSON schema.
///
/// Cloning is not supported; share it as `&MetricsRecorder` or wrap it in
/// an [`Arc`] where an owned handle is needed (e.g.
/// `EstimationEngine::with_recorder`).
pub struct MetricsRecorder {
    counters: Registry<AtomicU64>,
    hists: Registry<Hist>,
    /// Gauges store `f64::to_bits`; last write wins.
    gauges: Registry<AtomicU64>,
    spans: Registry<SpanStat>,
    meta: RwLock<Vec<(String, String)>>,
}

impl Default for MetricsRecorder {
    fn default() -> Self {
        Self::new()
    }
}

impl MetricsRecorder {
    /// An empty recorder; metrics appear as they are first recorded.
    pub fn new() -> Self {
        Self {
            counters: Registry::new(),
            hists: Registry::new(),
            gauges: Registry::new(),
            spans: Registry::new(),
            meta: RwLock::new(Vec::new()),
        }
    }

    /// A recorder with the whole pipeline vocabulary pre-registered (see
    /// [`names`]): snapshots then always contain every metric family, with
    /// zero values for the ones the run did not exercise. This is what
    /// keeps the `--metrics` schema stable across subcommands.
    pub fn with_schema() -> Self {
        let rec = Self::new();
        for &name in names::SCHEMA_COUNTERS {
            rec.counters.ensure(name, || AtomicU64::new(0));
        }
        for &name in names::SCHEMA_HISTOGRAMS {
            rec.hists.ensure(name, Hist::new);
        }
        for &name in names::SCHEMA_SPANS {
            rec.spans.ensure(name, SpanStat::new);
        }
        rec
    }

    /// Attaches a metadata key/value (configuration echo: dataset, scale,
    /// command line). Later writes of the same key win.
    pub fn set_meta(&self, key: impl Into<String>, value: impl Into<String>) {
        let (key, value) = (key.into(), value.into());
        let mut guard = self.meta.write().expect("meta lock");
        match guard.iter_mut().find(|(k, _)| *k == key) {
            Some((_, v)) => *v = value,
            None => guard.push((key, value)),
        }
    }

    /// Captures the current values of every metric.
    pub fn snapshot(&self) -> Snapshot {
        Snapshot {
            meta: self
                .meta
                .read()
                .expect("meta lock")
                .iter()
                .cloned()
                .collect(),
            counters: self
                .counters
                .collect(|c| c.load(Ordering::Relaxed))
                .into_iter()
                .collect(),
            gauges: self
                .gauges
                .collect(|g| f64::from_bits(g.load(Ordering::Relaxed)))
                .into_iter()
                .collect(),
            histograms: self.hists.collect(Hist::snapshot).into_iter().collect(),
            spans: self.spans.collect(SpanStat::snapshot).into_iter().collect(),
        }
    }
}

impl Recorder for MetricsRecorder {
    fn enabled(&self) -> bool {
        true
    }

    fn add(&self, name: &str, delta: u64) {
        self.counters.with(
            name,
            || AtomicU64::new(0),
            |c| {
                c.fetch_add(delta, Ordering::Relaxed);
            },
        );
    }

    fn observe(&self, name: &str, value: u64) {
        self.hists.with(name, Hist::new, |h| h.observe(value));
    }

    fn gauge(&self, name: &str, value: f64) {
        self.gauges.with(
            name,
            || AtomicU64::new(0),
            |g| g.store(value.to_bits(), Ordering::Relaxed),
        );
    }

    fn span(&self, name: &str, nanos: u64) {
        self.spans.with(name, SpanStat::new, |s| s.record(nanos));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Noop;

    /// A toy instrumented computation: identical results under any
    /// recorder (the enabled/disabled parity the pipeline relies on).
    fn instrumented_sum(rec: &dyn Recorder, inputs: &[u64]) -> u64 {
        let _span = crate::SpanGuard::start(rec, "test.sum");
        let mut total = 0u64;
        for &x in inputs {
            rec.add("test.items", 1);
            rec.observe("test.value", x);
            total += x;
        }
        rec.gauge("test.total", total as f64);
        total
    }

    #[test]
    fn enabled_disabled_parity() {
        let inputs = [3u64, 0, 7, 1 << 40];
        let rec = MetricsRecorder::new();
        let live = instrumented_sum(&rec, &inputs);
        let silent = instrumented_sum(&Noop, &inputs);
        assert_eq!(live, silent, "recording must not change results");
        let snap = rec.snapshot();
        assert_eq!(snap.counters["test.items"], 4);
        assert_eq!(snap.histograms["test.value"].count, 4);
        assert_eq!(snap.histograms["test.value"].sum, 10 + (1 << 40));
        assert_eq!(snap.gauges["test.total"], live as f64);
        assert_eq!(snap.spans["test.sum"].count, 1);
    }

    #[test]
    fn histogram_bucket_boundaries_in_snapshot() {
        let rec = MetricsRecorder::new();
        // 0 -> bucket lo 0; 1 -> lo 1; 2,3 -> lo 2; 8 -> lo 8.
        for v in [0u64, 1, 2, 3, 8] {
            rec.observe("h", v);
        }
        let h = &rec.snapshot().histograms["h"];
        assert_eq!(h.count, 5);
        assert_eq!(h.sum, 14);
        assert_eq!(h.buckets, vec![(0, 1), (1, 1), (2, 2), (8, 1)]);
    }

    #[test]
    fn concurrent_counter_increments_are_lossless() {
        let rec = MetricsRecorder::new();
        const THREADS: usize = 8;
        const PER_THREAD: u64 = 10_000;
        std::thread::scope(|scope| {
            for _ in 0..THREADS {
                scope.spawn(|| {
                    for i in 0..PER_THREAD {
                        rec.add("c", 1);
                        rec.observe("h", i % 17);
                        rec.span("s", i + 1);
                    }
                });
            }
        });
        let snap = rec.snapshot();
        assert_eq!(snap.counters["c"], THREADS as u64 * PER_THREAD);
        assert_eq!(snap.histograms["h"].count, THREADS as u64 * PER_THREAD);
        let s = &snap.spans["s"];
        assert_eq!(s.count, THREADS as u64 * PER_THREAD);
        assert_eq!(s.min_ns, 1);
        assert_eq!(s.max_ns, PER_THREAD);
    }

    #[test]
    fn span_min_max_total() {
        let rec = MetricsRecorder::new();
        for ns in [50u64, 10, 90] {
            rec.span("s", ns);
        }
        let s = &rec.snapshot().spans["s"];
        assert_eq!((s.count, s.total_ns, s.min_ns, s.max_ns), (3, 150, 10, 90));
    }

    #[test]
    fn empty_span_snapshot_has_zero_min() {
        let rec = MetricsRecorder::with_schema();
        let s = &rec.snapshot().spans[names::SPAN_PARSE];
        assert_eq!((s.count, s.min_ns, s.max_ns), (0, 0, 0));
    }

    #[test]
    fn with_schema_preregisters_all_families() {
        let snap = MetricsRecorder::with_schema().snapshot();
        for &name in names::SCHEMA_COUNTERS {
            assert_eq!(snap.counters.get(name), Some(&0), "{name}");
        }
        for &name in names::SCHEMA_HISTOGRAMS {
            assert!(snap.histograms.contains_key(name), "{name}");
        }
        for &name in names::SCHEMA_SPANS {
            assert!(snap.spans.contains_key(name), "{name}");
        }
    }

    #[test]
    fn meta_last_write_wins() {
        let rec = MetricsRecorder::new();
        rec.set_meta("k", "1");
        rec.set_meta("k", "2");
        assert_eq!(rec.snapshot().meta["k"], "2");
    }

    #[test]
    fn gauges_store_floats() {
        let rec = MetricsRecorder::new();
        rec.gauge("g", 0.25);
        rec.gauge("g", 0.75);
        assert_eq!(rec.snapshot().gauges["g"], 0.75);
    }
}
