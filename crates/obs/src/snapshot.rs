//! Point-in-time metric snapshots, their stable JSON schema
//! (`tl-metrics/1`), and the human-readable report renderer.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::json::{self, Json, JsonError};

/// Schema identifier written into every snapshot.
pub const SCHEMA: &str = "tl-metrics/1";

/// A captured histogram: total observation count, saturating sum, and the
/// non-empty buckets as `(inclusive lower bound, count)` pairs in
/// ascending bound order.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct HistSnapshot {
    /// Number of observations.
    pub count: u64,
    /// Sum of observed values (saturating).
    pub sum: u64,
    /// Non-empty buckets as `(lower_bound, count)`.
    pub buckets: Vec<(u64, u64)>,
}

impl HistSnapshot {
    /// Mean observed value, or 0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Lower bound of the highest non-empty bucket (an order-of-magnitude
    /// maximum), or 0 when empty.
    pub fn max_bucket_lo(&self) -> u64 {
        self.buckets.last().map_or(0, |&(lo, _)| lo)
    }
}

/// Captured wall-clock statistics of one span name.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SpanSnapshot {
    /// Number of completed spans.
    pub count: u64,
    /// Total nanoseconds across all spans.
    pub total_ns: u64,
    /// Shortest span in nanoseconds (0 when `count == 0`).
    pub min_ns: u64,
    /// Longest span in nanoseconds.
    pub max_ns: u64,
}

/// A point-in-time capture of every metric a [`crate::MetricsRecorder`]
/// holds. Maps are ordered (`BTreeMap`) so serialization is deterministic:
/// the same metric values always produce byte-identical JSON.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Snapshot {
    /// Free-form configuration echo (dataset, scale, command line).
    pub meta: BTreeMap<String, String>,
    /// Monotone counters.
    pub counters: BTreeMap<String, u64>,
    /// Last-write-wins float values.
    pub gauges: BTreeMap<String, f64>,
    /// Value distributions.
    pub histograms: BTreeMap<String, HistSnapshot>,
    /// Wall-clock span statistics.
    pub spans: BTreeMap<String, SpanSnapshot>,
}

impl Snapshot {
    /// Serializes to the `tl-metrics/1` JSON schema:
    ///
    /// ```json
    /// {
    ///   "schema": "tl-metrics/1",
    ///   "meta": {"dataset": "xmark"},
    ///   "counters": {"engine.queries": 50},
    ///   "gauges": {"bench.kernel.p50_ms": 1.25},
    ///   "histograms": {
    ///     "engine.query.latency_us": {
    ///       "count": 50, "sum": 12345,
    ///       "buckets": [[64, 12], [128, 38]]
    ///     }
    ///   },
    ///   "spans": {
    ///     "miner.mine": {"count": 1, "total_ns": 9, "min_ns": 9, "max_ns": 9}
    ///   }
    /// }
    /// ```
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(1024);
        out.push_str("{\n  \"schema\": ");
        json::write_escaped(&mut out, SCHEMA);
        out.push_str(",\n  \"meta\": {");
        for (i, (k, v)) in self.meta.iter().enumerate() {
            out.push_str(if i == 0 { "\n    " } else { ",\n    " });
            json::write_escaped(&mut out, k);
            out.push_str(": ");
            json::write_escaped(&mut out, v);
        }
        if !self.meta.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("},\n  \"counters\": {");
        for (i, (k, v)) in self.counters.iter().enumerate() {
            out.push_str(if i == 0 { "\n    " } else { ",\n    " });
            json::write_escaped(&mut out, k);
            let _ = write!(out, ": {v}");
        }
        if !self.counters.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("},\n  \"gauges\": {");
        for (i, (k, v)) in self.gauges.iter().enumerate() {
            out.push_str(if i == 0 { "\n    " } else { ",\n    " });
            json::write_escaped(&mut out, k);
            out.push_str(": ");
            json::write_f64(&mut out, *v);
        }
        if !self.gauges.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("},\n  \"histograms\": {");
        for (i, (k, h)) in self.histograms.iter().enumerate() {
            out.push_str(if i == 0 { "\n    " } else { ",\n    " });
            json::write_escaped(&mut out, k);
            let _ = write!(
                out,
                ": {{\"count\": {}, \"sum\": {}, \"buckets\": [",
                h.count, h.sum
            );
            for (j, (lo, n)) in h.buckets.iter().enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                let _ = write!(out, "[{lo}, {n}]");
            }
            out.push_str("]}");
        }
        if !self.histograms.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("},\n  \"spans\": {");
        for (i, (k, s)) in self.spans.iter().enumerate() {
            out.push_str(if i == 0 { "\n    " } else { ",\n    " });
            json::write_escaped(&mut out, k);
            let _ = write!(
                out,
                ": {{\"count\": {}, \"total_ns\": {}, \"min_ns\": {}, \"max_ns\": {}}}",
                s.count, s.total_ns, s.min_ns, s.max_ns
            );
        }
        if !self.spans.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("}\n}\n");
        out
    }

    /// Parses a `tl-metrics/1` document produced by [`Snapshot::to_json`]
    /// (or hand-written, e.g. gate threshold files).
    pub fn from_json(input: &str) -> Result<Self, JsonError> {
        let value = json::parse(input)?;
        let fail = |message: &str| JsonError {
            offset: 0,
            message: message.to_string(),
        };
        match value.get("schema").and_then(Json::as_str) {
            Some(SCHEMA) => {}
            Some(other) => return Err(fail(&format!("unsupported schema `{other}`"))),
            None => return Err(fail("missing `schema` field")),
        }
        let mut snap = Snapshot::default();
        if let Some(entries) = value.get("meta").and_then(Json::entries) {
            for (k, v) in entries {
                let v = v
                    .as_str()
                    .ok_or_else(|| fail("meta values must be strings"))?;
                snap.meta.insert(k.clone(), v.to_string());
            }
        }
        if let Some(entries) = value.get("counters").and_then(Json::entries) {
            for (k, v) in entries {
                let v = v.as_u64().ok_or_else(|| fail("counters must be u64"))?;
                snap.counters.insert(k.clone(), v);
            }
        }
        if let Some(entries) = value.get("gauges").and_then(Json::entries) {
            for (k, v) in entries {
                let v = v.as_f64().ok_or_else(|| fail("gauges must be numbers"))?;
                snap.gauges.insert(k.clone(), v);
            }
        }
        if let Some(entries) = value.get("histograms").and_then(Json::entries) {
            for (k, v) in entries {
                let mut h = HistSnapshot {
                    count: v
                        .get("count")
                        .and_then(Json::as_u64)
                        .ok_or_else(|| fail("histogram missing `count`"))?,
                    sum: v
                        .get("sum")
                        .and_then(Json::as_u64)
                        .ok_or_else(|| fail("histogram missing `sum`"))?,
                    buckets: Vec::new(),
                };
                if let Some(buckets) = v.get("buckets").and_then(Json::as_arr) {
                    for pair in buckets {
                        let pair = pair.as_arr().filter(|p| p.len() == 2);
                        let (lo, n) = pair
                            .and_then(|p| Some((p[0].as_u64()?, p[1].as_u64()?)))
                            .ok_or_else(|| fail("histogram buckets must be [lo, count] pairs"))?;
                        h.buckets.push((lo, n));
                    }
                }
                snap.histograms.insert(k.clone(), h);
            }
        }
        if let Some(entries) = value.get("spans").and_then(Json::entries) {
            for (k, v) in entries {
                let field = |name: &str| {
                    v.get(name)
                        .and_then(Json::as_u64)
                        .ok_or_else(|| fail(&format!("span missing `{name}`")))
                };
                snap.spans.insert(
                    k.clone(),
                    SpanSnapshot {
                        count: field("count")?,
                        total_ns: field("total_ns")?,
                        min_ns: field("min_ns")?,
                        max_ns: field("max_ns")?,
                    },
                );
            }
        }
        Ok(snap)
    }

    /// Renders the snapshot as a human-readable table (the output of
    /// `treelattice metrics report`). Zero-valued entries are skipped so
    /// the report only shows what the run actually exercised.
    pub fn render_report(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "metrics snapshot ({SCHEMA})");
        if !self.meta.is_empty() {
            let _ = writeln!(out, "\nmeta");
            for (k, v) in &self.meta {
                let _ = writeln!(out, "  {k:<32} {v}");
            }
        }
        let live_counters: Vec<_> = self.counters.iter().filter(|(_, &v)| v > 0).collect();
        if !live_counters.is_empty() {
            let _ = writeln!(out, "\ncounters");
            for (k, v) in live_counters {
                let _ = writeln!(out, "  {k:<32} {v}");
            }
        }
        let live_gauges: Vec<_> = self.gauges.iter().filter(|(_, &v)| v != 0.0).collect();
        if !live_gauges.is_empty() {
            let _ = writeln!(out, "\ngauges");
            for (k, v) in live_gauges {
                let _ = writeln!(out, "  {k:<32} {v:.4}");
            }
        }
        let live_hists: Vec<_> = self
            .histograms
            .iter()
            .filter(|(_, h)| h.count > 0)
            .collect();
        if !live_hists.is_empty() {
            let _ = writeln!(out, "\nhistograms");
            let _ = writeln!(
                out,
                "  {:<32} {:>10} {:>14} {:>12} {:>12}",
                "name", "count", "sum", "mean", "max_bucket"
            );
            for (k, h) in live_hists {
                let _ = writeln!(
                    out,
                    "  {k:<32} {:>10} {:>14} {:>12.2} {:>12}",
                    h.count,
                    h.sum,
                    h.mean(),
                    h.max_bucket_lo()
                );
            }
        }
        let live_spans: Vec<_> = self.spans.iter().filter(|(_, s)| s.count > 0).collect();
        if !live_spans.is_empty() {
            let _ = writeln!(out, "\nspans");
            let _ = writeln!(
                out,
                "  {:<32} {:>10} {:>12} {:>12} {:>12}",
                "name", "count", "total", "min", "max"
            );
            for (k, s) in live_spans {
                let _ = writeln!(
                    out,
                    "  {k:<32} {:>10} {:>12} {:>12} {:>12}",
                    s.count,
                    fmt_ns(s.total_ns),
                    fmt_ns(s.min_ns),
                    fmt_ns(s.max_ns)
                );
            }
        }
        out
    }
}

/// Formats nanoseconds with a unit chosen by magnitude.
fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.2}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.2}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.2}us", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Snapshot {
        let mut snap = Snapshot::default();
        snap.meta.insert("dataset".into(), "xmark".into());
        snap.meta.insert("scale".into(), "8000".into());
        snap.counters.insert("engine.queries".into(), 50);
        snap.counters.insert("engine.cache.hits".into(), 0);
        snap.counters.insert("xml.parse.bytes".into(), u64::MAX);
        snap.gauges.insert("bench.kernel.p50_ms".into(), 1.25);
        snap.gauges.insert("accuracy.mean_error_pct".into(), 33.7);
        snap.histograms.insert(
            "engine.query.latency_us".into(),
            HistSnapshot {
                count: 50,
                sum: 12_345,
                buckets: vec![(64, 12), (128, 38)],
            },
        );
        snap.spans.insert(
            "miner.mine".into(),
            SpanSnapshot {
                count: 1,
                total_ns: 9_876_543,
                min_ns: 9_876_543,
                max_ns: 9_876_543,
            },
        );
        snap
    }

    #[test]
    fn json_round_trip_is_lossless() {
        let snap = sample();
        let parsed = Snapshot::from_json(&snap.to_json()).unwrap();
        assert_eq!(snap, parsed);
    }

    #[test]
    fn empty_snapshot_round_trips() {
        let snap = Snapshot::default();
        let encoded = snap.to_json();
        assert_eq!(Snapshot::from_json(&encoded).unwrap(), snap);
    }

    #[test]
    fn serialization_is_deterministic() {
        assert_eq!(sample().to_json(), sample().to_json());
    }

    #[test]
    fn schema_field_is_checked() {
        assert!(Snapshot::from_json("{}").is_err());
        assert!(Snapshot::from_json(r#"{"schema": "other/9"}"#).is_err());
    }

    #[test]
    fn large_counters_survive_exactly() {
        let parsed = Snapshot::from_json(&sample().to_json()).unwrap();
        assert_eq!(parsed.counters["xml.parse.bytes"], u64::MAX);
    }

    #[test]
    fn hist_helpers() {
        let h = sample().histograms["engine.query.latency_us"].clone();
        assert!((h.mean() - 246.9).abs() < 1e-9);
        assert_eq!(h.max_bucket_lo(), 128);
        assert_eq!(HistSnapshot::default().mean(), 0.0);
        assert_eq!(HistSnapshot::default().max_bucket_lo(), 0);
    }

    #[test]
    fn report_skips_zero_entries() {
        let report = sample().render_report();
        assert!(report.contains("engine.queries"));
        assert!(!report.contains("engine.cache.hits"), "zero counter shown");
        assert!(report.contains("dataset"));
        assert!(report.contains("miner.mine"));
        assert!(report.contains("9.88ms"));
    }

    #[test]
    fn fmt_ns_units() {
        assert_eq!(fmt_ns(500), "500ns");
        assert_eq!(fmt_ns(1_500), "1.50us");
        assert_eq!(fmt_ns(2_500_000), "2.50ms");
        assert_eq!(fmt_ns(3_000_000_000), "3.00s");
    }
}
