//! Seeded corpora for differential and metamorphic runs, with shrinking.
//!
//! A corpus is a deterministic function of its [`CorpusConfig`]: random
//! unstructured documents (via `tl_datagen::random_document`) crossed with
//! twig workloads mixing *positive* twigs (sampled from occurred patterns,
//! so counts are non-trivial) and *perturbed* twigs (labels resampled, so
//! zero and near-zero counts are exercised too). When a cross-check fails,
//! [`shrink_case`] greedily minimizes the (document, twig) pair while the
//! failure persists, and [`describe_case`] renders the survivor so the
//! counterexample in the test log is directly re-runnable.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tl_datagen::{random_document, RandomTreeConfig};
use tl_twig::Twig;
use tl_workload::sample::{label_weights, perturb_labels, random_occurred_twig};
use tl_xml::writer::document_to_string;
use tl_xml::{remove_subtree, Document, NodeId};

/// Shape of one generated corpus.
#[derive(Clone, Copy, Debug)]
pub struct CorpusConfig {
    /// Master seed; every document and twig derives from it.
    pub seed: u64,
    /// Number of random documents.
    pub docs: usize,
    /// Inclusive range of document sizes in nodes.
    pub doc_nodes: (usize, usize),
    /// Inclusive range of label-alphabet sizes.
    pub labels: (usize, usize),
    /// Fan-out cap (kept ≤ 20 so the dense kernel never rejects).
    pub max_children: usize,
    /// Twigs generated per document (positives + perturbed).
    pub twigs_per_doc: usize,
    /// Inclusive range of twig sizes in nodes.
    pub twig_sizes: (usize, usize),
}

impl Default for CorpusConfig {
    fn default() -> Self {
        Self {
            seed: 42,
            docs: 4,
            doc_nodes: (60, 400),
            labels: (3, 8),
            max_children: 8,
            twigs_per_doc: 45,
            twig_sizes: (2, 8),
        }
    }
}

/// One (document, twig) pair, by document index.
pub struct Case {
    /// Index into [`Corpus::docs`].
    pub doc: usize,
    /// The query.
    pub twig: Twig,
}

/// A generated corpus: documents plus the cases over them.
pub struct Corpus {
    /// The documents, in generation order.
    pub docs: Vec<Document>,
    /// All (document, twig) cases.
    pub cases: Vec<Case>,
}

/// Generates the corpus for `cfg`. Deterministic: equal configs yield
/// byte-identical documents and twigs.
pub fn generate(cfg: &CorpusConfig) -> Corpus {
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0x6f72_6163_6c65);
    let mut docs = Vec::with_capacity(cfg.docs);
    let mut cases = Vec::new();
    for i in 0..cfg.docs {
        let doc = random_document(&RandomTreeConfig {
            seed: rng.gen_range(0..u64::MAX),
            nodes: rng.gen_range(cfg.doc_nodes.0..=cfg.doc_nodes.1),
            labels: rng.gen_range(cfg.labels.0..=cfg.labels.1),
            max_children: cfg.max_children,
        });
        let weights = label_weights(&doc);
        let mut produced = 0usize;
        let mut attempts = 0usize;
        while produced < cfg.twigs_per_doc && attempts < cfg.twigs_per_doc * 20 {
            attempts += 1;
            let size = rng.gen_range(cfg.twig_sizes.0..=cfg.twig_sizes.1);
            let Some(twig) = random_occurred_twig(&doc, &mut rng, size) else {
                continue;
            };
            // Two positives, then one perturbation of the latest positive:
            // perturbed twigs keep realistic shapes but lose the guarantee
            // of matching, covering the zero-count paths.
            let twig = if produced % 3 == 2 {
                perturb_labels(&twig, &weights, &mut rng)
            } else {
                twig
            };
            cases.push(Case { doc: i, twig });
            produced += 1;
        }
        docs.push(doc);
    }
    Corpus { docs, cases }
}

/// Greedily shrinks a failing case: repeatedly try removing one removable
/// twig node, then one document subtree, keeping any mutation under which
/// `failing` still returns `true`, until a fixpoint (or a step cap, as a
/// runaway guard). The result still fails.
pub fn shrink_case<F>(doc: &Document, twig: &Twig, failing: F) -> (Document, Twig)
where
    F: Fn(&Document, &Twig) -> bool,
{
    debug_assert!(failing(doc, twig), "shrink_case needs a failing case");
    let mut doc = doc.clone();
    let mut twig = twig.clone();
    let mut steps = 0usize;
    loop {
        let mut progressed = false;
        // Twig first: a smaller query usually shrinks the relevant part of
        // the document too.
        if twig.len() > 1 {
            for node in twig.removable_nodes() {
                let candidate = twig.remove_node(node);
                if failing(&doc, &candidate) {
                    twig = candidate;
                    progressed = true;
                    break;
                }
            }
        }
        if !progressed && doc.len() > 1 {
            for id in (1..doc.len() as u32).rev() {
                let candidate = remove_subtree(&doc, NodeId(id)).document;
                if failing(&candidate, &twig) {
                    doc = candidate;
                    progressed = true;
                    break;
                }
            }
        }
        steps += 1;
        if !progressed || steps > 10_000 {
            return (doc, twig);
        }
    }
}

/// Renders a case so a failure message is self-contained: the full
/// document XML plus the twig in query syntax.
pub fn describe_case(doc: &Document, twig: &Twig) -> String {
    format!(
        "twig: {}\ndocument ({} nodes):\n{}",
        twig.to_query_string(doc.labels()),
        doc.len(),
        document_to_string(doc)
    )
}

/// Seeds for a suite run: a comma-separated list in the environment
/// variable `var` (e.g. `TL_ORACLE_SEED=7` in a CI matrix job), falling
/// back to `default`. Unparseable entries are a panic, not a silent skip —
/// a typo must not shrink coverage.
pub fn seeds_from_env(var: &str, default: &[u64]) -> Vec<u64> {
    match std::env::var(var) {
        Ok(s) => s
            .split(',')
            .map(|t| {
                t.trim()
                    .parse::<u64>()
                    .unwrap_or_else(|e| panic!("bad seed {t:?} in ${var}: {e}"))
            })
            .collect(),
        Err(_) => default.to_vec(),
    }
}

/// Builds the Lemma 1 *product document*: `replicas · 2^features` records
/// labeled `s` under a root `r`, where record number `m` carries feature
/// `j` iff bit `j` of `m mod 2^features` is set. Feature `j` is a path of
/// depth `1 + (j mod 2)` with globally unique labels (`fj`, `gj`).
///
/// Every connected pattern that touches the feature set `S` then occurs
/// exactly `replicas · 2^(features − |S|)` times — features are fully
/// independent by construction, so Lemma 1's identity
/// `s(T) · s(T12) = s(T1) · s(T2)` holds *exactly* for every removable
/// pair, and every decomposition-based estimate telescopes to the true
/// count.
///
/// Returns the document and the full twig `s[f0(/g0)][f1]…` containing
/// all features; callers derive sub-twigs by removing feature nodes.
pub fn product_document(features: usize, replicas: usize) -> (Document, Twig) {
    assert!(features >= 2, "need at least two features for pair laws");
    assert!(features < 16, "2^features records must stay small");
    assert!(replicas >= 1);
    let mut b = tl_xml::DocumentBuilder::new();
    b.begin("r");
    for mask in 0..(1u32 << features) {
        for _ in 0..replicas {
            b.begin("s");
            for j in 0..features {
                if mask & (1 << j) != 0 {
                    b.begin(&format!("f{j}"));
                    if j % 2 == 1 {
                        b.begin(&format!("g{j}"));
                        b.end();
                    }
                    b.end();
                }
            }
            b.end();
        }
    }
    b.end();
    let doc = b.finish().expect("product event stream is well-formed");

    let mut query = String::from("s");
    for j in 0..features {
        if j % 2 == 1 {
            query.push_str(&format!("[f{j}/g{j}]"));
        } else {
            query.push_str(&format!("[f{j}]"));
        }
    }
    let mut labels = doc.labels().clone();
    let twig = tl_twig::parse_twig(&query, &mut labels).expect("product query parses");
    (doc, twig)
}

#[cfg(test)]
mod tests {
    use crate::enumerate::Oracle;

    use super::*;

    #[test]
    fn corpus_is_deterministic_and_non_trivial() {
        let cfg = CorpusConfig {
            docs: 2,
            twigs_per_doc: 10,
            ..CorpusConfig::default()
        };
        let a = generate(&cfg);
        let b = generate(&cfg);
        assert_eq!(a.docs.len(), 2);
        assert_eq!(a.cases.len(), b.cases.len());
        assert!(a.cases.len() >= 15, "most twig draws should succeed");
        for (ca, cb) in a.cases.iter().zip(&b.cases) {
            assert_eq!(ca.doc, cb.doc);
            assert_eq!(
                tl_twig::canonical::key_of(&ca.twig),
                tl_twig::canonical::key_of(&cb.twig)
            );
        }
    }

    #[test]
    fn product_document_counts_factorize() {
        let (doc, full) = product_document(3, 2);
        let oracle = Oracle::new(&doc);
        // Full twig touches all 3 features: 2 · 2^0 = 2 matches.
        assert_eq!(oracle.count(&full), 2);
        // Dropping one feature subtree doubles the count.
        for leaf in full.removable_nodes() {
            let sub = full.remove_node(leaf);
            let expected = if sub.len() < full.len() {
                // Removing a g-leaf keeps the feature present (its f node
                // remains), removing an f-leaf drops the feature.
                let features_left = (0..3)
                    .filter(|j| {
                        sub.nodes()
                            .any(|n| doc.labels().resolve(sub.label(n)) == format!("f{j}"))
                    })
                    .count();
                2 * (1u64 << (3 - features_left))
            } else {
                unreachable!()
            };
            assert_eq!(oracle.count(&sub), expected, "sub {sub:?}");
        }
    }

    #[test]
    fn shrinker_reaches_a_small_failing_case() {
        let cfg = CorpusConfig {
            docs: 1,
            twigs_per_doc: 5,
            ..CorpusConfig::default()
        };
        let corpus = generate(&cfg);
        let doc = &corpus.docs[0];
        let twig = &corpus.cases[0].twig;
        // A tautological failure: "the twig has at least one node". The
        // shrinker must reach the 1-node twig and a tiny document.
        let (sdoc, stwig) = shrink_case(doc, twig, |_, t| !t.is_empty());
        assert_eq!(stwig.len(), 1);
        assert_eq!(sdoc.len(), 1);
        assert!(describe_case(&sdoc, &stwig).contains("twig: "));
    }

    #[test]
    fn seeds_env_parsing() {
        assert_eq!(seeds_from_env("TL_NO_SUCH_VAR_SET", &[1, 7]), vec![1u64, 7]);
    }
}
