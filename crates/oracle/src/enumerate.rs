//! The third exact counter: top-down embedding counting by permanent
//! expansion.
//!
//! A twig match (paper Definition 1) is an injective node mapping that
//! preserves labels and parent-child edges. Both production kernels count
//! matches *bottom-up* over per-level match vectors (`MatchCounter` on a
//! dense CSR index, `ReferenceMatchCounter` on hash maps), and the
//! property suite's local brute force enumerates complete mappings with a
//! global used-set. This oracle deliberately uses a fourth formulation so
//! that a shared algorithmic blind spot cannot hide a bug:
//!
//! for each document node `d` with the query root's label, the number of
//! embeddings of the query rooted at `d` is the *permanent* of the matrix
//! `M[i][j] = embeddings(qchild_i, dchild_j)` — injectivity among siblings
//! is the only constraint that matters, because in a tree two distinct
//! query nodes can collide on a document node only if some pair of their
//! ancestors are siblings mapped to the same child, so per-sibling-group
//! injectivity implies global injectivity.
//!
//! The permanent is expanded row by row over a used-column set, memoizing
//! `embeddings(q, d)` per query. Exponential only in the sibling-group
//! ambiguity, like the exact problem itself; arithmetic saturates at
//! `u64::MAX` to match the kernels' overflow contract.

use std::collections::HashMap;

use tl_twig::{Twig, TwigNodeId};
use tl_xml::{Document, NodeId};

/// Exact match counting and enumeration over one document.
pub struct Oracle<'d> {
    doc: &'d Document,
}

impl<'d> Oracle<'d> {
    /// Wraps `doc`. No preprocessing: the oracle stays structurally naive
    /// on purpose.
    pub fn new(doc: &'d Document) -> Self {
        Self { doc }
    }

    /// The exact selectivity of `twig`: its total number of matches,
    /// saturating at `u64::MAX`.
    pub fn count(&self, twig: &Twig) -> u64 {
        let mut memo = HashMap::new();
        let mut total = 0u64;
        for d in self.doc.pre_order() {
            total = total.saturating_add(self.embeddings(twig, twig.root(), d, &mut memo));
        }
        total
    }

    /// Matches that map the twig's root to the specific document node `d`.
    pub fn count_rooted_at(&self, twig: &Twig, d: NodeId) -> u64 {
        let mut memo = HashMap::new();
        self.embeddings(twig, twig.root(), d, &mut memo)
    }

    fn embeddings(
        &self,
        twig: &Twig,
        q: TwigNodeId,
        d: NodeId,
        memo: &mut HashMap<(TwigNodeId, NodeId), u64>,
    ) -> u64 {
        if let Some(&v) = memo.get(&(q, d)) {
            return v;
        }
        let v = if twig.label(q) != self.doc.label(d) {
            0
        } else {
            let qchildren = twig.children(q);
            if qchildren.is_empty() {
                1
            } else {
                let dchildren: Vec<NodeId> = self.doc.children(d).collect();
                let mut rows: Vec<Vec<(usize, u64)>> = Vec::with_capacity(qchildren.len());
                let mut feasible = true;
                for &qc in qchildren {
                    let mut row = Vec::new();
                    for (j, &dc) in dchildren.iter().enumerate() {
                        let e = self.embeddings(twig, qc, dc, memo);
                        if e > 0 {
                            row.push((j, e));
                        }
                    }
                    if row.is_empty() {
                        feasible = false;
                        break;
                    }
                    rows.push(row);
                }
                if feasible {
                    // Expand the sparsest row first: the permanent is
                    // invariant under row order, and this keeps branching
                    // minimal.
                    rows.sort_by_key(Vec::len);
                    let mut used = vec![false; dchildren.len()];
                    permanent(&rows, &mut used)
                } else {
                    0
                }
            }
        };
        memo.insert((q, d), v);
        v
    }

    /// Every match of `twig`, as a vector indexed by twig node id holding
    /// the document node that twig node maps to. Returns `None` as soon as
    /// more than `cap` matches exist — enumeration is for spot-checking
    /// small counts, not a fourth counter.
    pub fn enumerate_matches(&self, twig: &Twig, cap: usize) -> Option<Vec<Vec<NodeId>>> {
        let order = twig.pre_order();
        let mut out = Vec::new();
        let mut assign: Vec<NodeId> = vec![NodeId(0); twig.len()];
        for d in self.doc.pre_order() {
            if self.doc.label(d) == twig.label(twig.root()) {
                assign[twig.root() as usize] = d;
                if !self.extend_match(twig, &order, 1, &mut assign, cap, &mut out) {
                    return None;
                }
            }
        }
        Some(out)
    }

    /// Backtracks over pre-order position `pos`; returns `false` when the
    /// cap is exceeded.
    fn extend_match(
        &self,
        twig: &Twig,
        order: &[TwigNodeId],
        pos: usize,
        assign: &mut Vec<NodeId>,
        cap: usize,
        out: &mut Vec<Vec<NodeId>>,
    ) -> bool {
        if pos == order.len() {
            if out.len() >= cap {
                return false;
            }
            out.push(assign.clone());
            return true;
        }
        let q = order[pos];
        let qp = twig
            .parent(q)
            .expect("non-root pre-order node has a parent");
        let dp = assign[qp as usize];
        for dc in self.doc.children(dp) {
            if self.doc.label(dc) != twig.label(q) {
                continue;
            }
            // Injectivity: only previously assigned siblings can collide
            // with `dc`, but checking every assigned node is cheap and
            // independent of that argument.
            if order[..pos].iter().any(|&a| assign[a as usize] == dc) {
                continue;
            }
            assign[q as usize] = dc;
            if !self.extend_match(twig, order, pos + 1, assign, cap, out) {
                return false;
            }
        }
        true
    }
}

/// Permanent of a sparse non-negative matrix by row expansion over a
/// used-column set, saturating at `u64::MAX`.
fn permanent(rows: &[Vec<(usize, u64)>], used: &mut [bool]) -> u64 {
    let Some((row, rest)) = rows.split_first() else {
        return 1;
    };
    let mut sum = 0u64;
    for &(col, e) in row {
        if used[col] {
            continue;
        }
        used[col] = true;
        sum = sum.saturating_add(e.saturating_mul(permanent(rest, used)));
        used[col] = false;
    }
    sum
}

/// Checks one enumerated match against Definition 1: label-preserving,
/// edge-preserving, injective.
pub fn match_is_valid(doc: &Document, twig: &Twig, assign: &[NodeId]) -> bool {
    if assign.len() != twig.len() {
        return false;
    }
    for q in twig.nodes() {
        if doc.label(assign[q as usize]) != twig.label(q) {
            return false;
        }
        if let Some(qp) = twig.parent(q) {
            if doc.parent(assign[q as usize]) != Some(assign[qp as usize]) {
                return false;
            }
        }
    }
    let mut seen: Vec<NodeId> = assign.to_vec();
    seen.sort_unstable();
    seen.windows(2).all(|w| w[0] != w[1])
}

#[cfg(test)]
mod tests {
    use tl_twig::parse_twig;
    use tl_xml::{parse_document, ParseOptions};

    use super::*;

    fn fixture(xml: &[u8], query: &str) -> (Document, Twig) {
        let doc = parse_document(xml, ParseOptions::default()).unwrap();
        let mut labels = doc.labels().clone();
        let twig = parse_twig(query, &mut labels).unwrap();
        (doc, twig)
    }

    #[test]
    fn counts_simple_paths_and_stars() {
        let (doc, twig) = fixture(b"<a><b><c/></b><b><c/><c/></b></a>", "a/b/c");
        assert_eq!(Oracle::new(&doc).count(&twig), 3);
        let (doc, twig) = fixture(b"<a><b/><b/><c/></a>", "a[b][c]");
        assert_eq!(Oracle::new(&doc).count(&twig), 2);
    }

    #[test]
    fn injective_counting_with_duplicate_sibling_patterns() {
        // a[b][b]: the two query b's must map to *distinct* document b's:
        // 3 ordered choices of 2 out of 3 = 6.
        let (doc, twig) = fixture(b"<a><b/><b/><b/></a>", "a[b][b]");
        assert_eq!(Oracle::new(&doc).count(&twig), 6);
        // Only one b: no injective pair exists.
        let (doc, twig) = fixture(b"<a><b/></a>", "a[b][b]");
        assert_eq!(Oracle::new(&doc).count(&twig), 0);
    }

    #[test]
    fn enumeration_agrees_with_count_and_is_valid() {
        let (doc, twig) = fixture(
            b"<a><b><c/><c/></b><b><c/></b><a><b><c/></b></a></a>",
            "a/b/c",
        );
        let oracle = Oracle::new(&doc);
        let matches = oracle.enumerate_matches(&twig, 100).unwrap();
        assert_eq!(matches.len() as u64, oracle.count(&twig));
        for m in &matches {
            assert!(match_is_valid(&doc, &twig, m));
        }
    }

    #[test]
    fn enumeration_cap_returns_none() {
        let (doc, twig) = fixture(b"<a><b/><b/><b/><b/></a>", "a/b");
        assert_eq!(Oracle::new(&doc).enumerate_matches(&twig, 3), None);
        assert_eq!(
            Oracle::new(&doc)
                .enumerate_matches(&twig, 4)
                .map(|m| m.len()),
            Some(4)
        );
    }

    #[test]
    fn count_rooted_at_partitions_the_total() {
        let (doc, twig) = fixture(b"<a><b><c/></b><b><c/><c/></b></a>", "b/c");
        let oracle = Oracle::new(&doc);
        let by_root: u64 = doc
            .pre_order()
            .map(|d| oracle.count_rooted_at(&twig, d))
            .sum();
        assert_eq!(by_root, oracle.count(&twig));
        assert_eq!(oracle.count(&twig), 3);
    }

    #[test]
    fn absent_labels_count_zero() {
        let (doc, twig) = fixture(b"<a><b/></a>", "a/zzz");
        assert_eq!(Oracle::new(&doc).count(&twig), 0);
    }
}
