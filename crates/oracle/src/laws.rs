//! The paper's identities as executable metamorphic laws.
//!
//! Each law returns `Ok(())` or a human-readable violation carrying a
//! (shrunk, where applicable) counterexample. The laws are deliberately
//! phrased against the *oracle* counter, not the production kernels, so a
//! law failure localizes to the estimator algebra rather than to match
//! counting.
//!
//! | law | paper claim |
//! |-----|-------------|
//! | [`lemma1_decomposition_identity`] | Lemma 1: `s(T)·s(T12) = s(T1)·s(T2)` under edge independence, and every estimator is exact on product documents |
//! | [`lemma2_cover_overlap`] | Lemma 2: each cover step shares a connected (k−1)-subtree with the covered part |
//! | [`exactness_below_k`] | §3.1: estimates are exact whenever `|Q| ≤ k` |
//! | [`voting_cap_one_is_plain`] | §3.2: voting with one vote *is* the plain recursive scheme |
//! | [`engine_matches_uncached`] | engine contract: the shared cache never changes a bit |

use tl_twig::ops::{connected_node_sets, fixed_cover_sets, CoverStrategy};
use tl_twig::Twig;
use tl_xml::Document;
use treelattice::{
    BuildConfig, EngineConfig, EstimateOptions, EstimationEngine, Estimator, TreeLattice,
};

use crate::corpus::{describe_case, product_document};
use crate::enumerate::Oracle;

/// Relative tolerance for "estimator equals oracle" claims: the estimate
/// is a product/quotient chain over exactly-represented integers, so only
/// float rounding separates it from the truth.
const REL_EPS: f64 = 1e-9;

fn close(truth: u64, est: f64) -> bool {
    (est - truth as f64).abs() <= REL_EPS * (truth as f64).max(1.0)
}

/// Lemma 1 on a product document: for every feature-subset twig and every
/// removable pair, the decomposition identity holds exactly on oracle
/// counts, and all four estimators reproduce the oracle (features grow
/// independently, so the conditional-independence assumption is satisfied
/// by construction and nothing may drift).
pub fn lemma1_decomposition_identity(
    features: usize,
    replicas: usize,
    k: usize,
) -> Result<(), String> {
    let (doc, full) = product_document(features, replicas);
    let oracle = Oracle::new(&doc);
    let lattice = TreeLattice::build(&doc, &BuildConfig::with_k(k));
    let opts = EstimateOptions::default();

    // Walk the sub-twig family: the full twig plus everything reachable by
    // repeatedly removing removable nodes (all feature subsets and
    // truncations appear along the way).
    let mut stack = vec![full];
    let mut seen = std::collections::HashSet::new();
    while let Some(twig) = stack.pop() {
        if !seen.insert(tl_twig::canonical::key_of(&twig)) {
            continue;
        }
        let s_t = oracle.count(&twig);
        // (a) the identity, for every removable pair. A 2-node twig has a
        // "pair" (leaf + degree-1 root) but removing both leaves nothing —
        // Lemma 1 starts at |T| ≥ 3.
        for (u, v) in tl_twig::ops::removable_pairs(&twig)
            .into_iter()
            .filter(|_| twig.len() >= 3)
        {
            let d = tl_twig::ops::decompose_pair(&twig, u, v);
            let (s1, s2, s12) = (
                oracle.count(&d.t1),
                oracle.count(&d.t2),
                oracle.count(&d.t12),
            );
            if s_t * s12 != s1 * s2 {
                return Err(format!(
                    "Lemma 1 identity violated: s(T)={s_t} s(T1)={s1} s(T2)={s2} s(T12)={s12}\n{}",
                    describe_case(&doc, &twig)
                ));
            }
        }
        // (b) estimator exactness under independence.
        for est in Estimator::ALL {
            let got = lattice.estimate_with(&twig, est, &opts);
            if !close(s_t, got) {
                return Err(format!(
                    "{est} not exact on product document: truth {s_t}, got {got}\n{}",
                    describe_case(&doc, &twig)
                ));
            }
        }
        if twig.len() > 1 {
            for node in twig.removable_nodes() {
                stack.push(twig.remove_node(node));
            }
        }
    }
    Ok(())
}

/// Lemma 2 set-level invariants of the pre-order fix-sized cover, for both
/// overlap-growth strategies: `|T| − k + 1` steps; each step after the
/// first adds exactly one new node on top of a *connected* (k−1)-subset of
/// the already-covered part containing the new node's parent; every node
/// ends up covered.
pub fn lemma2_cover_overlap(twig: &Twig, k: usize) -> Result<(), String> {
    if !(2..=twig.len()).contains(&k) {
        return Ok(());
    }
    let n = twig.len();
    // The (k−1)-subtree universe, for membership checks.
    let valid_overlaps = connected_node_sets(twig, k - 1);
    for strategy in [CoverStrategy::AncestorsFirst, CoverStrategy::ChildrenFirst] {
        let steps = fixed_cover_sets(twig, k, strategy);
        let fail = |msg: String| Err(format!("Lemma 2 ({strategy:?}): {msg}; twig {twig:?}"));
        if steps.len() != n - k + 1 {
            return fail(format!("{} steps, expected {}", steps.len(), n - k + 1));
        }
        let mut covered = vec![false; n];
        for (i, step) in steps.iter().enumerate() {
            if step.subtree.len() != k {
                return fail(format!("step {i} subtree has {} nodes", step.subtree.len()));
            }
            if i == 0 {
                if step.overlap.is_some() || step.added.is_some() {
                    return fail("first step must have no overlap".into());
                }
                for &node in &step.subtree {
                    covered[node as usize] = true;
                }
                continue;
            }
            let Some(overlap) = &step.overlap else {
                return fail(format!("step {i} lacks an overlap"));
            };
            let Some(added) = step.added else {
                return fail(format!("step {i} lacks an added node"));
            };
            if covered[added as usize] {
                return fail(format!("step {i} re-adds a covered node"));
            }
            if overlap.len() != k - 1 {
                return fail(format!("step {i} overlap has {} nodes", overlap.len()));
            }
            if overlap.iter().any(|&o| !covered[o as usize]) {
                return fail(format!("step {i} overlap leaves the covered part"));
            }
            let parent = twig.parent(added).expect("added node is never the root");
            if !overlap.contains(&parent) {
                return fail(format!("step {i} overlap misses parent of added node"));
            }
            let mut subtree = overlap.clone();
            subtree.push(added);
            subtree.sort_unstable();
            let mut expected = step.subtree.clone();
            expected.sort_unstable();
            if subtree != expected {
                return fail(format!("step {i} subtree != overlap ∪ {{added}}"));
            }
            let mut sorted = overlap.clone();
            sorted.sort_unstable();
            if !valid_overlaps.contains(&sorted) {
                return fail(format!("step {i} overlap is not a connected (k-1)-subtree"));
            }
            covered[added as usize] = true;
        }
        if covered.iter().any(|&c| !c) {
            return fail("cover missed a node".into());
        }
    }
    Ok(())
}

/// §3.1 exactness: when `|Q| ≤ k` the summary stores the true count and
/// every estimator must return it (against the oracle, not the kernels).
pub fn exactness_below_k(
    doc: &Document,
    lattice: &TreeLattice,
    twigs: &[Twig],
) -> Result<(), String> {
    let oracle = Oracle::new(doc);
    let opts = EstimateOptions::default();
    for twig in twigs {
        if twig.len() > lattice.k() {
            continue;
        }
        let truth = oracle.count(twig);
        for est in Estimator::ALL {
            let got = lattice.estimate_with(twig, est, &opts);
            if !close(truth, got) {
                return Err(format!(
                    "{est} inexact at |Q|={} ≤ k={}: truth {truth}, got {got}\n{}",
                    twig.len(),
                    lattice.k(),
                    describe_case(doc, twig)
                ));
            }
        }
    }
    Ok(())
}

/// §3.2: recursive voting capped to a single vote is bit-for-bit the plain
/// recursive scheme.
pub fn voting_cap_one_is_plain(lattice: &TreeLattice, twigs: &[Twig]) -> Result<(), String> {
    let one_vote = EstimateOptions {
        voting_cap: 1,
        ..EstimateOptions::default()
    };
    let plain_opts = EstimateOptions::default();
    for twig in twigs {
        let plain = lattice.estimate_with(twig, Estimator::Recursive, &plain_opts);
        let voted = lattice.estimate_with(twig, Estimator::RecursiveVoting, &one_vote);
        if plain.to_bits() != voted.to_bits() {
            return Err(format!(
                "voting_cap=1 differs from plain recursive: {plain} vs {voted} on {twig:?}"
            ));
        }
    }
    Ok(())
}

/// Engine contract: shared-cache estimates are bit-identical to uncached
/// `TreeLattice` estimates, cold and warm, for every estimator.
pub fn engine_matches_uncached(lattice: &TreeLattice, twigs: &[Twig]) -> Result<(), String> {
    let opts = EstimateOptions::default();
    let engine = EstimationEngine::new(EngineConfig {
        threads: 1,
        ..EngineConfig::default()
    });
    for est in Estimator::ALL {
        for pass in ["cold", "warm"] {
            for twig in twigs {
                let uncached = lattice.estimate_with(twig, est, &opts);
                let cached = engine.estimate(lattice, twig, est, &opts);
                if uncached.to_bits() != cached.to_bits() {
                    return Err(format!(
                        "{est} ({pass} cache) drifts: uncached {uncached} vs engine {cached} \
                         on {twig:?}"
                    ));
                }
            }
        }
    }
    Ok(())
}
