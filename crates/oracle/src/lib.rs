//! # tl-oracle — ground truth and metamorphic laws for TreeLattice
//!
//! The estimation pipeline already has two exact kernels (`MatchCounter`,
//! `ReferenceMatchCounter`); this crate adds the *verification surface*
//! that certifies them — and the estimators above them — against the
//! paper's algebra:
//!
//! * [`Oracle`] — a third, independently formulated exact counter
//!   (top-down permanent expansion; see [`enumerate`]) plus a capped match
//!   enumerator, for 3-way differential testing;
//! * [`laws`] — the paper's Lemmas as executable metamorphic laws;
//! * [`corpus`] — seeded random (document, twig) corpora, the Lemma 1
//!   product-document construction, and a greedy counterexample shrinker.
//!
//! Everything here is test infrastructure: deliberately naive, heavily
//! checked, and not on any production path.

pub mod corpus;
pub mod enumerate;
pub mod laws;

pub use corpus::{
    describe_case, generate, product_document, seeds_from_env, shrink_case, Corpus, CorpusConfig,
};
pub use enumerate::{match_is_valid, Oracle};
