//! Blocking client for the tl-wire/1 protocol.
//!
//! One request in flight per connection: `request` writes a frame and
//! blocks for the response frame. This is the closed-loop shape the load
//! harness and the smoke tests drive; open many clients for concurrency.

use std::fmt;
use std::io;
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use tl_fault::Fault;
use treelattice::Estimator;

use crate::protocol::{read_frame, write_frame, FrameError, Request, Response, WireEstimate};

/// Client-side failure: transport trouble or a typed protocol fault.
#[derive(Debug)]
pub enum ClientError {
    Io(io::Error),
    /// The response frame or body failed validation (checksum, decode).
    Protocol(Fault),
    /// The peer closed the connection before answering.
    Closed,
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "i/o: {e}"),
            ClientError::Protocol(fault) => write!(f, "protocol: {fault}"),
            ClientError::Closed => f.write_str("connection closed"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

pub struct Client {
    stream: TcpStream,
    tenant: String,
}

impl Client {
    /// Connects and pins every request from this client to `tenant`.
    pub fn connect(addr: impl ToSocketAddrs, tenant: impl Into<String>) -> io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        // A generous transport deadline so a wedged server surfaces as an
        // error instead of hanging the caller forever.
        stream.set_read_timeout(Some(Duration::from_secs(60)))?;
        Ok(Self {
            stream,
            tenant: tenant.into(),
        })
    }

    pub fn tenant(&self) -> &str {
        &self.tenant
    }

    /// Sends one request and blocks for its response.
    pub fn request(&mut self, request: &Request) -> Result<Response, ClientError> {
        write_frame(&mut self.stream, &request.encode())?;
        let body = match read_frame(&mut self.stream) {
            Ok(body) => body,
            Err(FrameError::Eof) => return Err(ClientError::Closed),
            Err(FrameError::Io(e)) => return Err(ClientError::Io(e)),
            Err(FrameError::Corrupt(f)) => return Err(ClientError::Protocol(f)),
        };
        Response::decode(&body).map_err(ClientError::Protocol)
    }

    /// Estimates one query; faults come back as `Err(ClientError::Protocol)`
    /// carrying the server's typed fault.
    pub fn estimate(
        &mut self,
        estimator: Estimator,
        query: &str,
    ) -> Result<WireEstimate, ClientError> {
        let resp = self.request(&Request::Estimate {
            tenant: self.tenant.clone(),
            estimator,
            query: query.to_owned(),
        })?;
        match resp {
            Response::Estimate(e) => Ok(e),
            Response::Error { fault, .. } => Err(ClientError::Protocol(fault)),
            other => Err(ClientError::Protocol(Fault::parse(format!(
                "unexpected response to estimate: {other:?}"
            )))),
        }
    }

    pub fn estimate_batch(
        &mut self,
        estimator: Estimator,
        queries: &[String],
    ) -> Result<Vec<Result<WireEstimate, Fault>>, ClientError> {
        let resp = self.request(&Request::EstimateBatch {
            tenant: self.tenant.clone(),
            estimator,
            queries: queries.to_vec(),
        })?;
        match resp {
            Response::Batch(items) => Ok(items),
            Response::Error { fault, .. } => Err(ClientError::Protocol(fault)),
            other => Err(ClientError::Protocol(Fault::parse(format!(
                "unexpected response to estimate-batch: {other:?}"
            )))),
        }
    }

    pub fn truth(&mut self, query: &str) -> Result<Option<u64>, ClientError> {
        let resp = self.request(&Request::Truth {
            tenant: self.tenant.clone(),
            query: query.to_owned(),
        })?;
        match resp {
            Response::Truth { stored } => Ok(stored),
            Response::Error { fault, .. } => Err(ClientError::Protocol(fault)),
            other => Err(ClientError::Protocol(Fault::parse(format!(
                "unexpected response to truth: {other:?}"
            )))),
        }
    }

    /// Feeds back an executed query's true count; returns the summary
    /// generation after the observation.
    pub fn update(&mut self, query: &str, true_count: u64) -> Result<u64, ClientError> {
        let resp = self.request(&Request::Update {
            tenant: self.tenant.clone(),
            query: query.to_owned(),
            true_count,
        })?;
        match resp {
            Response::Updated { generation } => Ok(generation),
            Response::Error { fault, .. } => Err(ClientError::Protocol(fault)),
            other => Err(ClientError::Protocol(Fault::parse(format!(
                "unexpected response to update: {other:?}"
            )))),
        }
    }

    /// Fetches the tl-metrics/1 snapshot JSON.
    pub fn scrape(&mut self) -> Result<String, ClientError> {
        let resp = self.request(&Request::Scrape {
            tenant: self.tenant.clone(),
        })?;
        match resp {
            Response::Scrape { json } => Ok(json),
            Response::Error { fault, .. } => Err(ClientError::Protocol(fault)),
            other => Err(ClientError::Protocol(Fault::parse(format!(
                "unexpected response to scrape: {other:?}"
            )))),
        }
    }
}
