//! Blocking client for the tl-wire/1 protocol.
//!
//! One request in flight per connection: `request` writes a frame and
//! blocks for the response frame. This is the closed-loop shape the load
//! harness and the smoke tests drive; open many clients for concurrency.
//!
//! Robustness: every request runs under a per-request deadline
//! ([`ClientConfig::request_timeout`]), and transport failures
//! (connect refused, read error, peer closed) are retried on a fresh
//! connection with capped exponential backoff plus jitter — but only for
//! requests that are safe to retry. Reads (`estimate`, `truth`,
//! `scrape`) are naturally idempotent; `update` is retried only because
//! the client stamps it with an idempotency key, so a retried ack can
//! never double-apply on the server.

use std::fmt;
use std::io;
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::{Duration, Instant};

use tl_fault::Fault;
use treelattice::Estimator;

use crate::protocol::{read_frame, write_frame, FrameError, Request, Response, WireEstimate};

/// Client-side failure: transport trouble or a typed protocol fault.
#[derive(Debug)]
pub enum ClientError {
    Io(io::Error),
    /// The response frame or body failed validation (checksum, decode).
    Protocol(Fault),
    /// The peer closed the connection before answering.
    Closed,
    /// The per-request deadline expired (including all retries).
    Deadline,
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "i/o: {e}"),
            ClientError::Protocol(fault) => write!(f, "protocol: {fault}"),
            ClientError::Closed => f.write_str("connection closed"),
            ClientError::Deadline => f.write_str("request deadline expired"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

/// Transport knobs. The defaults suit tests and CLI probes; the load
/// harness tightens them.
#[derive(Clone, Copy, Debug)]
pub struct ClientConfig {
    /// Total wall-clock budget for one logical request, retries
    /// included.
    pub request_timeout: Duration,
    /// Budget for one TCP connect attempt.
    pub connect_timeout: Duration,
    /// Retry attempts after the first failure (0 = fail fast).
    pub max_retries: u32,
    /// First backoff delay; doubles per retry.
    pub backoff_base: Duration,
    /// Backoff ceiling.
    pub backoff_cap: Duration,
    /// Seed for backoff jitter and idempotency keys; 0 derives one from
    /// the process id and clock.
    pub seed: u64,
}

impl Default for ClientConfig {
    fn default() -> Self {
        Self {
            request_timeout: Duration::from_secs(30),
            connect_timeout: Duration::from_secs(5),
            max_retries: 3,
            backoff_base: Duration::from_millis(25),
            backoff_cap: Duration::from_secs(1),
            seed: 0,
        }
    }
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

pub struct Client {
    addrs: Vec<SocketAddr>,
    stream: Option<TcpStream>,
    tenant: String,
    config: ClientConfig,
    rng: u64,
    idem_salt: u64,
    idem_counter: u64,
}

impl Client {
    /// Connects and pins every request from this client to `tenant`.
    pub fn connect(addr: impl ToSocketAddrs, tenant: impl Into<String>) -> io::Result<Self> {
        Self::connect_with(addr, tenant, ClientConfig::default())
    }

    /// [`Client::connect`] with explicit transport knobs.
    pub fn connect_with(
        addr: impl ToSocketAddrs,
        tenant: impl Into<String>,
        config: ClientConfig,
    ) -> io::Result<Self> {
        let addrs: Vec<SocketAddr> = addr.to_socket_addrs()?.collect();
        if addrs.is_empty() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "address resolved to nothing",
            ));
        }
        let mut seed = config.seed;
        if seed == 0 {
            let nanos = std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .map_or(0, |d| d.subsec_nanos() as u64 | (d.as_secs() << 32));
            seed = nanos ^ ((std::process::id() as u64) << 17) ^ 0x005e_edc1_1e47;
        }
        let mut rng = seed;
        let idem_salt = splitmix64(&mut rng) | 1; // never zero
        let mut client = Self {
            addrs,
            stream: None,
            tenant: tenant.into(),
            config,
            rng,
            idem_salt,
            idem_counter: 0,
        };
        let stream = client.open_stream()?;
        client.stream = Some(stream);
        Ok(client)
    }

    pub fn tenant(&self) -> &str {
        &self.tenant
    }

    fn open_stream(&self) -> io::Result<TcpStream> {
        let mut last = None;
        for addr in &self.addrs {
            match TcpStream::connect_timeout(addr, self.config.connect_timeout) {
                Ok(stream) => {
                    stream.set_nodelay(true)?;
                    return Ok(stream);
                }
                Err(e) => last = Some(e),
            }
        }
        Err(last.unwrap_or_else(|| io::Error::new(io::ErrorKind::NotFound, "no address")))
    }

    /// Capped exponential backoff with multiplicative jitter in
    /// [0.5, 1.5), never sleeping past the deadline.
    fn backoff(&mut self, attempt: u32, deadline: Instant) {
        let exp = self
            .config
            .backoff_base
            .saturating_mul(1u32 << attempt.min(16))
            .min(self.config.backoff_cap);
        let jitter_milli = 500 + splitmix64(&mut self.rng) % 1000;
        let delay = exp.mul_f64(jitter_milli as f64 / 1000.0);
        let remaining = deadline.saturating_duration_since(Instant::now());
        std::thread::sleep(delay.min(remaining));
    }

    /// The next idempotency key: unique per (client, update) with
    /// overwhelming probability, never zero. splitmix64 is a bijection,
    /// so distinct counters under one salt never collide with each other.
    fn next_idem(&mut self) -> u64 {
        self.idem_counter += 1;
        let mut state = self.idem_salt ^ self.idem_counter;
        let key = splitmix64(&mut state);
        if key == 0 {
            1
        } else {
            key
        }
    }

    /// One request/response exchange on the current connection under the
    /// remaining deadline.
    fn exchange(&mut self, request: &Request, deadline: Instant) -> Result<Response, ClientError> {
        let remaining = deadline.saturating_duration_since(Instant::now());
        if remaining.is_zero() {
            return Err(ClientError::Deadline);
        }
        let stream = match &mut self.stream {
            Some(s) => s,
            None => {
                let s = self.open_stream()?;
                self.stream.insert(s)
            }
        };
        stream.set_read_timeout(Some(remaining))?;
        stream.set_write_timeout(Some(remaining))?;
        write_frame(stream, &request.encode())?;
        let body = match read_frame(stream) {
            Ok(body) => body,
            Err(FrameError::Eof) => return Err(ClientError::Closed),
            Err(FrameError::Io(e))
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                return Err(ClientError::Deadline)
            }
            Err(FrameError::Io(e)) => return Err(ClientError::Io(e)),
            Err(FrameError::Corrupt(f)) => return Err(ClientError::Protocol(f)),
        };
        Response::decode(&body).map_err(ClientError::Protocol)
    }

    /// Sends one request and blocks for its response under the
    /// per-request deadline. No transport retry: callers that know their
    /// request is idempotent go through the typed methods instead.
    pub fn request(&mut self, request: &Request) -> Result<Response, ClientError> {
        let deadline = Instant::now() + self.config.request_timeout;
        let result = self.exchange(request, deadline);
        if matches!(result, Err(ClientError::Io(_) | ClientError::Closed)) {
            self.stream = None;
        }
        result
    }

    /// Sends a retriable request: transport failures drop the connection
    /// and retry on a fresh one with backoff, until the deadline or the
    /// retry budget runs out. Protocol faults are never retried — the
    /// server answered; the answer is the answer.
    fn request_retriable(&mut self, request: &Request) -> Result<Response, ClientError> {
        let deadline = Instant::now() + self.config.request_timeout;
        let mut attempt = 0u32;
        loop {
            match self.exchange(request, deadline) {
                Ok(resp) => return Ok(resp),
                Err(e @ (ClientError::Io(_) | ClientError::Closed)) => {
                    self.stream = None;
                    if attempt >= self.config.max_retries || Instant::now() >= deadline {
                        return Err(e);
                    }
                    self.backoff(attempt, deadline);
                    attempt += 1;
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Estimates one query; faults come back as `Err(ClientError::Protocol)`
    /// carrying the server's typed fault.
    pub fn estimate(
        &mut self,
        estimator: Estimator,
        query: &str,
    ) -> Result<WireEstimate, ClientError> {
        let resp = self.request_retriable(&Request::Estimate {
            tenant: self.tenant.clone(),
            estimator,
            query: query.to_owned(),
        })?;
        match resp {
            Response::Estimate(e) => Ok(e),
            Response::Error { fault, .. } => Err(ClientError::Protocol(fault)),
            other => Err(ClientError::Protocol(Fault::parse(format!(
                "unexpected response to estimate: {other:?}"
            )))),
        }
    }

    pub fn estimate_batch(
        &mut self,
        estimator: Estimator,
        queries: &[String],
    ) -> Result<Vec<Result<WireEstimate, Fault>>, ClientError> {
        let resp = self.request_retriable(&Request::EstimateBatch {
            tenant: self.tenant.clone(),
            estimator,
            queries: queries.to_vec(),
        })?;
        match resp {
            Response::Batch(items) => Ok(items),
            Response::Error { fault, .. } => Err(ClientError::Protocol(fault)),
            other => Err(ClientError::Protocol(Fault::parse(format!(
                "unexpected response to estimate-batch: {other:?}"
            )))),
        }
    }

    pub fn truth(&mut self, query: &str) -> Result<Option<u64>, ClientError> {
        let resp = self.request_retriable(&Request::Truth {
            tenant: self.tenant.clone(),
            query: query.to_owned(),
        })?;
        match resp {
            Response::Truth { stored } => Ok(stored),
            Response::Error { fault, .. } => Err(ClientError::Protocol(fault)),
            other => Err(ClientError::Protocol(Fault::parse(format!(
                "unexpected response to truth: {other:?}"
            )))),
        }
    }

    /// Feeds back an executed query's true count; returns the summary
    /// generation after the observation. Stamped with a fresh
    /// idempotency key, so the transport may retry it safely.
    pub fn update(&mut self, query: &str, true_count: u64) -> Result<u64, ClientError> {
        let idem = self.next_idem();
        self.update_with_idem(query, true_count, idem)
    }

    /// [`Client::update`] with an explicit idempotency key (`0` opts out
    /// of both deduplication and transport retry).
    pub fn update_with_idem(
        &mut self,
        query: &str,
        true_count: u64,
        idem: u64,
    ) -> Result<u64, ClientError> {
        let request = Request::Update {
            tenant: self.tenant.clone(),
            query: query.to_owned(),
            true_count,
            idem,
        };
        let resp = if idem == 0 {
            self.request(&request)?
        } else {
            self.request_retriable(&request)?
        };
        match resp {
            Response::Updated { generation } => Ok(generation),
            Response::Error { fault, .. } => Err(ClientError::Protocol(fault)),
            other => Err(ClientError::Protocol(Fault::parse(format!(
                "unexpected response to update: {other:?}"
            )))),
        }
    }

    /// Fetches the tl-metrics/1 snapshot JSON.
    pub fn scrape(&mut self) -> Result<String, ClientError> {
        let resp = self.request_retriable(&Request::Scrape {
            tenant: self.tenant.clone(),
        })?;
        match resp {
            Response::Scrape { json } => Ok(json),
            Response::Error { fault, .. } => Err(ClientError::Protocol(fault)),
            other => Err(ClientError::Protocol(Fault::parse(format!(
                "unexpected response to scrape: {other:?}"
            )))),
        }
    }
}
