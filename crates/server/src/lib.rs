//! # tl-server — the estimation service
//!
//! A long-running process that loads one summary (in-memory or zero-copy
//! mmap [`treelattice::MmapCatalog`]) at startup and serves `estimate`,
//! `estimate-batch`, `truth`, and `update` requests over a
//! length-prefixed, checksummed binary protocol on a TCP socket
//! ([`protocol`], "tl-wire/1").
//!
//! Multi-tenancy is first-class: each tenant gets a weighted fair-queue
//! lane with an admission cap and a [`tl_fault::Budget`] template
//! ([`queue`], [`BudgetSpec`]). Overload is answered, not errored: a shed
//! request gets the closed-form Markov estimate tagged
//! [`tl_fault::Degradation::Markov`] with a cause fault — the same
//! degraded-with-provenance contract as the in-process resilient ladder.
//! The server never returns an untyped error; every response carries a
//! degradation tag or a typed [`tl_fault::Fault`], and the wire status
//! byte is the shared exit-code table ([`tl_fault::exit_code`]).
//!
//! Observability rides the tl-metrics/1 snapshot: a `scrape` request
//! (which bypasses the queue) returns the full recorder snapshot
//! including the `server.*` counters, queue-depth gauge, and overall plus
//! per-tenant latency histograms.

pub mod client;
pub mod protocol;
pub mod queue;
pub mod server;

pub use client::{Client, ClientConfig, ClientError};
pub use protocol::{Request, Response, WireEstimate};
pub use queue::{FairQueue, Refusal, TenantConfig};
pub use server::{serve, BudgetSpec, ServerConfig, ServerHandle, TenantSpec, DEFAULT_TENANT};
