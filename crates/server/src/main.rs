//! tl-server — serve twig-selectivity estimates over TCP.
//!
//! ```text
//! tl-server serve <summary.tlat> [--mmap] [--port N] [--port-file PATH]
//!                 [--workers N] [--tenant name=weight[:cap][:ms]]...
//!                 [--budget-ms N] [--budget-mem BYTES] [--max-k K]
//!                 [--online-budget BYTES] [--wal-dir DIR]
//!                 [--durability none|batch|strict] [--snapshot-every N]
//!                 [--idle-timeout-ms N]
//! tl-server probe <addr> <query> [--tenant T] [--estimator E]
//! tl-server scrape <addr> [--tenant T]
//! ```
//!
//! `serve` runs until SIGTERM/SIGINT, then drains queued work and exits
//! 0. With `--wal-dir` every accepted update is write-ahead logged
//! before its ack, startup replays the newest snapshot + WAL tail, and
//! the drain publishes a final snapshot — a failed final snapshot exits
//! 3 with the previous snapshot and WAL left intact. `--port 0` binds an
//! ephemeral port; `--port-file` writes the bound `host:port` for
//! scripts (the CI smoke test uses both). Exit codes follow the shared
//! table: usage errors are 2, faults are 3.

use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

use tl_fault::{exit_code, Outcome};
use tl_server::{serve, BudgetSpec, Client, ServerConfig, TenantSpec, DEFAULT_TENANT};
use treelattice::Estimator;

const USAGE: &str = "usage:
  tl-server serve <summary.tlat> [--mmap] [--port N] [--port-file PATH]
                  [--workers N] [--tenant name=weight[:cap][:ms]]...
                  [--budget-ms N] [--budget-mem BYTES] [--max-k K]
                  [--online-budget BYTES] [--wal-dir DIR]
                  [--durability none|batch|strict] [--snapshot-every N]
                  [--idle-timeout-ms N]
  tl-server probe <addr> <query> [--tenant T] [--estimator E]
  tl-server scrape <addr> [--tenant T]";

static SHUTDOWN: AtomicBool = AtomicBool::new(false);

// std already links libc; declaring `signal` directly avoids a crate
// dependency. The handler only stores into an atomic — async-signal-safe.
extern "C" {
    fn signal(signum: i32, handler: usize) -> usize;
}

extern "C" fn on_signal(_sig: i32) {
    SHUTDOWN.store(true, Ordering::SeqCst);
}

const SIGINT: i32 = 2;
const SIGTERM: i32 = 15;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let code = match args.first().map(String::as_str) {
        Some("serve") => cmd_serve(&args[1..]),
        Some("probe") => cmd_probe(&args[1..]),
        Some("scrape") => cmd_scrape(&args[1..]),
        _ => {
            eprintln!("{USAGE}");
            exit_code(Outcome::UsageError)
        }
    };
    ExitCode::from(code as u8)
}

fn usage_err(msg: &str) -> i32 {
    eprintln!("tl-server: {msg}\n{USAGE}");
    exit_code(Outcome::UsageError)
}

fn fault_err(msg: impl std::fmt::Display) -> i32 {
    eprintln!("tl-server: {msg}");
    exit_code(Outcome::Fault)
}

/// Parses `name=weight[:cap][:budget_ms]`.
fn parse_tenant(spec: &str) -> Result<TenantSpec, String> {
    let (name, rest) = spec
        .split_once('=')
        .ok_or_else(|| format!("--tenant `{spec}`: expected name=weight[:cap][:ms]"))?;
    let mut parts = rest.split(':');
    let weight: u32 = parts
        .next()
        .unwrap_or("")
        .parse()
        .map_err(|e| format!("--tenant `{spec}`: weight: {e}"))?;
    let cap: usize = match parts.next() {
        Some(c) => c
            .parse()
            .map_err(|e| format!("--tenant `{spec}`: cap: {e}"))?,
        None => 256,
    };
    let budget = match parts.next() {
        Some(ms) => Some(BudgetSpec {
            time_limit_ms: Some(
                ms.parse()
                    .map_err(|e| format!("--tenant `{spec}`: budget ms: {e}"))?,
            ),
            ..BudgetSpec::default()
        }),
        None => None,
    };
    if parts.next().is_some() {
        return Err(format!("--tenant `{spec}`: too many `:` parts"));
    }
    let mut tenant = TenantSpec::new(name, weight, cap);
    tenant.budget = budget;
    Ok(tenant)
}

fn cmd_serve(args: &[String]) -> i32 {
    let mut summary: Option<String> = None;
    let mut config_port: u16 = 0;
    let mut port_file: Option<String> = None;
    let mut mmap = false;
    let mut workers = 0usize;
    let mut tenants = Vec::new();
    let mut budget = BudgetSpec::default();
    let mut online_budget = 1usize << 20;
    let mut wal_dir: Option<String> = None;
    let mut durability = treelattice::DurabilityPolicy::Batch;
    let mut snapshot_every = 512u64;
    let mut idle_timeout_ms = 60_000u64;

    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |flag: &str| {
            it.next()
                .map(String::as_str)
                .ok_or_else(|| format!("{flag} needs a value"))
        };
        match arg.as_str() {
            "--mmap" => mmap = true,
            "--port" => {
                match value("--port").and_then(|v| v.parse().map_err(|e| format!("--port: {e}"))) {
                    Ok(p) => config_port = p,
                    Err(e) => return usage_err(&e),
                }
            }
            "--port-file" => match value("--port-file") {
                Ok(v) => port_file = Some(v.to_owned()),
                Err(e) => return usage_err(&e),
            },
            "--workers" => match value("--workers")
                .and_then(|v| v.parse().map_err(|e| format!("--workers: {e}")))
            {
                Ok(w) => workers = w,
                Err(e) => return usage_err(&e),
            },
            "--tenant" => match value("--tenant").map(parse_tenant) {
                Ok(Ok(t)) => tenants.push(t),
                Ok(Err(e)) => return usage_err(&e),
                Err(e) => return usage_err(&e),
            },
            "--budget-ms" => match value("--budget-ms")
                .and_then(|v| v.parse().map_err(|e| format!("--budget-ms: {e}")))
            {
                Ok(ms) => budget.time_limit_ms = Some(ms),
                Err(e) => return usage_err(&e),
            },
            "--budget-mem" => match value("--budget-mem")
                .and_then(|v| v.parse().map_err(|e| format!("--budget-mem: {e}")))
            {
                Ok(b) => budget.max_mem_bytes = Some(b),
                Err(e) => return usage_err(&e),
            },
            "--max-k" => match value("--max-k")
                .and_then(|v| v.parse().map_err(|e| format!("--max-k: {e}")))
            {
                Ok(k) => budget.max_k = Some(k),
                Err(e) => return usage_err(&e),
            },
            "--online-budget" => match value("--online-budget")
                .and_then(|v| v.parse().map_err(|e| format!("--online-budget: {e}")))
            {
                Ok(b) => online_budget = b,
                Err(e) => return usage_err(&e),
            },
            "--wal-dir" => match value("--wal-dir") {
                Ok(v) => wal_dir = Some(v.to_owned()),
                Err(e) => return usage_err(&e),
            },
            "--durability" => match value("--durability").and_then(|v| {
                treelattice::DurabilityPolicy::parse(v).map_err(|e| format!("--durability: {e}"))
            }) {
                Ok(p) => durability = p,
                Err(e) => return usage_err(&e),
            },
            "--snapshot-every" => match value("--snapshot-every")
                .and_then(|v| v.parse().map_err(|e| format!("--snapshot-every: {e}")))
            {
                Ok(n) => snapshot_every = n,
                Err(e) => return usage_err(&e),
            },
            "--idle-timeout-ms" => match value("--idle-timeout-ms")
                .and_then(|v| v.parse().map_err(|e| format!("--idle-timeout-ms: {e}")))
            {
                Ok(ms) => idle_timeout_ms = ms,
                Err(e) => return usage_err(&e),
            },
            other if !other.starts_with('-') && summary.is_none() => {
                summary = Some(other.to_owned())
            }
            other => return usage_err(&format!("unknown flag `{other}`")),
        }
    }
    let Some(summary) = summary else {
        return usage_err("serve needs a <summary.tlat>");
    };

    let mut config = ServerConfig::new(summary);
    config.mmap = mmap;
    config.port = config_port;
    config.workers = workers;
    config.tenants = tenants;
    config.default_budget = budget;
    config.online_budget_bytes = online_budget;
    config.wal_dir = wal_dir.map(Into::into);
    config.durability = durability;
    config.snapshot_every = snapshot_every;
    config.idle_timeout_ms = idle_timeout_ms;
    if config.mmap && config.wal_dir.is_some() {
        return usage_err("--wal-dir is incompatible with --mmap");
    }
    // Chaos harnesses inject faults into the spawned server via the same
    // TL_CHAOS/TL_CHAOS_SEED contract the CLI honors.
    if let Err(e) = tl_fault::failpoints::activate_from_env() {
        return usage_err(&format!("TL_CHAOS: {e}"));
    }

    let handle = match serve(config) {
        Ok(h) => h,
        Err(fault) => return fault_err(fault),
    };
    unsafe {
        signal(SIGTERM, on_signal as *const () as usize);
        signal(SIGINT, on_signal as *const () as usize);
    }
    let addr = handle.addr();
    if let Some(path) = &port_file {
        if let Err(e) = std::fs::write(path, addr.to_string()) {
            let _ = handle.shutdown();
            return fault_err(format!("{path}: {e}"));
        }
    }
    println!("tl-server listening on {addr}");

    while !SHUTDOWN.load(Ordering::SeqCst) {
        std::thread::sleep(Duration::from_millis(25));
    }
    eprintln!("tl-server: signal received, draining");
    match handle.shutdown() {
        Ok(()) => exit_code(Outcome::Success),
        // A failed durable drain (e.g. the final snapshot hit a fault)
        // must not look like a clean exit: the previous snapshot and the
        // WAL are intact on disk, and the operator needs to know.
        Err(fault) => fault_err(format!("drain: {fault}")),
    }
}

fn parse_estimator(name: &str) -> Result<Estimator, String> {
    match name {
        "recursive" | "rec" => Ok(Estimator::Recursive),
        "voting" | "vote" => Ok(Estimator::RecursiveVoting),
        "fixed" | "fix" | "fix-sized" => Ok(Estimator::FixSized),
        other => Err(format!(
            "unknown estimator `{other}` (expected recursive|voting|fixed)"
        )),
    }
}

fn parse_probe_args(
    args: &[String],
    positionals: usize,
) -> Result<(Vec<&str>, &str, Estimator), String> {
    let mut pos = Vec::new();
    let mut tenant = DEFAULT_TENANT;
    let mut estimator = Estimator::RecursiveVoting;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--tenant" => {
                tenant = it
                    .next()
                    .map(String::as_str)
                    .ok_or("--tenant needs a value")?
            }
            "--estimator" => {
                estimator = parse_estimator(
                    it.next()
                        .map(String::as_str)
                        .ok_or("--estimator needs a value")?,
                )?
            }
            other if !other.starts_with('-') => pos.push(other),
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    if pos.len() != positionals {
        return Err(format!("expected {positionals} positional arguments"));
    }
    Ok((pos, tenant, estimator))
}

fn cmd_probe(args: &[String]) -> i32 {
    let (pos, tenant, estimator) = match parse_probe_args(args, 2) {
        Ok(v) => v,
        Err(e) => return usage_err(&e),
    };
    let mut client = match Client::connect(pos[0], tenant) {
        Ok(c) => c,
        Err(e) => return fault_err(format!("{}: {e}", pos[0])),
    };
    match client.estimate(estimator, pos[1]) {
        Ok(est) => {
            println!("{}", est.value);
            if est.degradation.is_degraded() {
                eprintln!(
                    "note: degraded estimate ({}){}",
                    est.degradation,
                    est.cause
                        .map(|c| format!(", cause: {c}"))
                        .unwrap_or_default()
                );
                exit_code(Outcome::DegradedOk)
            } else {
                exit_code(Outcome::Success)
            }
        }
        Err(e) => fault_err(e),
    }
}

fn cmd_scrape(args: &[String]) -> i32 {
    let (pos, tenant, _) = match parse_probe_args(args, 1) {
        Ok(v) => v,
        Err(e) => return usage_err(&e),
    };
    let mut client = match Client::connect(pos[0], tenant) {
        Ok(c) => c,
        Err(e) => return fault_err(format!("{}: {e}", pos[0])),
    };
    match client.scrape() {
        Ok(json) => {
            println!("{json}");
            exit_code(Outcome::Success)
        }
        Err(e) => fault_err(e),
    }
}
